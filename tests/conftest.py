"""Shared fixtures for the test suite.

The fixtures provide a small, fast star schema ("toy"), a scaled-down APB-1
configuration, and matching workloads/system parameters so individual test
modules do not repeat schema construction.
"""

from __future__ import annotations

import pytest

from repro import (
    AdvisorConfig,
    Dimension,
    DimensionRestriction,
    FactTable,
    Level,
    Measure,
    QueryClass,
    QueryMix,
    SkewSpec,
    StarSchema,
    SystemParameters,
    Warlock,
    apb1_query_mix,
    apb1_schema,
)
from repro.storage import DiskParameters

# WARLOCK_SANITIZE=1 runs the whole suite under the runtime concurrency
# sanitizer (see repro.lint.sanitizer): lock-discipline violations raise
# instead of racing silently.  A no-op when the variable is unset.
from repro.lint.sanitizer import install_from_env

install_from_env()


@pytest.fixture
def toy_schema() -> StarSchema:
    """A three-dimension star schema small enough for exhaustive checks."""
    time = Dimension(
        name="time",
        levels=[Level("year", 2), Level("quarter", 8), Level("month", 24)],
    )
    product = Dimension(
        name="product",
        levels=[Level("group", 10), Level("item", 200)],
        skew=SkewSpec(theta=0.0),
    )
    store = Dimension(
        name="store",
        levels=[Level("region", 4), Level("store", 40)],
    )
    fact = FactTable(
        name="sales",
        row_count=1_000_000,
        row_size_bytes=64,
        dimension_names=("time", "product", "store"),
        measures=(Measure("revenue", 8),),
    )
    return StarSchema(name="toy", dimensions=(time, product, store), fact_tables=(fact,))


@pytest.fixture
def skewed_schema() -> StarSchema:
    """The toy schema with a strongly skewed product dimension."""
    time = Dimension(
        name="time",
        levels=[Level("year", 2), Level("quarter", 8), Level("month", 24)],
    )
    product = Dimension(
        name="product",
        levels=[Level("group", 10), Level("item", 200)],
        skew=SkewSpec(theta=1.0),
    )
    store = Dimension(
        name="store",
        levels=[Level("region", 4), Level("store", 40)],
    )
    fact = FactTable(
        name="sales",
        row_count=1_000_000,
        row_size_bytes=64,
        dimension_names=("time", "product", "store"),
        measures=(Measure("revenue", 8),),
    )
    return StarSchema(
        name="toy-skewed", dimensions=(time, product, store), fact_tables=(fact,)
    )


@pytest.fixture
def toy_workload() -> QueryMix:
    """A four-class workload touching every dimension of the toy schema."""
    return QueryMix(
        [
            QueryClass(
                name="monthly-by-group",
                restrictions=[
                    DimensionRestriction("time", "month"),
                    DimensionRestriction("product", "group"),
                ],
                weight=4,
            ),
            QueryClass(
                name="quarterly-by-region",
                restrictions=[
                    DimensionRestriction("time", "quarter"),
                    DimensionRestriction("store", "region"),
                ],
                weight=3,
            ),
            QueryClass(
                name="item-tracking",
                restrictions=[
                    DimensionRestriction("product", "item"),
                    DimensionRestriction("time", "month"),
                ],
                weight=2,
            ),
            QueryClass(
                name="yearly-report",
                restrictions=[DimensionRestriction("time", "year")],
                weight=1,
            ),
        ]
    )


@pytest.fixture
def small_system() -> SystemParameters:
    """Eight disks, default disk characteristics."""
    return SystemParameters(num_disks=8)


@pytest.fixture
def tiny_disk_system() -> SystemParameters:
    """A system whose disks are deliberately tiny (capacity threshold tests)."""
    return SystemParameters(
        num_disks=4,
        disk=DiskParameters(capacity_gb=0.001),
    )


@pytest.fixture
def toy_advisor(toy_schema, toy_workload, small_system) -> Warlock:
    """An advisor over the toy configuration with permissive thresholds."""
    config = AdvisorConfig(max_fragments=10_000, top_candidates=5)
    return Warlock(toy_schema, toy_workload, small_system, config)


@pytest.fixture(scope="session")
def apb_small_schema() -> StarSchema:
    """A down-scaled APB-1 schema shared across integration tests."""
    return apb1_schema(scale=0.02)


@pytest.fixture(scope="session")
def apb_workload() -> QueryMix:
    """The APB-1-style query mix."""
    return apb1_query_mix()
