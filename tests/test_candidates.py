"""Tests for candidate objects, the error hierarchy and additional advisor paths."""

from __future__ import annotations

import pytest

import repro
from repro import (
    AdvisorConfig,
    FragmentationSpec,
    SystemParameters,
    Warlock,
    retail_query_mix,
    retail_schema,
)
from repro.errors import (
    AdvisorError,
    AllocationError,
    BitmapError,
    CostModelError,
    FragmentationError,
    ReportError,
    SchemaError,
    SimulationError,
    StorageError,
    WarlockError,
    WorkloadError,
)


class TestErrorHierarchy:
    def test_all_errors_derive_from_warlock_error(self):
        for error_type in (
            SchemaError,
            WorkloadError,
            FragmentationError,
            AllocationError,
            CostModelError,
            BitmapError,
            StorageError,
            AdvisorError,
            SimulationError,
            ReportError,
        ):
            assert issubclass(error_type, WarlockError)
            assert issubclass(error_type, Exception)

    def test_catching_base_class_catches_specific(self, toy_schema):
        with pytest.raises(WarlockError):
            toy_schema.dimension("does-not-exist")

    def test_public_api_exports_every_error(self):
        for name in (
            "WarlockError",
            "SchemaError",
            "WorkloadError",
            "FragmentationError",
            "AllocationError",
            "CostModelError",
            "BitmapError",
            "StorageError",
            "AdvisorError",
            "SimulationError",
            "ReportError",
        ):
            assert hasattr(repro, name)


class TestPublicApiSurface:
    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.__all__ exports missing attribute {name}"

    def test_version_is_semver_like(self):
        parts = repro.__version__.split(".")
        assert len(parts) == 3
        assert all(part.isdigit() for part in parts)


class TestFragmentationCandidate:
    @pytest.fixture(scope="class")
    def candidate(self):
        schema = retail_schema(scale=0.01)
        workload = retail_query_mix()
        system = SystemParameters(num_disks=16)
        advisor = Warlock(schema, workload, system, AdvisorConfig(max_fragments=50_000))
        spec = FragmentationSpec.of(("date", "month"), ("store", "region"))
        return advisor.evaluate_spec(spec)

    def test_headline_metrics_consistent_with_evaluation(self, candidate):
        assert candidate.io_cost_ms == pytest.approx(
            candidate.evaluation.total_io_cost_ms
        )
        assert candidate.response_time_ms == pytest.approx(
            candidate.evaluation.total_response_time_ms
        )
        assert candidate.fragment_count == candidate.layout.fragment_count
        assert candidate.pages_accessed == pytest.approx(
            candidate.evaluation.total_pages_accessed
        )
        assert candidate.io_requests == pytest.approx(
            candidate.evaluation.total_io_requests
        )

    def test_summary_matches_attributes(self, candidate):
        summary = candidate.summary()
        assert summary["fragmentation"] == candidate.label
        assert summary["fragments"] == candidate.fragment_count
        assert summary["io_cost_ms"] == pytest.approx(candidate.io_cost_ms)
        assert summary["allocation_scheme"] == candidate.allocation.scheme
        assert summary["prefetch_fact_pages"] == candidate.prefetch.fact_pages
        assert summary["dimensionality"] == 2

    def test_bitmap_storage_pages_positive(self, candidate):
        assert candidate.bitmap_storage_pages > 0

    def test_describe_mentions_label_and_metrics(self, candidate):
        text = candidate.describe()
        assert candidate.label in text
        assert "fragments" in text


class TestRetailIntegration:
    """End-to-end advisor run on the second (skewed) bundled dataset."""

    @pytest.fixture(scope="class")
    def recommendation(self):
        schema = retail_schema(scale=0.02)
        workload = retail_query_mix()
        system = SystemParameters(num_disks=32)
        advisor = Warlock(schema, workload, system, AdvisorConfig(max_fragments=100_000))
        return advisor.recommend()

    def test_ranking_produced(self, recommendation):
        assert len(recommendation.ranked) >= 1
        assert recommendation.best.fragment_count >= 32

    def test_skewed_candidates_get_greedy_allocation(self, recommendation):
        skewed = [
            candidate
            for candidate in recommendation.evaluated
            if candidate.layout.fragment_size_cv > 0.10
        ]
        assert skewed, "the retail dataset should produce skewed candidates"
        assert all(c.allocation.scheme == "greedy_size" for c in skewed)

    def test_uniform_candidates_get_round_robin(self, recommendation):
        uniform = [
            candidate
            for candidate in recommendation.evaluated
            if candidate.layout.fragment_size_cv <= 0.10
        ]
        assert uniform
        assert all(c.allocation.scheme == "round_robin" for c in uniform)

    def test_winner_uses_date_dimension(self, recommendation):
        # Every retail query class restricts the date dimension, so the winner
        # fragments on it.
        assert "date" in recommendation.best.spec.dimensions


class TestBaselineInclusion:
    def test_baseline_participates_when_requested(self, toy_schema, toy_workload, small_system):
        config = AdvisorConfig(
            include_baseline=True, max_fragments=10_000, top_fraction=1.0
        )
        advisor = Warlock(toy_schema, toy_workload, small_system, config)
        recommendation = advisor.recommend()
        labels = [candidate.label for candidate in recommendation.evaluated]
        assert "(unfragmented)" in labels
        # The baseline never wins under a parallel workload.
        assert recommendation.best.label != "(unfragmented)"

    def test_baseline_absent_by_default(self, toy_advisor):
        recommendation = toy_advisor.recommend()
        labels = [candidate.label for candidate in recommendation.evaluated]
        assert "(unfragmented)" not in labels
