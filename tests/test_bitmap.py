"""Unit tests for repro.bitmap: index types, sizing, scheme design and exclusion."""

from __future__ import annotations

import math

import pytest

from repro import BitmapIndex, BitmapScheme, BitmapType, design_bitmap_scheme
from repro.errors import BitmapError


class TestBitmapIndex:
    def test_standard_storage_linear_in_cardinality(self):
        index = BitmapIndex("channel", "channel", BitmapType.STANDARD, cardinality=9)
        assert index.storage_bits_per_row == 9

    def test_encoded_storage_logarithmic(self):
        index = BitmapIndex("product", "code", BitmapType.ENCODED, cardinality=9000)
        assert index.storage_bits_per_row == math.ceil(math.log2(9000))

    def test_encoded_cardinality_one(self):
        index = BitmapIndex("d", "l", BitmapType.ENCODED, cardinality=1)
        assert index.storage_bits_per_row == 1

    def test_standard_reads_value_count_bitmaps(self):
        index = BitmapIndex("time", "month", BitmapType.STANDARD, cardinality=24)
        assert index.bits_read_per_row(1) == 1
        assert index.bits_read_per_row(6) == 6

    def test_encoded_reads_all_slices(self):
        index = BitmapIndex("product", "code", BitmapType.ENCODED, cardinality=9000)
        assert index.bits_read_per_row(1) == index.storage_bits_per_row
        assert index.bits_read_per_row(50) == index.storage_bits_per_row

    def test_read_more_values_than_cardinality_rejected(self):
        index = BitmapIndex("time", "year", BitmapType.STANDARD, cardinality=2)
        with pytest.raises(BitmapError):
            index.bits_read_per_row(3)

    def test_storage_bytes_and_pages(self):
        index = BitmapIndex("channel", "channel", BitmapType.STANDARD, cardinality=8)
        # 8 bits per row -> 1 byte per row.
        assert index.storage_bytes(1000) == pytest.approx(1000)
        assert index.storage_pages(1000, 8192) == 1
        assert index.storage_pages(10_000, 8192) == 2

    def test_read_pages(self):
        index = BitmapIndex("channel", "channel", BitmapType.STANDARD, cardinality=8)
        assert index.read_pages(8192 * 8, 8192, value_count=1) == 1
        assert index.read_pages(0, 8192) == 0

    def test_for_attribute_heuristic(self, toy_schema):
        low = BitmapIndex.for_attribute(toy_schema, "store", "region", cardinality_threshold=64)
        high = BitmapIndex.for_attribute(toy_schema, "product", "item", cardinality_threshold=64)
        assert low.bitmap_type is BitmapType.STANDARD
        assert high.bitmap_type is BitmapType.ENCODED
        assert high.cardinality == 200

    def test_for_attribute_invalid_threshold(self, toy_schema):
        with pytest.raises(BitmapError):
            BitmapIndex.for_attribute(toy_schema, "time", "month", cardinality_threshold=0)

    def test_invalid_construction(self):
        with pytest.raises(BitmapError):
            BitmapIndex("", "l", BitmapType.STANDARD, 4)
        with pytest.raises(BitmapError):
            BitmapIndex("d", "l", BitmapType.STANDARD, 0)
        with pytest.raises(BitmapError):
            BitmapIndex("d", "l", "standard", 4)  # type: ignore[arg-type]

    def test_invalid_read_arguments(self):
        index = BitmapIndex("d", "l", BitmapType.STANDARD, 4)
        with pytest.raises(BitmapError):
            index.bits_read_per_row(0)
        with pytest.raises(BitmapError):
            index.storage_bytes(-1)
        with pytest.raises(BitmapError):
            index.read_pages(100, 0)

    def test_describe(self):
        text = BitmapIndex("time", "month", BitmapType.STANDARD, 24).describe()
        assert "time.month" in text and "standard" in text


class TestBitmapScheme:
    def make_scheme(self) -> BitmapScheme:
        return BitmapScheme(
            [
                BitmapIndex("time", "month", BitmapType.STANDARD, 24),
                BitmapIndex("product", "item", BitmapType.ENCODED, 200),
            ]
        )

    def test_lookup(self):
        scheme = self.make_scheme()
        assert scheme.index_for("time", "month") is not None
        assert scheme.index_for("time", "year") is None
        assert len(scheme.indexes_on("product")) == 1
        assert len(scheme) == 2
        assert not scheme.is_empty

    def test_as_mapping(self):
        mapping = self.make_scheme().as_mapping()
        assert ("time", "month") in mapping

    def test_storage_totals(self):
        scheme = self.make_scheme()
        assert scheme.total_storage_bits_per_row == 24 + 8
        assert scheme.storage_bytes(1000) == pytest.approx(1000 * 32 / 8)
        assert scheme.storage_pages(1000, 8192) >= 1

    def test_without(self):
        scheme = self.make_scheme().without(("time", "month"))
        assert scheme.index_for("time", "month") is None
        assert len(scheme) == 1

    def test_without_unknown(self):
        with pytest.raises(BitmapError):
            self.make_scheme().without(("time", "week"))

    def test_restricted_to(self):
        scheme = self.make_scheme().restricted_to(["product"])
        assert len(scheme) == 1
        assert scheme.indexes[0].dimension == "product"

    def test_duplicate_rejected(self):
        index = BitmapIndex("time", "month", BitmapType.STANDARD, 24)
        with pytest.raises(BitmapError):
            BitmapScheme([index, index])

    def test_empty_scheme(self):
        scheme = BitmapScheme()
        assert scheme.is_empty
        assert scheme.total_storage_bits_per_row == 0
        assert "none" in scheme.describe()

    def test_describe(self):
        text = self.make_scheme().describe()
        assert "time.month" in text and "bit(s) per fact row" in text


class TestDesignBitmapScheme:
    def test_covers_workload_attributes(self, toy_schema, toy_workload):
        scheme = design_bitmap_scheme(toy_schema, toy_workload)
        restricted = {
            (r.dimension, r.level)
            for qc in toy_workload
            for r in qc.restrictions
        }
        assert set(scheme.as_mapping()) == restricted

    def test_cardinality_threshold_switches_type(self, toy_schema, toy_workload):
        generous = design_bitmap_scheme(
            toy_schema, toy_workload, cardinality_threshold=1000
        )
        strict = design_bitmap_scheme(toy_schema, toy_workload, cardinality_threshold=1)
        assert all(i.bitmap_type is BitmapType.STANDARD for i in generous)
        assert all(i.bitmap_type is BitmapType.ENCODED for i in strict)

    def test_exclusion(self, toy_schema, toy_workload):
        scheme = design_bitmap_scheme(
            toy_schema, toy_workload, exclude=[("product", "item")]
        )
        assert scheme.index_for("product", "item") is None

    def test_deterministic_order(self, toy_schema, toy_workload):
        scheme_a = design_bitmap_scheme(toy_schema, toy_workload)
        scheme_b = design_bitmap_scheme(toy_schema, toy_workload)
        assert [i.describe() for i in scheme_a] == [i.describe() for i in scheme_b]

    def test_space_shrinks_with_exclusion(self, toy_schema, toy_workload):
        full = design_bitmap_scheme(toy_schema, toy_workload)
        reduced = design_bitmap_scheme(
            toy_schema, toy_workload, exclude=[("product", "item")]
        )
        assert (
            reduced.total_storage_bits_per_row < full.total_storage_bits_per_row
        )
