"""Unit tests for repro.workload: restrictions, query classes, mixes, generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro import DimensionRestriction, QueryClass, QueryMix
from repro.errors import WorkloadError
from repro.workload import drill_down_series, random_query_class, random_query_mix


class TestDimensionRestriction:
    def test_selectivity_point(self, toy_schema):
        restriction = DimensionRestriction("time", "month")
        assert restriction.selectivity(toy_schema) == pytest.approx(1 / 24)

    def test_selectivity_range(self, toy_schema):
        restriction = DimensionRestriction("time", "month", value_count=6)
        assert restriction.selectivity(toy_schema) == pytest.approx(0.25)

    def test_selectivity_exceeding_cardinality(self, toy_schema):
        restriction = DimensionRestriction("time", "year", value_count=5)
        with pytest.raises(WorkloadError):
            restriction.selectivity(toy_schema)

    def test_describe(self):
        assert "time.month" in DimensionRestriction("time", "month").describe()
        assert "2 values" in DimensionRestriction("time", "month", 2).describe()

    def test_invalid_construction(self):
        with pytest.raises(WorkloadError):
            DimensionRestriction("", "month")
        with pytest.raises(WorkloadError):
            DimensionRestriction("time", "")
        with pytest.raises(WorkloadError):
            DimensionRestriction("time", "month", 0)
        with pytest.raises(WorkloadError):
            DimensionRestriction("time", "month", value_count=2.5)  # type: ignore[arg-type]


class TestQueryClass:
    def test_accessors(self, toy_schema):
        query = QueryClass(
            name="q",
            restrictions=[
                DimensionRestriction("time", "month"),
                DimensionRestriction("product", "group"),
            ],
            weight=2.0,
        )
        assert query.accessed_dimensions == ("time", "product")
        assert query.restricts("time")
        assert not query.restricts("store")
        assert query.restriction_on("product").level == "group"
        assert query.restriction_on("store") is None
        assert set(query.restriction_map()) == {"time", "product"}

    def test_selectivity_is_product(self, toy_schema):
        query = QueryClass(
            name="q",
            restrictions=[
                DimensionRestriction("time", "month"),
                DimensionRestriction("product", "group"),
            ],
        )
        assert query.selectivity(toy_schema) == pytest.approx(1 / 24 / 10)

    def test_empty_restrictions_full_scan(self, toy_schema):
        query = QueryClass(name="scan", restrictions=[])
        assert query.selectivity(toy_schema) == 1.0
        assert "full fact table scan" in query.describe()

    def test_validate_ok(self, toy_schema):
        QueryClass(
            name="q", restrictions=[DimensionRestriction("time", "month")]
        ).validate(toy_schema)

    def test_validate_unknown_dimension(self, toy_schema):
        query = QueryClass(name="q", restrictions=[DimensionRestriction("ghost", "x")])
        with pytest.raises(WorkloadError):
            query.validate(toy_schema)

    def test_validate_unknown_level(self, toy_schema):
        query = QueryClass(name="q", restrictions=[DimensionRestriction("time", "week")])
        with pytest.raises(WorkloadError):
            query.validate(toy_schema)

    def test_validate_too_many_values(self, toy_schema):
        query = QueryClass(
            name="q", restrictions=[DimensionRestriction("time", "year", value_count=10)]
        )
        with pytest.raises(WorkloadError):
            query.validate(toy_schema)

    def test_invalid_construction(self):
        with pytest.raises(WorkloadError):
            QueryClass(name="", restrictions=[])
        with pytest.raises(WorkloadError):
            QueryClass(name="q", restrictions=[], weight=0)
        with pytest.raises(WorkloadError):
            QueryClass(
                name="q",
                restrictions=[
                    DimensionRestriction("time", "month"),
                    DimensionRestriction("time", "year"),
                ],
            )


class TestQueryMix:
    def test_shares_sum_to_one(self, toy_workload):
        assert sum(toy_workload.shares().values()) == pytest.approx(1.0)

    def test_share_proportional_to_weight(self, toy_workload):
        shares = toy_workload.shares()
        assert shares["monthly-by-group"] == pytest.approx(0.4)
        assert shares["yearly-report"] == pytest.approx(0.1)

    def test_lookup_and_iteration(self, toy_workload):
        assert toy_workload.query_class("item-tracking").weight == 2
        assert len(toy_workload) == 4
        assert {qc.name for qc in toy_workload} == set(toy_workload.shares())

    def test_lookup_unknown(self, toy_workload):
        with pytest.raises(WorkloadError):
            toy_workload.query_class("nope")

    def test_weighted_sum(self, toy_workload):
        constant = toy_workload.weighted_sum(lambda qc: 5.0)
        assert constant == pytest.approx(5.0)

    def test_dimension_access_shares(self, toy_workload):
        shares = toy_workload.dimension_access_shares()
        assert shares["time"] == pytest.approx(1.0)  # every class restricts time
        assert shares["store"] == pytest.approx(0.3)

    def test_level_access_shares(self, toy_workload):
        shares = toy_workload.level_access_shares()
        assert shares[("time", "month")] == pytest.approx(0.6)
        assert shares[("time", "year")] == pytest.approx(0.1)

    def test_validate(self, toy_schema, toy_workload):
        toy_workload.validate(toy_schema)

    def test_reweighted(self, toy_workload):
        reweighted = toy_workload.reweighted({"yearly-report": 10.0})
        assert reweighted.query_class("yearly-report").weight == 10.0
        # untouched classes keep their weight
        assert reweighted.query_class("item-tracking").weight == 2.0

    def test_without(self, toy_workload):
        smaller = toy_workload.without("yearly-report")
        assert len(smaller) == 3
        with pytest.raises(WorkloadError):
            smaller.query_class("yearly-report")

    def test_without_unknown(self, toy_workload):
        with pytest.raises(WorkloadError):
            toy_workload.without("ghost")

    def test_without_all_rejected(self, toy_workload):
        names = [qc.name for qc in toy_workload]
        with pytest.raises(WorkloadError):
            toy_workload.without(*names)

    def test_empty_mix_rejected(self):
        with pytest.raises(WorkloadError):
            QueryMix([])

    def test_duplicate_names_rejected(self, toy_workload):
        duplicate = list(toy_workload.classes) + [toy_workload.classes[0]]
        with pytest.raises(WorkloadError):
            QueryMix(duplicate)

    def test_describe_lists_classes(self, toy_workload):
        text = toy_workload.describe()
        for query_class in toy_workload:
            assert query_class.name in text


class TestGenerators:
    def test_random_query_class_valid(self, toy_schema):
        rng = np.random.default_rng(3)
        query = random_query_class(toy_schema, "rq", rng=rng)
        query.validate(toy_schema)
        assert 1 <= len(query.restrictions) <= 3

    def test_random_query_class_dimension_bounds(self, toy_schema):
        rng = np.random.default_rng(3)
        query = random_query_class(
            toy_schema, "rq", rng=rng, min_dimensions=2, max_dimensions=2
        )
        assert len(query.restrictions) == 2

    def test_random_query_class_invalid_bounds(self, toy_schema):
        with pytest.raises(WorkloadError):
            random_query_class(toy_schema, "rq", min_dimensions=0)
        with pytest.raises(WorkloadError):
            random_query_class(toy_schema, "rq", min_dimensions=5, max_dimensions=5)

    def test_random_query_mix_reproducible(self, toy_schema):
        mix_a = random_query_mix(toy_schema, num_classes=5, seed=11)
        mix_b = random_query_mix(toy_schema, num_classes=5, seed=11)
        assert [qc.describe() for qc in mix_a] == [qc.describe() for qc in mix_b]
        mix_a.validate(toy_schema)

    def test_random_query_mix_size(self, toy_schema):
        assert len(random_query_mix(toy_schema, num_classes=7, seed=0)) == 7
        with pytest.raises(WorkloadError):
            random_query_mix(toy_schema, num_classes=0)

    def test_drill_down_series(self, toy_schema):
        series = drill_down_series(toy_schema, "time")
        assert [qc.name for qc in series] == [
            "time-by-year",
            "time-by-quarter",
            "time-by-month",
        ]
        for query in series:
            query.validate(toy_schema)

    def test_drill_down_series_with_shared_restrictions(self, toy_schema):
        shared = [DimensionRestriction("product", "group")]
        series = drill_down_series(toy_schema, "time", other_restrictions=shared)
        for query in series:
            assert query.restricts("product")
            query.validate(toy_schema)
