"""Unit tests for repro.fragmentation.layout: shares, fragment sizes, indexing."""

from __future__ import annotations

import numpy as np
import pytest

from repro import FragmentationSpec, build_layout
from repro.errors import FragmentationError
from repro.fragmentation import dimension_row_shares


class TestDimensionRowShares:
    def test_uniform_without_skew(self, toy_schema):
        shares = dimension_row_shares(toy_schema.dimension("time"), "quarter")
        assert shares.shape == (8,)
        assert np.allclose(shares, 1 / 8)

    def test_bottom_level_matches_zipf(self, skewed_schema):
        product = skewed_schema.dimension("product")
        shares = dimension_row_shares(product, "item")
        zipf = product.skew.distribution(200).probabilities()
        assert np.allclose(shares, zipf)

    def test_aggregated_level_sums_to_one(self, skewed_schema):
        shares = dimension_row_shares(skewed_schema.dimension("product"), "group")
        assert shares.sum() == pytest.approx(1.0)
        assert shares.shape == (10,)

    def test_aggregation_preserves_skew_ordering(self, skewed_schema):
        shares = dimension_row_shares(skewed_schema.dimension("product"), "group")
        # Ranked zipf values are assigned contiguously, so the first group
        # (containing the most frequent items) carries the most rows.
        assert shares[0] == shares.max()
        assert shares[-1] == shares.min()

    def test_aggregation_consistency_with_bottom(self, skewed_schema):
        product = skewed_schema.dimension("product")
        bottom = dimension_row_shares(product, "item")
        grouped = dimension_row_shares(product, "group")
        # 200 items in 10 groups of 20: group share equals sum of its block.
        assert grouped[0] == pytest.approx(bottom[:20].sum())
        assert grouped[-1] == pytest.approx(bottom[-20:].sum())


class TestLayoutGeometry:
    def test_fragment_count_and_axes(self, toy_schema):
        spec = FragmentationSpec.of(("time", "quarter"), ("product", "group"))
        layout = build_layout(toy_schema, spec)
        assert layout.fragment_count == 80
        assert layout.axis_cardinalities == (8, 10)
        assert layout.axis_dimensions == ("time", "product")

    def test_unfragmented_layout(self, toy_schema):
        layout = build_layout(toy_schema, FragmentationSpec.none())
        assert layout.fragment_count == 1
        assert layout.fragment_rows[0] == pytest.approx(1_000_000)

    def test_flat_index_roundtrip(self, toy_schema):
        spec = FragmentationSpec.of(("time", "quarter"), ("product", "group"))
        layout = build_layout(toy_schema, spec)
        for flat in (0, 1, 9, 10, 79):
            coords = layout.coordinates(flat)
            assert layout.flat_index(coords) == flat

    def test_flat_index_validation(self, toy_schema):
        spec = FragmentationSpec.of(("time", "quarter"), ("product", "group"))
        layout = build_layout(toy_schema, spec)
        with pytest.raises(FragmentationError):
            layout.flat_index((0,))
        with pytest.raises(FragmentationError):
            layout.flat_index((8, 0))
        with pytest.raises(FragmentationError):
            layout.coordinates(80)

    def test_axis_index(self, toy_schema):
        spec = FragmentationSpec.of(("time", "quarter"), ("product", "group"))
        layout = build_layout(toy_schema, spec)
        assert layout.axis_index("time") == 0
        assert layout.axis_index("product") == 1
        with pytest.raises(FragmentationError):
            layout.axis_index("store")


class TestFragmentSizes:
    def test_rows_conserved(self, toy_schema):
        spec = FragmentationSpec.of(("time", "month"), ("store", "region"))
        layout = build_layout(toy_schema, spec)
        assert layout.fragment_rows.sum() == pytest.approx(1_000_000)

    def test_rows_conserved_under_skew(self, skewed_schema):
        spec = FragmentationSpec.of(("product", "item"), ("time", "quarter"))
        layout = build_layout(skewed_schema, spec)
        assert layout.fragment_rows.sum() == pytest.approx(1_000_000)

    def test_uniform_fragments_equal(self, toy_schema):
        spec = FragmentationSpec.of(("time", "quarter"))
        layout = build_layout(toy_schema, spec)
        assert layout.fragment_size_cv == pytest.approx(0.0, abs=1e-12)
        assert layout.min_fragment_pages == layout.max_fragment_pages

    def test_skewed_fragments_differ(self, skewed_schema):
        spec = FragmentationSpec.of(("product", "group"))
        layout = build_layout(skewed_schema, spec)
        assert layout.fragment_size_cv > 0.1
        assert layout.max_fragment_pages > layout.min_fragment_pages

    def test_page_counts_consistent_with_rows(self, toy_schema):
        spec = FragmentationSpec.of(("time", "quarter"), ("product", "group"))
        layout = build_layout(toy_schema, spec, page_size_bytes=8192)
        rows_per_page = layout.rows_per_page
        expected = np.ceil(layout.fragment_rows / rows_per_page)
        assert np.array_equal(layout.fragment_fact_pages, expected.astype(np.int64))

    def test_total_pages_at_least_unfragmented(self, toy_schema):
        base = build_layout(toy_schema, FragmentationSpec.none())
        fine = build_layout(
            toy_schema, FragmentationSpec.of(("time", "month"), ("product", "item"))
        )
        # Per-fragment rounding can only add pages.
        assert fine.total_fact_pages >= base.total_fact_pages

    def test_average_and_extremes(self, toy_schema):
        spec = FragmentationSpec.of(("time", "quarter"))
        layout = build_layout(toy_schema, spec)
        assert layout.average_fragment_pages == pytest.approx(
            layout.total_fact_pages / layout.fragment_count
        )
        assert layout.min_fragment_pages <= layout.average_fragment_pages
        assert layout.average_fragment_pages <= layout.max_fragment_pages

    def test_describe(self, toy_schema):
        layout = build_layout(toy_schema, FragmentationSpec.of(("time", "quarter")))
        text = layout.describe()
        assert "8 fragments" in text


class TestBuildLayoutGuards:
    def test_max_fragments_guard(self, toy_schema):
        spec = FragmentationSpec.of(("time", "month"), ("product", "item"))
        with pytest.raises(FragmentationError):
            build_layout(toy_schema, spec, max_fragments=100)

    def test_invalid_spec_rejected(self, toy_schema):
        with pytest.raises(FragmentationError):
            build_layout(toy_schema, FragmentationSpec.of(("ghost", "x")))

    def test_invalid_page_size(self, toy_schema):
        with pytest.raises(FragmentationError):
            build_layout(
                toy_schema, FragmentationSpec.of(("time", "quarter")), page_size_bytes=0
            )
