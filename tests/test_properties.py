"""Property-based tests (hypothesis) on the core invariants of the library.

The invariants checked here are the ones the advisor silently relies on:
distribution normalization, row conservation under fragmentation, bounds of the
estimation formulas, allocation completeness/balance, and the confinement
guarantee of MDHF access estimation.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    Dimension,
    DimensionRestriction,
    FactTable,
    FragmentationSpec,
    Level,
    QueryClass,
    SkewSpec,
    StarSchema,
    SystemParameters,
    build_layout,
    greedy_size_allocation,
    round_robin_allocation,
)
from repro.bitmap import BitmapScheme
from repro.costmodel import (
    cardenas_pages,
    estimate_access,
    expected_distinct_ancestors,
    yao_pages,
)
from repro.skew import ZipfDistribution, coefficient_of_variation, zipf_probabilities
from repro.storage import DiskParameters, PrefetchSetting, optimal_prefetch_pages

PREFETCH = PrefetchSetting.fixed(8, 2)


# ---------------------------------------------------------------------------
# Skew distributions
# ---------------------------------------------------------------------------

@given(n=st.integers(1, 2000), theta=st.floats(0.0, 3.0, allow_nan=False))
def test_zipf_probabilities_normalized_and_sorted(n, theta):
    probs = zipf_probabilities(n, theta)
    assert probs.shape == (n,)
    assert probs.sum() == pytest.approx(1.0)
    assert np.all(probs > 0)
    assert np.all(np.diff(probs) <= 1e-15)


@given(
    n=st.integers(1, 500),
    theta=st.floats(0.0, 2.5, allow_nan=False),
    total=st.integers(0, 1_000_000),
)
def test_zipf_counts_conserve_total(n, theta, total):
    counts = ZipfDistribution(n=n, theta=theta).counts(total)
    assert counts.sum() == total
    assert np.all(counts >= 0)


@given(values=st.lists(st.floats(0.0, 1e9, allow_nan=False), min_size=1, max_size=50))
def test_cv_non_negative(values):
    assert coefficient_of_variation(values) >= 0.0


# ---------------------------------------------------------------------------
# Estimation formulas
# ---------------------------------------------------------------------------

@given(
    pages=st.integers(1, 10_000),
    rows_per_page=st.integers(1, 500),
    selected=st.integers(0, 100_000),
)
def test_cardenas_bounds(pages, rows_per_page, selected):
    rows = pages * rows_per_page
    touched = cardenas_pages(rows, pages, selected)
    assert 0.0 <= touched <= pages
    if selected > 0:
        assert touched > 0


@given(
    pages=st.integers(1, 500),
    rows_per_page=st.integers(1, 50),
    selected=st.integers(0, 2_000),
)
def test_yao_bounds_and_dominates_nothing(pages, rows_per_page, selected):
    rows = pages * rows_per_page
    touched = yao_pages(rows, pages, selected)
    assert 0.0 <= touched <= pages
    # Selecting everything touches everything.
    if selected >= rows:
        assert touched == pytest.approx(pages)


@given(
    fine=st.integers(1, 10_000),
    ratio=st.integers(1, 100),
    selected=st.integers(0, 10_000),
)
def test_expected_ancestors_bounds(fine, ratio, selected):
    coarse = max(1, fine // ratio)
    value = expected_distinct_ancestors(selected, fine, coarse)
    assert 0.0 <= value <= coarse
    if selected >= 1:
        assert value >= min(1.0, float(coarse)) - 1e-9


@given(
    runs=st.lists(st.floats(0.0, 5000.0, allow_nan=False), min_size=1, max_size=8),
)
def test_optimal_prefetch_within_candidate_range(runs):
    granule = optimal_prefetch_pages(runs, DiskParameters(), 8192)
    assert 1 <= granule <= 512


# ---------------------------------------------------------------------------
# Fragmentation layouts
# ---------------------------------------------------------------------------

def _schema(card_a, card_b, theta, rows):
    dim_a = Dimension(
        "a",
        [Level("a_top", max(1, card_a // 4) or 1), Level("a_bottom", card_a)],
        skew=SkewSpec(theta=theta),
    )
    dim_b = Dimension("b", [Level("b_bottom", card_b)])
    fact = FactTable("facts", rows, 64, ("a", "b"))
    return StarSchema("prop", (dim_a, dim_b), (fact,))


@settings(deadline=None, max_examples=50)
@given(
    card_a=st.integers(4, 64),
    card_b=st.integers(1, 32),
    theta=st.floats(0.0, 2.0, allow_nan=False),
    rows=st.integers(1_000, 2_000_000),
)
def test_layout_conserves_rows_and_counts(card_a, card_b, theta, rows):
    schema = _schema(card_a, card_b, theta, rows)
    spec = FragmentationSpec.of(("a", "a_bottom"), ("b", "b_bottom"))
    layout = build_layout(schema, spec)
    assert layout.fragment_count == card_a * card_b
    assert layout.fragment_rows.sum() == pytest.approx(rows, rel=1e-9)
    assert np.all(layout.fragment_rows >= 0)
    assert layout.total_fact_pages >= schema.fact_table().pages(8192)
    assert layout.min_fragment_pages <= layout.max_fragment_pages


@settings(deadline=None, max_examples=50)
@given(
    card_a=st.integers(4, 64),
    theta=st.floats(0.0, 2.0, allow_nan=False),
    rows=st.integers(1_000, 500_000),
)
def test_coarser_level_aggregates_bottom_shares(card_a, theta, rows):
    schema = _schema(card_a, 8, theta, rows)
    bottom = build_layout(schema, FragmentationSpec.of(("a", "a_bottom")))
    top = build_layout(schema, FragmentationSpec.of(("a", "a_top")))
    assert bottom.fragment_rows.sum() == pytest.approx(top.fragment_rows.sum())
    # The largest coarse fragment is at least as big as the largest fine one.
    assert top.fragment_rows.max() >= bottom.fragment_rows.max() - 1e-9


# ---------------------------------------------------------------------------
# Allocation invariants
# ---------------------------------------------------------------------------

@settings(deadline=None, max_examples=40)
@given(
    card_a=st.integers(4, 48),
    card_b=st.integers(1, 16),
    theta=st.floats(0.0, 2.0, allow_nan=False),
    disks=st.integers(1, 64),
)
def test_allocations_place_every_fragment_exactly_once(card_a, card_b, theta, disks):
    schema = _schema(card_a, card_b, theta, 200_000)
    layout = build_layout(schema, FragmentationSpec.of(("a", "a_bottom"), ("b", "b_bottom")))
    system = SystemParameters(num_disks=disks)
    for allocation in (
        round_robin_allocation(layout, system),
        greedy_size_allocation(layout, system),
    ):
        assert allocation.disk_of_fragment.shape == (layout.fragment_count,)
        assert allocation.occupancy_pages.sum() == pytest.approx(allocation.total_pages)
        assert int(allocation.fragments_per_disk.sum()) == layout.fragment_count
        assert allocation.occupancy_pages.min() >= 0


@settings(deadline=None, max_examples=40)
@given(
    card_a=st.integers(8, 64),
    theta=st.floats(0.0, 2.0, allow_nan=False),
    disks=st.integers(2, 32),
)
def test_greedy_never_worse_than_round_robin_on_imbalance(card_a, theta, disks):
    schema = _schema(card_a, 4, theta, 400_000)
    layout = build_layout(schema, FragmentationSpec.of(("a", "a_bottom"), ("b", "b_bottom")))
    system = SystemParameters(num_disks=disks)
    greedy = greedy_size_allocation(layout, system)
    round_robin = round_robin_allocation(layout, system)
    assert greedy.max_occupancy_pages <= round_robin.max_occupancy_pages + 1e-9


# ---------------------------------------------------------------------------
# MDHF access estimation invariants
# ---------------------------------------------------------------------------

@settings(deadline=None, max_examples=40)
@given(
    card_a=st.integers(4, 48),
    card_b=st.integers(2, 24),
    value_count=st.integers(1, 4),
)
def test_confinement_when_fragmentation_dimension_restricted(card_a, card_b, value_count):
    schema = _schema(card_a, card_b, 0.0, 300_000)
    layout = build_layout(schema, FragmentationSpec.of(("a", "a_bottom")))
    query = QueryClass(
        "q", [DimensionRestriction("a", "a_bottom", value_count=min(value_count, card_a))]
    )
    profile = estimate_access(layout, query, BitmapScheme(), PREFETCH)
    # Confinement: the query touches exactly the selected slices, never more.
    assert profile.fragments_accessed <= min(value_count, card_a) + 1e-9
    assert profile.fragments_accessed >= 1.0
    assert profile.fact_pages_accessed <= layout.total_fact_pages + 1e-6
    assert profile.qualifying_rows <= profile.rows_in_accessed_fragments + 1e-6


@settings(deadline=None, max_examples=40)
@given(card_a=st.integers(4, 48), card_b=st.integers(2, 24))
def test_unrestricted_queries_touch_all_fragments(card_a, card_b):
    schema = _schema(card_a, card_b, 0.0, 300_000)
    layout = build_layout(schema, FragmentationSpec.of(("a", "a_bottom"), ("b", "b_bottom")))
    query = QueryClass("scan", [])
    profile = estimate_access(layout, query, BitmapScheme(), PREFETCH)
    assert profile.fragments_accessed == pytest.approx(layout.fragment_count)
    assert profile.fact_pages_accessed == pytest.approx(
        float(layout.fragment_fact_pages.sum()), rel=1e-6
    )


# ---------------------------------------------------------------------------
# Access path selection invariants
# ---------------------------------------------------------------------------

@settings(deadline=None, max_examples=40)
@given(
    card_a=st.integers(8, 64),
    card_b=st.integers(8, 5000),
    value_count=st.integers(1, 3),
    rows=st.integers(50_000, 2_000_000),
)
def test_bitmap_plan_never_worse_than_scan_plan(card_a, card_b, value_count, rows):
    """With indexes available, the chosen plan never reads more pages than a scan.

    The access path selection must make bitmap indexes a safe addition: either
    the bitmap-driven plan is adopted because it reads less, or the estimator
    falls back to the plain fragment scan.
    """
    from repro.bitmap import BitmapIndex, BitmapType

    schema = _schema(card_a, card_b, 0.0, rows)
    layout = build_layout(schema, FragmentationSpec.of(("a", "a_bottom")))
    scheme = BitmapScheme(
        [BitmapIndex("b", "b_bottom", BitmapType.ENCODED, card_b)]
    )
    query = QueryClass(
        "q", [DimensionRestriction("b", "b_bottom", value_count=min(value_count, card_b))]
    )
    with_bitmaps = estimate_access(layout, query, scheme, PREFETCH)
    scan_only = estimate_access(layout, query, BitmapScheme(), PREFETCH)
    # Fragment confinement is identical; only the within-fragment plan differs.
    assert with_bitmaps.fragments_accessed == pytest.approx(scan_only.fragments_accessed)
    # The chosen plan's total data volume never exceeds the scan plan's.
    total_with = with_bitmaps.fact_pages_accessed + with_bitmaps.bitmap_pages_accessed
    total_scan = scan_only.fact_pages_accessed
    assert total_with <= total_scan * 1.001 + 2.0
    # When the bitmap plan is adopted it actually reads fewer fact pages.
    if with_bitmaps.bitmap_attributes_used:
        assert with_bitmaps.fact_pages_accessed < scan_only.fact_pages_accessed
