"""Unit tests for repro.tuning: what-if studies over a fixed fragmentation."""

from __future__ import annotations

import pytest

from repro import (
    AdvisorConfig,
    Dimension,
    FactTable,
    FragmentationSpec,
    Level,
    SkewSpec,
    StarSchema,
    architecture_study,
    bitmap_exclusion_study,
    disk_count_study,
    prefetch_study,
    skew_study,
    workload_weight_study,
)
from repro.errors import AdvisorError
from repro.tuning import TuningStudy

SPEC = FragmentationSpec.of(("time", "month"), ("store", "region"))
CONFIG = AdvisorConfig(max_fragments=50_000)


class TestTuningStudyObject:
    def make_study(self) -> TuningStudy:
        return TuningStudy(
            name="demo",
            parameter="setting",
            records=(
                ("a", {"io_cost_ms": 10.0, "response_time_ms": 5.0, "pages_accessed": 1,
                       "io_requests": 1, "bitmap_pages": 0, "occupancy_cv": 0.0,
                       "allocation_scheme": "round_robin"}),
                ("b", {"io_cost_ms": 8.0, "response_time_ms": 7.0, "pages_accessed": 1,
                       "io_requests": 1, "bitmap_pages": 0, "occupancy_cv": 0.0,
                       "allocation_scheme": "round_robin"}),
            ),
        )

    def test_settings_and_lookup(self):
        study = self.make_study()
        assert study.settings == ["a", "b"]
        assert study.metrics_for("b")["io_cost_ms"] == 8.0
        with pytest.raises(AdvisorError):
            study.metrics_for("c")

    def test_best_setting_per_metric(self):
        study = self.make_study()
        assert study.best_setting("response_time_ms") == "a"
        assert study.best_setting("io_cost_ms") == "b"

    def test_series(self):
        study = self.make_study()
        assert study.series("io_cost_ms") == [("a", 10.0), ("b", 8.0)]

    def test_format_contains_settings(self):
        text = self.make_study().format()
        assert "demo" in text and "a" in text and "b" in text

    def test_empty_records_rejected(self):
        with pytest.raises(AdvisorError):
            TuningStudy(name="x", parameter="p", records=())

    def test_best_setting_requires_numeric_metric(self):
        study = self.make_study()
        with pytest.raises(AdvisorError):
            study.best_setting("allocation_scheme")


class TestDiskCountStudy:
    def test_response_improves_with_disks(self, toy_schema, toy_workload, small_system):
        study = disk_count_study(
            toy_schema, toy_workload, small_system, SPEC, disk_counts=(2, 8, 32), config=CONFIG
        )
        series = dict(study.series("response_time_ms"))
        assert series["2"] > series["32"]
        io_series = dict(study.series("io_cost_ms"))
        assert io_series["2"] == pytest.approx(io_series["32"])
        assert study.best_setting("response_time_ms") == "32"

    def test_empty_counts_rejected(self, toy_schema, toy_workload, small_system):
        with pytest.raises(AdvisorError):
            disk_count_study(
                toy_schema, toy_workload, small_system, SPEC, disk_counts=(), config=CONFIG
            )


class TestArchitectureStudy:
    def test_both_architectures_present(self, toy_schema, toy_workload, small_system):
        study = architecture_study(toy_schema, toy_workload, small_system, SPEC, config=CONFIG)
        assert set(study.settings) == {"shared_everything", "shared_disk"}
        # SE pays less coordination overhead, so it cannot be slower.
        se = study.metrics_for("shared_everything")["response_time_ms"]
        sd = study.metrics_for("shared_disk")["response_time_ms"]
        assert se <= sd


class TestPrefetchStudy:
    def test_auto_at_least_as_good_as_single_page(self, toy_schema, toy_workload, small_system):
        study = prefetch_study(
            toy_schema,
            toy_workload,
            small_system,
            SPEC,
            fact_granules=(1, 16, "auto"),
            config=CONFIG,
        )
        responses = dict(study.series("response_time_ms"))
        assert responses["auto"] <= responses["1 pages"]
        auto_record = study.metrics_for("auto")
        assert auto_record["resolved_fact_granule"] >= 1

    def test_empty_granules_rejected(self, toy_schema, toy_workload, small_system):
        with pytest.raises(AdvisorError):
            prefetch_study(
                toy_schema, toy_workload, small_system, SPEC, fact_granules=(), config=CONFIG
            )


class TestBitmapExclusionStudy:
    def test_exclusion_saves_space_costs_io(self, toy_schema, toy_workload, small_system):
        study = bitmap_exclusion_study(
            toy_schema,
            toy_workload,
            small_system,
            SPEC,
            exclusions=((), (("product", "item"),)),
            config=CONFIG,
        )
        full = study.metrics_for("all suggested indexes")
        slim = study.metrics_for("without product.item")
        assert slim["bitmap_pages"] < full["bitmap_pages"]
        assert slim["io_cost_ms"] >= full["io_cost_ms"] - 1e-9

    def test_empty_exclusions_rejected(self, toy_schema, toy_workload, small_system):
        with pytest.raises(AdvisorError):
            bitmap_exclusion_study(
                toy_schema, toy_workload, small_system, SPEC, exclusions=(), config=CONFIG
            )


class TestSkewStudy:
    @staticmethod
    def schema_factory(theta: float) -> StarSchema:
        time = Dimension("time", [Level("year", 2), Level("quarter", 8), Level("month", 24)])
        product = Dimension(
            "product", [Level("group", 10), Level("item", 200)], skew=SkewSpec(theta=theta)
        )
        store = Dimension("store", [Level("region", 4), Level("store", 40)])
        fact = FactTable("sales", 1_000_000, 64, ("time", "product", "store"))
        return StarSchema("toy", (time, product, store), (fact,))

    def test_allocation_switches_under_skew(self, toy_workload, small_system):
        spec = FragmentationSpec.of(("product", "item"), ("time", "quarter"))
        study = skew_study(
            self.schema_factory,
            toy_workload,
            small_system,
            spec,
            thetas=(0.0, 1.0),
            config=CONFIG,
        )
        assert study.metrics_for("0.00")["allocation_scheme"] == "round_robin"
        assert study.metrics_for("1.00")["allocation_scheme"] == "greedy_size"

    def test_empty_thetas_rejected(self, toy_workload, small_system):
        with pytest.raises(AdvisorError):
            skew_study(
                self.schema_factory, toy_workload, small_system, SPEC, thetas=(), config=CONFIG
            )


class TestWorkloadWeightStudy:
    def test_baseline_plus_variants(self, toy_schema, toy_workload, small_system):
        study = workload_weight_study(
            toy_schema,
            toy_workload,
            small_system,
            SPEC,
            reweightings={"reporting-heavy": {"yearly-report": 100.0}},
            config=CONFIG,
        )
        assert study.settings[0] == "baseline"
        baseline = study.metrics_for("baseline")["io_cost_ms"]
        shifted = study.metrics_for("reporting-heavy")["io_cost_ms"]
        # The yearly report scans widely, so boosting it increases the weighted I/O cost.
        assert shifted > baseline
