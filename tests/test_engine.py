"""Tests for the candidate-evaluation engine (repro.engine)."""

from __future__ import annotations

import pickle

import pytest

from repro import AdvisorConfig, EngineOptions, Warlock
from repro.engine import (
    EvaluationCache,
    EvaluationEngine,
    EvaluationPlan,
    layout_signature,
    object_signature,
)
from repro.engine.executor import MIN_SPECS_FOR_PARALLEL, evaluate_spec_in_context
from repro.errors import AdvisorError
from repro.fragmentation import build_layout


class TestEvaluationPlan:
    def test_expands_candidate_by_query_units(self, toy_advisor):
        specs, _ = toy_advisor.generate_specs()
        plan = EvaluationPlan.build(specs, toy_advisor.workload, toy_advisor.schema)
        assert plan.num_candidates == len(specs)
        assert plan.num_units == len(specs) * len(plan.query_names)
        assert plan.query_names == tuple(
            query.name for query, _ in toy_advisor.workload.weighted_items()
        )
        # Units enumerate specs in order, query classes within each spec.
        unit = plan.units[0]
        assert (unit.spec_index, unit.query_index) == (0, 0)
        assert plan.units[len(plan.query_names)].spec_index == 1

    def test_units_for_spec(self, toy_advisor):
        specs, _ = toy_advisor.generate_specs()
        plan = EvaluationPlan.build(specs, toy_advisor.workload, toy_advisor.schema)
        units = plan.units_for_spec(1)
        assert len(units) == len(plan.query_names)
        assert {unit.spec_index for unit in units} == {1}
        assert [unit.query_name for unit in units] == list(plan.query_names)
        with pytest.raises(AdvisorError):
            plan.units_for_spec(len(specs))

    def test_unit_cost_estimates_match_fragment_counts(self, toy_advisor):
        specs, _ = toy_advisor.generate_specs()
        plan = EvaluationPlan.build(specs, toy_advisor.workload, toy_advisor.schema)
        for spec, cost in zip(plan.specs, plan.spec_costs):
            assert cost == spec.fragment_count(toy_advisor.schema)

    def test_partition_covers_all_specs_exactly_once(self, toy_advisor):
        specs, _ = toy_advisor.generate_specs()
        plan = EvaluationPlan.build(specs, toy_advisor.workload, toy_advisor.schema)
        for jobs in (1, 2, 3, 7, len(specs) + 5):
            chunks = plan.partition(jobs)
            flat = sorted(index for chunk in chunks for index in chunk)
            assert flat == list(range(len(specs)))
            assert len(chunks) <= jobs
            assert all(chunk == sorted(chunk) for chunk in chunks)

    def test_partition_is_deterministic_and_balanced(self, toy_advisor):
        specs, _ = toy_advisor.generate_specs()
        plan = EvaluationPlan.build(specs, toy_advisor.workload, toy_advisor.schema)
        assert plan.partition(4) == plan.partition(4)
        loads = [
            sum(max(1, plan.spec_costs[index]) for index in chunk)
            for chunk in plan.partition(2)
        ]
        # LPT keeps the two loads within the largest single item of each other.
        assert abs(loads[0] - loads[1]) <= max(
            max(1, cost) for cost in plan.spec_costs
        )

    def test_axis_groups_group_by_structure_and_split_on_max_size(self, toy_advisor):
        specs, _ = toy_advisor.generate_specs()
        plan = EvaluationPlan.build(specs, toy_advisor.workload, toy_advisor.schema)
        groups = plan.axis_groups()
        flat = sorted(index for group in groups for index in group)
        assert flat == list(range(len(specs)))
        for group in groups:
            structures = {plan.specs[index].axis_structure for index in group}
            assert len(structures) == 1
            assert group == sorted(group)
        # Splitting bounds the chunk size but keeps chunks group-pure.
        split = plan.axis_groups(max_size=1)
        assert all(len(chunk) == 1 for chunk in split)
        assert sorted(index for chunk in split for index in chunk) == flat

    def test_grouped_partition_splits_a_dominant_group_across_workers(self):
        from repro import synthetic_schema
        from repro.fragmentation import FragmentationSpec
        from repro.workload.generator import random_query_mix

        schema = synthetic_schema(
            num_dimensions=3, levels_per_dimension=3, bottom_cardinality=60
        )
        workload = random_query_mix(schema, num_classes=3, seed=1)
        # Every spec fragments dim0 (one axis structure): without group
        # splitting the whole sweep would land on a single worker.
        specs = [
            FragmentationSpec.of(("dim0", f"d0_l{level}")) for level in range(3)
        ]
        plan = EvaluationPlan.build(specs, workload, schema)
        assert len(plan.axis_groups()) == 1
        chunks = plan.partition_indices(range(len(specs)), 2, by_axis_structure=True)
        assert len(chunks) == 2
        assert sorted(index for chunk in chunks for index in chunk) == [0, 1, 2]

    def test_partition_rejects_nonpositive_jobs(self, toy_advisor):
        specs, _ = toy_advisor.generate_specs()
        plan = EvaluationPlan.build(specs, toy_advisor.workload, toy_advisor.schema)
        with pytest.raises(AdvisorError):
            plan.partition(0)

    def test_empty_specs_rejected(self, toy_advisor):
        with pytest.raises(AdvisorError):
            EvaluationPlan.build([], toy_advisor.workload, toy_advisor.schema)

    def test_describe_mentions_shape(self, toy_advisor):
        specs, _ = toy_advisor.generate_specs()
        plan = EvaluationPlan.build(specs, toy_advisor.workload, toy_advisor.schema)
        text = plan.describe()
        assert str(plan.num_candidates) in text
        assert str(plan.num_units) in text


class TestSignatures:
    def test_equal_content_same_signature(self, toy_schema, toy_workload):
        queries = [query for query, _ in toy_workload.weighted_items()]
        assert object_signature(queries[0]) == object_signature(queries[0])
        # A structurally identical rebuild gets the same signature.
        rebuilt = [query for query, _ in toy_workload.weighted_items()]
        assert object_signature(queries[1]) == object_signature(rebuilt[1])

    def test_different_content_different_signature(self, toy_workload):
        queries = [query for query, _ in toy_workload.weighted_items()]
        assert object_signature(queries[0]) != object_signature(queries[1])

    def test_layout_signature_ignores_cached_arrays(self, toy_schema, toy_advisor):
        specs, _ = toy_advisor.generate_specs()
        layout_a = build_layout(toy_schema, specs[0])
        signature_before = layout_signature(layout_a)
        layout_a.fragment_rows  # materialize the cached arrays
        assert layout_signature(layout_a) == signature_before
        layout_b = build_layout(toy_schema, specs[0])
        assert layout_signature(layout_b) == signature_before
        layout_c = build_layout(toy_schema, specs[1])
        assert layout_signature(layout_c) != signature_before

    def test_layout_pickle_drops_cached_arrays(self, toy_schema, toy_advisor):
        specs, _ = toy_advisor.generate_specs()
        layout = build_layout(toy_schema, specs[0])
        layout.fragment_rows
        layout.fragment_fact_pages
        clone = pickle.loads(pickle.dumps(layout))
        assert "fragment_rows" not in clone.__dict__
        assert clone.fragment_count == layout.fragment_count
        assert clone.fragment_rows.tolist() == layout.fragment_rows.tolist()


class TestEvaluationCache:
    def test_structure_reuse_counts_hits(self, toy_advisor):
        """Scalar path: run-length and evaluation passes share every structure."""
        cache = EvaluationCache()
        advisor = Warlock(
            toy_advisor.schema,
            toy_advisor.workload,
            toy_advisor.system,
            toy_advisor.config,
            cache=cache,
            options=EngineOptions(vectorize=False),
        )
        specs, _ = advisor.generate_specs()
        advisor.evaluate_spec(specs[0])
        # The run-length pass and the evaluation pass share every structure.
        classes = len(advisor.workload)
        assert cache.stats.structure_misses == classes
        assert cache.stats.structure_hits == classes
        assert cache.stats.candidate_misses == 1
        advisor.evaluate_spec(specs[0])
        # The repeat is answered entirely by the candidate-level entry.
        assert cache.stats.candidate_hits == 1
        assert cache.stats.structure_misses == classes

    def test_structure_batch_reuse_counts_hits(self, toy_advisor):
        """Vectorized path: one batch entry per layout plays the same role."""
        cache = EvaluationCache()
        advisor = Warlock(
            toy_advisor.schema,
            toy_advisor.workload,
            toy_advisor.system,
            toy_advisor.config,
            cache=cache,
        )
        specs, _ = advisor.generate_specs()
        advisor.evaluate_spec(specs[0])
        # One batch covers all classes: a single miss, no per-class entries.
        assert cache.stats.structure_misses == 1
        assert cache.stats.candidate_misses == 1
        advisor.evaluate_spec(specs[0])
        # The repeat is answered entirely by the candidate-level entry.
        assert cache.stats.candidate_hits == 1
        assert cache.stats.structure_misses == 1

    def test_disabled_cache_evaluates_identically(self, toy_advisor):
        specs, _ = toy_advisor.generate_specs()
        cached = toy_advisor.evaluate_spec(specs[0])
        uncached_advisor = Warlock(
            toy_advisor.schema,
            toy_advisor.workload,
            toy_advisor.system,
            toy_advisor.config,
            options=EngineOptions(cache=False),
        )
        assert uncached_advisor.cache is None
        # cache=False propagates to the engine: nothing is memoized anywhere.
        assert uncached_advisor.engine().cache is None
        uncached = uncached_advisor.evaluate_spec(specs[0])
        assert uncached.io_cost_ms == cached.io_cost_ms
        assert uncached.response_time_ms == cached.response_time_ms

    def test_cache_false_recommend_never_memoizes(self, toy_schema, toy_workload, small_system):
        advisor = Warlock(
            toy_schema,
            toy_workload,
            small_system,
            AdvisorConfig(max_fragments=10_000, top_candidates=5),
            options=EngineOptions(cache=False),
        )
        advisor.recommend()
        assert advisor.cache is None

    def test_reweighted_workload_reuses_structures(self, toy_advisor):
        """Structures are weight-independent: reweighting must not miss."""
        cache = toy_advisor.cache
        specs, _ = toy_advisor.generate_specs()
        toy_advisor.evaluate_spec(specs[0])
        misses_before = cache.stats.structure_misses
        reweighted = toy_advisor.workload.reweighted(
            {next(iter(toy_advisor.workload)).name: 10.0}
        )
        heavy = Warlock(
            toy_advisor.schema,
            reweighted,
            toy_advisor.system,
            toy_advisor.config,
            cache=cache,
        )
        heavy.evaluate_spec(specs[0])
        assert cache.stats.structure_misses == misses_before

    def test_max_entries_bounds_the_store(self, toy_advisor):
        cache = EvaluationCache(max_entries=3)
        advisor = Warlock(
            toy_advisor.schema,
            toy_advisor.workload,
            toy_advisor.system,
            toy_advisor.config,
            cache=cache,
        )
        specs, _ = advisor.generate_specs()
        advisor.evaluate_spec(specs[0])
        advisor.evaluate_spec(specs[1])
        assert len(cache._structures) <= 3
        assert len(cache._candidates) <= 3

    def test_max_entries_validation(self):
        with pytest.raises(ValueError):
            EvaluationCache(max_entries=0)

    def test_clear_and_reset(self, toy_advisor):
        cache = toy_advisor.cache
        specs, _ = toy_advisor.generate_specs()
        toy_advisor.evaluate_spec(specs[0])
        assert len(cache) > 0
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.lookups > 0
        cache.reset_stats()
        assert cache.stats.lookups == 0

    def test_hit_rate_zero_when_unused(self):
        assert EvaluationCache().stats.hit_rate == 0.0
        assert "hits" in EvaluationCache().stats.describe()


class TestEvaluationEngine:
    def test_rejects_nonpositive_jobs(self, toy_schema, toy_workload, small_system):
        with pytest.raises(AdvisorError):
            EngineOptions(jobs=0)
        # The deprecated kwarg validates before it warns: same error.
        with pytest.raises(AdvisorError):
            EvaluationEngine(toy_schema, toy_workload, small_system, jobs=0)
        with pytest.raises(AdvisorError):
            Warlock(toy_schema, toy_workload, small_system, jobs=0)

    def test_serial_matches_advisor_evaluate_spec(self, toy_advisor):
        specs, _ = toy_advisor.generate_specs()
        engine = toy_advisor.engine()
        candidates = engine.evaluate_specs(specs[:3])
        for spec, candidate in zip(specs[:3], candidates):
            reference = toy_advisor.evaluate_spec(spec)
            assert candidate.label == reference.label == spec.label
            assert candidate.io_cost_ms == reference.io_cost_ms
            assert candidate.response_time_ms == reference.response_time_ms
            assert candidate.prefetch == reference.prefetch

    def test_preserves_spec_order(self, toy_advisor):
        specs, _ = toy_advisor.generate_specs()
        reversed_specs = list(reversed(specs))
        candidates = toy_advisor.engine().evaluate_specs(reversed_specs)
        assert [c.label for c in candidates] == [s.label for s in reversed_specs]

    def test_small_sweeps_stay_serial(self, toy_advisor):
        specs, _ = toy_advisor.generate_specs()
        engine = EvaluationEngine(
            toy_advisor.schema,
            toy_advisor.workload,
            toy_advisor.system,
            toy_advisor.config,
            options=EngineOptions(jobs=4),
        )
        few = specs[: MIN_SPECS_FOR_PARALLEL - 1]
        candidates = engine.evaluate_specs(few)
        assert len(candidates) == len(few)

    def test_context_is_picklable(self, toy_advisor):
        specs, _ = toy_advisor.generate_specs()
        engine = toy_advisor.engine()
        context = engine.context(specs=specs)
        clone = pickle.loads(pickle.dumps(context))
        assert clone.fact_name == context.fact_name
        assert len(clone.specs) == len(specs)
        candidate = evaluate_spec_in_context(clone, clone.specs[0])
        reference = toy_advisor.evaluate_spec(specs[0])
        assert candidate.io_cost_ms == reference.io_cost_ms

    def test_bitmap_scheme_designed_once(self, toy_advisor):
        engine = toy_advisor.engine()
        assert engine.bitmap_scheme() is engine.bitmap_scheme()

    def test_advisor_recommend_uses_engine(self, toy_schema, toy_workload, small_system):
        config = AdvisorConfig(max_fragments=10_000, top_candidates=5)
        advisor = Warlock(toy_schema, toy_workload, small_system, config)
        recommendation = advisor.recommend()
        assert recommendation.ranked
        assert advisor.cache.stats.lookups > 0

    def test_advisor_engine_is_memoized(self, toy_advisor):
        assert toy_advisor.engine() is toy_advisor.engine()

    def test_advisor_default_cache_is_bounded(self, toy_advisor):
        from repro.core.advisor import DEFAULT_CACHE_ENTRIES

        assert toy_advisor.cache.max_entries == DEFAULT_CACHE_ENTRIES

    def test_evaluate_candidates_with_empty_list_returns_empty(self, toy_advisor):
        candidates, report = toy_advisor.evaluate_candidates(specs=[])
        assert candidates == []
        assert report.considered == 0


class TestAdaptiveJobs:
    """The jobs="auto" heuristic: CPUs available x candidates per worker."""

    def test_available_cpus_is_at_least_one(self):
        from repro.engine import available_cpus

        assert available_cpus() >= 1

    def test_small_sweeps_stay_serial(self):
        from repro.engine import MIN_SPECS_FOR_PARALLEL, adaptive_jobs

        for candidates in range(MIN_SPECS_FOR_PARALLEL):
            assert adaptive_jobs(candidates, cpus=64) == 1

    def test_one_worker_per_started_candidate_block(self):
        from repro.engine import adaptive_jobs

        # Ceil division: one worker per *started* block of
        # MIN_SPECS_FOR_PARALLEL candidates.
        assert adaptive_jobs(8, cpus=64) == 1
        assert adaptive_jobs(16, cpus=64) == 2
        assert adaptive_jobs(17, cpus=64) == 3
        assert adaptive_jobs(64, cpus=64) == 8
        assert adaptive_jobs(1000, cpus=64) == 64

    def test_auto_parallelizes_just_above_the_threshold(self):
        # The documented contract: any sweep strictly larger than
        # MIN_SPECS_FOR_PARALLEL gets a pool under jobs="auto".  Floor
        # division used to leave 9-15-candidate sweeps serial despite the
        # README/docstring promise.
        from repro.engine import MIN_SPECS_FOR_PARALLEL, adaptive_jobs

        for candidates in range(MIN_SPECS_FOR_PARALLEL + 1, 2 * MIN_SPECS_FOR_PARALLEL):
            assert adaptive_jobs(candidates, cpus=64) == 2
        # A sweep of exactly the threshold still amortizes nothing: serial.
        assert adaptive_jobs(MIN_SPECS_FOR_PARALLEL, cpus=64) == 1

    def test_capped_at_available_cpus(self):
        from repro.engine import adaptive_jobs

        assert adaptive_jobs(1000, cpus=1) == 1
        assert adaptive_jobs(1000, cpus=4) == 4

    def test_rejects_invalid_inputs(self):
        from repro.engine import adaptive_jobs

        with pytest.raises(ValueError):
            adaptive_jobs(-1)
        with pytest.raises(ValueError):
            adaptive_jobs(10, cpus=0)

    def test_engine_resolves_auto_per_sweep(self, toy_advisor):
        engine = EvaluationEngine(
            toy_advisor.schema,
            toy_advisor.workload,
            toy_advisor.system,
            toy_advisor.config,
            options=EngineOptions(jobs="auto"),
        )
        from repro.engine import adaptive_jobs

        assert engine.resolve_jobs(100) == adaptive_jobs(100)
        assert engine.resolve_jobs(1) == 1

    def test_engine_fixed_jobs_pass_through(self, toy_advisor):
        engine = EvaluationEngine(
            toy_advisor.schema,
            toy_advisor.workload,
            toy_advisor.system,
            toy_advisor.config,
            options=EngineOptions(jobs=5),
        )
        assert engine.resolve_jobs(1_000_000) == 5

    def test_rejects_garbage_jobs_values(self, toy_schema, toy_workload, small_system):
        for bad in ("fast", 1.5, -2):
            with pytest.raises(AdvisorError):
                EvaluationEngine(toy_schema, toy_workload, small_system, jobs=bad)
            with pytest.raises(AdvisorError):
                Warlock(toy_schema, toy_workload, small_system, jobs=bad)

    def test_auto_recommendation_matches_serial(
        self, toy_schema, toy_workload, small_system
    ):
        from repro.engine import recommendation_fingerprint

        config = AdvisorConfig(max_fragments=10_000, top_candidates=5)
        serial = Warlock(toy_schema, toy_workload, small_system, config).recommend()
        auto = Warlock(
            toy_schema, toy_workload, small_system, config, options=EngineOptions(jobs="auto")
        ).recommend()
        assert recommendation_fingerprint(serial) == recommendation_fingerprint(auto)


class TestBrokenPoolDegradedRetry:
    """Regression: a pool failure mid-sweep used to be swallowed silently and
    re-evaluated *everything* serially; now it warns, flags the progress
    events as degraded, and resumes from the chunks the pool already
    returned — their indices are never re-dispatched."""

    def test_broken_pool_resumes_serially_without_redispatch(
        self, apb_small_schema, apb_workload, small_system, monkeypatch, capsys
    ):
        from concurrent.futures.process import BrokenProcessPool

        from repro.engine import executor as executor_module
        from repro.engine import recommendation_fingerprint
        from repro.engine.result import CandidateResultBatch

        reference = Warlock(apb_small_schema, apb_workload, small_system).recommend()

        real_evaluate = executor_module.evaluate_specs_in_context

        class FakeFuture:
            def __init__(self):
                self._result = None
                self._exc = None

            def result(self):
                if self._exc is not None:
                    raise self._exc
                return self._result

        pools = []

        class PoisonedPool:
            """First chunk evaluates for real; every later chunk breaks."""

            def __init__(self, max_workers=None, initializer=None, initargs=()):
                self.context = initargs[0]
                self.submitted = []
                pools.append(self)

            def __enter__(self):
                return self

            def __exit__(self, *exc_info):
                return False

            def submit(self, fn, chunk):
                future = FakeFuture()
                if not self.submitted:
                    candidates = real_evaluate(self.context, chunk, None)
                    future._result = (
                        CandidateResultBatch.from_candidates(chunk, candidates),
                        [],
                    )
                else:
                    future._exc = BrokenProcessPool("poisoned pool")
                self.submitted.append(list(chunk))
                return future

            def shutdown(self, wait=True, cancel_futures=False):
                pass

        def deterministic_wait(futures, return_when=None):
            # Healthy futures complete strictly before broken ones, so the
            # engine records the good chunk into ``partial`` first.
            done = {future for future in futures if future._exc is None}
            if done:
                return done, set(futures) - done
            return set(futures), set()

        serial_dispatched = []

        def tracking_evaluate(context, indices, cache=None):
            serial_dispatched.append(list(indices))
            return real_evaluate(context, indices, cache)

        monkeypatch.setattr(executor_module, "ProcessPoolExecutor", PoisonedPool)
        monkeypatch.setattr(executor_module, "wait", deterministic_wait)
        monkeypatch.setattr(
            executor_module, "evaluate_specs_in_context", tracking_evaluate
        )

        events = []
        advisor = Warlock(
            apb_small_schema,
            apb_workload,
            small_system,
            options=EngineOptions(jobs=2),
        )
        result = advisor.recommend(on_progress=events.append)

        assert recommendation_fingerprint(result) == recommendation_fingerprint(
            reference
        )
        assert "process pool failed" in capsys.readouterr().err
        assert any(event.degraded for event in events)
        # The chunk the pool completed before breaking is never re-dispatched
        # by the degraded serial retry.
        assert pools and len(pools[0].submitted) >= 2
        pool_completed = set(pools[0].submitted[0])
        retried = {index for chunk in serial_dispatched for index in chunk}
        assert not retried & pool_completed
        assert retried  # the remainder really went through the serial path
