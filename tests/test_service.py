"""Tests for the HTTP service layer (repro.service).

The contract under test:

* the registry keeps at most ``max_sessions`` live sessions (LRU eviction,
  idle timeout, in-flight entries never evicted) while warehouses stay
  registered;
* the executor bounds queued work and answers saturation with 503;
* every request type round-trips over HTTP with results identical to the
  in-process ``AdvisorSession.submit()`` (fingerprint parity for recommend);
* SSE streams order progress frames before the result, ending with
  ``completed == total``;
* a client disconnect mid-stream cancels the sweep cooperatively and leaves
  the session cache consistent and warm.
"""

from __future__ import annotations

import json
import socket
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro import (
    AdvisorConfig,
    AdvisorSession,
    EngineOptions,
    SystemParameters,
    synthetic_schema,
)
from repro.api.requests import (
    CompareRequest,
    EvaluateSpecRequest,
    RecommendRequest,
    SimulateRequest,
    TuneRequest,
)
from repro.errors import ServiceError
from repro.service import (
    AdvisorServer,
    RequestExecutor,
    SessionRegistry,
    warehouse_inputs_from_dict,
)


@pytest.fixture(scope="module")
def scenario():
    schema = synthetic_schema(
        num_dimensions=4,
        levels_per_dimension=3,
        bottom_cardinality=300,
        fact_rows=2_000_000,
        seed=3,
    )
    workload = __import__("repro.workload.generator", fromlist=["random_query_mix"]).random_query_mix(
        schema, num_classes=6, seed=5
    )
    system = SystemParameters(num_disks=16)
    config = AdvisorConfig(max_fragments=20_000, top_candidates=8)
    return schema, workload, system, config


@pytest.fixture(scope="module")
def server(scenario):
    schema, workload, system, config = scenario
    srv = AdvisorServer(
        registry=SessionRegistry(max_sessions=4),
        executor=RequestExecutor(workers=4, capacity=16),
    )
    srv.registry.register("main", schema, workload, system, config=config)
    srv.start_in_background()
    yield srv
    srv.stop()


@pytest.fixture(scope="module")
def parity_session(scenario):
    """In-process twin of the served "main" warehouse (parity oracle)."""
    schema, workload, system, config = scenario
    return AdvisorSession(schema, workload, system, config)


def http_json(server, method, path, payload=None, timeout=60):
    data = json.dumps(payload).encode() if payload is not None else None
    request = urllib.request.Request(server.url + path, data=data, method=method)
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return response.status, json.loads(response.read())


def http_error(server, method, path, payload=None):
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        http_json(server, method, path, payload)
    error = excinfo.value
    return error.code, json.loads(error.read())


def http_sse(server, path, payload, timeout=120):
    """POST and parse an SSE stream into ``[(event, data), ...]``."""
    request = urllib.request.Request(
        server.url + path,
        data=json.dumps(payload).encode(),
        method="POST",
        headers={"Accept": "text/event-stream"},
    )
    with urllib.request.urlopen(request, timeout=timeout) as response:
        assert response.headers["Content-Type"] == "text/event-stream"
        raw = response.read().decode()
    frames = []
    for block in raw.split("\n\n"):
        if not block.strip():
            continue
        lines = dict(line.split(": ", 1) for line in block.splitlines())
        frames.append((lines["event"], json.loads(lines["data"])))
    return frames


class TestRegistry:
    def test_unknown_warehouse_is_a_404(self, scenario):
        registry = SessionRegistry()
        with pytest.raises(ServiceError) as excinfo:
            registry.acquire("ghost")
        assert excinfo.value.status == 404

    def test_lru_cap_closes_the_coldest_session(self, scenario):
        schema, workload, system, config = scenario
        registry = SessionRegistry(max_sessions=2)
        for name in ("a", "b", "c"):
            registry.register(name, schema, workload, system, config=config)
        for name in ("a", "b", "c"):
            entry = registry.acquire(name)
            with entry.lock:
                entry.ensure_session()
        # "a" is the least recently used of the three: evicted, but still
        # registered — a later acquire simply rebuilds its session.
        assert registry.live_sessions == 2
        assert set(registry.names()) == {"a", "b", "c"}
        assert registry.evictions == 1
        entry_a = registry.acquire("a")
        assert entry_a.session is None
        with entry_a.lock:
            entry_a.ensure_session()
        assert registry.live_sessions == 2  # now "b" went

    def test_in_flight_sessions_are_never_evicted(self, scenario):
        schema, workload, system, config = scenario
        registry = SessionRegistry(max_sessions=1)
        for name in ("busy", "idle", "next"):
            registry.register(name, schema, workload, system, config=config)
        busy = registry.acquire("busy")
        with busy.lock:  # request in flight
            busy.ensure_session()
            idle = registry.acquire("idle")
            with idle.lock:
                idle.ensure_session()
            # Both live although the cap is 1: the busy one is untouchable.
            assert registry.live_sessions == 2
            registry.acquire("next")
            assert busy.session is not None
            assert idle.session is None  # the idle one was the victim

    def test_idle_timeout_purges_on_access(self, scenario):
        schema, workload, system, config = scenario
        now = [0.0]
        registry = SessionRegistry(idle_timeout=10.0, clock=lambda: now[0])
        registry.register("old", schema, workload, system, config=config)
        registry.register("new", schema, workload, system, config=config)
        for name in ("old", "new"):
            entry = registry.acquire(name)
            with entry.lock:
                entry.ensure_session()
        now[0] = 5.0
        new = registry.acquire("new")  # refreshes "new" only
        assert registry.live_sessions == 2
        now[0] = 12.0  # "old" idle 12s > 10s, "new" idle 7s
        registry.acquire("new")
        assert registry.live_sessions == 1
        assert new.session is not None
        assert registry.acquire("old").session is None

    def test_register_replaces_and_remove_drops(self, scenario):
        schema, workload, system, config = scenario
        registry = SessionRegistry()
        registry.register("w", schema, workload, system, config=config)
        entry = registry.acquire("w")
        with entry.lock:
            entry.ensure_session()
        replaced = registry.register("w", schema, workload, system, config=config)
        assert replaced.session is None  # the old session was closed
        assert registry.remove("w") is True
        assert registry.remove("w") is False
        with pytest.raises(ServiceError):
            registry.acquire("w")

    def test_eviction_releases_the_entry_lock(self, scenario):
        # Regression: eviction acquires the victim's entry lock (non-blocking)
        # so no in-flight request can race the close; the lock must be
        # released again afterwards, not leaked.
        schema, workload, system, config = scenario
        registry = SessionRegistry(max_sessions=1)
        for name in ("old", "new"):
            registry.register(name, schema, workload, system, config=config)
        old = registry.acquire("old")
        with old.lock:
            old.ensure_session()
        new = registry.acquire("new")
        with new.lock:
            new.ensure_session()
        assert old.session is None  # evicted by the cap
        assert registry.evictions == 1
        assert not old.lock.locked()  # the eviction path released it
        # The evicted warehouse is still usable: rebuild its session.
        entry = registry.acquire("old")
        with entry.lock:
            entry.ensure_session()
        assert entry.session is not None

    def test_replace_waits_for_in_flight_request(self, scenario):
        # Regression: register() used to close the replaced session without
        # the entry lock, racing a worker mid-submit on that session.  It now
        # blocks until the in-flight request releases the lock.
        schema, workload, system, config = scenario
        registry = SessionRegistry()
        registry.register("w", schema, workload, system, config=config)
        entry = registry.acquire("w")
        replaced = threading.Event()

        def replace():
            registry.register("w", schema, workload, system, config=config)
            replaced.set()

        with entry.lock:  # a request in flight on the old entry
            entry.ensure_session()
            worker = threading.Thread(target=replace)
            worker.start()
            # The replacement is visible immediately (new entry in the map)
            # but the old session's close must wait for our lock.
            assert not replaced.wait(timeout=0.2)
        worker.join(timeout=5)
        assert replaced.is_set()

    def test_remove_waits_for_in_flight_request(self, scenario):
        # Regression: remove() used to close the session without the entry
        # lock; it now waits for the in-flight request to finish.
        schema, workload, system, config = scenario
        registry = SessionRegistry()
        registry.register("w", schema, workload, system, config=config)
        entry = registry.acquire("w")
        removed = threading.Event()

        def remove():
            registry.remove("w")
            removed.set()

        with entry.lock:
            entry.ensure_session()
            worker = threading.Thread(target=remove)
            worker.start()
            assert not removed.wait(timeout=0.2)
        worker.join(timeout=5)
        assert removed.is_set()
        assert entry.session is None

    def test_describe_is_json_ready(self, scenario):
        schema, workload, system, config = scenario
        registry = SessionRegistry(max_sessions=3, idle_timeout=60.0)
        registry.register("w", schema, workload, system, config=config)
        snapshot = registry.describe()
        json.dumps(snapshot)  # serializable as-is
        assert snapshot["max_sessions"] == 3
        assert snapshot["warehouses"][0]["name"] == "w"
        assert snapshot["warehouses"][0]["live"] is False


class TestExecutor:
    def test_jobs_run_and_return_results(self):
        executor = RequestExecutor(workers=2, capacity=8)
        jobs = [executor.submit(lambda k=k: k * k) for k in range(6)]
        assert executor.drain(timeout=10)
        assert [job.outcome() for job in jobs] == [0, 1, 4, 9, 16, 25]
        executor.shutdown()

    def test_errors_propagate_through_outcome(self):
        executor = RequestExecutor(workers=1, capacity=4)

        def boom():
            raise ValueError("exploded")

        job = executor.submit(boom)
        assert job.wait(timeout=10)
        with pytest.raises(ValueError, match="exploded"):
            job.outcome()
        executor.shutdown()

    def test_saturation_answers_503_without_blocking(self):
        executor = RequestExecutor(workers=1, capacity=1)
        release = threading.Event()
        running = threading.Event()

        def block():
            running.set()
            return release.wait()

        blocker = executor.submit(block)
        assert running.wait(timeout=10)  # the worker holds it, queue is empty
        queued = executor.submit(lambda: "queued")  # fills the queue
        with pytest.raises(ServiceError) as excinfo:
            executor.submit(lambda: "rejected")
        assert excinfo.value.status == 503
        release.set()
        assert executor.drain(timeout=10)
        assert blocker.outcome() is True
        assert queued.outcome() == "queued"
        executor.shutdown()

    def test_shutdown_rejects_new_work(self):
        executor = RequestExecutor(workers=1)
        executor.start()
        executor.shutdown()
        with pytest.raises(ServiceError) as excinfo:
            executor.submit(lambda: None)
        assert excinfo.value.status == 503

    def test_on_done_hook_fires_after_completion(self):
        executor = RequestExecutor(workers=1)
        fired = threading.Event()
        job = executor.submit(lambda: 7, on_done=fired.set)
        assert fired.wait(timeout=10)
        assert job.done and job.outcome() == 7
        executor.shutdown()


class TestWarehouseRegistration:
    def test_dataset_shorthand_builds_the_bundled_inputs(self):
        schema, workload, system, config, engine = warehouse_inputs_from_dict(
            {"dataset": "apb1", "scale": 0.05, "disks": 16}
        )
        assert "apb1" in schema.name
        assert len(workload) > 0
        assert system.num_disks == 16
        assert config is None and engine == {}

    def test_advisor_and_engine_blocks_are_validated(self):
        _, _, _, config, engine = warehouse_inputs_from_dict(
            {
                "dataset": "retail",
                "advisor": {"top_candidates": 5},
                "engine": {"jobs": 2, "vectorize": True},
            }
        )
        assert config.top_candidates == 5
        assert engine == {"jobs": 2, "vectorize": True}
        with pytest.raises(ServiceError, match="advisor block"):
            warehouse_inputs_from_dict(
                {"dataset": "apb1", "advisor": {"not_a_knob": 1}}
            )

    def test_unknown_dataset_is_rejected(self):
        with pytest.raises(ServiceError, match="unknown dataset"):
            warehouse_inputs_from_dict({"dataset": "tpch"})


class TestHTTPEndpoints:
    def test_health_and_warehouse_listing(self, server):
        status, health = http_json(server, "GET", "/healthz")
        assert status == 200 and health["status"] == "ok"
        status, listing = http_json(server, "GET", "/warehouses")
        assert [row["name"] for row in listing["warehouses"]] == ["main"]

    def test_unknown_route_and_method(self, server):
        code, body = http_error(server, "GET", "/nope")
        assert code == 404
        code, _ = http_error(server, "POST", "/warehouses/main")
        assert code == 405
        # The submit path exists for every method: wrong verb is 405, not 404.
        code, _ = http_error(server, "GET", "/warehouses/main/submit")
        assert code == 405

    def test_unknown_warehouse_is_404(self, server):
        code, body = http_error(
            server, "POST", "/warehouses/ghost/submit", {"kind": "recommend"}
        )
        assert code == 404
        assert "ghost" in body["error"]

    def test_malformed_bodies_are_400(self, server):
        code, body = http_error(
            server, "POST", "/warehouses/main/submit", {"kind": "teleport"}
        )
        assert code == 400 and "teleport" in body["error"]
        code, body = http_error(
            server, "POST", "/warehouses/main/submit",
            {"kind": "tune", "parameter": "disks"},
        )
        assert code == 400 and "invalid request body" in body["error"]

    def test_register_and_delete_over_http(self, server):
        status, body = http_json(
            server, "PUT", "/warehouses/shop",
            {"dataset": "apb1", "scale": 0.02, "disks": 8},
        )
        assert status == 200
        assert body["registered"]["name"] == "shop"
        status, body = http_json(server, "DELETE", "/warehouses/shop")
        assert status == 200 and body["removed"] is True
        code, _ = http_error(server, "DELETE", "/warehouses/shop")
        assert code == 404


class TestHTTPRoundTrip:
    """Every request type over HTTP == the in-process submit(), bit for bit."""

    def _wire_requests(self, parity_session):
        spec = parity_session.recommend().best.spec
        return [
            RecommendRequest(),
            EvaluateSpecRequest(spec=spec),
            CompareRequest(specs=(spec,)),
            TuneRequest(study="disks", spec=spec, settings=(8, 16)),
            SimulateRequest(queries_per_class=2, seed=7),
        ]

    def test_all_five_request_types_round_trip(self, server, parity_session):
        for request in self._wire_requests(parity_session):
            payload = request.to_dict()
            status, body = http_json(
                server, "POST", "/warehouses/main/submit", payload
            )
            assert status == 200, payload["kind"]
            assert body["kind"] == payload["kind"]
            expected = parity_session.submit(request).to_dict()
            assert body["result"] == json.loads(json.dumps(expected)), payload["kind"]

    def test_recommend_fingerprint_matches_in_process(self, server, parity_session):
        _, body = http_json(
            server, "POST", "/warehouses/main/submit", {"kind": "recommend"}
        )
        assert body["fingerprint"] == parity_session.recommend().fingerprint


class TestSSEStreaming:
    def test_stream_orders_progress_then_result_then_done(self, server, parity_session):
        frames = http_sse(
            server, "/warehouses/main/submit?stream=1", {"kind": "recommend"}
        )
        kinds = [kind for kind, _ in frames]
        assert kinds[-2:] == ["result", "done"]
        assert set(kinds[:-2]) <= {"progress"}
        progress = [data for kind, data in frames if kind == "progress"]
        assert progress, "a streamed request must report progress"
        completed = [p["completed"] for p in progress]
        assert completed == sorted(completed)
        assert progress[-1]["completed"] == progress[-1]["total"]
        result = dict(frames)["result"]
        assert result["fingerprint"] == parity_session.recommend().fingerprint

    def test_composite_tune_streams_both_sweeps(self, server):
        frames = http_sse(
            server,
            "/warehouses/main/submit?stream=1",
            {"kind": "tune", "study": "disks", "settings": [8, 16]},
        )
        progress = [data for kind, data in frames if kind == "progress"]
        sweeps = sorted({(p["sweep"], p["num_sweeps"]) for p in progress})
        # Sweep 1/2 may answer from the session memo in one frame, but both
        # composite phases must be reported and the study must end complete.
        assert sweeps == [(1, 2), (2, 2)]
        last = progress[-1]
        assert last["phase"] == "study"
        assert last["completed"] == last["total"] == 2

    def test_stream_reports_errors_as_sse_frames(self, server):
        frames = http_sse(
            server,
            "/warehouses/main/submit?stream=1",
            {"kind": "tune", "study": "weights", "settings": None},
        )
        kinds = [kind for kind, _ in frames]
        assert kinds[-2:] == ["error", "done"]
        assert "weights" in dict(frames)["error"]["error"]


class TestDisconnectCancellation:
    def test_disconnect_cancels_the_sweep_and_leaves_the_cache_warm(
        self, scenario
    ):
        schema, workload, system, config = scenario
        server = AdvisorServer(
            registry=SessionRegistry(),
            executor=RequestExecutor(workers=2, capacity=8),
        )
        # A dedicated warehouse: its session is cold, so the streamed sweep
        # has many chunks left when the client hangs up.
        server.registry.register(
            "dropped", schema, workload, system, config=config,
            options=EngineOptions(jobs=1),
        )
        server.start_in_background()
        try:
            payload = json.dumps({"kind": "recommend"}).encode()
            with socket.create_connection(("127.0.0.1", server.port), timeout=30) as sock:
                sock.sendall(
                    b"POST /warehouses/dropped/submit?stream=1 HTTP/1.1\r\n"
                    b"Host: localhost\r\n"
                    b"Content-Type: application/json\r\n"
                    + f"Content-Length: {len(payload)}\r\n\r\n".encode()
                    + payload
                )
                # Wait for the first progress frame — the sweep is live now —
                # then hang up without reading the rest.
                buffer = b""
                while b"event: progress" not in buffer:
                    chunk = sock.recv(4096)
                    assert chunk, "stream closed before any progress frame"
                    buffer += chunk
            # The EOF watchdog flips the token; the worker stops at the next
            # chunk boundary and the executor drains without finishing the
            # sweep.
            assert server.executor.drain(timeout=60)
            deadline = time.monotonic() + 10
            while server.cancelled == 0 and time.monotonic() < deadline:
                time.sleep(0.05)
            assert server.cancelled >= 1
            assert server.served == 0  # the request never completed

            # The abandoned sweep's completed chunks persist: the session
            # cache is non-empty and a retry completes with the exact
            # fingerprint of an untouched in-process advisor.
            entry = server.registry.acquire("dropped")
            assert entry.session is not None
            assert len(entry.session.cache) > 0
            status, body = http_json(
                server, "POST", "/warehouses/dropped/submit", {"kind": "recommend"}
            )
            assert status == 200
            oracle = AdvisorSession(schema, workload, system, config)
            assert body["fingerprint"] == oracle.recommend().fingerprint
        finally:
            server.stop()


class TestEvictionOverHTTP:
    def test_live_sessions_stay_capped_across_warehouses(self, scenario):
        schema, workload, system, config = scenario
        server = AdvisorServer(
            registry=SessionRegistry(max_sessions=2),
            executor=RequestExecutor(workers=2, capacity=8),
        )
        for name in ("w1", "w2", "w3"):
            server.registry.register(name, schema, workload, system, config=config)
        server.start_in_background()
        try:
            spec_payload = {"kind": "recommend"}
            for name in ("w1", "w2", "w3"):
                status, _ = http_json(
                    server, "POST", f"/warehouses/{name}/submit", spec_payload
                )
                assert status == 200
            _, listing = http_json(server, "GET", "/warehouses")
            assert listing["live_sessions"] <= 2
            assert len(listing["warehouses"]) == 3  # registrations all survive
            assert listing["evictions"] >= 1
        finally:
            server.stop()


class TestRequestDeadlines:
    """Per-request deadlines (``--request-timeout``): queue wait plus
    execution share one budget; overruns answer 504, mid-sweep overruns trip
    the cooperative cancel token at the next chunk boundary."""

    def test_without_timeout_jobs_carry_no_deadline(self):
        executor = RequestExecutor(workers=1)
        job = executor.submit(lambda: "ok")
        assert job.wait(timeout=10)
        assert job.deadline is None and not job.timed_out
        assert job.outcome() == "ok"
        executor.shutdown()

    def test_invalid_timeout_is_rejected(self):
        with pytest.raises(ServiceError):
            RequestExecutor(workers=1, timeout=0.0)
        with pytest.raises(ServiceError):
            RequestExecutor(workers=1, timeout=-3.0)

    def test_deadline_expires_queued_jobs_with_504(self):
        executor = RequestExecutor(workers=1, capacity=4, timeout=0.2)
        release = threading.Event()
        running = threading.Event()

        def block():
            running.set()
            return release.wait()

        blocker = executor.submit(block)
        assert running.wait(timeout=10)
        queued = executor.submit(lambda: "late")
        time.sleep(0.4)  # the deadline lapses while the job sits queued
        release.set()
        assert queued.wait(timeout=10)
        assert queued.timed_out
        with pytest.raises(ServiceError) as excinfo:
            queued.outcome()
        assert excinfo.value.status == 504
        assert "while queued" in str(excinfo.value)
        assert blocker.outcome() is True  # the running job itself survived
        executor.shutdown()

    def test_deadline_trips_the_cancel_token_mid_execution(self):
        from repro.api.progress import CancellationToken
        from repro.errors import EvaluationCancelled

        executor = RequestExecutor(workers=1, timeout=0.1)
        token = CancellationToken()

        def slow_sweep():
            for _ in range(500):
                if token.cancelled:
                    raise EvaluationCancelled("chunk boundary observed cancel")
                time.sleep(0.01)
            return "never finishes in time"

        job = executor.submit(slow_sweep, cancel=token)
        assert job.wait(timeout=10)
        assert job.timed_out
        with pytest.raises(EvaluationCancelled):
            job.outcome()
        executor.shutdown()

    def test_http_recommend_answers_504_on_deadline(self, scenario):
        from repro.service import AdvisorServer

        schema, workload, system, config = scenario
        srv = AdvisorServer(
            registry=SessionRegistry(max_sessions=2),
            executor=RequestExecutor(workers=1, capacity=4, timeout=0.005),
        )
        srv.registry.register("slow", schema, workload, system, config=config)
        srv.start_in_background()
        try:
            code, body = http_error(
                srv, "POST", "/warehouses/slow/submit", {"kind": "recommend"}
            )
        finally:
            srv.stop()
        assert code == 504
        assert "error" in body


class TestHealthzStoreCounters:
    """GET /healthz surfaces the aggregated store robustness counters."""

    def test_store_block_present_and_zero_on_clean_sessions(self, server):
        status, health = http_json(server, "GET", "/healthz")
        assert status == 200
        assert set(health["store"]) == {
            "salt_mismatches",
            "corrupt_entries",
            "fallback_loads",
        }
        assert all(isinstance(v, int) for v in health["store"].values())

    def test_corrupted_store_shows_up_in_healthz(self, scenario, server, tmp_path):
        from repro.engine.store import (
            BATCHES_FILENAME,
            CANDIDATES_FILENAME,
            ENTRIES_FILENAME,
        )

        schema, workload, system, config = scenario
        cache_dir = tmp_path / "rotten"
        cache_dir.mkdir()
        for name in (ENTRIES_FILENAME, BATCHES_FILENAME, CANDIDATES_FILENAME):
            (cache_dir / name).write_bytes(b"\x00\x01 rubble")
        server.registry.register(
            "rotten",
            schema,
            workload,
            system,
            config=config,
            options=EngineOptions(cache_dir=str(cache_dir), persist=False),
        )
        try:
            # Any request builds the session, which loads (and counts) the
            # corrupted store.
            http_json(
                server, "POST", "/warehouses/rotten/submit", {"kind": "recommend"}
            )
            status, health = http_json(server, "GET", "/healthz")
        finally:
            http_json(server, "DELETE", "/warehouses/rotten")
        assert status == 200
        assert health["store"]["fallback_loads"] >= 1

    def test_registry_store_health_aggregates_live_sessions_only(self, scenario):
        schema, workload, system, config = scenario
        registry = SessionRegistry(max_sessions=2)
        registry.register("idle", schema, workload, system, config=config)
        # No session built yet: nothing to aggregate.
        assert registry.store_health() == {
            "salt_mismatches": 0,
            "corrupt_entries": 0,
            "fallback_loads": 0,
        }
        entry = registry.acquire("idle")
        with entry.lock:
            session = entry.ensure_session()
        session.cache.stats.store_corrupt_entries += 2
        session.cache.stats.store_fallback_loads += 1
        health = registry.store_health()
        assert health["corrupt_entries"] == 2
        assert health["fallback_loads"] == 1
        registry.close()
