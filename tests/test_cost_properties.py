"""Property/invariant tests for the analytical cost model.

Hypothesis sweeps the model's input space and asserts the structural
invariants the paper's prediction layer relies on:

* ``io_cost_ms`` is monotonically non-decreasing in query selectivity (more
  selected values can never cost less I/O) and in fact-table size.
* On a single-disk system the response time can never exceed the I/O cost
  plus the coordination overhead (there is no parallelism to win from).
* The workload-weighted totals are exactly the sums of the per-class
  weighted costs (the aggregation layer adds nothing and loses nothing).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro import (
    Dimension,
    DimensionRestriction,
    FactTable,
    FragmentationSpec,
    Level,
    Measure,
    QueryClass,
    QueryMix,
    StarSchema,
    SystemParameters,
)
from repro.bitmap import design_bitmap_scheme
from repro.costmodel import IOCostModel, resolve_prefetch_setting
from repro.fragmentation import build_layout
from repro.storage import PrefetchSetting

#: Bounded example counts keep the whole module under a couple of seconds
#: while still sweeping a few hundred model evaluations.
PROPERTY_SETTINGS = settings(max_examples=30, deadline=None)


def _schema(fact_rows: int = 2_000_000) -> StarSchema:
    time = Dimension(
        name="time",
        levels=[Level("year", 3), Level("quarter", 12), Level("month", 36)],
    )
    product = Dimension(
        name="product",
        levels=[Level("group", 8), Level("item", 160)],
    )
    store = Dimension(
        name="store",
        levels=[Level("region", 5), Level("store", 50)],
    )
    fact = FactTable(
        name="sales",
        row_count=fact_rows,
        row_size_bytes=64,
        dimension_names=("time", "product", "store"),
        measures=(Measure("revenue", 8),),
    )
    return StarSchema(
        name=f"prop({fact_rows})", dimensions=(time, product, store), fact_tables=(fact,)
    )


def _cost_of(
    schema: StarSchema,
    spec: FragmentationSpec,
    query: QueryClass,
    system: SystemParameters,
) -> float:
    workload = QueryMix([query])
    layout = build_layout(schema, spec, page_size_bytes=system.page_size_bytes)
    scheme = design_bitmap_scheme(schema, workload)
    prefetch = resolve_prefetch_setting(layout, workload, scheme, system)
    model = IOCostModel(system)
    return model.query_cost(layout, query, scheme, prefetch).io_cost_ms


SPECS = [
    FragmentationSpec.none(),
    FragmentationSpec.of(("time", "quarter")),
    FragmentationSpec.of(("time", "month"), ("product", "group")),
    FragmentationSpec.of(("time", "quarter"), ("store", "region")),
]

RESTRICTABLE = [("time", "month", 36), ("product", "item", 160), ("store", "store", 50)]


class TestSelectivityMonotonicity:
    @PROPERTY_SETTINGS
    @given(
        spec_index=st.integers(min_value=0, max_value=len(SPECS) - 1),
        target=st.integers(min_value=0, max_value=len(RESTRICTABLE) - 1),
        counts=st.tuples(st.integers(1, 160), st.integers(1, 160)),
    )
    def test_io_cost_non_decreasing_in_selected_values(self, spec_index, target, counts):
        dimension, level, cardinality = RESTRICTABLE[target]
        low, high = sorted(min(c, cardinality) for c in counts)
        schema = _schema()
        system = SystemParameters(num_disks=16)
        spec = SPECS[spec_index]

        def cost(value_count: int) -> float:
            query = QueryClass(
                name=f"q-{dimension}-{value_count}",
                restrictions=[DimensionRestriction(dimension, level, value_count)],
            )
            return _cost_of(schema, spec, query, system)

        assert cost(low) <= cost(high) * (1 + 1e-9)

    @PROPERTY_SETTINGS
    @given(
        spec_index=st.integers(min_value=0, max_value=len(SPECS) - 1),
        sizes=st.tuples(
            st.integers(100_000, 8_000_000), st.integers(100_000, 8_000_000)
        ),
    )
    def test_io_cost_non_decreasing_in_table_size(self, spec_index, sizes):
        small_rows, large_rows = sorted(sizes)
        system = SystemParameters(num_disks=16)
        spec = SPECS[spec_index]
        query = QueryClass(
            name="q-growth",
            restrictions=[DimensionRestriction("time", "month", 2)],
        )
        small = _cost_of(_schema(small_rows), spec, query, system)
        large = _cost_of(_schema(large_rows), spec, query, system)
        assert small <= large * (1 + 1e-9)


class TestSingleDiskResponseBound:
    @PROPERTY_SETTINGS
    @given(
        spec_index=st.integers(min_value=0, max_value=len(SPECS) - 1),
        target=st.integers(min_value=0, max_value=len(RESTRICTABLE) - 1),
        value_count=st.integers(1, 36),
        coordination=st.floats(0.0, 10.0, allow_nan=False),
    )
    def test_response_never_exceeds_io_cost_plus_coordination(
        self, spec_index, target, value_count, coordination
    ):
        dimension, level, cardinality = RESTRICTABLE[target]
        schema = _schema()
        system = SystemParameters(
            num_disks=1, coordination_overhead_ms=coordination
        )
        spec = SPECS[spec_index]
        query = QueryClass(
            name="q-single-disk",
            restrictions=[
                DimensionRestriction(dimension, level, min(value_count, cardinality))
            ],
        )
        workload = QueryMix([query])
        layout = build_layout(schema, spec, page_size_bytes=system.page_size_bytes)
        scheme = design_bitmap_scheme(schema, workload)
        prefetch = resolve_prefetch_setting(layout, workload, scheme, system)
        model = IOCostModel(system)
        cost = model.query_cost(layout, query, scheme, prefetch)
        assert cost.disks_used == 1
        assert cost.response_time_ms <= cost.io_cost_ms + coordination + 1e-9


class TestWorkloadAggregation:
    @PROPERTY_SETTINGS
    @given(
        weights=st.lists(
            st.floats(0.1, 50.0, allow_nan=False, allow_infinity=False),
            min_size=3,
            max_size=3,
        ),
        spec_index=st.integers(min_value=0, max_value=len(SPECS) - 1),
    )
    def test_totals_equal_sum_of_weighted_per_class_costs(self, weights, spec_index):
        schema = _schema()
        system = SystemParameters(num_disks=16)
        workload = QueryMix(
            [
                QueryClass(
                    name="monthly",
                    restrictions=[DimensionRestriction("time", "month", 1)],
                    weight=weights[0],
                ),
                QueryClass(
                    name="item-lookup",
                    restrictions=[DimensionRestriction("product", "item", 4)],
                    weight=weights[1],
                ),
                QueryClass(
                    name="regional",
                    restrictions=[DimensionRestriction("store", "region", 2)],
                    weight=weights[2],
                ),
            ]
        )
        layout = build_layout(
            schema, SPECS[spec_index], page_size_bytes=system.page_size_bytes
        )
        scheme = design_bitmap_scheme(schema, workload)
        model = IOCostModel(system)
        evaluation = model.evaluate(layout, workload, scheme)

        shares = [share for _, share in workload.weighted_items()]
        assert sum(shares) == pytest.approx(1.0, rel=1e-12)
        assert evaluation.total_io_cost_ms == pytest.approx(
            sum(cost.weighted_io_cost_ms for cost in evaluation.per_class), rel=1e-12
        )
        assert evaluation.total_response_time_ms == pytest.approx(
            sum(cost.weighted_response_time_ms for cost in evaluation.per_class),
            rel=1e-12,
        )
        assert evaluation.total_pages_accessed == pytest.approx(
            sum(
                cost.weight * cost.profile.total_pages_accessed
                for cost in evaluation.per_class
            ),
            rel=1e-12,
        )
        assert evaluation.total_io_requests == pytest.approx(
            sum(
                cost.weight * cost.profile.total_io_requests
                for cost in evaluation.per_class
            ),
            rel=1e-12,
        )


class TestPrefetchInvariants:
    @PROPERTY_SETTINGS
    @given(
        fact_granule=st.sampled_from([1, 2, 8, 32, 128]),
        bitmap_granule=st.sampled_from([1, 2, 8]),
        value_count=st.integers(1, 36),
    )
    def test_coarser_granule_never_increases_requests(
        self, fact_granule, bitmap_granule, value_count
    ):
        """More pages per request can only reduce the number of requests."""
        schema = _schema()
        system = SystemParameters(num_disks=16)
        spec = FragmentationSpec.of(("time", "quarter"))
        query = QueryClass(
            name="q-prefetch",
            restrictions=[DimensionRestriction("time", "month", value_count)],
        )
        workload = QueryMix([query])
        layout = build_layout(schema, spec, page_size_bytes=system.page_size_bytes)
        scheme = design_bitmap_scheme(schema, workload)
        from repro.costmodel import estimate_access

        unit = estimate_access(layout, query, scheme, PrefetchSetting.fixed(1, 1))
        coarse = estimate_access(
            layout,
            query,
            scheme,
            PrefetchSetting.fixed(fact_granule, bitmap_granule),
        )
        if unit.sequential_fact_access and coarse.sequential_fact_access:
            assert coarse.fact_io_requests <= unit.fact_io_requests * (1 + 1e-9)
