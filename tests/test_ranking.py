"""Unit tests for repro.core.ranking: the two-phase ranking heuristic."""

from __future__ import annotations

from dataclasses import dataclass

import pytest
from hypothesis import given, settings, strategies as st

from repro import FragmentationSpec
from repro.core import rank_candidates, rank_candidates_columnar
from repro.errors import AdvisorError


@pytest.fixture
def toy_candidates(toy_advisor):
    """A handful of evaluated candidates over the toy configuration."""
    specs = [
        FragmentationSpec.of(("time", "month")),
        FragmentationSpec.of(("time", "quarter"), ("product", "group")),
        FragmentationSpec.of(("time", "month"), ("store", "region")),
        FragmentationSpec.of(("product", "item")),
        FragmentationSpec.of(("store", "store")),
        FragmentationSpec.of(("time", "month"), ("product", "group")),
    ]
    scheme = toy_advisor.design_bitmaps()
    return [toy_advisor.evaluate_spec(spec, scheme) for spec in specs]


class TestRankCandidates:
    def test_result_sorted_by_response_time(self, toy_candidates):
        ranked = rank_candidates(toy_candidates, top_fraction=1.0)
        responses = [r.response_time_ms for r in ranked]
        assert responses == sorted(responses)

    def test_final_ranks_sequential(self, toy_candidates):
        ranked = rank_candidates(toy_candidates, top_fraction=1.0)
        assert [r.final_rank for r in ranked] == list(range(1, len(ranked) + 1))

    def test_io_ranks_are_a_permutation(self, toy_candidates):
        ranked = rank_candidates(toy_candidates, top_fraction=1.0)
        io_ranks = sorted(r.io_rank for r in ranked)
        assert io_ranks == list(range(1, len(toy_candidates) + 1))

    def test_top_fraction_limits_phase_two(self, toy_candidates):
        half = rank_candidates(toy_candidates, top_fraction=0.5)
        # ceil(0.5 * 6) = 3 candidates admitted to phase two.
        assert len(half) == 3
        # Only the lowest-I/O-cost candidates are admitted.
        assert all(r.io_rank <= 3 for r in half)

    def test_top_fraction_keeps_at_least_one(self, toy_candidates):
        tiny = rank_candidates(toy_candidates, top_fraction=0.01)
        assert len(tiny) == 1
        assert tiny[0].io_rank == 1

    def test_top_candidates_truncation(self, toy_candidates):
        ranked = rank_candidates(toy_candidates, top_fraction=1.0, top_candidates=2)
        assert len(ranked) == 2

    def test_phase_one_prefers_low_io_cost(self, toy_candidates):
        """The candidate with the lowest I/O cost is always admitted and keeps rank 1."""
        ranked = rank_candidates(toy_candidates, top_fraction=0.25)
        lowest_io = min(toy_candidates, key=lambda c: c.io_cost_ms)
        assert any(r.candidate.label == lowest_io.label for r in ranked)

    def test_winner_differs_between_metrics_when_tradeoff_exists(self, toy_candidates):
        """With the full candidate set, the response-time winner need not be the
        I/O winner — this is exactly the trade-off the two-phase heuristic manages."""
        ranked_all = rank_candidates(toy_candidates, top_fraction=1.0)
        by_io = sorted(toy_candidates, key=lambda c: c.io_cost_ms)
        assert ranked_all[0].response_time_ms <= by_io[0].response_time_ms

    def test_describe(self, toy_candidates):
        ranked = rank_candidates(toy_candidates, top_fraction=1.0)
        text = ranked[0].describe()
        assert "#1" in text and ranked[0].label in text

    def test_wrapper_properties(self, toy_candidates):
        ranked = rank_candidates(toy_candidates, top_fraction=1.0)[0]
        assert ranked.io_cost_ms == ranked.candidate.io_cost_ms
        assert ranked.response_time_ms == ranked.candidate.response_time_ms
        assert ranked.label == ranked.candidate.label

    def test_deterministic(self, toy_candidates):
        first = [r.label for r in rank_candidates(toy_candidates, top_fraction=0.5)]
        second = [r.label for r in rank_candidates(list(reversed(toy_candidates)), top_fraction=0.5)]
        assert first == second

    def test_invalid_arguments(self, toy_candidates):
        with pytest.raises(AdvisorError):
            rank_candidates([], top_fraction=0.5)
        with pytest.raises(AdvisorError):
            rank_candidates(toy_candidates, top_fraction=0.0)
        with pytest.raises(AdvisorError):
            rank_candidates(toy_candidates, top_fraction=1.5)
        with pytest.raises(AdvisorError):
            rank_candidates(toy_candidates, top_candidates=0)

    def test_duplicate_objects_get_one_rank_per_slot(self, toy_candidates):
        """Regression: the rank map used to key on id(candidate), so a list
        holding the same object twice collapsed both slots onto one rank."""
        duplicated = [toy_candidates[0], toy_candidates[0], toy_candidates[1]]
        ranked = rank_candidates(duplicated, top_fraction=1.0)
        assert len(ranked) == 3
        assert sorted(r.io_rank for r in ranked) == [1, 2, 3]
        assert [r.final_rank for r in ranked] == [1, 2, 3]


class _StubEvaluation:
    """Bare evaluation stub: no columnar block, forcing the property fallback."""

    columns = None


@dataclass
class _StubCandidate:
    label: str
    fragment_count: int
    io_cost_ms: float
    response_time_ms: float

    evaluation = _StubEvaluation()


def _assert_rankings_identical(candidates, top_fraction, top_candidates):
    scalar = rank_candidates(
        candidates, top_fraction=top_fraction, top_candidates=top_candidates
    )
    columnar = rank_candidates_columnar(
        candidates, top_fraction=top_fraction, top_candidates=top_candidates
    )
    assert len(scalar) == len(columnar)
    for left, right in zip(scalar, columnar):
        assert left.candidate is right.candidate
        assert left.io_rank == right.io_rank
        assert left.final_rank == right.final_rank


# Tiny value pools force heavy ties on every key component.
_TIE_HEAVY_CANDIDATES = st.lists(
    st.builds(
        _StubCandidate,
        label=st.sampled_from(["a", "b", "c", "aa"]),
        fragment_count=st.integers(min_value=1, max_value=3),
        io_cost_ms=st.sampled_from([1.0, 2.0, 2.5]),
        response_time_ms=st.sampled_from([0.5, 1.0, 1.5]),
    ),
    min_size=1,
    max_size=12,
)


class TestColumnarParity:
    """rank_candidates_columnar must be bit-identical to the scalar reference."""

    @pytest.mark.parametrize("top_fraction", [0.01, 0.25, 0.5, 1.0])
    @pytest.mark.parametrize("top_candidates", [1, 2, 10])
    def test_evaluated_candidates_parity(
        self, toy_candidates, top_fraction, top_candidates
    ):
        # Real evaluated candidates carry columnar blocks, so this covers the
        # metric-cube accumulation path of the totals.
        _assert_rankings_identical(toy_candidates, top_fraction, top_candidates)

    def test_duplicate_objects_parity(self, toy_candidates):
        duplicated = [toy_candidates[0]] * 3 + list(toy_candidates)
        _assert_rankings_identical(duplicated, 1.0, 10)

    def test_single_candidate(self, toy_candidates):
        _assert_rankings_identical(toy_candidates[:1], 0.25, 10)

    def test_invalid_arguments(self, toy_candidates):
        with pytest.raises(AdvisorError):
            rank_candidates_columnar([], top_fraction=0.5)
        with pytest.raises(AdvisorError):
            rank_candidates_columnar(toy_candidates, top_fraction=0.0)
        with pytest.raises(AdvisorError):
            rank_candidates_columnar(toy_candidates, top_fraction=1.5)
        with pytest.raises(AdvisorError):
            rank_candidates_columnar(toy_candidates, top_candidates=0)

    @settings(max_examples=200, deadline=None)
    @given(
        candidates=_TIE_HEAVY_CANDIDATES,
        top_fraction=st.floats(
            min_value=0.01, max_value=1.0, allow_nan=False, allow_infinity=False
        ),
        top_candidates=st.integers(min_value=1, max_value=12),
    )
    def test_property_parity_on_tie_heavy_inputs(
        self, candidates, top_fraction, top_candidates
    ):
        _assert_rankings_identical(candidates, top_fraction, top_candidates)
