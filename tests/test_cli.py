"""Tests for the command-line front end (repro.cli)."""

from __future__ import annotations

import json
import re
import sys

import pytest

from repro.cli import (
    _engine_options,
    _resolve_inputs,
    build_parser,
    example_config,
    load_config,
    main,
)


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_recommend_defaults(self):
        args = build_parser().parse_args(["recommend"])
        assert args.dataset == "apb1"
        # System/dataset flags default to None so an explicit value is
        # detectable (config-file override precedence); the effective
        # defaults are applied late, during input resolution.
        assert args.disks is None
        assert args.architecture is None
        assert args.scale is None
        assert args.skew is None
        assert args.top == 10
        _schema, _workload, system = _resolve_inputs(args)
        assert system.num_disks == 64
        assert system.architecture.value == "shared_disk"

    def test_simulate_arguments(self):
        args = build_parser().parse_args(
            ["simulate", "--dataset", "retail", "--queries", "5", "--seed", "9"]
        )
        assert args.dataset == "retail"
        assert args.queries == 5
        assert args.seed == 9


class TestCommands:
    COMMON = ["--scale", "0.01", "--disks", "16", "--max-fragments", "20000"]

    def test_recommend_table(self, capsys):
        assert main(["recommend", *self.COMMON, "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert "Top fragmentation candidates" in out
        assert "I/O cost" in out

    def test_recommend_json(self, capsys):
        assert main(["recommend", *self.COMMON, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["evaluated"] > 0
        assert payload["ranked"]
        assert "fragmentation" in payload["ranked"][0]

    def test_analyze(self, capsys):
        assert main(["analyze", *self.COMMON]) == 0
        out = capsys.readouterr().out
        assert "Database statistic" in out
        assert "Physical allocation scheme" in out

    def test_report(self, capsys):
        assert main(["report", *self.COMMON, "--detail-top", "1"]) == 0
        out = capsys.readouterr().out
        assert "WARLOCK recommendation" in out
        assert "Prefetch granule suggestion" in out

    def test_simulate(self, capsys):
        assert main(["simulate", *self.COMMON, "--queries", "2"]) == 0
        out = capsys.readouterr().out
        assert "Simulated workload" in out
        assert "Analytical prediction" in out

    def test_retail_dataset(self, capsys):
        assert main(["recommend", "--dataset", "retail", *self.COMMON, "--top", "2"]) == 0
        assert "Top fragmentation candidates" in capsys.readouterr().out

    def test_suggest(self, capsys):
        assert main(["suggest", *self.COMMON]) == 0
        out = capsys.readouterr().out
        assert "Dimension access shares" in out
        assert "Suggested fragmentation dimensions" in out
        assert "time" in out

    def test_tune(self, capsys):
        assert main(["tune", *self.COMMON]) == 0
        out = capsys.readouterr().out
        assert "Disk-count study" in out
        assert "Architecture study" in out
        assert "Prefetch study" in out

    def test_example_config_prints_json(self, capsys):
        assert main(["example-config"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "schema" in payload and "workload" in payload and "system" in payload

    def test_error_exit_code(self, capsys):
        # A max-fragments threshold of 1 excludes every candidate.
        code = main(["recommend", *self.COMMON[:-2], "--max-fragments", "1"])
        assert code == 2
        assert "error" in capsys.readouterr().err


class TestJobsFlag:
    def test_jobs_default_is_adaptive(self):
        # The argparse default is None (so a config file's engine block can
        # supply a value below an explicit flag); the resolver applies "auto".
        args = build_parser().parse_args(["recommend"])
        assert args.jobs is None
        assert _engine_options(args).jobs == "auto"

    def test_jobs_accepts_auto(self):
        args = build_parser().parse_args(["recommend", "--jobs", "auto"])
        assert args.jobs == "auto"

    def test_jobs_accepts_positive_values(self):
        for value in ("1", "2", "8"):
            args = build_parser().parse_args(["recommend", "--jobs", value])
            assert args.jobs == int(value)

    def test_jobs_rejects_zero(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["recommend", "--jobs", "0"])
        assert excinfo.value.code == 2
        assert "positive integer" in capsys.readouterr().err

    def test_jobs_rejects_negative_and_garbage(self, capsys):
        for bad in ("-3", "two"):
            with pytest.raises(SystemExit) as excinfo:
                build_parser().parse_args(["recommend", "--jobs", bad])
            assert excinfo.value.code == 2

    def test_jobs_in_help_text(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["recommend", "--help"])
        help_text = capsys.readouterr().out
        assert "--jobs" in help_text
        assert "worker processes" in help_text

    def test_recommend_with_jobs_matches_serial(self, capsys):
        common = ["--scale", "0.01", "--disks", "16", "--max-fragments", "20000"]
        assert main(["recommend", *common, "--json", "--jobs", "1"]) == 0
        serial = json.loads(capsys.readouterr().out)
        assert main(["recommend", *common, "--json", "--jobs", "2"]) == 0
        parallel = json.loads(capsys.readouterr().out)
        assert serial == parallel


class TestVectorizeFlag:
    COMMON = ["--scale", "0.01", "--disks", "16", "--max-fragments", "20000"]

    def test_vectorized_is_the_default(self):
        args = build_parser().parse_args(["recommend"])
        assert args.no_vectorize is False

    def test_no_vectorize_in_help_text(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["recommend", "--help"])
        assert "--no-vectorize" in capsys.readouterr().out

    def test_no_vectorize_matches_vectorized_output(self, capsys):
        assert main(["recommend", *self.COMMON, "--json"]) == 0
        vectorized = json.loads(capsys.readouterr().out)
        assert main(["recommend", *self.COMMON, "--json", "--no-vectorize"]) == 0
        scalar = json.loads(capsys.readouterr().out)
        assert vectorized == scalar

    def test_vectorize_mode_flag_outputs_are_identical(self, capsys):
        outputs = []
        for mode in ("candidates", "classes", "none"):
            assert (
                main(["recommend", *self.COMMON, "--json", "--vectorize", mode]) == 0
            )
            outputs.append(json.loads(capsys.readouterr().out))
        assert outputs[0] == outputs[1] == outputs[2]

    def test_vectorize_mode_rejects_unknown_values(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["recommend", "--vectorize", "rows"])

    def test_no_vectorize_wins_over_vectorize_mode(self):
        from repro.cli import _engine_options

        args = build_parser().parse_args(
            ["recommend", "--no-vectorize", "--vectorize", "candidates"]
        )
        assert _engine_options(args).vectorize_mode == "none"


class TestModuleSmoke:
    """`python -m repro.cli <command>` exits 0 on the bundled example config."""

    COMMON = ["--scale", "0.01", "--disks", "8", "--max-fragments", "20000"]

    @pytest.fixture
    def config_file(self, tmp_path):
        path = tmp_path / "example.json"
        path.write_text(json.dumps(example_config()))
        return str(path)

    def test_module_entrypoint_runs(self, config_file):
        import subprocess
        import sys

        result = subprocess.run(
            [sys.executable, "-m", "repro.cli", "recommend", "--config", config_file, "--top", "2"],
            capture_output=True,
            text=True,
        )
        assert result.returncode == 0, result.stderr
        assert "Top fragmentation candidates" in result.stdout

    @pytest.mark.parametrize("command", ["recommend", "report", "suggest"])
    def test_advisor_commands_exit_zero_on_example_config(self, command, config_file, capsys):
        assert main([command, "--config", config_file]) == 0
        assert capsys.readouterr().out

    def test_recommend_jobs_on_example_config(self, config_file, capsys):
        assert main(["recommend", "--config", config_file, "--jobs", "2"]) == 0
        assert "Top fragmentation candidates" in capsys.readouterr().out


class TestConfigOverrides:
    """Explicit --disks/--architecture override the config file's system block."""

    @pytest.fixture
    def config_file(self, tmp_path):
        path = tmp_path / "config.json"
        path.write_text(json.dumps(example_config()))
        return str(path)

    def test_config_system_block_is_the_default(self, config_file):
        args = build_parser().parse_args(["recommend", "--config", config_file])
        _schema, _workload, system = _resolve_inputs(args)
        # The example config declares 32 disks.
        assert system.num_disks == 32

    def test_explicit_disks_override_config(self, config_file):
        args = build_parser().parse_args(
            ["recommend", "--config", config_file, "--disks", "8"]
        )
        _schema, _workload, system = _resolve_inputs(args)
        assert system.num_disks == 8

    def test_explicit_architecture_overrides_config(self, config_file):
        args = build_parser().parse_args(
            ["recommend", "--config", config_file, "--architecture", "shared_everything"]
        )
        _schema, _workload, system = _resolve_inputs(args)
        assert system.architecture.value == "shared_everything"

    def test_overridden_config_run_exits_zero(self, config_file, capsys):
        code = main(
            ["recommend", "--config", config_file, "--disks", "8", "--top", "2"]
        )
        assert code == 0
        assert "Top fragmentation candidates" in capsys.readouterr().out

    @pytest.mark.parametrize("flag,value", [("--scale", "0.5"), ("--skew", "1.0")])
    def test_scale_and_skew_error_with_config(self, config_file, capsys, flag, value):
        # --scale/--skew shape the bundled datasets; they can never apply to
        # a config-file schema, so passing them is an error, not a silent no-op.
        code = main(["recommend", "--config", config_file, flag, value])
        assert code == 2
        err = capsys.readouterr().err
        assert flag in err and "--config" in err


class TestCacheDirFlags:
    COMMON = ["--scale", "0.01", "--disks", "16", "--max-fragments", "20000"]

    def test_cache_dir_defaults_to_env_var(self, monkeypatch):
        monkeypatch.setenv("WARLOCK_CACHE_DIR", "/tmp/warlock-cache")
        args = build_parser().parse_args(["recommend"])
        assert _engine_options(args).cache_dir == "/tmp/warlock-cache"

    def test_explicit_flag_overrides_env_var(self, monkeypatch):
        monkeypatch.setenv("WARLOCK_CACHE_DIR", "/tmp/warlock-cache")
        args = build_parser().parse_args(["recommend", "--cache-dir", "/tmp/flagged"])
        assert _engine_options(args).cache_dir == "/tmp/flagged"

    def test_cache_dir_defaults_to_none_without_env(self, monkeypatch):
        monkeypatch.delenv("WARLOCK_CACHE_DIR", raising=False)
        args = build_parser().parse_args(["recommend"])
        assert args.cache_dir is None
        assert args.no_cache_persist is False
        assert _engine_options(args).cache_dir is None

    def test_flags_in_help_text(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["recommend", "--help"])
        help_text = capsys.readouterr().out
        assert "--cache-dir" in help_text
        assert "--no-cache-persist" in help_text

    def test_warm_invocation_reports_disk_hits_and_matches_cold(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        assert main(["recommend", *self.COMMON, "--json", "--cache-dir", cache_dir]) == 0
        captured = capsys.readouterr()
        cold = json.loads(captured.out)
        assert "persistent cache" in captured.err
        assert main(["recommend", *self.COMMON, "--json", "--cache-dir", cache_dir]) == 0
        captured = capsys.readouterr()
        warm = json.loads(captured.out)
        # The warm process answers the sweep from the disk store ...
        match = re.search(r"disk hits (\d+)/(\d+)", captured.err)
        assert match, captured.err
        hits, lookups = map(int, match.groups())
        assert lookups > 0 and hits / lookups >= 0.9
        # ... and its recommendation is identical to the cold run's.
        assert warm == cold

    def test_unwritable_store_is_reported_not_fatal(self, tmp_path, capsys):
        blocker = tmp_path / "not-a-directory"
        blocker.write_text("occupied")
        code = main(["recommend", *self.COMMON, "--cache-dir", str(blocker)])
        assert code == 0
        captured = capsys.readouterr()
        assert "Top fragmentation candidates" in captured.out
        assert "store not writable" in captured.err

    def test_no_cache_persist_disables_the_store(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        code = main(
            [
                "recommend",
                *self.COMMON,
                "--cache-dir",
                cache_dir,
                "--no-cache-persist",
            ]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "persistent cache" not in captured.err
        assert not (tmp_path / "cache").exists()


class TestEngineOptionsResolver:
    """One resolver, one precedence order: flags > env > config file > defaults."""

    COMMON = ["--scale", "0.01", "--disks", "16", "--max-fragments", "20000"]

    @pytest.fixture
    def config_file(self, tmp_path):
        payload = example_config()
        payload["engine"] = {"jobs": 2, "vectorize": False, "cache_dir": "/tmp/from-config"}
        path = tmp_path / "config.json"
        path.write_text(json.dumps(payload))
        return str(path)

    def test_config_engine_block_supplies_defaults(self, config_file, monkeypatch):
        monkeypatch.delenv("WARLOCK_CACHE_DIR", raising=False)
        args = build_parser().parse_args(["recommend", "--config", config_file])
        options = _engine_options(args)
        assert options.jobs == 2
        assert options.vectorize is False
        assert options.cache_dir == "/tmp/from-config"

    def test_flags_override_config(self, config_file, monkeypatch):
        monkeypatch.delenv("WARLOCK_CACHE_DIR", raising=False)
        args = build_parser().parse_args(
            ["recommend", "--config", config_file, "--jobs", "8",
             "--cache-dir", "/tmp/from-flag"]
        )
        options = _engine_options(args)
        assert options.jobs == 8
        assert options.cache_dir == "/tmp/from-flag"

    def test_env_overrides_config_but_not_flags(self, config_file, monkeypatch):
        monkeypatch.setenv("WARLOCK_CACHE_DIR", "/tmp/from-env")
        args = build_parser().parse_args(["recommend", "--config", config_file])
        assert _engine_options(args).cache_dir == "/tmp/from-env"
        args = build_parser().parse_args(
            ["recommend", "--config", config_file, "--cache-dir", "/tmp/from-flag"]
        )
        assert _engine_options(args).cache_dir == "/tmp/from-flag"

    def test_unknown_engine_key_in_config_errors(self, tmp_path, capsys):
        payload = example_config()
        payload["engine"] = {"job": 2}
        path = tmp_path / "config.json"
        path.write_text(json.dumps(payload))
        assert main(["recommend", "--config", str(path)]) == 2
        assert "unknown engine option" in capsys.readouterr().err

    def test_no_cache_persist_without_a_dir_errors_on_every_subcommand(
        self, monkeypatch, capsys
    ):
        monkeypatch.delenv("WARLOCK_CACHE_DIR", raising=False)
        for command in ("recommend", "analyze", "report", "simulate", "suggest", "tune"):
            code = main([command, *self.COMMON, "--no-cache-persist"])
            assert code == 2, command
            err = capsys.readouterr().err
            assert "--no-cache-persist" in err and "nothing to disable" in err

    def test_no_cache_persist_with_env_dir_is_valid(self, monkeypatch, capsys):
        monkeypatch.setenv("WARLOCK_CACHE_DIR", "/tmp/warlock-unused")
        args = build_parser().parse_args(["recommend", "--no-cache-persist"])
        assert _engine_options(args).cache_dir is None


class TestProgressFlag:
    COMMON = ["--scale", "0.01", "--disks", "16", "--max-fragments", "20000"]

    def test_progress_flag_in_help_text(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["recommend", "--help"])
        assert "--progress" in capsys.readouterr().out

    def test_progress_meter_renders_and_completes(self, capsys):
        assert main(["recommend", *self.COMMON, "--progress", "--top", "3"]) == 0
        captured = capsys.readouterr()
        assert "Top fragmentation candidates" in captured.out
        assert "warlock: evaluate" in captured.err
        # The meter's final update reports the full sweep (completed == total).
        last = captured.err.rstrip().splitlines()[-1].split("\r")[-1]
        assert re.search(r"evaluate (\d+)/(\1) candidates", last), last

    def test_progress_off_by_default(self, capsys):
        assert main(["recommend", *self.COMMON, "--top", "3"]) == 0
        assert "warlock: evaluate" not in capsys.readouterr().err

    def test_non_tty_meter_emits_newline_records_without_cr(self, capsys):
        # Regression: the meter used to print carriage-returned frames
        # unconditionally, so redirected stderr (CI logs, `2>file`) collected
        # one garbled line.  Without a TTY every event must be its own
        # newline-terminated record and no \r may appear at all.
        assert not sys.stderr.isatty()  # capsys replaces stderr with a pipe
        assert main(["recommend", *self.COMMON, "--progress", "--top", "3"]) == 0
        err = capsys.readouterr().err
        assert "\r" not in err
        frames = [line for line in err.splitlines() if line.startswith("warlock: ")]
        assert len(frames) > 1  # one record per chunk, not one mutated line

    def test_tty_meter_animates_with_carriage_returns(self, capsys, monkeypatch):
        from repro.api import ProgressEvent
        from repro.cli import _progress_meter, build_parser

        monkeypatch.setattr(sys.stderr, "isatty", lambda: True, raising=False)
        args = build_parser().parse_args(["recommend", "--progress"])
        meter = _progress_meter(args)
        meter(ProgressEvent(phase="evaluate", completed=1, total=2, chunk=1,
                            num_chunks=2, completed_units=6, total_units=12))
        meter(ProgressEvent(phase="evaluate", completed=2, total=2, chunk=2,
                            num_chunks=2, completed_units=12, total_units=12))
        err = capsys.readouterr().err
        # Animated frames share one line (\r prefix); only the final,
        # complete frame ends with a newline so the result starts clean.
        assert err.startswith("\r")
        assert err.count("\r") == 2
        assert err.endswith("\n") and err.count("\n") == 1


class TestSigintCancellation:
    COMMON = ["--scale", "0.01", "--disks", "16", "--max-fragments", "20000"]

    def test_first_sigint_cancels_token_second_raises(self):
        import signal as signal_module

        from repro.api import CancellationToken
        from repro.cli import _install_sigint

        token = CancellationToken()
        restore = _install_sigint(token)
        try:
            handler = signal_module.getsignal(signal_module.SIGINT)
            handler(signal_module.SIGINT, None)
            assert token.cancelled  # first Ctrl-C: cooperative cancel
            with pytest.raises(KeyboardInterrupt):
                handler(signal_module.SIGINT, None)  # second: escape hatch
        finally:
            restore()

    def test_cancelled_run_exits_130_with_a_message(self, capsys, monkeypatch):
        from repro.core import Warlock
        from repro.errors import EvaluationCancelled

        def cancelled(self, **kwargs):
            raise EvaluationCancelled("sweep cancelled at chunk 3/9")

        monkeypatch.setattr(Warlock, "recommend", cancelled)
        assert main(["recommend", *self.COMMON]) == 130
        err = capsys.readouterr().err
        assert "warlock: cancelled" in err
        assert "chunk 3/9" in err

    def test_off_main_thread_install_is_a_noop(self):
        import threading

        from repro.api import CancellationToken
        from repro.cli import _install_sigint

        outcome = {}

        def run():
            restore = _install_sigint(CancellationToken())
            outcome["restored"] = restore()  # must not raise

        thread = threading.Thread(target=run)
        thread.start()
        thread.join()
        assert "restored" in outcome


class TestServeParser:
    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.host == "127.0.0.1"
        assert args.port == 8642
        assert args.max_sessions == 8
        assert args.idle_timeout is None
        assert args.request_workers == 4
        assert args.queue_capacity == 64
        assert args.warehouse is None

    def test_serve_accepts_the_common_flag_stack(self):
        args = build_parser().parse_args(
            ["serve", "--port", "0", "--warehouse", "shop", "--dataset", "retail",
             "--disks", "32", "--jobs", "2", "--max-sessions", "2",
             "--idle-timeout", "30", "--request-workers", "8"]
        )
        assert args.warehouse == "shop"
        assert args.dataset == "retail"
        assert args.idle_timeout == 30.0
        # The serve command rides the same EngineOptions resolver stack.
        assert _engine_options(args).jobs == 2


class TestSimulateUsesEvaluatedPrefetch:
    COMMON = ["--scale", "0.01", "--disks", "16", "--max-fragments", "20000"]

    def test_simulate_reuses_the_candidate_prefetch(self, monkeypatch, capsys):
        # The evaluation already resolved the candidate's prefetch setting;
        # re-deriving it from scratch through the scalar path was wasted
        # recomputation and a second code path that could drift.  The spy
        # asserts the simulator receives the exact setting object the
        # evaluation attached to the candidate.
        from repro.simulation import DiskSimulator

        seen = {}
        original = DiskSimulator.run_workload

        def spy(self, layout, workload, scheme, allocation, prefetch, **kwargs):
            seen["prefetch"] = prefetch
            seen["layout"] = layout
            return original(self, layout, workload, scheme, allocation, prefetch, **kwargs)

        monkeypatch.setattr(DiskSimulator, "run_workload", spy)
        assert main(["simulate", *self.COMMON, "--queries", "1"]) == 0
        assert "Simulated workload" in capsys.readouterr().out
        # Same inputs, same pipeline: the simulated prefetch must be the one
        # the (deterministic) evaluation resolved for the best candidate.
        from repro.cli import _advisor

        args = build_parser().parse_args(["simulate", *self.COMMON, "--queries", "1"])
        candidate = _advisor(args).recommend().best
        assert seen["prefetch"] == candidate.prefetch
        assert seen["layout"].spec.label == candidate.label

    def test_cli_no_longer_rederives_prefetch(self):
        # The old code path imported resolve_prefetch_setting to recompute
        # the setting the evaluation had already resolved; its absence pins
        # the single-code-path fix.
        import repro.cli as cli_module

        assert not hasattr(cli_module, "resolve_prefetch_setting")


class TestConfigFile:
    def test_roundtrip_through_json_config(self, tmp_path, capsys):
        config_path = tmp_path / "config.json"
        config_path.write_text(json.dumps(example_config()))
        schema, workload, system = load_config(str(config_path))
        assert schema.name == "my_warehouse"
        assert len(workload) == 2
        assert system.num_disks == 32
        workload.validate(schema)

    def test_cli_with_config_file(self, tmp_path, capsys):
        config_path = tmp_path / "config.json"
        config_path.write_text(json.dumps(example_config()))
        assert main(["recommend", "--config", str(config_path), "--top", "3"]) == 0
        assert "Top fragmentation candidates" in capsys.readouterr().out


class TestFabricCli:
    def test_fabric_flags_parse(self):
        args = build_parser().parse_args(
            [
                "recommend",
                "--fabric",
                "127.0.0.1:9000",
                "--fabric-grace",
                "5",
                "--fabric-lease",
                "10",
            ]
        )
        assert args.fabric == "127.0.0.1:9000"
        assert args.fabric_grace == 5.0
        assert args.fabric_lease == 10.0

    def test_fabric_defaults_to_off(self):
        args = build_parser().parse_args(["recommend"])
        assert args.fabric is None

    def test_worker_subcommand_parses(self):
        args = build_parser().parse_args(["worker", "127.0.0.1:8643"])
        assert args.coordinator == "127.0.0.1:8643"
        assert args.max_attempts == 30
        assert args.connect_deadline == 60.0

    def test_worker_against_dead_coordinator_exits_gracefully(self, capsys):
        from repro.cli import main

        # One attempt against a port nobody listens on: the retry budget is
        # exhausted immediately and the worker ends without a traceback.
        code = main(
            ["worker", "127.0.0.1:9", "--max-attempts", "1", "--connect-deadline", "0"]
        )
        assert code == 0
        err = capsys.readouterr().err
        assert "worker" in err

    def test_serve_request_timeout_flag(self):
        args = build_parser().parse_args(["serve", "--request-timeout", "30"])
        assert args.request_timeout == 30.0
        args = build_parser().parse_args(["serve"])
        assert args.request_timeout is None
