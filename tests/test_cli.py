"""Tests for the command-line front end (repro.cli)."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, example_config, load_config, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_recommend_defaults(self):
        args = build_parser().parse_args(["recommend"])
        assert args.dataset == "apb1"
        assert args.disks == 64
        assert args.top == 10

    def test_simulate_arguments(self):
        args = build_parser().parse_args(
            ["simulate", "--dataset", "retail", "--queries", "5", "--seed", "9"]
        )
        assert args.dataset == "retail"
        assert args.queries == 5
        assert args.seed == 9


class TestCommands:
    COMMON = ["--scale", "0.01", "--disks", "16", "--max-fragments", "20000"]

    def test_recommend_table(self, capsys):
        assert main(["recommend", *self.COMMON, "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert "Top fragmentation candidates" in out
        assert "I/O cost" in out

    def test_recommend_json(self, capsys):
        assert main(["recommend", *self.COMMON, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["evaluated"] > 0
        assert payload["ranked"]
        assert "fragmentation" in payload["ranked"][0]

    def test_analyze(self, capsys):
        assert main(["analyze", *self.COMMON]) == 0
        out = capsys.readouterr().out
        assert "Database statistic" in out
        assert "Physical allocation scheme" in out

    def test_report(self, capsys):
        assert main(["report", *self.COMMON, "--detail-top", "1"]) == 0
        out = capsys.readouterr().out
        assert "WARLOCK recommendation" in out
        assert "Prefetch granule suggestion" in out

    def test_simulate(self, capsys):
        assert main(["simulate", *self.COMMON, "--queries", "2"]) == 0
        out = capsys.readouterr().out
        assert "Simulated workload" in out
        assert "Analytical prediction" in out

    def test_retail_dataset(self, capsys):
        assert main(["recommend", "--dataset", "retail", *self.COMMON, "--top", "2"]) == 0
        assert "Top fragmentation candidates" in capsys.readouterr().out

    def test_suggest(self, capsys):
        assert main(["suggest", *self.COMMON]) == 0
        out = capsys.readouterr().out
        assert "Dimension access shares" in out
        assert "Suggested fragmentation dimensions" in out
        assert "time" in out

    def test_tune(self, capsys):
        assert main(["tune", *self.COMMON]) == 0
        out = capsys.readouterr().out
        assert "Disk-count study" in out
        assert "Architecture study" in out
        assert "Prefetch study" in out

    def test_example_config_prints_json(self, capsys):
        assert main(["example-config"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "schema" in payload and "workload" in payload and "system" in payload

    def test_error_exit_code(self, capsys):
        # A max-fragments threshold of 1 excludes every candidate.
        code = main(["recommend", *self.COMMON[:-2], "--max-fragments", "1"])
        assert code == 2
        assert "error" in capsys.readouterr().err


class TestConfigFile:
    def test_roundtrip_through_json_config(self, tmp_path, capsys):
        config_path = tmp_path / "config.json"
        config_path.write_text(json.dumps(example_config()))
        schema, workload, system = load_config(str(config_path))
        assert schema.name == "my_warehouse"
        assert len(workload) == 2
        assert system.num_disks == 32
        workload.validate(schema)

    def test_cli_with_config_file(self, tmp_path, capsys):
        config_path = tmp_path / "config.json"
        config_path.write_text(json.dumps(example_config()))
        assert main(["recommend", "--config", str(config_path), "--top", "3"]) == 0
        assert "Top fragmentation candidates" in capsys.readouterr().out
