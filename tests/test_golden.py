"""Golden-file end-to-end regression tests.

The advisor pipeline is deterministic: same schema, workload and system in —
same ranked recommendation out, bit for bit.  These tests pin that promise to
checked-in snapshots: the full ranked output of the APB-1 and retail reference
runs (candidate order, ranks, fragment counts, costs rounded to 6 decimals,
prefetch granules, allocation schemes) lives under ``tests/golden/`` and every
run must reproduce it exactly.  Any model change that moves a number — however
slightly — fails here first, which separates deliberate model changes (update
the snapshot, explain why) from accidental ones (fix the bug).

Regenerate after a *deliberate* model change with::

    PYTHONPATH=src python tests/test_golden.py --regenerate
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro import (
    AdvisorConfig,
    EngineOptions,
    SystemParameters,
    Warlock,
    apb1_query_mix,
    apb1_schema,
    retail_query_mix,
    retail_schema,
)

GOLDEN_DIR = Path(__file__).parent / "golden"

#: The pinned reference runs.  Fixed scales/disks; the advisor itself takes no
#: random seed — determinism is exactly what these tests assert.
SCENARIOS = {
    "apb1": dict(dataset="apb1", scale=0.05, disks=64, max_fragments=100_000, top=10),
    "retail": dict(dataset="retail", scale=0.1, disks=32, max_fragments=50_000, top=10),
}


def _inputs(scenario: dict):
    if scenario["dataset"] == "apb1":
        schema = apb1_schema(scale=scenario["scale"])
        workload = apb1_query_mix()
    else:
        schema = retail_schema(scale=scenario["scale"])
        workload = retail_query_mix()
    system = SystemParameters(num_disks=scenario["disks"])
    config = AdvisorConfig(
        top_candidates=scenario["top"], max_fragments=scenario["max_fragments"]
    )
    return schema, workload, system, config


def _advisor(scenario: dict, vectorize: bool = True) -> Warlock:
    schema, workload, system, config = _inputs(scenario)
    return Warlock(
        schema, workload, system, config, options=EngineOptions(vectorize=vectorize)
    )


def build_snapshot(scenario: dict, vectorize: bool = True) -> dict:
    """The golden payload of one reference run (all floats rounded to 6 dp)."""
    recommendation = _advisor(scenario, vectorize=vectorize).recommend()
    report = recommendation.exclusion_report
    return {
        "scenario": scenario,
        "candidate_space": {
            "considered": report.considered,
            "excluded": report.excluded_count,
            "evaluated": report.surviving_count,
        },
        "ranked": [
            {
                "final_rank": ranked.final_rank,
                "io_rank": ranked.io_rank,
                "label": ranked.label,
                "fragments": ranked.candidate.fragment_count,
                "io_cost_ms": round(ranked.io_cost_ms, 6),
                "response_time_ms": round(ranked.response_time_ms, 6),
                "pages_accessed": round(ranked.candidate.pages_accessed, 6),
                "io_requests": round(ranked.candidate.io_requests, 6),
                "prefetch_fact_pages": ranked.candidate.prefetch.fact_pages,
                "prefetch_bitmap_pages": ranked.candidate.prefetch.bitmap_pages,
                "allocation_scheme": ranked.candidate.allocation.scheme,
                "occupancy_cv": round(ranked.candidate.allocation.occupancy_cv, 6),
            }
            for ranked in recommendation.ranked
        ],
        "evaluated_labels": [c.label for c in recommendation.evaluated],
    }


def _golden_path(name: str) -> Path:
    return GOLDEN_DIR / f"{name}_recommendation.json"


@pytest.mark.parametrize(
    "vectorize",
    ["candidates", "classes", False],
    ids=["candidate-axis", "class-axis", "scalar"],
)
@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_recommendation_matches_golden_snapshot(name, vectorize):
    """Every cost path must reproduce the pinned snapshot bit-for-bit."""
    path = _golden_path(name)
    assert path.exists(), (
        f"golden snapshot {path} missing; regenerate with "
        f"'PYTHONPATH=src python tests/test_golden.py --regenerate'"
    )
    expected = json.loads(path.read_text())
    actual = build_snapshot(SCENARIOS[name], vectorize=vectorize)
    assert actual == expected, (
        f"the {name} reference run no longer matches its golden snapshot; "
        f"if the model change is deliberate, regenerate with "
        f"'PYTHONPATH=src python tests/test_golden.py --regenerate' and "
        f"explain the delta in the commit"
    )


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_golden_runs_are_reproducible_in_process(name):
    """Two in-process runs produce identical snapshots (no hidden state)."""
    assert build_snapshot(SCENARIOS[name]) == build_snapshot(SCENARIOS[name])


# ---------------------------------------------------------------------------
# compare_specs golden: the rendered comparison table is pinned too
# ---------------------------------------------------------------------------

def build_compare_specs_text() -> str:
    """The pinned ``compare_specs`` rendering: top-3 APB-1 specs vs baseline."""
    from repro.analysis import compare_specs
    from repro.fragmentation import FragmentationSpec

    schema, workload, system, config = _inputs(SCENARIOS["apb1"])
    advisor = Warlock(schema, workload, system, config)
    recommendation = advisor.recommend()
    specs = [ranked.candidate.spec for ranked in recommendation.ranked[:3]]
    return compare_specs(
        schema,
        workload,
        system,
        specs,
        baseline_spec=FragmentationSpec.none(),
        config=config,
        cache=advisor.cache,
    )


def _compare_specs_path() -> Path:
    return GOLDEN_DIR / "apb1_compare_specs.txt"


def test_compare_specs_matches_golden_snapshot():
    path = _compare_specs_path()
    assert path.exists(), (
        f"golden snapshot {path} missing; regenerate with "
        f"'PYTHONPATH=src python tests/test_golden.py --regenerate'"
    )
    assert build_compare_specs_text() + "\n" == path.read_text(), (
        "the compare_specs rendering no longer matches its golden snapshot; "
        "if the change is deliberate, regenerate and explain the delta"
    )


def regenerate() -> None:
    GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
    for name, scenario in sorted(SCENARIOS.items()):
        path = _golden_path(name)
        path.write_text(json.dumps(build_snapshot(scenario), indent=2) + "\n")
        print(f"wrote {path}")
    _compare_specs_path().write_text(build_compare_specs_text() + "\n")
    print(f"wrote {_compare_specs_path()}")


if __name__ == "__main__":
    import sys

    if "--regenerate" in sys.argv:
        regenerate()
    else:
        print(__doc__)
