"""Parity harness: the vectorized class-axis sweep equals the scalar path, bitwise.

The batched cost path (:mod:`repro.costmodel.batch`) promises to be the *same
model* as the scalar reference implementation — not an approximation.  This
module is the harness that proves it:

* a hypothesis sweep draws random schemas, workloads (including multi-value
  restrictions), fragmentation specs, bitmap-scheme exclusions, disk counts
  and prefetch settings, and asserts **field-by-field equality** of
  ``AccessStructure``, ``QueryAccessProfile`` and ``QueryCost`` between the
  two paths (floats compared with ``==``, i.e. bit-identical);
* whole-advisor checks assert identical recommendation fingerprints for the
  vectorized and the scalar path in serial, ``jobs=4``, cold-cache and
  warm-cache modes;
* the columnar worker→parent result batches re-materialize candidates
  exactly, including across a pickle round-trip (the jobs=1-vs-4 transport).
"""

from __future__ import annotations

import dataclasses
import pickle

import pytest
from hypothesis import assume, given, settings, strategies as st

from repro import (
    AdvisorConfig,
    DimensionRestriction,
    EngineOptions,
    QueryClass,
    QueryMix,
    SystemParameters,
    Warlock,
    recommendation_fingerprint,
    synthetic_schema,
)
from repro.bitmap import design_bitmap_scheme
from repro.costmodel import (
    AccessStructureBatch2D,
    IOCostModel,
    compute_access_structure,
    compute_access_structure_batch,
    compute_access_structure_batch_candidates,
    estimate_access,
    estimate_access_batch,
    evaluate_workload_batch,
    evaluate_workload_batch_candidates,
    resolve_prefetch_setting,
    resolve_prefetch_setting_batch,
    resolve_prefetch_settings_batch_candidates,
)
from repro.costmodel.model import _positioning_page_equivalent
from repro.engine import CandidateResultBatch
from repro.engine.signature import recommendation_state
from repro.fragmentation import build_layout
from repro.storage import PrefetchSetting
from repro.workload import ClassMatrix
from repro.workload.generator import random_query_mix

MAX_FRAGMENTS = 30_000

PARITY_SETTINGS = settings(max_examples=25, deadline=None)


def _assert_fields_equal(scalar, batch, context: str) -> None:
    """Field-by-field equality of two frozen dataclass instances."""
    assert type(scalar) is type(batch)
    for field in dataclasses.fields(scalar):
        left = getattr(scalar, field.name)
        right = getattr(batch, field.name)
        assert left == right, (
            f"{context}: field {field.name!r} differs: {left!r} != {right!r}"
        )


def _scenario(draw):
    """Draw one random (schema, workload, system, specs, scheme) scenario."""
    schema_seed = draw(st.integers(min_value=0, max_value=50))
    num_dimensions = draw(st.integers(min_value=3, max_value=5))
    skewed = draw(st.booleans())
    schema = synthetic_schema(
        num_dimensions=num_dimensions,
        levels_per_dimension=draw(st.integers(min_value=2, max_value=3)),
        bottom_cardinality=draw(st.sampled_from([60, 150, 400])),
        fact_rows=draw(st.sampled_from([200_000, 2_000_000, 20_000_000])),
        skew_thetas=[0.0, 0.8][: 2 if skewed else 1],
        seed=schema_seed,
    )
    workload = random_query_mix(
        schema,
        num_classes=draw(st.integers(min_value=2, max_value=8)),
        seed=draw(st.integers(min_value=0, max_value=50)),
    )
    # Widen some point restrictions into IN-lists so value_count > 1 paths
    # (encoded-bitmap reads, ancestor expectations) are exercised.
    widened = []
    for query in workload:
        restrictions = []
        for restriction in query.restrictions:
            cardinality = schema.level_cardinality(
                restriction.dimension, restriction.level
            )
            value_count = min(
                cardinality, draw(st.sampled_from([1, 1, 2, 5, 17]))
            )
            restrictions.append(
                DimensionRestriction(
                    restriction.dimension, restriction.level, value_count
                )
            )
        widened.append(
            QueryClass(
                name=query.name,
                restrictions=restrictions,
                weight=query.weight,
                fact_table=query.fact_table,
            )
        )
    workload = QueryMix(widened)

    fixed_prefetch = draw(st.booleans())
    system = SystemParameters(
        num_disks=draw(st.sampled_from([1, 8, 64])),
        architecture=draw(st.sampled_from(["shared_disk", "shared_everything"])),
        **(
            {
                "prefetch_pages_fact": draw(st.sampled_from([1, 4, 32])),
                "prefetch_pages_bitmap": draw(st.sampled_from([1, 8])),
            }
            if fixed_prefetch
            else {}
        ),
    )

    scheme = design_bitmap_scheme(schema, workload)
    if len(scheme) > 1 and draw(st.booleans()):
        # Exclude a random index so forced-full-scan residuals appear.
        keys = [(index.dimension, index.level) for index in scheme]
        scheme = scheme.without(draw(st.sampled_from(keys)))

    advisor = Warlock(
        schema, workload, system, AdvisorConfig(max_fragments=MAX_FRAGMENTS)
    )
    try:
        specs, _ = advisor.generate_specs()
    except Exception:
        # Some drawn configurations exclude every candidate (tiny fact tables
        # on many disks); they exercise the thresholds, not the cost model.
        assume(False)
    spec = specs[draw(st.integers(min_value=0, max_value=len(specs) - 1))]
    return schema, workload, system, spec, scheme


class TestHypothesisSweep:
    """Random layouts/schemes/prefetch settings: scalar == vectorized, bitwise."""

    @PARITY_SETTINGS
    @given(data=st.data())
    def test_structures_profiles_and_costs_are_bit_identical(self, data):
        schema, workload, system, spec, scheme = _scenario(data.draw)
        layout = build_layout(
            schema,
            spec,
            page_size_bytes=system.page_size_bytes,
            max_fragments=MAX_FRAGMENTS,
        )
        matrix = ClassMatrix.compile(schema, workload, scheme)
        batch = compute_access_structure_batch(layout, matrix)
        ppe = _positioning_page_equivalent(system)

        # Access structures, field by field.
        for i, (query, _) in enumerate(workload.weighted_items()):
            scalar_structure = compute_access_structure(
                layout, query, scheme, validate=False
            )
            _assert_fields_equal(
                scalar_structure, batch.structure(i), f"{spec.label}/{query.name}"
            )

        # Prefetch resolution.
        scalar_prefetch = resolve_prefetch_setting(
            layout, workload, scheme, system, validate_queries=False
        )
        batch_prefetch = resolve_prefetch_setting_batch(batch, matrix, system)
        assert scalar_prefetch == batch_prefetch

        # Profiles under the resolved setting AND a drawn fixed setting.
        drawn_prefetch = PrefetchSetting.fixed(
            data.draw(st.sampled_from([1, 2, 16, 128])),
            data.draw(st.sampled_from([1, 4])),
        )
        for prefetch in (scalar_prefetch, drawn_prefetch):
            profile_batch = estimate_access_batch(batch, prefetch, ppe)
            for i, (query, _) in enumerate(workload.weighted_items()):
                scalar_profile = estimate_access(
                    layout,
                    query,
                    scheme,
                    prefetch,
                    positioning_page_equivalent=ppe,
                    validate=False,
                )
                _assert_fields_equal(
                    scalar_profile,
                    profile_batch.profile(i),
                    f"{spec.label}/{query.name}/prefetch={prefetch.fact_pages}",
                )

        # Full per-class cost records (QueryCost), field by field.
        model = IOCostModel(system, validate_queries=False)
        scalar_evaluation = model.evaluate(layout, workload, scheme, scalar_prefetch)
        batch_evaluation = evaluate_workload_batch(
            layout, batch, matrix, system, batch_prefetch
        )
        assert len(scalar_evaluation.per_class) == len(batch_evaluation.per_class)
        for scalar_cost, batch_cost in zip(
            scalar_evaluation.per_class, batch_evaluation.per_class
        ):
            _assert_fields_equal(
                scalar_cost, batch_cost, f"{spec.label}/{scalar_cost.query_name}"
            )
        assert (
            scalar_evaluation.total_io_cost_ms == batch_evaluation.total_io_cost_ms
        )
        assert (
            scalar_evaluation.total_response_time_ms
            == batch_evaluation.total_response_time_ms
        )


class TestCandidateAxisHypothesisSweep:
    """Random layout stacks: candidate-axis slices == class-axis, bitwise."""

    @PARITY_SETTINGS
    @given(data=st.data())
    def test_stacked_kernels_are_bit_identical_per_candidate(self, data):
        import numpy as np

        schema, workload, system, spec, scheme = _scenario(data.draw)
        advisor = Warlock(
            schema, workload, system, AdvisorConfig(max_fragments=MAX_FRAGMENTS)
        )
        specs, _ = advisor.generate_specs()
        # The drawn spec's whole axis-structure group, stacked.
        group = [s for s in specs if s.axis_structure == spec.axis_structure]
        layouts = [
            build_layout(
                schema,
                member,
                page_size_bytes=system.page_size_bytes,
                max_fragments=MAX_FRAGMENTS,
            )
            for member in group
        ]
        matrix = ClassMatrix.compile(schema, workload, scheme)
        stacked = compute_access_structure_batch_candidates(layouts, matrix)
        prefetches = resolve_prefetch_settings_batch_candidates(
            stacked, matrix, system
        )
        evaluations = evaluate_workload_batch_candidates(
            layouts, stacked, matrix, system, prefetches
        )

        references = []
        for k, layout in enumerate(layouts):
            reference = compute_access_structure_batch(layout, matrix)
            references.append(reference)
            sliced = stacked.candidate(k)
            for field in dataclasses.fields(reference):
                ours = getattr(reference, field.name)
                theirs = getattr(sliced, field.name)
                if isinstance(ours, np.ndarray):
                    assert ours.dtype == theirs.dtype, field.name
                    assert np.array_equal(ours, theirs), (
                        f"{layout.spec.label}: {field.name}"
                    )
                else:
                    assert ours == theirs, f"{layout.spec.label}: {field.name}"
            # Prefetch resolution: batched granule selection == per-layout.
            assert prefetches[k] == resolve_prefetch_setting_batch(
                reference, matrix, system
            )
            # Full per-class records and cached totals.
            expected = evaluate_workload_batch(
                layout, reference, matrix, system, prefetches[k]
            )
            assert expected.per_class == evaluations[k].per_class
            assert expected.total_io_cost_ms == evaluations[k].total_io_cost_ms
            assert (
                expected.total_response_time_ms
                == evaluations[k].total_response_time_ms
            )

        # stack() (the cache-mixing path) rebuilds the identical 2-D batch.
        restacked = AccessStructureBatch2D.stack(references)
        for field in dataclasses.fields(stacked):
            ours = getattr(stacked, field.name)
            theirs = getattr(restacked, field.name)
            if isinstance(ours, np.ndarray):
                assert ours.dtype == theirs.dtype, field.name
                assert np.array_equal(ours, theirs), field.name
            else:
                assert ours == theirs, field.name


def _advisor_inputs():
    schema = synthetic_schema(
        num_dimensions=4,
        levels_per_dimension=3,
        bottom_cardinality=300,
        fact_rows=2_000_000,
        seed=3,
    )
    workload = random_query_mix(schema, num_classes=6, seed=5)
    system = SystemParameters(num_disks=16)
    config = AdvisorConfig(max_fragments=20_000, top_candidates=8)
    return schema, workload, system, config


class TestAdvisorParityMatrix:
    """Vectorized vs scalar across execution modes, via recommendation fingerprints."""

    def test_serial_cold(self):
        schema, workload, system, config = _advisor_inputs()
        vectorized = Warlock(schema, workload, system, config).recommend()
        scalar = Warlock(
            schema, workload, system, config, options=EngineOptions(vectorize=False)
        ).recommend()
        assert recommendation_fingerprint(vectorized) == recommendation_fingerprint(
            scalar
        )

    def test_jobs_4(self):
        schema, workload, system, config = _advisor_inputs()
        vectorized = Warlock(
            schema, workload, system, config, options=EngineOptions(jobs=4)
        ).recommend()
        scalar = Warlock(
            schema,
            workload,
            system,
            config,
            options=EngineOptions(jobs=4, vectorize=False),
        ).recommend()
        assert recommendation_fingerprint(vectorized) == recommendation_fingerprint(
            scalar
        )

    def test_warm_cache(self):
        schema, workload, system, config = _advisor_inputs()
        vectorized_advisor = Warlock(schema, workload, system, config)
        scalar_advisor = Warlock(
            schema, workload, system, config, options=EngineOptions(vectorize=False)
        )
        cold_v = vectorized_advisor.recommend()
        cold_s = scalar_advisor.recommend()
        # Warm runs through fresh advisors sharing the caches (the same
        # advisor would answer from its recommend() memo without a sweep).
        warm_v = Warlock(
            schema, workload, system, config, cache=vectorized_advisor.cache
        ).recommend()
        warm_s = Warlock(
            schema,
            workload,
            system,
            config,
            cache=scalar_advisor.cache,
            options=EngineOptions(vectorize=False),
        ).recommend()
        assert vectorized_advisor.cache.stats.hits > 0
        fingerprints = {
            recommendation_fingerprint(rec)
            for rec in (cold_v, cold_s, warm_v, warm_s)
        }
        assert len(fingerprints) == 1

    def test_uncached(self):
        schema, workload, system, config = _advisor_inputs()
        vectorized = Warlock(
            schema, workload, system, config, options=EngineOptions(cache=False)
        ).recommend()
        scalar = Warlock(
            schema,
            workload,
            system,
            config,
            options=EngineOptions(cache=False, vectorize=False),
        ).recommend()
        assert recommendation_fingerprint(vectorized) == recommendation_fingerprint(
            scalar
        )


class TestCandidateAxisParityMatrix:
    """One fingerprint across mode × jobs × cold/warm-from-columnar-store."""

    def test_modes_jobs_and_columnar_store_warmup_agree(self, tmp_path):
        schema, workload, system, config = _advisor_inputs()
        fingerprints = {}
        for mode in ("none", "classes", "candidates"):
            for jobs in (1, 4):
                store_dir = tmp_path / f"{mode}-jobs{jobs}"
                cold = Warlock(
                    schema,
                    workload,
                    system,
                    config,
                    options=EngineOptions(
                        jobs=jobs, vectorize=mode, cache_dir=str(store_dir)
                    ),
                ).recommend()
                # A separate advisor warm-starts from the columnar store.
                warm_advisor = Warlock(
                    schema,
                    workload,
                    system,
                    config,
                    options=EngineOptions(
                        jobs=jobs, vectorize=mode, cache_dir=str(store_dir)
                    ),
                )
                warm = warm_advisor.recommend()
                assert warm_advisor.cache.stats.candidate_disk_hits > 0, (
                    f"{mode}/jobs={jobs}: warm run must answer from the "
                    f"columnar candidate store"
                )
                fingerprints[(mode, jobs, "cold")] = recommendation_fingerprint(cold)
                fingerprints[(mode, jobs, "warm")] = recommendation_fingerprint(warm)
        assert len(set(fingerprints.values())) == 1, fingerprints

    def test_group_evaluation_equals_per_spec_path_with_mixed_cache(self):
        """evaluate_specs_in_context == per-spec evaluation, warm or cold."""
        from repro.engine import EvaluationCache, evaluate_specs_in_context
        from repro.engine.executor import evaluate_spec_in_context

        schema, workload, system, config = _advisor_inputs()
        advisor = Warlock(schema, workload, system, config)
        specs, _ = advisor.generate_specs()
        engine = advisor.engine()
        context = engine.context(specs=specs)
        reference = [
            evaluate_spec_in_context(context, spec, None) for spec in specs
        ]
        # Cold chunk evaluation, no cache.
        chunked = evaluate_specs_in_context(context, range(len(specs)), None)
        # Mixed-cache evaluation: pre-warm structure entries for every third
        # spec, so groups stack cached and fresh structures together.
        cache = EvaluationCache()
        matrix = context.class_matrix
        for index in range(0, len(specs), 3):
            layout = reference[index].layout
            cache.put_structure_batch(
                layout,
                matrix,
                compute_access_structure_batch(layout, matrix),
            )
        mixed = evaluate_specs_in_context(context, range(len(specs)), cache)
        for expected, cold, warm in zip(reference, chunked, mixed):
            for other in (cold, warm):
                assert other.label == expected.label
                assert other.prefetch == expected.prefetch
                assert (
                    other.evaluation.per_class == expected.evaluation.per_class
                )
                assert other.io_cost_ms == expected.io_cost_ms
                assert other.response_time_ms == expected.response_time_ms


class TestColumnarResultBatch:
    """The worker→parent columnar transport re-materializes candidates exactly."""

    @pytest.fixture
    def engine_and_plan(self):
        schema, workload, system, config = _advisor_inputs()
        advisor = Warlock(schema, workload, system, config)
        specs, _ = advisor.generate_specs()
        engine = advisor.engine()
        plan = engine.plan(specs[:10])
        context = engine.context(specs=plan.specs)
        return engine, plan, context

    def test_round_trip_is_exact(self, engine_and_plan):
        engine, plan, context = engine_and_plan
        candidates = engine._evaluate_serial(plan, context)
        batch = CandidateResultBatch.from_candidates(
            range(len(candidates)), candidates
        )
        # The batch crosses the process boundary pickled: round-trip it.
        restored = pickle.loads(pickle.dumps(batch)).to_candidates(context)
        assert [index for index, _ in restored] == list(range(len(candidates)))
        for (_, rebuilt), original in zip(restored, candidates):
            assert rebuilt.label == original.label
            assert rebuilt.prefetch == original.prefetch
            assert rebuilt.io_cost_ms == original.io_cost_ms
            assert rebuilt.response_time_ms == original.response_time_ms
            assert (
                rebuilt.allocation.disk_of_fragment.tolist()
                == original.allocation.disk_of_fragment.tolist()
            )
            for rebuilt_cost, original_cost in zip(
                rebuilt.evaluation.per_class, original.evaluation.per_class
            ):
                _assert_fields_equal(
                    rebuilt_cost.profile, original_cost.profile, rebuilt.label
                )
                assert rebuilt_cost.io_cost_ms == original_cost.io_cost_ms
                assert (
                    rebuilt_cost.response_time_ms == original_cost.response_time_ms
                )
                assert rebuilt_cost.weight == original_cost.weight
                assert rebuilt_cost.disks_used == original_cost.disks_used

    def test_jobs_1_vs_4_through_columnar_batches(self):
        """End-to-end: the parallel backend (columnar transport) == serial."""
        schema, workload, system, config = _advisor_inputs()
        serial = Warlock(
            schema, workload, system, config, options=EngineOptions(jobs=1)
        ).recommend()
        parallel = Warlock(
            schema, workload, system, config, options=EngineOptions(jobs=4)
        ).recommend()
        assert recommendation_state(serial) == recommendation_state(parallel)

    def test_batch_rejects_mismatched_lengths(self, engine_and_plan):
        engine, plan, context = engine_and_plan
        candidates = engine._evaluate_serial(plan, context)
        from repro.errors import AdvisorError

        with pytest.raises(AdvisorError):
            CandidateResultBatch.from_candidates([0], candidates)
        with pytest.raises(AdvisorError):
            CandidateResultBatch.from_candidates([], [])


class TestColumnarEvaluation:
    """EvaluationColumns-backed WorkloadEvaluation: records, totals, pickling."""

    @pytest.fixture
    def evaluation(self):
        from repro.costmodel import (
            compute_access_structure_batch,
            evaluate_workload_batch,
            resolve_prefetch_setting_batch,
        )

        schema, workload, system, config = _advisor_inputs()
        advisor = Warlock(schema, workload, system, config)
        specs, _ = advisor.generate_specs()
        scheme = advisor.design_bitmaps()
        matrix = ClassMatrix.compile(schema, workload, scheme)
        layout = build_layout(
            schema,
            specs[0],
            page_size_bytes=system.page_size_bytes,
            max_fragments=config.max_fragments,
        )
        structures = compute_access_structure_batch(layout, matrix)
        prefetch = resolve_prefetch_setting_batch(structures, matrix, system)
        return evaluate_workload_batch(layout, structures, matrix, system, prefetch)

    def test_vectorized_evaluations_are_columnar_and_lazy(self, evaluation):
        assert evaluation.columns is not None
        assert evaluation._per_class is None
        # Totals come straight off the columns...
        total = evaluation.total_io_cost_ms
        assert evaluation._per_class is None
        # ...and equal the record-derived sums bit for bit.
        assert total == sum(c.weighted_io_cost_ms for c in evaluation.per_class)

    def test_columnar_pickle_round_trip_stays_columnar(self, evaluation):
        clone = pickle.loads(pickle.dumps(evaluation))
        assert clone.columns is not None
        assert clone.per_class == evaluation.per_class
        assert clone == evaluation

    def test_from_records_round_trips(self, evaluation):
        from repro.costmodel import EvaluationColumns, WorkloadEvaluation

        columns = EvaluationColumns.from_records(
            evaluation.per_class, evaluation.layout.fragment_count
        )
        rebuilt = WorkloadEvaluation(
            layout=evaluation.layout, prefetch=evaluation.prefetch, columns=columns
        )
        assert rebuilt.per_class == evaluation.per_class
        assert rebuilt.total_response_time_ms == evaluation.total_response_time_ms

    def test_requires_exactly_one_backing(self, evaluation):
        from repro.costmodel import WorkloadEvaluation
        from repro.errors import CostModelError

        with pytest.raises(CostModelError):
            WorkloadEvaluation(evaluation.layout, evaluation.prefetch)
        with pytest.raises(CostModelError):
            WorkloadEvaluation(
                evaluation.layout,
                evaluation.prefetch,
                per_class=evaluation.per_class,
                columns=evaluation.columns,
            )


class TestCandidateAxisGuards:
    """Error branches and slice helpers of the candidate-axis kernels."""

    def _layouts(self):
        schema, workload, system, config = _advisor_inputs()
        advisor = Warlock(schema, workload, system, config)
        specs, _ = advisor.generate_specs()
        scheme = advisor.design_bitmaps()
        matrix = ClassMatrix.compile(schema, workload, scheme)
        layouts = [
            build_layout(
                schema,
                spec,
                page_size_bytes=system.page_size_bytes,
                max_fragments=config.max_fragments,
            )
            for spec in specs
        ]
        return layouts, matrix, system

    def test_mixed_axis_structures_are_rejected(self):
        from repro.errors import CostModelError

        layouts, matrix, _ = self._layouts()
        mixed = [layouts[0], next(
            layout
            for layout in layouts
            if layout.spec.axis_structure != layouts[0].spec.axis_structure
        )]
        with pytest.raises(CostModelError):
            compute_access_structure_batch_candidates(mixed, matrix)
        with pytest.raises(CostModelError):
            compute_access_structure_batch_candidates([], matrix)

    def test_empty_stack_and_concat_are_rejected(self):
        from repro.errors import CostModelError

        with pytest.raises(CostModelError):
            AccessStructureBatch2D.stack([])
        with pytest.raises(CostModelError):
            AccessStructureBatch2D.concat([])

    def test_profile_slices_match_class_axis_profiles(self):
        import numpy as np

        from repro.costmodel import estimate_access_batch, estimate_access_batch_candidates
        from repro.costmodel.model import _positioning_page_equivalent

        layouts, matrix, system = self._layouts()
        group = [
            layout
            for layout in layouts
            if layout.spec.axis_structure == layouts[0].spec.axis_structure
        ]
        stacked = compute_access_structure_batch_candidates(group, matrix)
        ppe = _positioning_page_equivalent(system)
        granules = np.full(len(group), 4.0)
        profiles = estimate_access_batch_candidates(stacked, granules, granules, ppe)
        for k, layout in enumerate(group):
            reference = estimate_access_batch(
                compute_access_structure_batch(layout, matrix),
                PrefetchSetting.fixed(4, 4),
                ppe,
            )
            sliced = profiles.candidate(k)
            for i in range(matrix.num_classes):
                _assert_fields_equal(
                    reference.profile(i), sliced.profile(i), layout.spec.label
                )

    def test_batch_granule_selection_matches_scalar(self):
        import numpy as np

        from repro.storage import SystemParameters
        from repro.storage.prefetch import (
            optimal_prefetch_pages,
            optimal_prefetch_pages_batch,
        )
        from repro.errors import StorageError

        system = SystemParameters(num_disks=8)
        rng = np.random.default_rng(7)
        runs = rng.uniform(0.0, 600.0, size=(12, 5))
        runs[rng.random(runs.shape) < 0.3] = 0.0
        weights = (0.4, 0.1, 0.2, 0.2, 0.1)
        batch_weighted = optimal_prefetch_pages_batch(
            runs, system.disk, system.page_size_bytes, weights
        )
        batch_uniform = optimal_prefetch_pages_batch(
            runs, system.disk, system.page_size_bytes
        )
        for k in range(runs.shape[0]):
            assert batch_weighted[k] == optimal_prefetch_pages(
                runs[k].tolist(), system.disk, system.page_size_bytes, weights
            )
            positive = [r for r in runs[k].tolist() if r > 0]
            expected = (
                optimal_prefetch_pages(positive, system.disk, system.page_size_bytes)
                if positive
                else 1
            )
            assert batch_uniform[k] == expected
        with pytest.raises(StorageError):
            optimal_prefetch_pages_batch(
                runs[0], system.disk, system.page_size_bytes
            )
        with pytest.raises(StorageError):
            optimal_prefetch_pages_batch(
                -runs, system.disk, system.page_size_bytes
            )
