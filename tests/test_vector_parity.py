"""Parity harness: the vectorized class-axis sweep equals the scalar path, bitwise.

The batched cost path (:mod:`repro.costmodel.batch`) promises to be the *same
model* as the scalar reference implementation — not an approximation.  This
module is the harness that proves it:

* a hypothesis sweep draws random schemas, workloads (including multi-value
  restrictions), fragmentation specs, bitmap-scheme exclusions, disk counts
  and prefetch settings, and asserts **field-by-field equality** of
  ``AccessStructure``, ``QueryAccessProfile`` and ``QueryCost`` between the
  two paths (floats compared with ``==``, i.e. bit-identical);
* whole-advisor checks assert identical recommendation fingerprints for the
  vectorized and the scalar path in serial, ``jobs=4``, cold-cache and
  warm-cache modes;
* the columnar worker→parent result batches re-materialize candidates
  exactly, including across a pickle round-trip (the jobs=1-vs-4 transport).
"""

from __future__ import annotations

import dataclasses
import pickle

import pytest
from hypothesis import assume, given, settings, strategies as st

from repro import (
    AdvisorConfig,
    DimensionRestriction,
    EngineOptions,
    QueryClass,
    QueryMix,
    SystemParameters,
    Warlock,
    recommendation_fingerprint,
    synthetic_schema,
)
from repro.bitmap import design_bitmap_scheme
from repro.costmodel import (
    IOCostModel,
    compute_access_structure,
    compute_access_structure_batch,
    estimate_access,
    estimate_access_batch,
    evaluate_workload_batch,
    resolve_prefetch_setting,
    resolve_prefetch_setting_batch,
)
from repro.costmodel.model import _positioning_page_equivalent
from repro.engine import CandidateResultBatch
from repro.engine.signature import recommendation_state
from repro.fragmentation import build_layout
from repro.storage import PrefetchSetting
from repro.workload import ClassMatrix
from repro.workload.generator import random_query_mix

MAX_FRAGMENTS = 30_000

PARITY_SETTINGS = settings(max_examples=25, deadline=None)


def _assert_fields_equal(scalar, batch, context: str) -> None:
    """Field-by-field equality of two frozen dataclass instances."""
    assert type(scalar) is type(batch)
    for field in dataclasses.fields(scalar):
        left = getattr(scalar, field.name)
        right = getattr(batch, field.name)
        assert left == right, (
            f"{context}: field {field.name!r} differs: {left!r} != {right!r}"
        )


def _scenario(draw):
    """Draw one random (schema, workload, system, specs, scheme) scenario."""
    schema_seed = draw(st.integers(min_value=0, max_value=50))
    num_dimensions = draw(st.integers(min_value=3, max_value=5))
    skewed = draw(st.booleans())
    schema = synthetic_schema(
        num_dimensions=num_dimensions,
        levels_per_dimension=draw(st.integers(min_value=2, max_value=3)),
        bottom_cardinality=draw(st.sampled_from([60, 150, 400])),
        fact_rows=draw(st.sampled_from([200_000, 2_000_000, 20_000_000])),
        skew_thetas=[0.0, 0.8][: 2 if skewed else 1],
        seed=schema_seed,
    )
    workload = random_query_mix(
        schema,
        num_classes=draw(st.integers(min_value=2, max_value=8)),
        seed=draw(st.integers(min_value=0, max_value=50)),
    )
    # Widen some point restrictions into IN-lists so value_count > 1 paths
    # (encoded-bitmap reads, ancestor expectations) are exercised.
    widened = []
    for query in workload:
        restrictions = []
        for restriction in query.restrictions:
            cardinality = schema.level_cardinality(
                restriction.dimension, restriction.level
            )
            value_count = min(
                cardinality, draw(st.sampled_from([1, 1, 2, 5, 17]))
            )
            restrictions.append(
                DimensionRestriction(
                    restriction.dimension, restriction.level, value_count
                )
            )
        widened.append(
            QueryClass(
                name=query.name,
                restrictions=restrictions,
                weight=query.weight,
                fact_table=query.fact_table,
            )
        )
    workload = QueryMix(widened)

    fixed_prefetch = draw(st.booleans())
    system = SystemParameters(
        num_disks=draw(st.sampled_from([1, 8, 64])),
        architecture=draw(st.sampled_from(["shared_disk", "shared_everything"])),
        **(
            {
                "prefetch_pages_fact": draw(st.sampled_from([1, 4, 32])),
                "prefetch_pages_bitmap": draw(st.sampled_from([1, 8])),
            }
            if fixed_prefetch
            else {}
        ),
    )

    scheme = design_bitmap_scheme(schema, workload)
    if len(scheme) > 1 and draw(st.booleans()):
        # Exclude a random index so forced-full-scan residuals appear.
        keys = [(index.dimension, index.level) for index in scheme]
        scheme = scheme.without(draw(st.sampled_from(keys)))

    advisor = Warlock(
        schema, workload, system, AdvisorConfig(max_fragments=MAX_FRAGMENTS)
    )
    try:
        specs, _ = advisor.generate_specs()
    except Exception:
        # Some drawn configurations exclude every candidate (tiny fact tables
        # on many disks); they exercise the thresholds, not the cost model.
        assume(False)
    spec = specs[draw(st.integers(min_value=0, max_value=len(specs) - 1))]
    return schema, workload, system, spec, scheme


class TestHypothesisSweep:
    """Random layouts/schemes/prefetch settings: scalar == vectorized, bitwise."""

    @PARITY_SETTINGS
    @given(data=st.data())
    def test_structures_profiles_and_costs_are_bit_identical(self, data):
        schema, workload, system, spec, scheme = _scenario(data.draw)
        layout = build_layout(
            schema,
            spec,
            page_size_bytes=system.page_size_bytes,
            max_fragments=MAX_FRAGMENTS,
        )
        matrix = ClassMatrix.compile(schema, workload, scheme)
        batch = compute_access_structure_batch(layout, matrix)
        ppe = _positioning_page_equivalent(system)

        # Access structures, field by field.
        for i, (query, _) in enumerate(workload.weighted_items()):
            scalar_structure = compute_access_structure(
                layout, query, scheme, validate=False
            )
            _assert_fields_equal(
                scalar_structure, batch.structure(i), f"{spec.label}/{query.name}"
            )

        # Prefetch resolution.
        scalar_prefetch = resolve_prefetch_setting(
            layout, workload, scheme, system, validate_queries=False
        )
        batch_prefetch = resolve_prefetch_setting_batch(batch, matrix, system)
        assert scalar_prefetch == batch_prefetch

        # Profiles under the resolved setting AND a drawn fixed setting.
        drawn_prefetch = PrefetchSetting.fixed(
            data.draw(st.sampled_from([1, 2, 16, 128])),
            data.draw(st.sampled_from([1, 4])),
        )
        for prefetch in (scalar_prefetch, drawn_prefetch):
            profile_batch = estimate_access_batch(batch, prefetch, ppe)
            for i, (query, _) in enumerate(workload.weighted_items()):
                scalar_profile = estimate_access(
                    layout,
                    query,
                    scheme,
                    prefetch,
                    positioning_page_equivalent=ppe,
                    validate=False,
                )
                _assert_fields_equal(
                    scalar_profile,
                    profile_batch.profile(i),
                    f"{spec.label}/{query.name}/prefetch={prefetch.fact_pages}",
                )

        # Full per-class cost records (QueryCost), field by field.
        model = IOCostModel(system, validate_queries=False)
        scalar_evaluation = model.evaluate(layout, workload, scheme, scalar_prefetch)
        batch_evaluation = evaluate_workload_batch(
            layout, batch, matrix, system, batch_prefetch
        )
        assert len(scalar_evaluation.per_class) == len(batch_evaluation.per_class)
        for scalar_cost, batch_cost in zip(
            scalar_evaluation.per_class, batch_evaluation.per_class
        ):
            _assert_fields_equal(
                scalar_cost, batch_cost, f"{spec.label}/{scalar_cost.query_name}"
            )
        assert (
            scalar_evaluation.total_io_cost_ms == batch_evaluation.total_io_cost_ms
        )
        assert (
            scalar_evaluation.total_response_time_ms
            == batch_evaluation.total_response_time_ms
        )


def _advisor_inputs():
    schema = synthetic_schema(
        num_dimensions=4,
        levels_per_dimension=3,
        bottom_cardinality=300,
        fact_rows=2_000_000,
        seed=3,
    )
    workload = random_query_mix(schema, num_classes=6, seed=5)
    system = SystemParameters(num_disks=16)
    config = AdvisorConfig(max_fragments=20_000, top_candidates=8)
    return schema, workload, system, config


class TestAdvisorParityMatrix:
    """Vectorized vs scalar across execution modes, via recommendation fingerprints."""

    def test_serial_cold(self):
        schema, workload, system, config = _advisor_inputs()
        vectorized = Warlock(schema, workload, system, config).recommend()
        scalar = Warlock(
            schema, workload, system, config, options=EngineOptions(vectorize=False)
        ).recommend()
        assert recommendation_fingerprint(vectorized) == recommendation_fingerprint(
            scalar
        )

    def test_jobs_4(self):
        schema, workload, system, config = _advisor_inputs()
        vectorized = Warlock(
            schema, workload, system, config, options=EngineOptions(jobs=4)
        ).recommend()
        scalar = Warlock(
            schema,
            workload,
            system,
            config,
            options=EngineOptions(jobs=4, vectorize=False),
        ).recommend()
        assert recommendation_fingerprint(vectorized) == recommendation_fingerprint(
            scalar
        )

    def test_warm_cache(self):
        schema, workload, system, config = _advisor_inputs()
        vectorized_advisor = Warlock(schema, workload, system, config)
        scalar_advisor = Warlock(
            schema, workload, system, config, options=EngineOptions(vectorize=False)
        )
        cold_v = vectorized_advisor.recommend()
        cold_s = scalar_advisor.recommend()
        warm_v = vectorized_advisor.recommend()
        warm_s = scalar_advisor.recommend()
        assert vectorized_advisor.cache.stats.hits > 0
        fingerprints = {
            recommendation_fingerprint(rec)
            for rec in (cold_v, cold_s, warm_v, warm_s)
        }
        assert len(fingerprints) == 1

    def test_uncached(self):
        schema, workload, system, config = _advisor_inputs()
        vectorized = Warlock(
            schema, workload, system, config, options=EngineOptions(cache=False)
        ).recommend()
        scalar = Warlock(
            schema,
            workload,
            system,
            config,
            options=EngineOptions(cache=False, vectorize=False),
        ).recommend()
        assert recommendation_fingerprint(vectorized) == recommendation_fingerprint(
            scalar
        )


class TestColumnarResultBatch:
    """The worker→parent columnar transport re-materializes candidates exactly."""

    @pytest.fixture
    def engine_and_plan(self):
        schema, workload, system, config = _advisor_inputs()
        advisor = Warlock(schema, workload, system, config)
        specs, _ = advisor.generate_specs()
        engine = advisor.engine()
        plan = engine.plan(specs[:10])
        context = engine.context(specs=plan.specs)
        return engine, plan, context

    def test_round_trip_is_exact(self, engine_and_plan):
        engine, plan, context = engine_and_plan
        candidates = engine._evaluate_serial(plan, context)
        batch = CandidateResultBatch.from_candidates(
            range(len(candidates)), candidates
        )
        # The batch crosses the process boundary pickled: round-trip it.
        restored = pickle.loads(pickle.dumps(batch)).to_candidates(context)
        assert [index for index, _ in restored] == list(range(len(candidates)))
        for (_, rebuilt), original in zip(restored, candidates):
            assert rebuilt.label == original.label
            assert rebuilt.prefetch == original.prefetch
            assert rebuilt.io_cost_ms == original.io_cost_ms
            assert rebuilt.response_time_ms == original.response_time_ms
            assert (
                rebuilt.allocation.disk_of_fragment.tolist()
                == original.allocation.disk_of_fragment.tolist()
            )
            for rebuilt_cost, original_cost in zip(
                rebuilt.evaluation.per_class, original.evaluation.per_class
            ):
                _assert_fields_equal(
                    rebuilt_cost.profile, original_cost.profile, rebuilt.label
                )
                assert rebuilt_cost.io_cost_ms == original_cost.io_cost_ms
                assert (
                    rebuilt_cost.response_time_ms == original_cost.response_time_ms
                )
                assert rebuilt_cost.weight == original_cost.weight
                assert rebuilt_cost.disks_used == original_cost.disks_used

    def test_jobs_1_vs_4_through_columnar_batches(self):
        """End-to-end: the parallel backend (columnar transport) == serial."""
        schema, workload, system, config = _advisor_inputs()
        serial = Warlock(
            schema, workload, system, config, options=EngineOptions(jobs=1)
        ).recommend()
        parallel = Warlock(
            schema, workload, system, config, options=EngineOptions(jobs=4)
        ).recommend()
        assert recommendation_state(serial) == recommendation_state(parallel)

    def test_batch_rejects_mismatched_lengths(self, engine_and_plan):
        engine, plan, context = engine_and_plan
        candidates = engine._evaluate_serial(plan, context)
        from repro.errors import AdvisorError

        with pytest.raises(AdvisorError):
            CandidateResultBatch.from_candidates([0], candidates)
        with pytest.raises(AdvisorError):
            CandidateResultBatch.from_candidates([], [])
