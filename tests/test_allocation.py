"""Unit tests for repro.allocation: placement invariants, round-robin, greedy, chooser."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    FragmentationSpec,
    SystemParameters,
    build_layout,
    choose_allocation,
    design_bitmap_scheme,
    greedy_size_allocation,
    round_robin_allocation,
)
from repro.allocation import Allocation, fragment_total_pages
from repro.errors import AllocationError
from repro.storage import DiskParameters


@pytest.fixture
def uniform_layout(toy_schema):
    return build_layout(toy_schema, FragmentationSpec.of(("time", "month"), ("store", "region")))


@pytest.fixture
def skewed_layout(skewed_schema):
    return build_layout(skewed_schema, FragmentationSpec.of(("product", "item")))


class TestFragmentTotalPages:
    def test_without_bitmaps_equals_fact_pages(self, uniform_layout):
        pages = fragment_total_pages(uniform_layout)
        assert np.array_equal(pages, uniform_layout.fragment_fact_pages.astype(float))

    def test_with_bitmaps_adds_pages(self, uniform_layout, toy_schema, toy_workload):
        scheme = design_bitmap_scheme(toy_schema, toy_workload)
        with_bitmaps = fragment_total_pages(uniform_layout, scheme)
        without = fragment_total_pages(uniform_layout)
        assert np.all(with_bitmaps >= without)
        assert with_bitmaps.sum() > without.sum()


class TestRoundRobin:
    def test_every_fragment_placed(self, uniform_layout, small_system):
        allocation = round_robin_allocation(uniform_layout, small_system)
        assert allocation.disk_of_fragment.shape == (uniform_layout.fragment_count,)
        assert allocation.scheme == "round_robin"

    def test_cyclic_assignment(self, uniform_layout, small_system):
        allocation = round_robin_allocation(uniform_layout, small_system)
        expected = np.arange(uniform_layout.fragment_count) % small_system.num_disks
        assert np.array_equal(allocation.disk_of_fragment, expected)

    def test_start_disk_offset(self, uniform_layout, small_system):
        allocation = round_robin_allocation(uniform_layout, small_system, start_disk=3)
        assert allocation.disk_of(0) == 3
        assert allocation.disk_of(1) == 4

    def test_start_disk_out_of_range(self, uniform_layout, small_system):
        with pytest.raises(AllocationError):
            round_robin_allocation(uniform_layout, small_system, start_disk=99)

    def test_uniform_fragments_balanced(self, uniform_layout, small_system):
        allocation = round_robin_allocation(uniform_layout, small_system)
        # 96 equal fragments over 8 disks: perfectly even.
        assert allocation.occupancy_cv == pytest.approx(0.0, abs=1e-9)
        assert allocation.occupancy_imbalance == pytest.approx(1.0)

    def test_fragments_per_disk(self, uniform_layout, small_system):
        allocation = round_robin_allocation(uniform_layout, small_system)
        assert allocation.fragments_per_disk.sum() == uniform_layout.fragment_count
        assert allocation.fragments_per_disk.max() - allocation.fragments_per_disk.min() <= 1

    def test_neighbouring_fragments_on_distinct_disks(self, uniform_layout, small_system):
        """Logical round-robin: consecutive fragments land on different disks."""
        allocation = round_robin_allocation(uniform_layout, small_system)
        consecutive = allocation.disk_of_fragment[:8]
        assert len(set(consecutive.tolist())) == 8


class TestGreedy:
    def test_every_fragment_placed(self, skewed_layout, small_system):
        allocation = greedy_size_allocation(skewed_layout, small_system)
        assert allocation.disk_of_fragment.shape == (skewed_layout.fragment_count,)
        assert allocation.scheme == "greedy_size"
        assert allocation.total_pages == pytest.approx(
            fragment_total_pages(skewed_layout).sum()
        )

    def test_greedy_balances_skewed_sizes_better(self, skewed_layout, small_system):
        greedy = greedy_size_allocation(skewed_layout, small_system)
        round_robin = round_robin_allocation(skewed_layout, small_system)
        assert greedy.occupancy_cv <= round_robin.occupancy_cv + 1e-12

    def test_greedy_near_optimal_for_uniform(self, uniform_layout, small_system):
        allocation = greedy_size_allocation(uniform_layout, small_system)
        assert allocation.occupancy_imbalance <= 1.01

    def test_deterministic(self, skewed_layout, small_system):
        first = greedy_size_allocation(skewed_layout, small_system)
        second = greedy_size_allocation(skewed_layout, small_system)
        assert np.array_equal(first.disk_of_fragment, second.disk_of_fragment)


class TestChooser:
    def test_uniform_data_uses_round_robin(self, uniform_layout, small_system):
        allocation = choose_allocation(uniform_layout, small_system)
        assert allocation.scheme == "round_robin"

    def test_notable_skew_uses_greedy(self, skewed_layout, small_system):
        allocation = choose_allocation(skewed_layout, small_system)
        assert allocation.scheme == "greedy_size"

    def test_threshold_override(self, skewed_layout, small_system):
        forced_round_robin = choose_allocation(
            skewed_layout, small_system, skew_threshold_cv=1e9
        )
        assert forced_round_robin.scheme == "round_robin"

    def test_invalid_threshold(self, uniform_layout, small_system):
        with pytest.raises(AllocationError):
            choose_allocation(uniform_layout, small_system, skew_threshold_cv=-1)


class TestAllocationObject:
    def test_disk_of_and_fragments_on_consistent(self, uniform_layout, small_system):
        allocation = round_robin_allocation(uniform_layout, small_system)
        for disk in range(small_system.num_disks):
            for fragment in allocation.fragments_on(disk):
                assert allocation.disk_of(int(fragment)) == disk

    def test_disk_of_out_of_range(self, uniform_layout, small_system):
        allocation = round_robin_allocation(uniform_layout, small_system)
        with pytest.raises(AllocationError):
            allocation.disk_of(-1)
        with pytest.raises(AllocationError):
            allocation.disk_of(uniform_layout.fragment_count)
        with pytest.raises(AllocationError):
            allocation.fragments_on(small_system.num_disks)

    def test_occupancy_sums_to_total(self, skewed_layout, small_system):
        allocation = greedy_size_allocation(skewed_layout, small_system)
        assert allocation.occupancy_pages.sum() == pytest.approx(allocation.total_pages)

    def test_occupancy_summary_keys(self, uniform_layout, small_system):
        summary = round_robin_allocation(uniform_layout, small_system).occupancy_summary()
        assert {"scheme", "num_disks", "total_pages", "occupancy_cv"} <= set(summary)

    def test_access_distribution_full_fragments(self, uniform_layout, small_system):
        allocation = round_robin_allocation(uniform_layout, small_system)
        distribution = allocation.access_distribution([0, 1, 2])
        assert distribution.sum() == pytest.approx(allocation.fragment_pages[:3].sum())

    def test_access_distribution_custom_pages(self, uniform_layout, small_system):
        allocation = round_robin_allocation(uniform_layout, small_system)
        distribution = allocation.access_distribution([0, 8], [5.0, 7.0])
        # Fragments 0 and 8 are both on disk 0 under round-robin over 8 disks.
        assert distribution[0] == pytest.approx(12.0)
        assert distribution[1:].sum() == pytest.approx(0.0)

    def test_access_distribution_validation(self, uniform_layout, small_system):
        allocation = round_robin_allocation(uniform_layout, small_system)
        with pytest.raises(AllocationError):
            allocation.access_distribution([10_000])
        with pytest.raises(AllocationError):
            allocation.access_distribution([0, 1], [1.0])

    def test_capacity_check(self, uniform_layout, small_system, tiny_disk_system):
        roomy = round_robin_allocation(uniform_layout, small_system)
        assert roomy.fits_capacity()
        cramped = round_robin_allocation(uniform_layout, tiny_disk_system)
        assert not cramped.fits_capacity()
        assert cramped.disks_needed_for_capacity() > tiny_disk_system.num_disks

    def test_invalid_construction(self, uniform_layout, small_system):
        pages = fragment_total_pages(uniform_layout)
        bad_assignment = np.zeros(3, dtype=np.int64)
        with pytest.raises(AllocationError):
            Allocation(
                layout=uniform_layout,
                system=small_system,
                disk_of_fragment=bad_assignment,
                fragment_pages=pages,
                scheme="x",
            )
        out_of_range = np.full(uniform_layout.fragment_count, 99, dtype=np.int64)
        with pytest.raises(AllocationError):
            Allocation(
                layout=uniform_layout,
                system=small_system,
                disk_of_fragment=out_of_range,
                fragment_pages=pages,
                scheme="x",
            )
        negative_pages = -pages
        with pytest.raises(AllocationError):
            Allocation(
                layout=uniform_layout,
                system=small_system,
                disk_of_fragment=np.zeros(uniform_layout.fragment_count, dtype=np.int64),
                fragment_pages=negative_pages,
                scheme="x",
            )

    def test_describe(self, uniform_layout, small_system):
        text = round_robin_allocation(uniform_layout, small_system).describe()
        assert "round_robin" in text and "disks" in text
