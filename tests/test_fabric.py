"""Tests for the distributed sweep fabric (repro.fabric).

The contract under test:

* the framed pickle protocol rejects corrupted frames (magic, length, CRC)
  instead of trusting them;
* :class:`RetryPolicy` schedules are bounded, monotone-capped, jittered
  within bounds and deterministic under a seeded RNG (hypothesis pins the
  properties);
* :class:`FaultPlan` parses the ``WARLOCK_FAULTS`` grammar and its injector
  fires reproducibly;
* a sweep over live workers is **fingerprint-identical** to the local run,
  including when a worker is killed mid-sweep (the lease re-queue path) and
  when messages are duplicated (at-least-once dedupe);
* a sweep with zero reachable workers degrades to local inline evaluation
  with a visible warning — never an exception.
"""

from __future__ import annotations

import random
import socket
import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import EngineOptions, SystemParameters, Warlock, recommendation_fingerprint
from repro.errors import AdvisorError, EvaluationCancelled, FabricError
from repro.fabric import FaultInjected, FaultPlan, RetryPolicy, parse_address, run_worker
from repro.fabric.protocol import (
    DEFAULT_PORT,
    Lease,
    read_message,
    write_message,
)


# -- retry policy (satellite: property tests) ---------------------------------------


policies = st.builds(
    RetryPolicy,
    max_attempts=st.integers(1, 12),
    base_delay=st.floats(0.0, 1.0, allow_nan=False),
    multiplier=st.floats(1.0, 4.0, allow_nan=False),
    max_delay=st.floats(1.0, 10.0, allow_nan=False),
    jitter=st.floats(0.0, 1.0, allow_nan=False),
    deadline=st.one_of(st.none(), st.floats(0.0, 5.0, allow_nan=False)),
)


class TestRetryPolicyProperties:
    @settings(deadline=None, max_examples=100)
    @given(policy=policies, seed=st.integers(0, 2**32 - 1))
    def test_schedule_is_bounded(self, policy, seed):
        delays = list(policy.delays(random.Random(seed)))
        assert len(delays) <= policy.max_attempts - 1
        assert all(delay >= 0.0 for delay in delays)
        if policy.deadline is not None:
            assert sum(delays) <= policy.deadline + 1e-9

    @settings(deadline=None, max_examples=100)
    @given(policy=policies)
    def test_caps_are_monotone_non_decreasing(self, policy):
        caps = [policy.cap(retry) for retry in range(policy.max_attempts)]
        assert all(b >= a for a, b in zip(caps, caps[1:]))
        assert all(cap <= policy.max_delay for cap in caps)

    @settings(deadline=None, max_examples=100)
    @given(policy=policies, seed=st.integers(0, 2**32 - 1))
    def test_jitter_stays_within_bounds(self, policy, seed):
        # Without a deadline every sleep is pure cap-plus-jitter; the budget
        # only ever *clips* a sleep, so the upper bound holds universally.
        delays = list(policy.delays(random.Random(seed)))
        for retry, delay in enumerate(delays):
            cap = policy.cap(retry)
            assert delay <= cap * (1.0 + policy.jitter) + 1e-9
            if policy.deadline is None:
                assert delay >= cap * (1.0 - policy.jitter) - 1e-9

    @settings(deadline=None, max_examples=60)
    @given(policy=policies, seed=st.integers(0, 2**32 - 1))
    def test_deterministic_under_seeded_rng(self, policy, seed):
        first = list(policy.delays(random.Random(seed)))
        second = list(policy.delays(random.Random(seed)))
        assert first == second


class TestRetryPolicyCall:
    def test_invalid_parameters_are_rejected(self):
        with pytest.raises(AdvisorError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(AdvisorError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(AdvisorError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(AdvisorError):
            RetryPolicy(base_delay=1.0, max_delay=0.1)
        with pytest.raises(AdvisorError):
            RetryPolicy(deadline=-1.0)

    def test_retries_then_succeeds(self):
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise OSError("transient")
            return "done"

        slept = []
        policy = RetryPolicy(max_attempts=5, base_delay=0.01, jitter=0.0)
        assert policy.call(flaky, sleep=slept.append) == "done"
        assert len(calls) == 3
        assert len(slept) == 2

    def test_attempt_exhaustion_reraises(self):
        policy = RetryPolicy(max_attempts=3, base_delay=0.01, jitter=0.0)
        calls = []

        def always_down():
            calls.append(1)
            raise OSError("down")

        with pytest.raises(OSError):
            policy.call(always_down, sleep=lambda _: None)
        assert len(calls) == 3

    def test_deadline_exhaustion_cuts_attempts_short(self):
        # Budget covers the first sleep only: two attempts, not five.
        policy = RetryPolicy(
            max_attempts=5, base_delay=1.0, max_delay=1.0, jitter=0.0, deadline=1.0
        )
        calls = []

        def always_down():
            calls.append(1)
            raise OSError("down")

        slept = []
        with pytest.raises(OSError):
            policy.call(always_down, sleep=slept.append)
        assert len(calls) == 2
        assert sum(slept) <= policy.deadline + 1e-9

    def test_zero_deadline_means_no_retries(self):
        policy = RetryPolicy(max_attempts=5, deadline=0.0)
        calls = []

        def always_down():
            calls.append(1)
            raise OSError("down")

        with pytest.raises(OSError):
            policy.call(always_down, sleep=lambda _: None)
        assert len(calls) == 1

    def test_unlisted_errors_propagate_immediately(self):
        policy = RetryPolicy(max_attempts=5)
        calls = []

        def typo():
            calls.append(1)
            raise ValueError("not retryable")

        with pytest.raises(ValueError):
            policy.call(typo, sleep=lambda _: None)
        assert len(calls) == 1


# -- fault plans --------------------------------------------------------------------


class TestFaultPlan:
    def test_parse_full_grammar(self):
        plan = FaultPlan.parse(
            "kill_after=2, refuse=3, delay=0.5, delay_p=0.25, drop=0.1, "
            "dup=0.2, corrupt=0.3, seed=42"
        )
        assert plan.kill_after == 2
        assert plan.refuse_connects == 3
        assert plan.delay == 0.5
        assert plan.delay_probability == 0.25
        assert plan.drop_probability == 0.1
        assert plan.duplicate_probability == 0.2
        assert plan.corrupt_probability == 0.3
        assert plan.seed == 42

    def test_parse_rejects_malformed_entries(self):
        with pytest.raises(FabricError, match="expected key=value"):
            FaultPlan.parse("kill_after")
        with pytest.raises(FabricError, match="unknown"):
            FaultPlan.parse("explode=1")
        with pytest.raises(FabricError, match="invalid"):
            FaultPlan.parse("drop=lots")
        with pytest.raises(FabricError):
            FaultPlan.parse("kill_after=0")
        with pytest.raises(FabricError):
            FaultPlan.parse("drop=1.5")

    def test_from_env(self):
        assert FaultPlan.from_env(env={}) is None
        assert FaultPlan.from_env(env={"WARLOCK_FAULTS": "  "}) is None
        plan = FaultPlan.from_env(env={"WARLOCK_FAULTS": "kill_after=1,seed=7"})
        assert plan.kill_after == 1 and plan.seed == 7

    def test_injector_is_deterministic_per_seed(self):
        plan = FaultPlan.parse("drop=0.5,seed=9")
        first = [plan.injector().should_drop() for _ in range(1)]
        decisions_a = [plan.injector() for _ in range(1)][0]
        decisions_b = plan.injector()
        a = [decisions_a.should_drop() for _ in range(20)]
        b = [decisions_b.should_drop() for _ in range(20)]
        assert a == b
        assert first[0] == a[0]

    def test_refuse_connects_fires_exactly_n_times(self):
        injector = FaultPlan.parse("refuse=2").injector()
        for _ in range(2):
            with pytest.raises(ConnectionRefusedError):
                injector.on_connect()
        injector.on_connect()  # third attempt goes through
        assert injector.refused == 2

    def test_kill_after_raises_fault_injected(self):
        injector = FaultPlan.parse("kill_after=2").injector()
        injector.on_chunk_evaluated()
        with pytest.raises(FaultInjected):
            injector.on_chunk_evaluated()

    def test_corrupt_flips_exactly_one_byte(self):
        injector = FaultPlan.parse("corrupt=1.0,seed=3").injector()
        payload = bytes(range(64))
        mutated = injector.transform_payload(payload)
        assert mutated != payload
        assert len(mutated) == len(payload)
        assert sum(1 for a, b in zip(payload, mutated) if a != b) == 1


# -- wire protocol ------------------------------------------------------------------


class TestProtocol:
    def test_parse_address(self):
        assert parse_address("10.0.0.1:9000") == ("10.0.0.1", 9000)
        assert parse_address("example.org") == ("example.org", DEFAULT_PORT)
        assert parse_address(":9000") == ("127.0.0.1", 9000)
        with pytest.raises(FabricError):
            parse_address("")
        with pytest.raises(FabricError):
            parse_address("host:notaport")
        with pytest.raises(FabricError):
            parse_address("host:70000")

    def test_round_trip_over_socketpair(self):
        left, right = socket.socketpair()
        try:
            message = ("lease", Lease(3, (1, 2, 5), 30.0))
            write_message(left, message)
            received = read_message(right)
        finally:
            left.close()
            right.close()
        assert received == message
        assert received[1].to_dict() == {
            "chunk_id": 3,
            "indices": [1, 2, 5],
            "timeout": 30.0,
        }

    def test_corrupted_payload_is_rejected(self):
        left, right = socket.socketpair()
        injector = FaultPlan.parse("corrupt=1.0,seed=1").injector()
        try:
            write_message(left, ("hello", "w1"), faults=injector)
            with pytest.raises(FabricError, match="checksum"):
                read_message(right)
        finally:
            left.close()
            right.close()
        assert injector.corrupted == 1

    def test_bad_magic_and_oversized_length_are_rejected(self):
        import struct

        left, right = socket.socketpair()
        try:
            left.sendall(struct.pack("!4sII", b"EVIL", 4, 0) + b"ruin")
            with pytest.raises(FabricError, match="magic"):
                read_message(right)
        finally:
            left.close()
            right.close()
        left, right = socket.socketpair()
        try:
            left.sendall(struct.pack("!4sII", b"WLF1", 2**31, 0))
            with pytest.raises(FabricError, match="exceeds"):
                read_message(right)
        finally:
            left.close()
            right.close()

    def test_truncated_frame_is_rejected(self):
        left, right = socket.socketpair()
        try:
            import pickle
            import struct
            import zlib

            payload = pickle.dumps(("hello", "w1"))
            frame = struct.pack("!4sII", b"WLF1", len(payload), zlib.crc32(payload))
            left.sendall(frame + payload[:-3])
            left.close()
            with pytest.raises(FabricError, match="mid-frame"):
                read_message(right)
        finally:
            right.close()


# -- end-to-end sweeps --------------------------------------------------------------


def _free_port() -> int:
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    return port


def _worker_retry() -> RetryPolicy:
    return RetryPolicy(max_attempts=20, base_delay=0.05, max_delay=0.2, deadline=15.0)


@pytest.fixture(scope="module")
def fabric_scenario(apb_small_schema, apb_workload):
    return apb_small_schema, apb_workload, SystemParameters(num_disks=8)


@pytest.fixture(scope="module")
def local_fingerprint(fabric_scenario):
    schema, workload, system = fabric_scenario
    return recommendation_fingerprint(Warlock(schema, workload, system).recommend())


def _fabric_advisor(fabric_scenario, port, grace=60.0, lease=1.0):
    schema, workload, system = fabric_scenario
    return Warlock(
        schema,
        workload,
        system,
        options=EngineOptions(
            fabric=f"127.0.0.1:{port}", fabric_grace=grace, fabric_lease=lease
        ),
    )


def _spawn_worker(port, faults=None):
    def target():
        try:
            run_worker(
                ("127.0.0.1", port), retry=_worker_retry(), faults=faults
            )
        except FaultInjected:
            pass  # the injected crash is this thread's whole purpose
        except (OSError, FabricError):
            pass  # coordinator already gone: the test asserted by then

    thread = threading.Thread(target=target, daemon=True)
    thread.start()
    return thread


class TestFabricSweeps:
    def test_zero_workers_degrades_to_local(
        self, fabric_scenario, local_fingerprint, capsys
    ):
        advisor = _fabric_advisor(
            fabric_scenario, _free_port(), grace=0.0, lease=1.0
        )
        result = advisor.recommend()
        assert recommendation_fingerprint(result) == local_fingerprint
        err = capsys.readouterr().err
        assert "no fabric workers reachable" in err
        assert "[degraded]" in err

    def test_two_workers_match_local_fingerprint(
        self, fabric_scenario, local_fingerprint
    ):
        port = _free_port()
        advisor = _fabric_advisor(fabric_scenario, port)
        events = []
        threads = [_spawn_worker(port), _spawn_worker(port)]
        result = advisor.recommend(on_progress=events.append)
        for thread in threads:
            thread.join(timeout=10)
        assert recommendation_fingerprint(result) == local_fingerprint
        assert max(event.workers for event in events) >= 1
        assert not any(event.degraded for event in events)

    def test_killed_worker_lease_is_requeued(
        self, fabric_scenario, local_fingerprint, capsys
    ):
        port = _free_port()
        advisor = _fabric_advisor(fabric_scenario, port)
        chaos = FaultPlan.parse("kill_after=1,seed=7").injector()
        threads = [_spawn_worker(port, faults=chaos), _spawn_worker(port)]
        result = advisor.recommend()
        for thread in threads:
            thread.join(timeout=10)
        assert recommendation_fingerprint(result) == local_fingerprint
        assert chaos.chunks_evaluated == 1
        err = capsys.readouterr().err
        assert "requeued lease(s)" in err

    def test_duplicated_requests_dedupe(
        self, fabric_scenario, local_fingerprint, capsys
    ):
        port = _free_port()
        advisor = _fabric_advisor(fabric_scenario, port)
        noisy = FaultPlan.parse("dup=1.0,seed=11").injector()
        thread = _spawn_worker(port, faults=noisy)
        result = advisor.recommend()
        thread.join(timeout=10)
        assert recommendation_fingerprint(result) == local_fingerprint
        assert noisy.duplicated > 0

    def test_engine_falls_back_when_the_port_is_taken(
        self, fabric_scenario, local_fingerprint, capsys
    ):
        blocker = socket.socket()
        blocker.bind(("127.0.0.1", 0))
        blocker.listen(1)
        port = blocker.getsockname()[1]
        try:
            advisor = _fabric_advisor(fabric_scenario, port)
            result = advisor.recommend()
        finally:
            blocker.close()
        assert recommendation_fingerprint(result) == local_fingerprint
        assert "sweep fabric unavailable" in capsys.readouterr().err

    def test_cancellation_propagates_at_chunk_boundaries(self, fabric_scenario):
        from repro.api.progress import CancellationToken

        port = _free_port()
        advisor = _fabric_advisor(fabric_scenario, port, grace=0.0)
        token = CancellationToken()

        def cancel_after_first(event):
            token.cancel()

        with pytest.raises(EvaluationCancelled):
            advisor.recommend(on_progress=cancel_after_first, cancel=token)


class TestFabricOptions:
    def test_fabric_address_is_validated_at_options_time(self):
        EngineOptions(fabric="127.0.0.1:8643")  # valid
        EngineOptions(fabric="somehost")  # bare host: default port
        with pytest.raises(AdvisorError):
            EngineOptions(fabric="host:notaport")
        with pytest.raises(AdvisorError):
            EngineOptions(fabric=123)
        with pytest.raises(AdvisorError):
            EngineOptions(fabric_grace=-1.0)
        with pytest.raises(AdvisorError):
            EngineOptions(fabric_lease=0.0)

    def test_fabric_knobs_round_trip_through_dicts(self):
        options = EngineOptions(
            fabric="127.0.0.1:9000", fabric_grace=5.0, fabric_lease=10.0
        )
        clone = EngineOptions.from_dict(options.to_dict())
        assert clone.fabric == "127.0.0.1:9000"
        assert clone.fabric_grace == 5.0
        assert clone.fabric_lease == 10.0
        assert "fabric=127.0.0.1:9000" in options.describe()
