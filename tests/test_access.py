"""Unit tests for repro.costmodel.access: MDHF access semantics."""

from __future__ import annotations

import pytest

from repro import (
    DimensionRestriction,
    FragmentationSpec,
    QueryClass,
    build_layout,
    design_bitmap_scheme,
)
from repro.bitmap import BitmapScheme
from repro.costmodel import estimate_access
from repro.storage import PrefetchSetting

PREFETCH = PrefetchSetting.fixed(8, 2)


def layout_for(schema, *pairs):
    return build_layout(schema, FragmentationSpec.of(*pairs))


class TestFragmentConfinement:
    def test_restriction_at_fragmentation_level(self, toy_schema, toy_workload):
        """A point restriction at the fragmentation level touches exactly one slice."""
        layout = layout_for(toy_schema, ("time", "quarter"))
        scheme = design_bitmap_scheme(toy_schema, toy_workload)
        query = QueryClass("q", [DimensionRestriction("time", "quarter")])
        profile = estimate_access(layout, query, scheme, PREFETCH)
        assert profile.fragments_accessed == pytest.approx(1.0)
        assert profile.fragment_hit_ratio == pytest.approx(1 / 8)

    def test_restriction_coarser_than_fragmentation(self, toy_schema, toy_workload):
        """Restricting a coarser level selects the whole sub-tree of fragments."""
        layout = layout_for(toy_schema, ("time", "month"))
        scheme = design_bitmap_scheme(toy_schema, toy_workload)
        query = QueryClass("q", [DimensionRestriction("time", "year")])
        profile = estimate_access(layout, query, scheme, PREFETCH)
        # One of two years -> 12 of 24 months.
        assert profile.fragments_accessed == pytest.approx(12.0)

    def test_restriction_finer_than_fragmentation(self, toy_schema, toy_workload):
        """Restricting a finer level still confines access to one fragment."""
        layout = layout_for(toy_schema, ("time", "quarter"))
        scheme = design_bitmap_scheme(toy_schema, toy_workload)
        query = QueryClass("q", [DimensionRestriction("time", "month")])
        profile = estimate_access(layout, query, scheme, PREFETCH)
        assert profile.fragments_accessed == pytest.approx(1.0)

    def test_unrestricted_fragmentation_dimension(self, toy_schema, toy_workload):
        """A query not restricting any fragmentation dimension touches every fragment."""
        layout = layout_for(toy_schema, ("time", "quarter"))
        scheme = design_bitmap_scheme(toy_schema, toy_workload)
        query = QueryClass("q", [DimensionRestriction("product", "group")])
        profile = estimate_access(layout, query, scheme, PREFETCH)
        assert profile.fragments_accessed == pytest.approx(8.0)
        assert profile.fragment_hit_ratio == pytest.approx(1.0)

    def test_multidimensional_confinement_multiplies(self, toy_schema, toy_workload):
        layout = layout_for(toy_schema, ("time", "quarter"), ("product", "group"))
        scheme = design_bitmap_scheme(toy_schema, toy_workload)
        query = QueryClass(
            "q",
            [
                DimensionRestriction("time", "quarter"),
                DimensionRestriction("product", "group"),
            ],
        )
        profile = estimate_access(layout, query, scheme, PREFETCH)
        assert profile.fragments_accessed == pytest.approx(1.0)
        assert profile.fragments_total == 80

    def test_unfragmented_baseline_touches_single_fragment(self, toy_schema, toy_workload):
        layout = build_layout(toy_schema, FragmentationSpec.none())
        scheme = design_bitmap_scheme(toy_schema, toy_workload)
        query = QueryClass("q", [DimensionRestriction("time", "month")])
        profile = estimate_access(layout, query, scheme, PREFETCH)
        assert profile.fragments_accessed == pytest.approx(1.0)
        assert profile.fragments_total == 1

    def test_range_restriction_scales_fragments(self, toy_schema, toy_workload):
        layout = layout_for(toy_schema, ("time", "month"))
        scheme = design_bitmap_scheme(toy_schema, toy_workload)
        query = QueryClass("q", [DimensionRestriction("time", "month", value_count=6)])
        profile = estimate_access(layout, query, scheme, PREFETCH)
        assert profile.fragments_accessed == pytest.approx(6.0)


class TestRowAndPageEstimates:
    def test_qualifying_rows_match_selectivity(self, toy_schema, toy_workload):
        layout = layout_for(toy_schema, ("time", "quarter"))
        scheme = design_bitmap_scheme(toy_schema, toy_workload)
        query = QueryClass(
            "q",
            [
                DimensionRestriction("time", "month"),
                DimensionRestriction("product", "group"),
            ],
        )
        profile = estimate_access(layout, query, scheme, PREFETCH)
        expected = 1_000_000 * (1 / 24) * (1 / 10)
        assert profile.qualifying_rows == pytest.approx(expected, rel=1e-6)

    def test_qualifying_never_exceeds_rows_in_fragments(self, toy_schema, toy_workload):
        layout = layout_for(toy_schema, ("store", "region"))
        scheme = design_bitmap_scheme(toy_schema, toy_workload)
        for query in toy_workload:
            profile = estimate_access(layout, query, scheme, PREFETCH)
            assert profile.qualifying_rows <= profile.rows_in_accessed_fragments + 1e-6

    def test_pages_bounded_by_fragment_pages(self, toy_schema, toy_workload):
        layout = layout_for(toy_schema, ("time", "quarter"), ("product", "group"))
        scheme = design_bitmap_scheme(toy_schema, toy_workload)
        for query in toy_workload:
            profile = estimate_access(layout, query, scheme, PREFETCH)
            upper = profile.fragments_accessed * profile.fact_pages_per_fragment
            assert profile.fact_pages_accessed <= upper + 1e-6

    def test_full_scan_when_no_bitmap(self, toy_schema):
        """Residual restriction without a bitmap forces a scan of accessed fragments."""
        layout = layout_for(toy_schema, ("time", "quarter"))
        empty_scheme = BitmapScheme()
        query = QueryClass("q", [DimensionRestriction("product", "group")])
        profile = estimate_access(layout, query, empty_scheme, PREFETCH)
        assert profile.forced_full_scan
        assert profile.sequential_fact_access
        assert profile.fact_pages_accessed == pytest.approx(
            profile.fragments_accessed * profile.fact_pages_per_fragment
        )
        assert profile.bitmap_pages_accessed == 0.0

    def test_bitmap_reduces_fact_pages_for_selective_query(self, toy_schema):
        """With a very selective residual predicate, bitmaps avoid the full scan."""
        from repro.bitmap import BitmapIndex, BitmapType

        layout = layout_for(toy_schema, ("time", "quarter"))
        scheme = BitmapScheme(
            [
                BitmapIndex("product", "item", BitmapType.ENCODED, 200),
                BitmapIndex("store", "store", BitmapType.ENCODED, 40),
            ]
        )
        # Combined selectivity 1/8000: only a handful of rows qualify per
        # fragment, so the bitmap plan clearly beats scanning the fragments.
        query = QueryClass(
            "q",
            [
                DimensionRestriction("product", "item"),
                DimensionRestriction("store", "store"),
            ],
        )
        with_bitmap = estimate_access(layout, query, scheme, PREFETCH)
        without_bitmap = estimate_access(layout, query, BitmapScheme(), PREFETCH)
        assert with_bitmap.fact_pages_accessed < without_bitmap.fact_pages_accessed
        assert with_bitmap.bitmap_pages_accessed > 0
        assert ("product", "item") in with_bitmap.bitmap_attributes_used
        assert not with_bitmap.sequential_fact_access

    def test_scan_chosen_when_bitmap_plan_not_worthwhile(self, toy_schema, toy_workload):
        """A mildly selective predicate keeps the (cheaper) sequential scan plan."""
        layout = layout_for(toy_schema, ("time", "quarter"))
        scheme = design_bitmap_scheme(toy_schema, toy_workload)
        query = QueryClass("q", [DimensionRestriction("product", "group")])
        profile = estimate_access(layout, query, scheme, PREFETCH)
        assert profile.sequential_fact_access
        assert profile.bitmap_pages_accessed == 0.0
        assert profile.bitmap_attributes_used == ()
        # The scan plan can never read more than all pages of the accessed fragments.
        assert profile.fact_pages_accessed == pytest.approx(
            profile.fragments_accessed * profile.fact_pages_per_fragment
        )

    def test_no_bitmap_access_when_fragmentation_resolves_query(self, toy_schema, toy_workload):
        layout = layout_for(toy_schema, ("time", "quarter"))
        scheme = design_bitmap_scheme(toy_schema, toy_workload)
        query = QueryClass("q", [DimensionRestriction("time", "quarter")])
        profile = estimate_access(layout, query, scheme, PREFETCH)
        assert profile.bitmap_pages_accessed == 0.0
        assert profile.bitmap_attributes_used == ()

    def test_total_properties_consistent(self, toy_schema, toy_workload):
        layout = layout_for(toy_schema, ("time", "quarter"))
        scheme = design_bitmap_scheme(toy_schema, toy_workload)
        query = toy_workload.query_class("monthly-by-group")
        profile = estimate_access(layout, query, scheme, PREFETCH)
        assert profile.total_pages_accessed == pytest.approx(
            profile.fact_pages_accessed + profile.bitmap_pages_accessed
        )
        assert profile.total_io_requests == pytest.approx(
            profile.fact_io_requests + profile.bitmap_io_requests
        )


class TestPrefetchEffect:
    def test_larger_prefetch_fewer_requests_for_scans(self, toy_schema, toy_workload):
        layout = layout_for(toy_schema, ("time", "quarter"))
        scheme = design_bitmap_scheme(toy_schema, toy_workload)
        query = QueryClass("q", [DimensionRestriction("time", "quarter")])
        small = estimate_access(layout, query, scheme, PrefetchSetting.fixed(1, 1))
        large = estimate_access(layout, query, scheme, PrefetchSetting.fixed(64, 1))
        assert large.fact_io_requests < small.fact_io_requests
        # Touched pages are identical; only the request count changes.
        assert large.fact_pages_accessed == pytest.approx(small.fact_pages_accessed)

    def test_bitmap_prefetch_affects_bitmap_requests(self, toy_schema, toy_workload):
        layout = layout_for(toy_schema, ("time", "quarter"))
        scheme = design_bitmap_scheme(toy_schema, toy_workload)
        query = QueryClass("q", [DimensionRestriction("product", "item")])
        small = estimate_access(layout, query, scheme, PrefetchSetting.fixed(8, 1))
        large = estimate_access(layout, query, scheme, PrefetchSetting.fixed(8, 16))
        assert large.bitmap_io_requests <= small.bitmap_io_requests
