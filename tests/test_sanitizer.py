"""Tests for the runtime concurrency sanitizer (``repro.lint.sanitizer``).

These tests toggle the instrumentation explicitly (enable/disable around
each case) so they exercise the sanitizer regardless of whether the suite
itself runs under ``WARLOCK_SANITIZE=1``.
"""

from __future__ import annotations

import threading

import pytest

from repro.engine.cache import EvaluationCache
from repro.lint.sanitizer import (
    SanitizerViolation,
    _OwnedLock,
    disable_sanitizer,
    enable_sanitizer,
    install_from_env,
    sanitizer_enabled,
)
from repro import AdvisorConfig, SystemParameters, synthetic_schema
from repro.service.registry import SessionRegistry
from repro.workload.generator import random_query_mix


@pytest.fixture(scope="module")
def scenario():
    schema = synthetic_schema(
        num_dimensions=3,
        levels_per_dimension=3,
        bottom_cardinality=200,
        fact_rows=1_000_000,
        seed=7,
    )
    workload = random_query_mix(schema, num_classes=4, seed=11)
    system = SystemParameters(num_disks=8)
    config = AdvisorConfig(max_fragments=10_000, top_candidates=4)
    return schema, workload, system, config


@pytest.fixture
def sanitized():
    """Enable the sanitizer for one test, restoring the originals after."""
    was_enabled = sanitizer_enabled()
    enable_sanitizer()
    try:
        yield
    finally:
        if not was_enabled:
            disable_sanitizer()


class TestToggle:
    def test_enable_disable_round_trip_restores_methods(self):
        if sanitizer_enabled():
            pytest.skip("suite already runs sanitized; originals not pristine")
        before = EvaluationCache.__dict__["reset_stats"]
        enable_sanitizer()
        assert EvaluationCache.__dict__["reset_stats"] is not before
        assert getattr(
            EvaluationCache.__dict__["reset_stats"], "__wrapped_by_sanitizer__", False
        )
        disable_sanitizer()
        assert EvaluationCache.__dict__["reset_stats"] is before

    def test_enable_is_idempotent(self, sanitized):
        wrapped = EvaluationCache.__dict__["reset_stats"]
        enable_sanitizer()
        assert EvaluationCache.__dict__["reset_stats"] is wrapped

    def test_install_from_env_honors_the_variable(self):
        if sanitizer_enabled():
            pytest.skip("suite already runs sanitized")
        assert install_from_env({"WARLOCK_SANITIZE": ""}) is False
        assert install_from_env({}) is False
        assert not sanitizer_enabled()
        assert install_from_env({"WARLOCK_SANITIZE": "1"}) is True
        assert sanitizer_enabled()
        disable_sanitizer()


class TestExclusiveEntry:
    def test_single_threaded_use_is_untouched(self, sanitized):
        cache = EvaluationCache()
        cache.reset_stats()
        cache.clear()
        assert cache.stats.lookups == 0

    def test_reentrant_calls_from_the_owner_thread_pass(self, sanitized, monkeypatch):
        # The cache's own methods call each other (candidate -> get/put);
        # model that with a wrapper-level reentrant call.
        cache = EvaluationCache()
        original_clear = EvaluationCache.__dict__["clear"]

        def clearing_reset(self):
            return original_clear.__get__(self, EvaluationCache)()

        # Patch *under* the instrumentation: route one guarded method into
        # another guarded method on the same instance.
        cache.reset_stats()
        cache.clear()  # depth-1 sanity before the nested case
        from repro.lint import sanitizer as san

        guarded = san._guarded(EvaluationCache, clearing_reset)
        monkeypatch.setattr(EvaluationCache, "reset_stats", guarded)
        cache.reset_stats()  # enters reset_stats, then clear: depth 2, no raise

    def test_concurrent_entry_raises_with_both_stacks(self, sanitized, monkeypatch):
        started = threading.Event()
        release = threading.Event()

        def stalled_clear(self):
            started.set()
            assert release.wait(timeout=10)

        from repro.lint import sanitizer as san

        monkeypatch.setattr(
            EvaluationCache, "clear", san._guarded(EvaluationCache, stalled_clear)
        )
        cache = EvaluationCache()
        worker = threading.Thread(target=cache.clear)
        worker.start()
        try:
            assert started.wait(timeout=10)
            with pytest.raises(SanitizerViolation) as excinfo:
                cache.reset_stats()
        finally:
            release.set()
            worker.join(timeout=10)
        message = str(excinfo.value)
        assert "concurrent entry into not-thread-safe EvaluationCache" in message
        assert "--- holder" in message and "--- violator" in message
        assert ".stalled_clear()" in message and ".reset_stats()" in message

    def test_separate_instances_do_not_interfere(self, sanitized):
        started = threading.Event()
        release = threading.Event()

        def stall(cache):
            started.set()
            release.wait(timeout=10)
            cache.clear()

        first, second = EvaluationCache(), EvaluationCache()
        worker = threading.Thread(target=stall, args=(first,))
        worker.start()
        try:
            assert started.wait(timeout=10)
            second.clear()  # a different instance: no violation
        finally:
            release.set()
            worker.join(timeout=10)


class TestRegistryDiscipline:
    def test_ensure_session_without_the_lock_raises(self, sanitized, scenario):
        schema, workload, system, config = scenario
        registry = SessionRegistry()
        entry = registry.register("w", schema, workload, system, config=config)
        with pytest.raises(SanitizerViolation, match="without holding the entry lock"):
            entry.ensure_session()

    def test_ensure_session_under_the_lock_passes(self, sanitized, scenario):
        schema, workload, system, config = scenario
        registry = SessionRegistry()
        entry = registry.register("w", schema, workload, system, config=config)
        with entry.lock:
            session = entry.ensure_session()
        assert session is not None
        with entry.lock:
            entry.session.close()

    def test_collect_evictions_without_registry_lock_raises(self, sanitized):
        registry = SessionRegistry()
        with pytest.raises(SanitizerViolation, match="without the registry lock"):
            registry._collect_evictions(keep="anything")

    def test_the_service_paths_stay_clean(self, sanitized, scenario):
        # The production flows (register/acquire/evict/remove) must be
        # violation-free under instrumentation: the sanitizer changes no
        # behavior on correct programs.
        schema, workload, system, config = scenario
        registry = SessionRegistry(max_sessions=1)
        for name in ("a", "b"):
            registry.register(name, schema, workload, system, config=config)
        for name in ("a", "b"):
            entry = registry.acquire(name)
            with entry.lock:
                entry.ensure_session()
        assert registry.evictions == 1
        registry.register("a", schema, workload, system, config=config)
        assert registry.remove("b") is True
        registry.close()


class TestOwnedLock:
    def test_tracks_owner_across_acquire_release(self):
        lock = _OwnedLock()
        assert not lock.locked()
        assert not lock.owned_by_current_thread()
        with lock:
            assert lock.locked()
            assert lock.owned_by_current_thread()
        assert not lock.locked()
        assert not lock.owned_by_current_thread()

    def test_non_blocking_acquire_contract(self):
        lock = _OwnedLock()
        assert lock.acquire(blocking=False) is True
        assert lock.acquire(blocking=False) is False  # not reentrant
        lock.release()

    def test_ownership_is_per_thread(self):
        lock = _OwnedLock()
        lock.acquire()
        seen = {}

        def probe():
            seen["owned"] = lock.owned_by_current_thread()
            seen["locked"] = lock.locked()

        worker = threading.Thread(target=probe)
        worker.start()
        worker.join(timeout=5)
        lock.release()
        assert seen == {"owned": False, "locked": True}
