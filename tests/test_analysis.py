"""Unit tests for repro.analysis: statistics, reports, profiles, comparison."""

from __future__ import annotations

import pytest

from repro import FragmentationSpec
from repro.analysis import (
    build_database_statistics,
    build_query_statistics,
    compare_candidates,
    disk_access_profile,
    format_allocation_report,
    format_full_report,
    format_query_analysis,
    format_ranking_table,
    format_table,
)
from repro.errors import ReportError


@pytest.fixture(scope="module")
def module_advisor():
    """The toy advisor, rebuilt once per module (module-scoped for speed)."""
    from repro import AdvisorConfig, SystemParameters, Warlock
    from repro import (
        Dimension,
        DimensionRestriction,
        FactTable,
        Level,
        Measure,
        QueryClass,
        QueryMix,
        StarSchema,
    )

    time = Dimension("time", [Level("year", 2), Level("quarter", 8), Level("month", 24)])
    product = Dimension("product", [Level("group", 10), Level("item", 200)])
    store = Dimension("store", [Level("region", 4), Level("store", 40)])
    fact = FactTable("sales", 1_000_000, 64, ("time", "product", "store"), (Measure("revenue", 8),))
    schema = StarSchema("toy", (time, product, store), (fact,))
    workload = QueryMix(
        [
            QueryClass("monthly-by-group", [DimensionRestriction("time", "month"), DimensionRestriction("product", "group")], 4),
            QueryClass("quarterly-by-region", [DimensionRestriction("time", "quarter"), DimensionRestriction("store", "region")], 3),
            QueryClass("yearly-report", [DimensionRestriction("time", "year")], 1),
        ]
    )
    system = SystemParameters(num_disks=8)
    return Warlock(schema, workload, system, AdvisorConfig(max_fragments=10_000, top_candidates=5))


@pytest.fixture(scope="module")
def module_recommendation(module_advisor):
    return module_advisor.recommend()


class TestFormatTable:
    def test_alignment_and_separator(self):
        text = format_table(["a", "bbb"], [["1", "2"], ["333", "4"]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert set(lines[1]) <= {"-", " "}
        assert lines[0].startswith("a")

    def test_mismatched_rows_rejected(self):
        with pytest.raises(ReportError):
            format_table(["a", "b"], [["only one"]])


class TestStatistics:
    def test_database_statistics(self, module_advisor):
        candidate = module_advisor.evaluate_spec(
            FragmentationSpec.of(("time", "month"), ("store", "region"))
        )
        stats = build_database_statistics(candidate)
        assert stats.fragment_count == 96
        assert stats.fact_pages == candidate.layout.total_fact_pages
        assert stats.total_pages == stats.fact_pages + stats.bitmap_pages
        assert stats.min_fragment_pages <= stats.avg_fragment_pages <= stats.max_fragment_pages
        assert set(stats.as_dict()) >= {"fragment_count", "fact_pages", "bitmap_pages"}

    def test_query_statistics(self, module_advisor, module_recommendation):
        candidate = module_recommendation.best
        stats = build_query_statistics(candidate, module_advisor.workload)
        assert len(stats) == 3
        shares = sum(s.workload_share for s in stats)
        assert shares == pytest.approx(1.0)
        for stat in stats:
            assert stat.pages_accessed == pytest.approx(
                stat.fact_pages_accessed + stat.bitmap_pages_accessed
            )
            assert 0 <= stat.fragment_hit_ratio <= 1
            assert stat.io_cost_ms > 0
            assert "query" in stat.as_dict()

    def test_query_statistics_workload_mismatch(self, module_advisor, module_recommendation):
        wrong_workload = module_advisor.workload.without("yearly-report")
        with pytest.raises(ReportError):
            build_query_statistics(module_recommendation.best, wrong_workload)


class TestReports:
    def test_ranking_table_lists_all_ranked(self, module_recommendation):
        text = format_ranking_table(module_recommendation)
        for ranked in module_recommendation.ranked:
            assert ranked.candidate.label in text
        assert "I/O cost" in text

    def test_query_analysis_contains_fig2_sections(self, module_advisor, module_recommendation):
        text = format_query_analysis(module_recommendation.best, module_advisor.workload)
        assert "Database statistic" in text
        assert "I/O access statistic" in text
        assert "Prefetch granule suggestion" in text
        assert "Bitmap scheme" in text
        for query_class in module_advisor.workload:
            assert query_class.name in text

    def test_allocation_report(self, module_recommendation):
        text = format_allocation_report(module_recommendation.best)
        assert "Physical allocation scheme" in text
        assert "most occupied" in text

    def test_full_report_combines_sections(self, module_recommendation):
        text = format_full_report(module_recommendation, detail_top=1)
        assert "WARLOCK recommendation" in text
        assert "Database statistic" in text
        assert "Physical allocation scheme" in text

    def test_full_report_invalid_detail(self, module_recommendation):
        with pytest.raises(ReportError):
            format_full_report(module_recommendation, detail_top=-1)


class TestDiskAccessProfile:
    def test_profile_shape_and_totals(self, module_advisor, module_recommendation):
        candidate = module_recommendation.best
        query_class = module_advisor.workload.query_class("quarterly-by-region")
        profile = disk_access_profile(candidate, query_class, samples=5, seed=1)
        assert profile.num_disks == module_advisor.system.num_disks
        assert profile.total_pages > 0
        assert 1 <= profile.disks_touched <= profile.num_disks
        assert profile.max_over_mean >= 1.0
        assert query_class.name in profile.describe()

    def test_profile_reproducible(self, module_advisor, module_recommendation):
        candidate = module_recommendation.best
        query_class = module_advisor.workload.query_class("monthly-by-group")
        first = disk_access_profile(candidate, query_class, samples=3, seed=7)
        second = disk_access_profile(candidate, query_class, samples=3, seed=7)
        assert first.pages_per_disk.tolist() == second.pages_per_disk.tolist()

    def test_invalid_samples(self, module_advisor, module_recommendation):
        query_class = module_advisor.workload.query_class("monthly-by-group")
        with pytest.raises(ReportError):
            disk_access_profile(module_recommendation.best, query_class, samples=0)


class TestCompareCandidates:
    def test_compare_without_baseline(self, module_recommendation):
        candidates = [r.candidate for r in module_recommendation.ranked]
        text = compare_candidates(candidates)
        for candidate in candidates:
            assert candidate.label in text

    def test_compare_with_baseline_adds_ratios(self, module_recommendation):
        candidates = [r.candidate for r in module_recommendation.ranked]
        text = compare_candidates(candidates, baseline=candidates[0])
        assert "I/O vs base" in text
        assert "1.00x" in text

    def test_compare_empty_rejected(self):
        with pytest.raises(ReportError):
            compare_candidates([])
