"""Unit tests for repro.costmodel.model: I/O cost, response time, workload evaluation."""

from __future__ import annotations

import pytest

from repro import (
    DimensionRestriction,
    FragmentationSpec,
    IOCostModel,
    QueryClass,
    QueryMix,
    SystemParameters,
    build_layout,
    design_bitmap_scheme,
    resolve_prefetch_setting,
)
from repro.errors import CostModelError
from repro.storage import PrefetchPolicy, PrefetchSetting

PREFETCH = PrefetchSetting.fixed(8, 2)


@pytest.fixture
def toy_setup(toy_schema, toy_workload, small_system):
    layout = build_layout(toy_schema, FragmentationSpec.of(("time", "quarter"), ("product", "group")))
    scheme = design_bitmap_scheme(toy_schema, toy_workload)
    model = IOCostModel(small_system)
    return layout, scheme, model


class TestIOCostModel:
    def test_rejects_bad_system(self):
        with pytest.raises(CostModelError):
            IOCostModel("not-a-system")  # type: ignore[arg-type]

    def test_io_cost_positive(self, toy_setup, toy_workload):
        layout, scheme, model = toy_setup
        for query in toy_workload:
            cost = model.query_cost(layout, query, scheme, PREFETCH)
            assert cost.io_cost_ms > 0
            assert cost.response_time_ms > 0

    def test_io_cost_composition(self, toy_setup, toy_workload):
        """Busy time is positioning per request plus transfer per page."""
        layout, scheme, model = toy_setup
        query = toy_workload.query_class("yearly-report")
        profile = model.query_cost(layout, query, scheme, PREFETCH).profile
        io_cost = model.io_cost_ms(profile, PREFETCH)
        disk = model.system.disk
        lower_bound = (
            profile.total_io_requests * disk.positioning_time_ms
            + profile.total_pages_accessed
            * disk.page_transfer_time_ms(model.system.page_size_bytes)
        )
        assert io_cost >= lower_bound - 1e-6

    def test_disks_used_bounded(self, toy_setup, toy_workload):
        layout, scheme, model = toy_setup
        for query in toy_workload:
            cost = model.query_cost(layout, query, scheme, PREFETCH)
            assert 1 <= cost.disks_used <= model.system.num_disks
            assert cost.disks_used <= max(1, cost.profile.fragments_accessed)

    def test_response_time_below_io_cost_when_parallel(self, toy_setup, toy_workload):
        """Queries spread over several disks finish faster than their total work."""
        layout, scheme, model = toy_setup
        query = toy_workload.query_class("yearly-report")  # touches many fragments
        cost = model.query_cost(layout, query, scheme, PREFETCH)
        assert cost.disks_used > 1
        assert cost.response_time_ms < cost.io_cost_ms

    def test_single_fragment_query_serial(self, toy_setup, toy_workload):
        layout, scheme, model = toy_setup
        query = QueryClass(
            "pinpoint",
            [
                DimensionRestriction("time", "quarter"),
                DimensionRestriction("product", "group"),
            ],
        )
        cost = model.query_cost(layout, query, scheme, PREFETCH)
        assert cost.disks_used == 1
        # Serial execution: response equals busy time plus coordination.
        assert cost.response_time_ms >= cost.io_cost_ms

    def test_more_disks_lower_response(self, toy_schema, toy_workload):
        layout = build_layout(toy_schema, FragmentationSpec.of(("time", "month")))
        scheme = design_bitmap_scheme(toy_schema, toy_workload)
        query = toy_workload.query_class("yearly-report")
        few = IOCostModel(SystemParameters(num_disks=2)).query_cost(
            layout, query, scheme, PREFETCH
        )
        many = IOCostModel(SystemParameters(num_disks=32)).query_cost(
            layout, query, scheme, PREFETCH
        )
        assert many.response_time_ms < few.response_time_ms
        # Total I/O work does not depend on the disk count.
        assert many.io_cost_ms == pytest.approx(few.io_cost_ms)

    def test_weighted_cost_fields(self, toy_setup, toy_workload):
        layout, scheme, model = toy_setup
        query = toy_workload.query_class("yearly-report")
        cost = model.query_cost(layout, query, scheme, PREFETCH, weight=0.25)
        assert cost.weighted_io_cost_ms == pytest.approx(0.25 * cost.io_cost_ms)
        assert cost.weighted_response_time_ms == pytest.approx(
            0.25 * cost.response_time_ms
        )


class TestWorkloadEvaluation:
    def test_totals_are_weighted_sums(self, toy_setup, toy_workload):
        layout, scheme, model = toy_setup
        evaluation = model.evaluate(layout, toy_workload, scheme, PREFETCH)
        assert evaluation.total_io_cost_ms == pytest.approx(
            sum(c.weighted_io_cost_ms for c in evaluation.per_class)
        )
        assert evaluation.total_response_time_ms == pytest.approx(
            sum(c.weighted_response_time_ms for c in evaluation.per_class)
        )
        assert len(evaluation.per_class) == len(toy_workload)

    def test_cost_for_lookup(self, toy_setup, toy_workload):
        layout, scheme, model = toy_setup
        evaluation = model.evaluate(layout, toy_workload, scheme, PREFETCH)
        assert evaluation.cost_for("yearly-report").query_name == "yearly-report"
        with pytest.raises(CostModelError):
            evaluation.cost_for("ghost")

    def test_as_dict(self, toy_setup, toy_workload):
        layout, scheme, model = toy_setup
        evaluation = model.evaluate(layout, toy_workload, scheme, PREFETCH)
        payload = evaluation.as_dict()
        assert set(payload) == {qc.name for qc in toy_workload}
        for record in payload.values():
            assert record["io_cost_ms"] > 0

    def test_auto_prefetch_resolution(self, toy_setup, toy_workload):
        """evaluate() without an explicit prefetch setting resolves one automatically."""
        layout, scheme, model = toy_setup
        evaluation = model.evaluate(layout, toy_workload, scheme)
        assert evaluation.prefetch.fact_pages >= 1
        assert evaluation.prefetch.fact_policy is PrefetchPolicy.AUTO


class TestClusteringDeclusteringTradeoff:
    """The fundamental trade-off of §3.2: declustering lowers response time but
    raises total I/O work; clustering does the opposite."""

    def test_tradeoff_between_coarse_and_fine_fragmentation(
        self, toy_schema, toy_workload, small_system
    ):
        scheme = design_bitmap_scheme(toy_schema, toy_workload)
        model = IOCostModel(small_system)
        query = QueryClass("by-year", [DimensionRestriction("time", "year")])
        mix = QueryMix([query])

        coarse = build_layout(toy_schema, FragmentationSpec.of(("time", "year")))
        fine = build_layout(
            toy_schema, FragmentationSpec.of(("time", "month"), ("store", "store"))
        )

        coarse_eval = model.evaluate(coarse, mix, scheme, PREFETCH)
        fine_eval = model.evaluate(fine, mix, scheme, PREFETCH)

        # Clustering (coarse) minimizes total I/O work ...
        assert coarse_eval.total_io_cost_ms <= fine_eval.total_io_cost_ms
        # ... while declustering (fine) minimizes response time.
        assert fine_eval.total_response_time_ms <= coarse_eval.total_response_time_ms


class TestResolvePrefetchSetting:
    def test_auto_policies(self, toy_schema, toy_workload):
        layout = build_layout(toy_schema, FragmentationSpec.of(("time", "quarter")))
        scheme = design_bitmap_scheme(toy_schema, toy_workload)
        system = SystemParameters(num_disks=8)  # auto prefetch
        setting = resolve_prefetch_setting(layout, toy_workload, scheme, system)
        assert setting.fact_policy is PrefetchPolicy.AUTO
        assert setting.bitmap_policy is PrefetchPolicy.AUTO
        assert setting.fact_pages >= 1
        assert setting.bitmap_pages >= 1

    def test_fixed_policies_pass_through(self, toy_schema, toy_workload):
        layout = build_layout(toy_schema, FragmentationSpec.of(("time", "quarter")))
        scheme = design_bitmap_scheme(toy_schema, toy_workload)
        system = SystemParameters(
            num_disks=8, prefetch_pages_fact=32, prefetch_pages_bitmap=2
        )
        setting = resolve_prefetch_setting(layout, toy_workload, scheme, system)
        assert setting.fact_pages == 32
        assert setting.bitmap_pages == 2
        assert setting.fact_policy is PrefetchPolicy.FIXED

    def test_fact_granule_tracks_fragment_size(self, toy_schema, toy_workload):
        """Coarser fragmentations (larger fragments) warrant larger fact granules."""
        scheme = design_bitmap_scheme(toy_schema, toy_workload)
        system = SystemParameters(num_disks=8)
        coarse = build_layout(toy_schema, FragmentationSpec.of(("time", "year")))
        fine = build_layout(
            toy_schema, FragmentationSpec.of(("time", "month"), ("product", "item"))
        )
        coarse_setting = resolve_prefetch_setting(coarse, toy_workload, scheme, system)
        fine_setting = resolve_prefetch_setting(fine, toy_workload, scheme, system)
        assert coarse_setting.fact_pages >= fine_setting.fact_pages
