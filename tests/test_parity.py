"""Parity matrix: serial, parallel and cached runs return identical results.

The evaluation engine promises that execution strategy is invisible in the
output: ``jobs=1`` and ``jobs=4`` produce bit-identical recommendations on
every scenario, and a cold cache versus a warm cache changes timings only,
never numbers.  Identity is checked through
:func:`repro.engine.recommendation_fingerprint`, which canonicalizes every
float of every candidate (per-class costs, access profiles, allocation
vectors) at full ``repr`` precision — two equal fingerprints mean the
recommendations are bit-identical — plus direct equality spot checks on the
headline metrics.
"""

from __future__ import annotations

import pytest

from repro import (
    AdvisorConfig,
    EngineOptions,
    EvaluationCache,
    SystemParameters,
    Warlock,
    apb1_query_mix,
    apb1_schema,
    recommendation_fingerprint,
    retail_query_mix,
    retail_schema,
    synthetic_schema,
)
from repro.engine import recommendation_state
from repro.workload.generator import random_query_mix


def _scenario(name):
    """(schema, workload, system, config) for a named parity scenario."""
    if name == "synthetic":
        schema = synthetic_schema(
            num_dimensions=4,
            levels_per_dimension=3,
            bottom_cardinality=300,
            fact_rows=2_000_000,
            seed=3,
        )
        workload = random_query_mix(schema, num_classes=6, seed=5)
        system = SystemParameters(num_disks=16)
        config = AdvisorConfig(max_fragments=20_000, top_candidates=8)
    elif name == "retail":
        schema = retail_schema(scale=0.05)
        workload = retail_query_mix()
        system = SystemParameters(num_disks=32)
        config = AdvisorConfig(max_fragments=50_000, top_candidates=8)
    elif name == "apb1":
        schema = apb1_schema(scale=0.02)
        workload = apb1_query_mix()
        system = SystemParameters(num_disks=64)
        config = AdvisorConfig(max_fragments=100_000, top_candidates=10)
    else:  # pragma: no cover - test bug
        raise ValueError(name)
    return schema, workload, system, config


SCENARIOS = ("synthetic", "retail", "apb1")


@pytest.mark.parametrize("scenario", SCENARIOS)
class TestSerialParallelParity:
    def test_jobs_1_and_jobs_4_are_bit_identical(self, scenario):
        schema, workload, system, config = _scenario(scenario)
        serial = Warlock(schema, workload, system, config, options=EngineOptions(jobs=1)).recommend()
        parallel = Warlock(schema, workload, system, config, options=EngineOptions(jobs=4)).recommend()
        assert recommendation_fingerprint(serial) == recommendation_fingerprint(parallel)
        # Spot checks on top of the fingerprint: order, metrics, prefetch.
        assert [r.label for r in serial.ranked] == [r.label for r in parallel.ranked]
        for ours, theirs in zip(serial.evaluated, parallel.evaluated):
            assert ours.label == theirs.label
            assert ours.io_cost_ms == theirs.io_cost_ms
            assert ours.response_time_ms == theirs.response_time_ms
            assert ours.prefetch == theirs.prefetch
            assert (
                ours.allocation.disk_of_fragment.tolist()
                == theirs.allocation.disk_of_fragment.tolist()
            )

    def test_cold_vs_warm_cache_is_bit_identical(self, scenario):
        schema, workload, system, config = _scenario(scenario)
        advisor = Warlock(schema, workload, system, config)
        cold = advisor.recommend()
        cold_lookups = advisor.cache.stats.lookups
        # A repeated identical recommend() on the same session answers O(1)
        # from the input-fingerprint memo: zero additional cache probes.
        memoized = advisor.recommend()
        assert advisor.cache.stats.lookups == cold_lookups
        assert recommendation_fingerprint(cold) == recommendation_fingerprint(memoized)
        # A fresh advisor sharing the cache answers the sweep warm.
        warm_advisor = Warlock(
            schema, workload, system, config, cache=advisor.cache
        )
        warm = warm_advisor.recommend()
        assert advisor.cache.stats.hits > 0
        assert advisor.cache.stats.lookups > cold_lookups
        assert recommendation_fingerprint(cold) == recommendation_fingerprint(warm)

    def test_shared_cache_across_advisors_is_bit_identical(self, scenario):
        schema, workload, system, config = _scenario(scenario)
        cache = EvaluationCache()
        first = Warlock(schema, workload, system, config, cache=cache).recommend()
        warm_advisor = Warlock(schema, workload, system, config, cache=cache)
        hits_before = cache.stats.hits
        second = warm_advisor.recommend()
        assert cache.stats.hits > hits_before
        assert recommendation_fingerprint(first) == recommendation_fingerprint(second)

    def test_disabled_cache_is_bit_identical(self, scenario):
        schema, workload, system, config = _scenario(scenario)
        cached = Warlock(schema, workload, system, config).recommend()
        uncached = Warlock(schema, workload, system, config, options=EngineOptions(cache=False)).recommend()
        assert recommendation_fingerprint(cached) == recommendation_fingerprint(uncached)


def test_parallel_sweep_populates_the_shared_cache():
    """Worker results (candidates AND structures) land in the parent cache."""
    schema, workload, system, config = _scenario("synthetic")
    cache = EvaluationCache()
    advisor = Warlock(
        schema, workload, system, config, cache=cache, options=EngineOptions(jobs=4)
    )
    first = advisor.recommend()
    assert len(cache._candidates) == len(first.evaluated)
    # Structures are merged back too: studies varying the system reuse them.
    assert len(cache._structures) >= len(first.evaluated)
    cache.reset_stats()
    # A fresh advisor sharing the cache (the same advisor would answer from
    # its recommend() memo without probing at all): fully warm parallel
    # sweeps are answered without recomputation.
    warm = Warlock(
        schema, workload, system, config, cache=cache, options=EngineOptions(jobs=4)
    ).recommend()
    assert cache.stats.candidate_hits == len(first.evaluated)
    assert cache.stats.misses == 0
    assert recommendation_fingerprint(first) == recommendation_fingerprint(warm)


def test_fingerprint_distinguishes_different_inputs():
    schema, workload, system, config = _scenario("synthetic")
    base = Warlock(schema, workload, system, config).recommend()
    other_system = SystemParameters(num_disks=8)
    other = Warlock(schema, workload, other_system, config).recommend()
    assert recommendation_fingerprint(base) != recommendation_fingerprint(other)


def test_recommendation_state_is_json_shaped():
    schema, workload, system, config = _scenario("synthetic")
    recommendation = Warlock(schema, workload, system, config).recommend()
    state = recommendation_state(recommendation)
    assert state["ranked"]
    entry = state["ranked"][0]
    assert {"label", "io_cost_ms", "per_class", "allocation"} <= set(entry)
    # Full-precision floats are serialized as repr strings.
    assert isinstance(entry["io_cost_ms"], str)
