"""Unit tests for repro.graph: schema graph and dimension affinity graph."""

from __future__ import annotations

import networkx as nx
import pytest

from repro import (
    Dimension,
    DimensionRestriction,
    FactTable,
    Level,
    QueryClass,
    QueryMix,
    StarSchema,
    build_affinity_graph,
    build_schema_graph,
    dimension_ranking,
    suggest_fragmentation_dimensions,
)
from repro.errors import SchemaError, WorkloadError
from repro.graph import hierarchy_path, shared_dimensions


class TestSchemaGraph:
    def test_node_counts(self, toy_schema):
        graph = build_schema_graph(toy_schema)
        dims = [n for n, d in graph.nodes(data=True) if d["kind"] == "dimension"]
        levels = [n for n, d in graph.nodes(data=True) if d["kind"] == "level"]
        facts = [n for n, d in graph.nodes(data=True) if d["kind"] == "fact"]
        assert len(dims) == 3
        assert len(levels) == 3 + 2 + 2
        assert len(facts) == 1

    def test_edge_kinds(self, toy_schema):
        graph = build_schema_graph(toy_schema)
        kinds = {data["kind"] for _, _, data in graph.edges(data=True)}
        assert kinds == {"hierarchy", "has_level", "references"}

    def test_hierarchy_edges_follow_levels(self, toy_schema):
        graph = build_schema_graph(toy_schema)
        assert graph.has_edge("level:time.year", "level:time.quarter")
        assert graph.has_edge("level:time.quarter", "level:time.month")
        assert not graph.has_edge("level:time.month", "level:time.year")

    def test_fact_references(self, toy_schema):
        graph = build_schema_graph(toy_schema)
        successors = set(graph.successors("fact:sales"))
        assert {"dim:time", "dim:product", "dim:store"} <= successors

    def test_level_metadata(self, toy_schema):
        graph = build_schema_graph(toy_schema)
        assert graph.nodes["level:time.month"]["cardinality"] == 24

    def test_is_dag(self, toy_schema):
        graph = build_schema_graph(toy_schema)
        assert nx.is_directed_acyclic_graph(graph)


class TestHierarchyPath:
    def test_full_path(self, toy_schema):
        assert hierarchy_path(toy_schema, "time", "year", "month") == [
            "year",
            "quarter",
            "month",
        ]

    def test_single_level_path(self, toy_schema):
        assert hierarchy_path(toy_schema, "time", "quarter", "quarter") == ["quarter"]

    def test_reverse_direction_rejected(self, toy_schema):
        with pytest.raises(SchemaError):
            hierarchy_path(toy_schema, "time", "month", "year")

    def test_unknown_level_rejected(self, toy_schema):
        with pytest.raises(SchemaError):
            hierarchy_path(toy_schema, "time", "week", "month")


class TestSharedDimensions:
    def test_conformed_dimensions(self):
        time = Dimension("time", [Level("month", 12)])
        product = Dimension("product", [Level("item", 100)])
        store = Dimension("store", [Level("store", 10)])
        sales = FactTable("sales", 1000, 64, ("time", "product", "store"))
        inventory = FactTable("inventory", 500, 32, ("time", "product"))
        schema = StarSchema("c", (time, product, store), (sales, inventory))
        assert shared_dimensions(schema, "sales", "inventory") == ("time", "product")

    def test_same_table(self, toy_schema):
        assert shared_dimensions(toy_schema, "sales", "sales") == (
            "time",
            "product",
            "store",
        )


class TestAffinityGraph:
    def test_node_weights_match_access_shares(self, toy_schema, toy_workload):
        graph = build_affinity_graph(toy_schema, toy_workload)
        shares = toy_workload.dimension_access_shares()
        for dimension, share in shares.items():
            assert graph.nodes[dimension]["weight"] == pytest.approx(share)
        # Dimensions never restricted still appear with zero weight.
        assert set(graph.nodes) == set(toy_schema.fact_table().dimension_names)

    def test_edge_weights_are_coaccess_shares(self, toy_schema, toy_workload):
        graph = build_affinity_graph(toy_schema, toy_workload)
        # time+product are co-restricted by classes with weights 4 and 2 of 10.
        assert graph["time"]["product"]["weight"] == pytest.approx(0.6)
        # time+store co-restricted only by the weight-3 class.
        assert graph["time"]["store"]["weight"] == pytest.approx(0.3)
        # product and store never co-occur.
        assert not graph.has_edge("product", "store")

    def test_invalid_workload_rejected(self, toy_schema):
        bad = QueryMix([QueryClass("q", [DimensionRestriction("ghost", "x")])])
        with pytest.raises(WorkloadError):
            build_affinity_graph(toy_schema, bad)


class TestDimensionRanking:
    def test_ranking_order(self, toy_schema, toy_workload):
        ranking = dimension_ranking(toy_schema, toy_workload)
        names = [name for name, _ in ranking]
        assert names[0] == "time"  # restricted by every class
        shares = [share for _, share in ranking]
        assert shares == sorted(shares, reverse=True)

    def test_ranking_covers_all_fact_dimensions(self, toy_schema, toy_workload):
        ranking = dimension_ranking(toy_schema, toy_workload)
        assert {name for name, _ in ranking} == set(
            toy_schema.fact_table().dimension_names
        )


class TestSuggestFragmentationDimensions:
    def test_suggests_most_useful_dimensions(self, toy_schema, toy_workload):
        suggestion = suggest_fragmentation_dimensions(toy_schema, toy_workload)
        assert suggestion[0] == "time"
        assert set(suggestion) <= set(toy_schema.fact_table().dimension_names)

    def test_max_dimensions_respected(self, toy_schema, toy_workload):
        assert len(
            suggest_fragmentation_dimensions(toy_schema, toy_workload, max_dimensions=1)
        ) == 1

    def test_share_gain_threshold_prunes(self, toy_schema, toy_workload):
        # Only "time" (restricted by 100% of the workload) clears a 0.7 threshold;
        # "product" (60%) and "store" (30%) are pruned.
        suggestion = suggest_fragmentation_dimensions(
            toy_schema, toy_workload, min_share_gain=0.7
        )
        assert suggestion == ["time"]

    def test_suggestion_ordered_by_share(self, toy_schema, toy_workload):
        suggestion = suggest_fragmentation_dimensions(toy_schema, toy_workload)
        assert suggestion == ["time", "product", "store"]

    def test_apb1_suggestion_matches_advisor_winner(self, apb_small_schema, apb_workload):
        """The affinity pre-selection short-lists the dimensions the advisor ends up using."""
        suggestion = suggest_fragmentation_dimensions(
            apb_small_schema, apb_workload, max_dimensions=2
        )
        assert "time" in suggestion
        assert "product" in suggestion

    def test_invalid_parameters(self, toy_schema, toy_workload):
        with pytest.raises(WorkloadError):
            suggest_fragmentation_dimensions(toy_schema, toy_workload, max_dimensions=0)
        with pytest.raises(WorkloadError):
            suggest_fragmentation_dimensions(
                toy_schema, toy_workload, min_share_gain=2.0
            )
