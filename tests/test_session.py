"""Tests for AdvisorSession: what-if deltas, cache reuse, progress, cancellation.

The contract under test (repro.api.session):

* a delta chain (disks -> skew -> mix weights) produces **bit-identical**
  recommendation fingerprints to fresh per-request advisors built from the
  edited inputs;
* the shared cache makes the chain warm: the cumulative hit rate rises
  across the edits;
* ``on_progress`` events cover 100% of the plan's chunks in both the serial
  and the ``jobs=4`` mode, and a mid-sweep cancellation leaves the cache
  consistent (a retry completes with the identical fingerprint).
"""

from __future__ import annotations

import pytest

from repro import (
    AdvisorConfig,
    AdvisorSession,
    CancellationToken,
    EngineOptions,
    SystemParameters,
    Warlock,
    recommendation_fingerprint,
    synthetic_schema,
)
from repro.errors import AdvisorError, EvaluationCancelled
from repro.workload.generator import random_query_mix


@pytest.fixture(scope="module")
def scenario():
    schema = synthetic_schema(
        num_dimensions=4,
        levels_per_dimension=3,
        bottom_cardinality=300,
        fact_rows=2_000_000,
        seed=3,
    )
    workload = random_query_mix(schema, num_classes=6, seed=5)
    system = SystemParameters(num_disks=16)
    config = AdvisorConfig(max_fragments=20_000, top_candidates=8)
    return schema, workload, system, config


class TestWithDelta:
    def test_delta_chain_matches_fresh_advisors_bit_for_bit(self, scenario):
        schema, workload, system, config = scenario
        session = AdvisorSession(schema, workload, system, config)
        skewed_dimension = schema.dimensions[0].name
        heavier_class = next(iter(workload)).name

        chain = [
            ("base", session),
            ("disks", session.with_delta(disks=64)),
        ]
        chain.append(("skew", chain[-1][1].with_delta(skew={skewed_dimension: 0.8})))
        chain.append(("mix", chain[-1][1].with_delta(mix_weights={heavier_class: 9.0})))

        for label, edited in chain:
            result = edited.recommend()
            fresh = Warlock(
                edited.schema, edited.workload, edited.system, edited.config
            ).recommend()
            assert result.fingerprint == recommendation_fingerprint(fresh), label

    def test_cache_is_shared_and_hit_rate_rises_across_the_chain(self, scenario):
        schema, workload, system, config = scenario
        session = AdvisorSession(schema, workload, system, config)
        session.recommend()
        heavier_class = next(iter(workload)).name

        edits = [
            dict(disks=64),
            dict(architecture="shared_everything"),
            dict(mix_weights={heavier_class: 9.0}),
        ]
        rates = []
        current = session
        for edit in edits:
            current = current.with_delta(**edit)
            assert current.cache is session.cache  # one shared cache object
            current.recommend()
            rates.append(session.stats.hit_rate)
        # Every edit reuses the structure entries of the earlier sweeps, so
        # the cumulative hit rate climbs monotonically: the cold sweep is all
        # misses (two probes per candidate), every edit adds one structure
        # hit per candidate — k edits drive the rate towards k/(2+2k).
        assert rates == sorted(rates)
        assert rates[0] >= 0.2
        assert rates[-1] > 0.3

    def test_reverting_an_edit_answers_from_candidate_entries(self, scenario):
        schema, workload, system, config = scenario
        session = AdvisorSession(schema, workload, system, config)
        baseline = session.recommend()
        edited = session.with_delta(disks=64)
        edited.recommend()
        reverted = edited.with_delta(system=system)
        session.cache.reset_stats()
        result = reverted.recommend()
        assert result.fingerprint == baseline.fingerprint
        # The revert re-creates the original inputs: every candidate is a hit.
        assert session.stats.candidate_hits == len(result.recommendation.evaluated)
        assert session.stats.misses == 0

    def test_skew_delta_rejects_unknown_dimension(self, scenario):
        schema, workload, system, config = scenario
        session = AdvisorSession(schema, workload, system, config)
        from repro.errors import SchemaError

        with pytest.raises(SchemaError):
            session.with_delta(skew={"ghost": 0.5})

    def test_prefetch_and_options_deltas(self, scenario):
        schema, workload, system, config = scenario
        session = AdvisorSession(schema, workload, system, config)
        edited = session.with_delta(
            prefetch_fact=4, options=EngineOptions(vectorize=False)
        )
        assert edited.system.prefetch_pages_fact == 4
        assert edited.options.vectorize is False
        fresh = Warlock(
            schema, workload, system.with_prefetch(fact=4), config
        ).recommend()
        assert edited.recommend().fingerprint == recommendation_fingerprint(fresh)


class TestProgress:
    def _collect(self, options, scenario):
        schema, workload, system, config = scenario
        session = AdvisorSession(schema, workload, system, config, options=options)
        events = []
        result = session.recommend(on_progress=events.append)
        return session, events, result

    @pytest.mark.parametrize(
        "options", [EngineOptions(jobs=1), EngineOptions(jobs=4)], ids=["serial", "jobs4"]
    )
    def test_events_cover_every_plan_chunk(self, options, scenario):
        session, events, result = self._collect(options, scenario)
        assert events, "a cold sweep must emit progress"
        total = events[-1].total
        num_chunks = events[-1].num_chunks
        assert events[-1].completed == total
        assert total == len(result.recommendation.evaluated)
        # 100% chunk coverage: every chunk index 1..num_chunks is reported
        # exactly once (chunk 0 is the pool's optional start event).
        chunk_indices = [event.chunk for event in events if event.chunk > 0]
        assert chunk_indices == list(range(1, num_chunks + 1))
        # Monotone completion, consistent unit accounting.
        completed = [event.completed for event in events]
        assert completed == sorted(completed)
        per_candidate = events[-1].total_units // total
        for event in events:
            assert event.completed_units == event.completed * per_candidate

    def test_warm_sweep_still_reports_completion(self, scenario):
        session, _, first = self._collect(EngineOptions(jobs=1), scenario)
        events = []
        warm = session.recommend(on_progress=events.append)
        assert warm.fingerprint == first.fingerprint
        assert events[-1].completed == events[-1].total

    @pytest.mark.parametrize(
        "options", [EngineOptions(jobs=1), EngineOptions(jobs=4)], ids=["serial", "jobs4"]
    )
    def test_fully_warm_engine_sweep_reports_completion(self, options, scenario):
        schema, workload, system, config = scenario
        session = AdvisorSession(schema, workload, system, config, options=options)
        specs, _ = session.generate_specs()
        session.engine.evaluate_specs(specs)  # cold sweep fills the cache
        events = []
        session.engine.evaluate_specs(specs, on_progress=events.append)
        # Regression: the fully-warm jobs>1 sweep used to emit a single event
        # claiming chunk 0 of 0 chunks — "no progress" to chunk-ratio
        # consumers (and a division by zero on the wire).  Both backends must
        # report a complete sweep with well-formed chunk fields.
        assert events
        last = events[-1]
        assert last.completed == last.total == len(specs)
        for event in events:
            assert event.num_chunks >= 1
            assert 0 <= event.chunk <= event.num_chunks
        if options.jobs == 4:
            [event] = events
            assert event.chunk == 1 and event.num_chunks == 1

    def test_memoized_result_reports_one_complete_chunk(self, scenario):
        session, _, first = self._collect(EngineOptions(jobs=1), scenario)
        events = []
        memoized = session.recommend(on_progress=events.append)
        assert memoized.fingerprint == first.fingerprint
        [event] = [e for e in events if e.label == "memoized"]
        # Regression: the memoized answer used to claim chunk 0 of 0 chunks,
        # which reads as "no progress" and breaks chunk-ratio consumers.
        assert event.chunk == 1
        assert event.num_chunks == 1
        assert event.completed == event.total == len(
            memoized.recommendation.evaluated
        )
        assert event.completed_units == event.total_units > 0


class TestCancellation:
    def test_serial_cancellation_leaves_the_cache_consistent(self, scenario):
        schema, workload, system, config = scenario
        session = AdvisorSession(schema, workload, system, config)
        token = CancellationToken()
        seen = []

        def cancel_after_three(event):
            seen.append(event)
            if len(seen) == 3:
                token.cancel()

        with pytest.raises(EvaluationCancelled):
            session.recommend(on_progress=cancel_after_three, cancel=token)
        # The sweep stopped at a chunk boundary, partially filling the cache.
        assert 0 < len(session.cache)
        completed_before = seen[-1].completed
        assert completed_before < seen[-1].total

        # Retry: completes warm, and the partial cache never changed a number.
        retry = session.recommend()
        fresh = Warlock(schema, workload, system, config).recommend()
        assert retry.fingerprint == recommendation_fingerprint(fresh)

    def test_pool_cancellation_raises_and_retries_clean(self, scenario):
        schema, workload, system, config = scenario
        session = AdvisorSession(
            schema, workload, system, config, options=EngineOptions(jobs=4)
        )
        token = CancellationToken()

        def cancel_immediately(event):
            token.cancel()

        with pytest.raises(EvaluationCancelled):
            session.recommend(on_progress=cancel_immediately, cancel=token)
        retry = session.recommend()
        fresh = Warlock(schema, workload, system, config).recommend()
        assert retry.fingerprint == recommendation_fingerprint(fresh)

    def test_pre_set_token_cancels_before_any_work(self, scenario):
        schema, workload, system, config = scenario
        session = AdvisorSession(schema, workload, system, config)
        token = CancellationToken()
        token.cancel()
        with pytest.raises(EvaluationCancelled):
            session.recommend(cancel=token)
        assert len(session.cache) == 0

    def test_callable_cancel_signal_is_accepted(self, scenario):
        schema, workload, system, config = scenario
        session = AdvisorSession(schema, workload, system, config)
        with pytest.raises(EvaluationCancelled):
            session.recommend(cancel=lambda: True)

    def test_tune_request_cancels_between_settings(self, scenario):
        schema, workload, system, config = scenario
        session = AdvisorSession(schema, workload, system, config)
        spec = session.recommend().best.spec
        token = CancellationToken()
        settings_seen = []

        def cancel_after_two():
            # Polled at each setting boundary: cancel before the third.
            settings_seen.append(len(settings_seen))
            return len(settings_seen) > 2

        with pytest.raises(EvaluationCancelled):
            session.tune(
                "disks", spec=spec, settings=(8, 16, 32, 64), cancel=cancel_after_two
            )
        assert token.cancelled is False  # the callable signal was used
        # The completed settings stay valid: a retry answers them warm.
        session.cache.reset_stats()
        result = session.tune("disks", spec=spec, settings=(8, 16, 32, 64))
        assert result.study.settings == ["8", "16", "32", "64"]
        assert session.stats.candidate_hits >= 2


class TestSubmitContract:
    """submit() honors on_progress/cancel for EVERY request type.

    Regression: EvaluateSpecRequest used to drop both arguments on the floor
    — a pre-set token evaluated anyway and the wire front end saw no progress.
    """

    def _requests(self, session):
        from repro.api.requests import (
            CompareRequest,
            EvaluateSpecRequest,
            RecommendRequest,
            SimulateRequest,
            TuneRequest,
        )

        spec = session.recommend().best.spec
        return [
            RecommendRequest(),
            EvaluateSpecRequest(spec=spec),
            CompareRequest(specs=(spec,)),
            TuneRequest(study="disks", spec=spec, settings=(8, 16)),
            SimulateRequest(queries_per_class=2),
        ]

    def test_pre_set_cancel_raises_for_every_request_type(self, scenario):
        schema, workload, system, config = scenario
        session = AdvisorSession(schema, workload, system, config)
        for request in self._requests(session):
            token = CancellationToken()
            token.cancel()
            with pytest.raises(EvaluationCancelled):
                session.submit(request, cancel=token)

    def test_every_request_type_reports_progress(self, scenario):
        schema, workload, system, config = scenario
        session = AdvisorSession(schema, workload, system, config)
        for request in self._requests(session):
            events = []
            session.submit(request, on_progress=events.append)
            assert events, type(request).__name__
            last = events[-1]
            assert last.completed == last.total > 0
            assert 1 <= last.chunk <= last.num_chunks

    def test_evaluate_progress_event_names_the_spec(self, scenario):
        from repro.api.requests import EvaluateSpecRequest

        schema, workload, system, config = scenario
        session = AdvisorSession(schema, workload, system, config)
        spec = session.recommend().best.spec
        events = []
        session.submit(EvaluateSpecRequest(spec=spec), on_progress=events.append)
        [event] = events
        assert event.label == spec.label
        assert event.completed == event.total == 1
        assert event.total_units == len(workload)

    def test_composite_tune_reports_both_sweeps(self, scenario):
        from repro.api.requests import TuneRequest

        schema, workload, system, config = scenario
        session = AdvisorSession(schema, workload, system, config)
        events = []
        session.submit(
            TuneRequest(study="disks", settings=(8, 16)), on_progress=events.append
        )
        sweeps = [(event.sweep, event.num_sweeps) for event in events]
        # The implicit recommend reports as sweep 1/2, the study as 2/2 —
        # and both phases end complete.
        assert set(sweeps) == {(1, 2), (2, 2)}
        assert sweeps == sorted(sweeps)  # recommend frames precede the study
        recommend_last = [e for e in events if e.sweep == 1][-1]
        study_last = events[-1]
        assert recommend_last.completed == recommend_last.total
        assert study_last.sweep == 2
        assert study_last.completed == study_last.total == 2
        assert "sweep 2/2" in study_last.describe()

    def test_composite_simulate_reports_both_sweeps(self, scenario):
        from repro.api.requests import SimulateRequest

        schema, workload, system, config = scenario
        session = AdvisorSession(schema, workload, system, config)
        events = []
        session.submit(
            SimulateRequest(queries_per_class=2), on_progress=events.append
        )
        assert events[-1].phase == "simulate"
        assert events[-1].sweep == 2 and events[-1].num_sweeps == 2
        assert events[-1].total_units == len(workload) * 2
        assert all(e.sweep == 1 for e in events[:-1])

    def test_explicit_spec_tune_is_a_single_sweep(self, scenario):
        from repro.api.requests import TuneRequest

        schema, workload, system, config = scenario
        session = AdvisorSession(schema, workload, system, config)
        spec = session.recommend().best.spec
        events = []
        session.submit(
            TuneRequest(study="disks", spec=spec, settings=(8, 16)),
            on_progress=events.append,
        )
        assert events
        assert all(e.sweep == 1 and e.num_sweeps == 1 for e in events)


class TestSessionLifecycle:
    def test_context_manager_persists_on_close(self, scenario, tmp_path):
        from repro.engine.store import ENTRIES_FILENAME

        schema, workload, system, config = scenario
        store = tmp_path / "cache"
        with AdvisorSession(
            schema,
            workload,
            system,
            config,
            options=EngineOptions(cache_dir=str(store)),
        ) as session:
            session.recommend()
        assert (store / ENTRIES_FILENAME).exists()
        # A second session over the directory answers the sweep from disk.
        warm = AdvisorSession(
            schema,
            workload,
            system,
            config,
            options=EngineOptions(cache_dir=str(store)),
        )
        warm.recommend()
        assert warm.stats.disk_hit_rate >= 0.9

    def test_read_only_store_never_writes(self, scenario, tmp_path):
        schema, workload, system, config = scenario
        store = tmp_path / "cache"
        # persist=False: warm-start allowed, spill forbidden.
        session = AdvisorSession(
            schema,
            workload,
            system,
            config,
            options=EngineOptions(cache_dir=str(store), persist=False),
        )
        session.recommend()
        session.close()
        assert not store.exists()
        # The Warlock wrapper honors the same read-only policy.
        advisor = Warlock(
            schema,
            workload,
            system,
            config,
            options=EngineOptions(cache_dir=str(store), persist=False),
        )
        advisor.recommend()
        assert advisor.persist_cache() is None
        assert not store.exists()

    def test_uncached_session_has_no_stats(self, scenario):
        schema, workload, system, config = scenario
        session = AdvisorSession(
            schema, workload, system, config, options=EngineOptions(cache=False)
        )
        assert session.cache is None and session.stats is None
        assert session.recommend().recommendation.ranked

    def test_describe_names_the_inputs(self, scenario):
        schema, workload, system, config = scenario
        session = AdvisorSession(schema, workload, system, config)
        text = session.describe()
        assert schema.name in text and "jobs=1" in text

    def test_session_rejects_plain_dict_options(self, scenario):
        schema, workload, system, config = scenario
        with pytest.raises(AdvisorError):
            AdvisorSession(schema, workload, system, config, options={"jobs": 2})


class TestRecommendMemo:
    """A repeated identical recommend() answers O(1) from the session memo."""

    def test_second_recommend_does_zero_sweep_work(self, scenario, monkeypatch):
        schema, workload, system, config = scenario
        session = AdvisorSession(schema, workload, system, config)
        first = session.recommend()
        lookups = session.stats.lookups

        def explode(*args, **kwargs):  # pragma: no cover - must never run
            raise AssertionError("memoized recommend() must not sweep")

        # The memo must short-circuit before enumeration AND evaluation.
        monkeypatch.setattr(session, "generate_specs", explode)
        monkeypatch.setattr(session.engine, "evaluate_specs", explode)
        second = session.recommend()
        assert second is first
        # Zero additional cache probes: the answer is O(1).
        assert session.stats.lookups == lookups

    def test_memoized_recommend_still_reports_completion(self, scenario):
        schema, workload, system, config = scenario
        session = AdvisorSession(schema, workload, system, config)
        first = session.recommend()
        events = []
        session.recommend(on_progress=events.append)
        assert len(events) == 1
        assert events[0].completed == events[0].total == len(
            first.recommendation.evaluated
        )

    def test_tune_after_recommend_reuses_the_memo(self, scenario, monkeypatch):
        schema, workload, system, config = scenario
        session = AdvisorSession(schema, workload, system, config)
        best = session.recommend().best.spec
        monkeypatch.setattr(
            session.engine,
            "evaluate_specs",
            lambda *a, **k: (_ for _ in ()).throw(AssertionError("swept")),
        )
        # The implicit recommend inside tune(spec=None) answers from the memo
        # (per-setting evaluations go through evaluate_spec, not the sweep).
        result = session.tune("disks", settings=(8, 16))
        assert result.study.settings == ["8", "16"]
        assert best.label  # the memoized best spec drove the study

    def test_pre_set_cancel_beats_the_memo(self, scenario):
        schema, workload, system, config = scenario
        session = AdvisorSession(schema, workload, system, config)
        session.recommend()  # memo populated
        token = CancellationToken()
        token.cancel()
        # The cancellation contract holds even for memoized answers.
        with pytest.raises(EvaluationCancelled):
            session.recommend(cancel=token)

    def test_uncached_sessions_do_not_memoize(self, scenario):
        schema, workload, system, config = scenario
        session = AdvisorSession(
            schema, workload, system, config, options=EngineOptions(cache=False)
        )
        first = session.recommend()
        second = session.recommend()
        assert first is not second
        assert first.fingerprint == second.fingerprint

    def test_derived_sessions_do_not_inherit_the_memo(self, scenario):
        schema, workload, system, config = scenario
        session = AdvisorSession(schema, workload, system, config)
        base = session.recommend()
        edited = session.with_delta(disks=64)
        assert edited.recommend().fingerprint != "" 
        assert edited.recommend() is not base


class TestCompiledInputSharing:
    """with_delta reuse of compiled matrices and exclusion reports."""

    def test_system_only_delta_reuses_the_compiled_class_matrix(self, scenario):
        schema, workload, system, config = scenario
        session = AdvisorSession(schema, workload, system, config)
        matrix = session.engine.class_matrix()
        edited = session.with_delta(disks=64)
        # Same (schema, workload, scheme): the shared cache hands the derived
        # session the identical compiled object, no re-compilation.
        assert edited.engine.class_matrix() is matrix
        # A workload edit changes the compilation inputs: fresh matrix.
        heavier = next(iter(workload)).name
        reweighted = session.with_delta(mix_weights={heavier: 7.0})
        assert reweighted.engine.class_matrix() is not matrix

    def test_exclusion_report_is_cached_and_not_rederived(self, scenario, monkeypatch):
        schema, workload, system, config = scenario
        session = AdvisorSession(schema, workload, system, config)
        specs, report = session.generate_specs()

        import repro.api.session as session_module

        def explode(*args, **kwargs):  # pragma: no cover - must never run
            raise AssertionError("cached generate_specs must not re-derive")

        monkeypatch.setattr(session_module, "evaluate_thresholds", explode)
        monkeypatch.setattr(
            session_module, "enumerate_point_fragmentations", explode
        )
        again_specs, again_report = session.generate_specs()
        assert [spec.label for spec in again_specs] == [
            spec.label for spec in specs
        ]
        assert again_report.considered == report.considered
        assert again_report.excluded == report.excluded

    def test_exclusion_report_warm_starts_from_disk(self, scenario, tmp_path, monkeypatch):
        schema, workload, system, config = scenario
        store = tmp_path / "cache"
        cold = AdvisorSession(
            schema, workload, system, config,
            options=EngineOptions(cache_dir=str(store)),
        )
        cold_result = cold.recommend()
        cold.close()

        warm = AdvisorSession(
            schema, workload, system, config,
            options=EngineOptions(cache_dir=str(store)),
        )
        import repro.api.session as session_module

        def explode(*args, **kwargs):  # pragma: no cover - must never run
            raise AssertionError("warm-from-disk run must not re-derive thresholds")

        monkeypatch.setattr(session_module, "evaluate_thresholds", explode)
        monkeypatch.setattr(
            session_module, "enumerate_point_fragmentations", explode
        )
        warm_result = warm.recommend()
        assert warm_result.fingerprint == cold_result.fingerprint
        # The Recommendation diagnostics are reproduced, not re-derived.
        cold_report = cold_result.recommendation.exclusion_report
        warm_report = warm_result.recommendation.exclusion_report
        assert warm_report.considered == cold_report.considered
        assert warm_report.excluded == cold_report.excluded
        assert warm_report.describe() == cold_report.describe()
