"""Graph-construction edge cases for :mod:`repro.lint.graphs`.

Each resolution mechanism the call graph claims — ``__init__`` re-exports,
relative imports, star imports, aliased imports, ``functools.partial`` — is
pinned by a fixture module under ``tests/lint_fixtures/graph_project``, so a
regression in the symbol tables fails here before it silently degrades the
graph rules to "unknown callee" everywhere.
"""

from __future__ import annotations

import os

from repro.lint.framework import ModuleInfo, collect_files
from repro.lint.graphs import build_project_graph, module_name_for_path

FIXTURES = os.path.join(os.path.dirname(__file__), "lint_fixtures")


def build(project: str):
    modules = []
    for path in collect_files([os.path.join(FIXTURES, project)]):
        with open(path, "r", encoding="utf-8") as handle:
            modules.append(ModuleInfo(path, handle.read()))
    return build_project_graph(modules)


def callee_set(graph, qname, kind=None):
    return {
        site.callee
        for site in graph.callees(qname)
        if site.callee is not None and (kind is None or site.kind == kind)
    }


class TestModuleNaming:
    def test_init_names_the_package(self):
        path = os.path.join(FIXTURES, "graph_project", "gp", "__init__.py")
        assert module_name_for_path(path) == "gp"

    def test_submodule_walks_the_package_chain(self):
        path = os.path.join(FIXTURES, "graph_project", "gp", "core.py")
        assert module_name_for_path(path) == "gp.core"

    def test_loose_file_resolves_to_its_stem(self):
        assert module_name_for_path(os.path.join(FIXTURES, "deprecation_ok.py")) == (
            "deprecation_ok"
        )


class TestCallResolution:
    def test_reexport_through_init_is_chased(self):
        graph = build("graph_project")
        assert graph.resolve_symbol("gp", "compute") == "gp.core:compute"

    def test_relative_imports_resolve(self):
        # ``from . import compute`` (a package re-export) and
        # ``from .core import twice as t2`` (aliased sibling import).
        graph = build("graph_project")
        assert "gp.core:twice" in callee_set(graph, "gp.relative:run", kind="call")

    def test_function_reference_argument_becomes_a_ref_edge(self):
        graph = build("graph_project")
        assert "gp.core:compute" in callee_set(graph, "gp.relative:run", kind="ref")

    def test_star_import_resolves(self):
        graph = build("graph_project")
        assert "gp.core:compute" in callee_set(graph, "gp.star:run_star")

    def test_aliased_module_import_resolves(self):
        graph = build("graph_project")
        assert "gp.core:compute" in callee_set(graph, "gp.aliased:run_alias")

    def test_functools_partial_first_argument_is_a_deferred_call(self):
        graph = build("graph_project")
        refs = [
            site
            for site in graph.callees("gp.partial_user:run_partial")
            if site.kind == "ref"
        ]
        assert any(site.callee == "gp.core:compute" for site in refs)

    def test_unresolvable_calls_degrade_to_unknown(self):
        # ``fn(fn(x))`` inside gp.core:twice and ``callback()`` in
        # gp.partial_user:run_partial have no static target: recorded as
        # unknown callees, never a crash.
        graph = build("graph_project")
        assert graph.unknown_calls >= 2
        assert any(site.callee is None for site in graph.callees("gp.core:twice"))


class TestImportEdges:
    def test_lazy_imports_are_tagged(self):
        graph = build("layering_project")
        module_level = {e.dst for e in graph.module_level_imports("lp.engine")}
        assert module_level == {"lp.costmodel"}
        lazy = {e.dst for e in graph.imports if e.src == "lp.engine" and e.lazy}
        assert lazy == {"lp.service"}

    def test_render_dot_distinguishes_lazy_edges(self):
        graph = build("layering_project")
        dot = graph.render_dot()
        assert '"lp.costmodel" -> "lp.service";' in dot
        assert '"lp.engine" -> "lp.service" [style=dashed, color=gray];' in dot

    def test_render_json_is_stable_and_complete(self):
        graph = build("graph_project")
        payload = graph.render_json()
        assert payload["summary"]["modules"] == len(payload["modules"])
        assert payload["summary"]["functions"] == len(payload["functions"])
        edges = [(e["src"], e["dst"]) for e in payload["imports"]]
        assert edges == sorted(edges)
        assert ("gp", "gp.core") in edges
