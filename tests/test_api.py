"""Tests for the API façade: EngineOptions, deprecation shims, requests/results.

The contract under test (repro.api):

* :class:`EngineOptions` is the one validated carrier of the execution knobs,
  threaded through every entry point;
* the legacy per-kwarg forms (``jobs=``, ``vectorize=``, ``cache_dir=``,
  ``cache=False``) keep working but emit an
  :class:`EngineOptionsDeprecationWarning` and behave identically;
* typed requests validate on construction and round-trip through
  ``to_dict`` / ``request_from_dict``;
* every result type serves a stable ``to_dict()``.
"""

from __future__ import annotations

import json
import warnings

import pytest

from repro import (
    AdvisorSession,
    CompareRequest,
    EngineOptions,
    EngineOptionsDeprecationWarning,
    EvaluateSpecRequest,
    FragmentationSpec,
    RecommendRequest,
    SimulateRequest,
    TuneRequest,
    Warlock,
    compare_specs,
    recommendation_fingerprint,
)
from repro.api import request_from_dict
from repro.engine import EvaluationEngine
from repro.errors import AdvisorError
from repro.tuning import disk_count_study


class TestEngineOptions:
    def test_defaults(self):
        options = EngineOptions()
        assert options.jobs == 1
        assert options.vectorize is True
        assert options.cache is True
        assert options.cache_dir is None
        assert options.persist is True

    def test_is_a_hashable_value_object(self):
        assert EngineOptions(jobs=4) == EngineOptions(jobs=4)
        assert EngineOptions(jobs=4) != EngineOptions(jobs=2)
        assert hash(EngineOptions()) == hash(EngineOptions())

    @pytest.mark.parametrize("bad", [0, -3, 1.5, "fast", True])
    def test_rejects_invalid_jobs(self, bad):
        with pytest.raises(AdvisorError):
            EngineOptions(jobs=bad)

    def test_accepts_auto_and_positive_jobs(self):
        assert EngineOptions(jobs="auto").jobs == "auto"
        assert EngineOptions(jobs=8).jobs == 8

    def test_rejects_cache_dir_without_cache(self):
        with pytest.raises(AdvisorError):
            EngineOptions(cache=False, cache_dir="/tmp/x")

    def test_rejects_non_bool_flags(self):
        for field in ("vectorize", "cache", "persist"):
            with pytest.raises(AdvisorError):
                EngineOptions(**{field: "yes"})

    def test_vectorize_modes_normalize(self):
        assert EngineOptions().vectorize_mode == "candidates"
        assert EngineOptions(vectorize=True).vectorize_mode == "candidates"
        assert EngineOptions(vectorize=False).vectorize_mode == "none"
        for mode in ("none", "classes", "candidates"):
            assert EngineOptions(vectorize=mode).vectorize_mode == mode
        with pytest.raises(AdvisorError):
            EngineOptions(vectorize="rows")

    def test_rejects_empty_cache_dir(self):
        with pytest.raises(AdvisorError):
            EngineOptions(cache_dir="")

    def test_replace_revalidates(self):
        options = EngineOptions()
        assert options.replace(jobs=4).jobs == 4
        with pytest.raises(AdvisorError):
            options.replace(jobs=0)

    def test_dict_round_trip(self):
        options = EngineOptions(jobs="auto", vectorize=False, cache_dir="/tmp/c")
        clone = EngineOptions.from_dict(options.to_dict())
        assert clone == options
        assert json.dumps(options.to_dict())  # JSON-ready

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(AdvisorError) as excinfo:
            EngineOptions.from_dict({"job": 2})
        assert "job" in str(excinfo.value)

    def test_describe_mentions_the_interesting_knobs(self):
        text = EngineOptions(jobs=4, cache_dir="/tmp/c", persist=False).describe()
        assert "jobs=4" in text and "/tmp/c" in text and "read-only" in text
        assert "uncached" in EngineOptions(cache=False).describe()


class TestDeprecationShims:
    """Legacy kwargs warn (with the dedicated category) and behave identically."""

    def test_warlock_jobs_vectorize_cache_dir_warn(
        self, toy_schema, toy_workload, small_system, tmp_path
    ):
        with pytest.warns(EngineOptionsDeprecationWarning, match="EngineOptions"):
            advisor = Warlock(toy_schema, toy_workload, small_system, jobs=2)
        assert advisor.options == EngineOptions(jobs=2)
        with pytest.warns(EngineOptionsDeprecationWarning, match="vectorize"):
            advisor = Warlock(toy_schema, toy_workload, small_system, vectorize=False)
        assert advisor.options.vectorize is False
        with pytest.warns(EngineOptionsDeprecationWarning, match="cache_dir"):
            advisor = Warlock(
                toy_schema, toy_workload, small_system, cache_dir=str(tmp_path)
            )
        assert advisor.options.cache_dir == str(tmp_path)

    def test_warlock_cache_false_warns(self, toy_schema, toy_workload, small_system):
        with pytest.warns(EngineOptionsDeprecationWarning, match="cache=False"):
            advisor = Warlock(toy_schema, toy_workload, small_system, cache=False)
        assert advisor.cache is None

    def test_shimmed_kwargs_behave_identically(
        self, toy_schema, toy_workload, small_system
    ):
        config = None
        modern = Warlock(
            toy_schema,
            toy_workload,
            small_system,
            config,
            options=EngineOptions(vectorize=False),
        ).recommend()
        with pytest.warns(EngineOptionsDeprecationWarning):
            legacy = Warlock(
                toy_schema, toy_workload, small_system, config, vectorize=False
            ).recommend()
        assert recommendation_fingerprint(modern) == recommendation_fingerprint(legacy)

    def test_engine_shims_warn(self, toy_schema, toy_workload, small_system):
        with pytest.warns(EngineOptionsDeprecationWarning):
            engine = EvaluationEngine(toy_schema, toy_workload, small_system, jobs=2)
        assert engine.jobs == 2

    def test_study_and_compare_shims_warn(self, toy_advisor):
        specs, _ = toy_advisor.generate_specs()
        spec = specs[0]
        with pytest.warns(EngineOptionsDeprecationWarning):
            legacy = disk_count_study(
                toy_advisor.schema,
                toy_advisor.workload,
                toy_advisor.system,
                spec,
                disk_counts=(8,),
                config=toy_advisor.config,
                vectorize=False,
            )
        modern = disk_count_study(
            toy_advisor.schema,
            toy_advisor.workload,
            toy_advisor.system,
            spec,
            disk_counts=(8,),
            config=toy_advisor.config,
            options=EngineOptions(vectorize=False),
        )
        assert legacy.records == modern.records
        with pytest.warns(EngineOptionsDeprecationWarning):
            legacy_table = compare_specs(
                toy_advisor.schema,
                toy_advisor.workload,
                toy_advisor.system,
                [spec],
                config=toy_advisor.config,
                jobs=1,
            )
        modern_table = compare_specs(
            toy_advisor.schema,
            toy_advisor.workload,
            toy_advisor.system,
            [spec],
            config=toy_advisor.config,
            options=EngineOptions(jobs=1),
        )
        assert legacy_table == modern_table

    def test_warning_is_attributed_to_the_caller(
        self, toy_schema, toy_workload, small_system
    ):
        # stacklevel must reach through the shim plumbing to the user's call
        # site, both for constructors and for the one-level-deeper studies.
        with pytest.warns(EngineOptionsDeprecationWarning) as caught:
            Warlock(toy_schema, toy_workload, small_system, jobs=2)
        assert caught[0].filename == __file__
        with pytest.warns(EngineOptionsDeprecationWarning) as caught:
            disk_count_study(
                toy_schema,
                toy_workload,
                small_system,
                FragmentationSpec.of(("time", "month")),
                disk_counts=(8,),
                vectorize=False,
            )
        assert caught[0].filename == __file__
        with pytest.warns(EngineOptionsDeprecationWarning) as caught:
            compare_specs(
                toy_schema,
                toy_workload,
                small_system,
                [FragmentationSpec.of(("time", "month"))],
                jobs=1,
            )
        assert caught[0].filename == __file__
        assert "compare_specs" in str(caught[0].message)

    def test_options_plus_deprecated_kwarg_is_an_error(
        self, toy_schema, toy_workload, small_system
    ):
        with pytest.raises(AdvisorError, match="not both"):
            Warlock(
                toy_schema,
                toy_workload,
                small_system,
                jobs=2,
                options=EngineOptions(jobs=4),
            )

    def test_invalid_legacy_value_raises_without_warning(
        self, toy_schema, toy_workload, small_system
    ):
        # Validation precedes the deprecation warning, so strict -W runs see
        # the same AdvisorError the legacy signature always raised.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            with pytest.raises(AdvisorError):
                Warlock(toy_schema, toy_workload, small_system, jobs=0)

    def test_internal_callers_are_migrated(self, toy_advisor, tmp_path):
        # The advisor pipeline, the studies and the comparison run shim-free:
        # any internal use of a deprecated kwarg fails this test (and the
        # strict CI run) immediately.
        with warnings.catch_warnings():
            warnings.simplefilter("error", EngineOptionsDeprecationWarning)
            recommendation = toy_advisor.recommend()
            disk_count_study(
                toy_advisor.schema,
                toy_advisor.workload,
                toy_advisor.system,
                recommendation.best.spec,
                disk_counts=(8,),
                config=toy_advisor.config,
                cache=toy_advisor.cache,
                options=toy_advisor.options,
            )


class TestRequests:
    SPEC = FragmentationSpec.of(("time", "month"))

    def test_tune_request_rejects_unknown_study(self):
        with pytest.raises(AdvisorError):
            TuneRequest(study="turbo")

    def test_compare_request_needs_specs(self):
        with pytest.raises(AdvisorError):
            CompareRequest(specs=())

    def test_simulate_request_validates_queries(self):
        with pytest.raises(AdvisorError):
            SimulateRequest(queries_per_class=0)

    def test_requests_round_trip_through_dicts(self):
        requests = [
            RecommendRequest(),
            EvaluateSpecRequest(spec=self.SPEC, bitmap_exclude=(("time", "month"),)),
            CompareRequest(specs=(self.SPEC,)),
            TuneRequest(study="disks", settings=[8, 16]),
            SimulateRequest(fragmentation="none", queries_per_class=3, seed=7),
        ]
        for request in requests:
            payload = json.loads(json.dumps(request.to_dict()))
            clone = request_from_dict(payload)
            assert type(clone) is type(request)
            assert clone.to_dict() == request.to_dict()

    def test_request_from_dict_rejects_unknown_kind(self):
        with pytest.raises(AdvisorError):
            request_from_dict({"kind": "destroy"})


class TestResultToDicts:
    """Every result type serves a stable, JSON-ready to_dict()."""

    @pytest.fixture(scope="class")
    def session(self):
        # Built directly (not from the function-scoped toy fixtures) so one
        # session serves the whole class warm.
        from repro import (
            AdvisorConfig,
            Dimension,
            DimensionRestriction,
            FactTable,
            Level,
            QueryClass,
            QueryMix,
            StarSchema,
            SystemParameters,
        )

        schema = StarSchema(
            name="toy-api",
            dimensions=(
                Dimension(name="time", levels=[Level("year", 2), Level("month", 24)]),
                Dimension(name="product", levels=[Level("group", 10), Level("item", 200)]),
            ),
            fact_tables=(
                FactTable(
                    name="sales",
                    row_count=500_000,
                    row_size_bytes=64,
                    dimension_names=("time", "product"),
                ),
            ),
        )
        workload = QueryMix(
            [
                QueryClass(
                    name="monthly",
                    restrictions=[DimensionRestriction("time", "month")],
                    weight=2,
                ),
                QueryClass(
                    name="by-group",
                    restrictions=[DimensionRestriction("product", "group")],
                    weight=1,
                ),
            ]
        )
        return AdvisorSession(
            schema,
            workload,
            SystemParameters(num_disks=8),
            AdvisorConfig(max_fragments=10_000, top_candidates=3),
        )

    def test_recommend_result(self, session):
        result = session.recommend()
        payload = result.to_dict()
        assert payload["fingerprint"] == result.fingerprint
        assert payload["ranked"]
        json.dumps(payload)

    def test_recommendation_and_candidate_to_dict(self, session):
        recommendation = session.recommend().recommendation
        assert recommendation.to_dict()["ranked"]
        candidate_payload = recommendation.best.to_dict()
        assert candidate_payload["fragmentation"] == recommendation.best.label
        json.dumps(candidate_payload)

    def test_evaluate_compare_tune_simulate_results(self, session):
        specs, _ = session.generate_specs()
        evaluated = session.submit(EvaluateSpecRequest(spec=specs[0]))
        assert evaluated.to_dict()["fragmentation"] == specs[0].label
        compared = session.submit(
            CompareRequest(specs=tuple(specs[:2]), baseline_spec=specs[2])
        )
        payload = compared.to_dict()
        assert len(payload["candidates"]) == 2 and "baseline" in payload
        tuned = session.submit(TuneRequest(study="disks", settings=(8, 16)))
        assert [r["setting"] for r in tuned.to_dict()["records"]] == ["8", "16"]
        simulated = session.submit(SimulateRequest(queries_per_class=2))
        sim_payload = simulated.to_dict()
        assert {"fragmentation", "simulation", "predicted"} <= set(sim_payload)
        json.dumps(sim_payload)

    def test_submit_rejects_unknown_request(self, session):
        with pytest.raises(AdvisorError):
            session.submit(object())

    def test_progress_event_to_dict(self):
        from repro import ProgressEvent

        event = ProgressEvent(
            phase="evaluate",
            completed=3,
            total=10,
            chunk=3,
            num_chunks=10,
            completed_units=12,
            total_units=40,
            label="x",
        )
        payload = event.to_dict()
        assert payload["fraction"] == pytest.approx(0.3)
        assert "3/10" in event.describe()
