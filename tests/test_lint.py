"""Tests for ``warlock lint``: framework, rules, suppressions, baseline, CLI.

Every rule is proven twice — a *bad* fixture under ``tests/lint_fixtures/``
must produce findings (the rule detects its target pattern) and an *ok*
fixture must stay clean (the rule does not cry wolf on the idiomatic
spelling).  On top of that, the final tree itself must lint clean: the
self-check test runs the full rule set over ``src/repro`` exactly like the
CI gate does.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.lint import LintError, run_lint
from repro.lint.baseline import load_baseline, split_findings, write_baseline
from repro.lint.framework import ModuleInfo, RULES
from repro.lint.runner import main as lint_main

FIXTURES = os.path.join(os.path.dirname(__file__), "lint_fixtures")
SRC = os.path.join(os.path.dirname(__file__), os.pardir, "src", "repro")


def fixture(name: str) -> str:
    return os.path.join(FIXTURES, name)


def findings_for(path: str, rule: str):
    result = run_lint([path, fixture("lock_discipline_classes.py")], [rule])
    return [f for f in result.findings if f.path.endswith(os.path.basename(path))]


RULE_FIXTURES = [
    ("numeric-determinism", "numeric_determinism", 4),
    ("lock-discipline", "lock_discipline", 1),
    ("pool-boundary-picklability", "picklability", 5),
    ("wire-contract", "wire_contract", 2),
    ("deprecation-hygiene", "deprecation", 4),
]


class TestRules:
    @pytest.mark.parametrize("rule,stem,expected", RULE_FIXTURES)
    def test_bad_fixture_is_detected(self, rule, stem, expected):
        found = findings_for(fixture(f"{stem}_bad.py"), rule)
        assert len(found) == expected
        assert all(f.rule == rule for f in found)
        assert all(f.snippet for f in found)

    @pytest.mark.parametrize("rule,stem,expected", RULE_FIXTURES)
    def test_ok_fixture_is_clean(self, rule, stem, expected):
        assert findings_for(fixture(f"{stem}_ok.py"), rule) == []

    def test_rule_selection_is_scoped(self):
        # Only the requested rule runs: the deprecation fixture holds no
        # numeric-determinism positives, so a scoped run is empty.
        result = run_lint([fixture("deprecation_bad.py")], ["numeric-determinism"])
        assert result.findings == []
        assert result.rules == ("numeric-determinism",)

    def test_unknown_rule_is_an_error(self):
        with pytest.raises(LintError, match="unknown rule"):
            run_lint([FIXTURES], ["no-such-rule"])

    def test_all_registered_rules_are_covered_by_fixtures(self):
        run_lint([fixture("deprecation_ok.py")])  # populate the registry
        assert set(RULES) == {rule for rule, _, _ in RULE_FIXTURES}


class TestSuppressions:
    def test_trailing_and_standalone_suppressions(self):
        result = run_lint(
            [
                fixture("lock_discipline_suppressed.py"),
                fixture("lock_discipline_classes.py"),
            ],
            ["lock-discipline"],
        )
        # Both spellings (same-line and preceding-line) silence the finding;
        # the run still reports how many were suppressed.
        assert result.findings == []
        assert result.suppressed == 2

    def test_suppression_is_per_rule(self, tmp_path):
        path = tmp_path / "mod.py"
        path.write_text(
            "# lint: parity-critical\n"
            "import math\n"
            "x = math.pow(2.0, 3.0)  # lint: disable=wire-contract -- wrong rule\n"
        )
        result = run_lint([str(path)])
        assert [f.rule for f in result.findings] == ["numeric-determinism"]
        assert result.suppressed == 0

    def test_unknown_directive_is_an_error(self, tmp_path):
        path = tmp_path / "mod.py"
        path.write_text("# lint: frobnicate\n")
        with pytest.raises(LintError, match="unknown lint directive"):
            run_lint([str(path)])


class TestBaseline:
    def test_round_trip_baselines_every_finding(self, tmp_path):
        result = run_lint([fixture("numeric_determinism_bad.py")])
        assert result.findings
        baseline_path = str(tmp_path / "baseline.json")
        write_baseline(baseline_path, result.findings)
        allowed = load_baseline(baseline_path)
        new, baselined = split_findings(result.findings, allowed)
        assert new == []
        assert len(baselined) == len(result.findings)

    def test_new_findings_are_not_absorbed(self, tmp_path):
        numeric = run_lint([fixture("numeric_determinism_bad.py")])
        baseline_path = str(tmp_path / "baseline.json")
        write_baseline(baseline_path, numeric.findings)
        both = run_lint(
            [
                fixture("numeric_determinism_bad.py"),
                fixture("deprecation_bad.py"),
            ]
        )
        new, baselined = split_findings(both.findings, load_baseline(baseline_path))
        assert len(baselined) == len(numeric.findings)
        assert {f.rule for f in new} == {"deprecation-hygiene"}

    def test_fingerprints_survive_reordering(self):
        # Fingerprints carry no line numbers: the same offending line at a
        # different position still matches its baseline entry.
        first = ModuleInfo("mod.py", "# lint: parity-critical\nx = 2.0 ** 8\n")
        second = ModuleInfo("mod.py", "# lint: parity-critical\n\n\nx = 2.0 ** 8\n")

        def fingerprint(module):
            rule = RULES["numeric-determinism"]()
            from repro.lint.framework import ProjectIndex

            (finding,) = list(rule.check(module, ProjectIndex()))
            return finding.fingerprint

        assert fingerprint(first) == fingerprint(second)

    def test_missing_baseline_means_empty(self, tmp_path):
        assert load_baseline(str(tmp_path / "absent.json")) == {}

    def test_corrupt_baseline_is_an_error(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text("not json")
        with pytest.raises(LintError, match="cannot read baseline"):
            load_baseline(str(path))


class TestSelfCheck:
    def test_src_repro_lints_clean(self):
        """The committed tree holds zero findings — the CI gate's invariant."""
        result = run_lint([SRC])
        assert result.findings == [], "\n".join(
            f.describe() for f in result.findings
        )
        # The one deliberate suppression (registry eviction) is documented.
        assert result.suppressed >= 1

    def test_committed_baseline_is_empty(self):
        repo_root = os.path.join(os.path.dirname(__file__), os.pardir)
        allowed = load_baseline(os.path.join(repo_root, "lint-baseline.json"))
        assert allowed == {}


class TestCommandLine:
    def test_module_entry_point_reports_json(self, tmp_path, capsys):
        baseline = str(tmp_path / "baseline.json")
        code = lint_main(
            [
                fixture("deprecation_bad.py"),
                "--format",
                "json",
                "--baseline",
                baseline,
            ]
        )
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["new"] == 4
        assert all(f["rule"] == "deprecation-hygiene" for f in payload["findings"])

    def test_write_baseline_then_gate_passes(self, tmp_path, capsys):
        baseline = str(tmp_path / "baseline.json")
        target = fixture("deprecation_bad.py")
        assert lint_main([target, "--baseline", baseline, "--write-baseline"]) == 0
        capsys.readouterr()
        assert lint_main([target, "--baseline", baseline]) == 0
        out = capsys.readouterr().out
        assert "[baselined]" in out

    def test_list_rules(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule, _, _ in RULE_FIXTURES:
            assert rule in out

    def test_bad_path_exits_2(self, capsys):
        assert lint_main(["definitely/not/a/path"]) == 2

    def test_cli_subcommand_is_wired(self, capsys):
        from repro.cli import main as cli_main

        code = cli_main(["lint", fixture("wire_contract_ok.py")])
        assert code == 0
        assert "0 findings" in capsys.readouterr().out
