"""Tests for ``warlock lint``: framework, rules, suppressions, baseline, CLI.

Every rule is proven twice — a *bad* fixture under ``tests/lint_fixtures/``
must produce findings (the rule detects its target pattern) and an *ok*
fixture must stay clean (the rule does not cry wolf on the idiomatic
spelling).  On top of that, the final tree itself must lint clean: the
self-check test runs the full rule set over ``src/repro`` exactly like the
CI gate does.
"""

from __future__ import annotations

import json
import os
import subprocess

import pytest

from repro.lint import LintError, run_lint
from repro.lint.baseline import load_baseline, split_findings, write_baseline
from repro.lint.framework import ModuleInfo, RULES
from repro.lint.runner import main as lint_main

FIXTURES = os.path.join(os.path.dirname(__file__), "lint_fixtures")
SRC = os.path.join(os.path.dirname(__file__), os.pardir, "src", "repro")


def fixture(name: str) -> str:
    return os.path.join(FIXTURES, name)


def findings_for(path: str, rule: str):
    result = run_lint([path, fixture("lock_discipline_classes.py")], [rule])
    return [f for f in result.findings if f.path.endswith(os.path.basename(path))]


RULE_FIXTURES = [
    ("numeric-determinism", "numeric_determinism", 4),
    ("lock-discipline", "lock_discipline", 1),
    ("pool-boundary-picklability", "picklability", 5),
    ("wire-contract", "wire_contract", 2),
    ("deprecation-hygiene", "deprecation", 4),
]

# The graph rules run over whole fixture *projects* (packages with internal
# imports), not single files — lexical fixtures cannot exercise them.
PROJECT_FIXTURES = [
    ("layering", "layering_project", 1),
    ("determinism-taint", "taint_project", 1),
    ("boundary-serialization", "boundary_project", 5),
]


class TestRules:
    @pytest.mark.parametrize("rule,stem,expected", RULE_FIXTURES)
    def test_bad_fixture_is_detected(self, rule, stem, expected):
        found = findings_for(fixture(f"{stem}_bad.py"), rule)
        assert len(found) == expected
        assert all(f.rule == rule for f in found)
        assert all(f.snippet for f in found)

    @pytest.mark.parametrize("rule,stem,expected", RULE_FIXTURES)
    def test_ok_fixture_is_clean(self, rule, stem, expected):
        assert findings_for(fixture(f"{stem}_ok.py"), rule) == []

    def test_rule_selection_is_scoped(self):
        # Only the requested rule runs: the deprecation fixture holds no
        # numeric-determinism positives, so a scoped run is empty.
        result = run_lint([fixture("deprecation_bad.py")], ["numeric-determinism"])
        assert result.findings == []
        assert result.rules == ("numeric-determinism",)

    def test_unknown_rule_is_an_error(self):
        with pytest.raises(LintError, match="unknown rule"):
            run_lint([FIXTURES], ["no-such-rule"])

    def test_all_registered_rules_are_covered_by_fixtures(self):
        run_lint([fixture("deprecation_ok.py")])  # populate the registry
        covered = {rule for rule, _, _ in RULE_FIXTURES}
        covered |= {rule for rule, _, _ in PROJECT_FIXTURES}
        assert set(RULES) == covered


class TestGraphRules:
    @pytest.mark.parametrize("rule,project,expected", PROJECT_FIXTURES)
    def test_bad_project_is_detected(self, rule, project, expected):
        result = run_lint([fixture(project)], [rule])
        assert len(result.findings) == expected
        assert all(f.rule == rule for f in result.findings)
        assert all(f.snippet for f in result.findings)

    def test_layering_flags_only_the_module_level_upward_import(self):
        # lp.costmodel (layer 0) imports lp.service (layer 3) at module
        # level; lp.engine reaches lp.service too, but through a lazy
        # (function-scope) import — the sanctioned escape hatch stays clean.
        result = run_lint([fixture("layering_project")], ["layering"])
        (finding,) = result.findings
        assert finding.path.endswith(os.path.join("costmodel", "__init__.py"))
        assert "upward import" in finding.message
        assert "lp.costmodel (layer 0)" in finding.message
        assert "lp.service (layer 3)" in finding.message

    def test_layering_flags_module_level_import_cycles(self):
        result = run_lint([fixture("cycle_project")], ["layering"])
        (finding,) = result.findings
        assert "import cycle" in finding.message
        assert "cyc.alpha -> cyc.beta -> cyc.alpha" in finding.message

    def test_taint_finding_records_the_full_chain(self):
        # model.evaluate -> helpers.stamp_metrics -> helpers.annotate ->
        # time.time(); the sorted(os.listdir()) helper and the unreachable
        # random.random() stay clean (one finding total).
        result = run_lint([fixture("taint_project")], ["determinism-taint"])
        (finding,) = result.findings
        assert "time.time()" in finding.message
        assert "tp.costmodel.model:evaluate" in finding.message
        assert len(finding.chain) == 4
        assert "[parity-critical]" in finding.chain[0]
        assert "tp.helpers:stamp_metrics" in finding.chain[1]
        assert "tp.helpers:annotate" in finding.chain[2]
        assert finding.chain[3].startswith("-> time.time()")

    def test_boundary_findings_cover_each_hazard(self):
        result = run_lint([fixture("boundary_project")], ["boundary-serialization"])
        messages = [f.message for f in result.findings]
        assert len(messages) == 5
        for expected in [
            "lambda reaches the cache-store pickle/npz path via bp.tasks:spill",
            "nested function 'add_one' reaches the process-pool boundary",
            "module-level mutable 'SHARED_STATE'",
            "dataclass bp.models:Config crosses the JSON wire format",
            "open() handle reaches the cache-store pickle/npz path",
        ]:
            assert any(expected in message for message in messages), expected


class TestSuppressions:
    def test_trailing_and_standalone_suppressions(self):
        result = run_lint(
            [
                fixture("lock_discipline_suppressed.py"),
                fixture("lock_discipline_classes.py"),
            ],
            ["lock-discipline"],
        )
        # Both spellings (same-line and preceding-line) silence the finding;
        # the run still reports how many were suppressed.
        assert result.findings == []
        assert result.suppressed == 2

    def test_suppression_is_per_rule(self, tmp_path):
        path = tmp_path / "mod.py"
        path.write_text(
            "# lint: parity-critical\n"
            "import math\n"
            "x = math.pow(2.0, 3.0)  # lint: disable=wire-contract -- wrong rule\n"
        )
        result = run_lint([str(path)])
        assert [f.rule for f in result.findings] == ["numeric-determinism"]
        assert result.suppressed == 0

    def test_unknown_directive_is_an_error(self, tmp_path):
        path = tmp_path / "mod.py"
        path.write_text("# lint: frobnicate\n")
        with pytest.raises(LintError, match="unknown lint directive"):
            run_lint([str(path)])


class TestBaseline:
    def test_round_trip_baselines_every_finding(self, tmp_path):
        result = run_lint([fixture("numeric_determinism_bad.py")])
        assert result.findings
        baseline_path = str(tmp_path / "baseline.json")
        write_baseline(baseline_path, result.findings)
        allowed = load_baseline(baseline_path)
        new, baselined = split_findings(result.findings, allowed)
        assert new == []
        assert len(baselined) == len(result.findings)

    def test_new_findings_are_not_absorbed(self, tmp_path):
        numeric = run_lint([fixture("numeric_determinism_bad.py")])
        baseline_path = str(tmp_path / "baseline.json")
        write_baseline(baseline_path, numeric.findings)
        both = run_lint(
            [
                fixture("numeric_determinism_bad.py"),
                fixture("deprecation_bad.py"),
            ]
        )
        new, baselined = split_findings(both.findings, load_baseline(baseline_path))
        assert len(baselined) == len(numeric.findings)
        assert {f.rule for f in new} == {"deprecation-hygiene"}

    def test_fingerprints_survive_reordering(self):
        # Fingerprints carry no line numbers: the same offending line at a
        # different position still matches its baseline entry.
        first = ModuleInfo("mod.py", "# lint: parity-critical\nx = 2.0 ** 8\n")
        second = ModuleInfo("mod.py", "# lint: parity-critical\n\n\nx = 2.0 ** 8\n")

        def fingerprint(module):
            rule = RULES["numeric-determinism"]()
            from repro.lint.framework import ProjectIndex

            (finding,) = list(rule.check(module, ProjectIndex()))
            return finding.fingerprint

        assert fingerprint(first) == fingerprint(second)

    def test_identical_lines_get_distinct_fingerprints(self, tmp_path):
        # Two byte-identical offending lines used to collapse onto one
        # fingerprint, so baselining the first silently absorbed the second;
        # the occurrence index keeps them apart.
        path = tmp_path / "mod.py"
        path.write_text(
            "# lint: parity-critical\n"
            "import math\n"
            "x = math.pow(2.0, 3.0)\n"
            "x = math.pow(2.0, 3.0)\n"
        )
        result = run_lint([str(path)], ["numeric-determinism"])
        first, second = result.findings
        assert first.snippet == second.snippet
        assert first.fingerprint != second.fingerprint
        assert second.fingerprint == f"{first.fingerprint}#2"

    def test_baseline_absorbs_occurrences_one_by_one(self, tmp_path):
        path = tmp_path / "mod.py"
        path.write_text(
            "# lint: parity-critical\n"
            "import math\n"
            "x = math.pow(2.0, 3.0)\n"
            "x = math.pow(2.0, 3.0)\n"
        )
        result = run_lint([str(path)], ["numeric-determinism"])
        baseline_path = str(tmp_path / "baseline.json")
        # Baseline holding only the first occurrence absorbs exactly one.
        write_baseline(baseline_path, result.findings[:1])
        new, baselined = split_findings(
            result.findings, load_baseline(baseline_path)
        )
        assert len(baselined) == 1
        assert len(new) == 1
        # Baselining both absorbs both.
        write_baseline(baseline_path, result.findings)
        new, baselined = split_findings(
            result.findings, load_baseline(baseline_path)
        )
        assert new == []
        assert len(baselined) == 2

    def test_missing_baseline_means_empty(self, tmp_path):
        assert load_baseline(str(tmp_path / "absent.json")) == {}

    def test_corrupt_baseline_is_an_error(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text("not json")
        with pytest.raises(LintError, match="cannot read baseline"):
            load_baseline(str(path))


class TestSelfCheck:
    def test_src_repro_lints_clean(self):
        """The committed tree holds zero findings — the CI gate's invariant."""
        result = run_lint([SRC])
        assert result.findings == [], "\n".join(
            f.describe() for f in result.findings
        )
        # The one deliberate suppression (registry eviction) is documented.
        assert result.suppressed >= 1

    def test_committed_baseline_is_empty(self):
        repo_root = os.path.join(os.path.dirname(__file__), os.pardir)
        allowed = load_baseline(os.path.join(repo_root, "lint-baseline.json"))
        assert allowed == {}


class TestCommandLine:
    def test_module_entry_point_reports_json(self, tmp_path, capsys):
        baseline = str(tmp_path / "baseline.json")
        code = lint_main(
            [
                fixture("deprecation_bad.py"),
                "--format",
                "json",
                "--baseline",
                baseline,
            ]
        )
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["new"] == 4
        assert all(f["rule"] == "deprecation-hygiene" for f in payload["findings"])

    def test_write_baseline_then_gate_passes(self, tmp_path, capsys):
        baseline = str(tmp_path / "baseline.json")
        target = fixture("deprecation_bad.py")
        assert lint_main([target, "--baseline", baseline, "--write-baseline"]) == 0
        capsys.readouterr()
        assert lint_main([target, "--baseline", baseline]) == 0
        out = capsys.readouterr().out
        assert "[baselined]" in out

    def test_list_rules(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule, _, _ in RULE_FIXTURES + PROJECT_FIXTURES:
            assert rule in out

    def test_graph_dot_renders_import_edges(self, capsys):
        assert lint_main([fixture("graph_project"), "--graph", "dot"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("digraph imports {")
        assert '"gp.relative" -> "gp.core"' in out
        assert '"gp.star" -> "gp.core"' in out

    def test_graph_dot_marks_lazy_edges_dashed(self, capsys):
        assert lint_main([fixture("layering_project"), "--graph", "dot"]) == 0
        out = capsys.readouterr().out
        assert '"lp.costmodel" -> "lp.service";' in out
        assert '"lp.engine" -> "lp.service" [style=dashed' in out

    def test_graph_json_summarizes_both_graphs(self, capsys):
        assert lint_main([fixture("graph_project"), "--graph", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "gp.core" in payload["modules"]
        assert payload["summary"]["functions"] >= 5

    def test_explain_prints_the_source_to_sink_chain(self, capsys):
        result = run_lint([fixture("taint_project")], ["determinism-taint"])
        (finding,) = result.findings
        code = lint_main(
            [
                fixture("taint_project"),
                "--rule",
                "determinism-taint",
                "--explain",
                finding.fingerprint,
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "tp.costmodel.model:evaluate" in out
        assert "[parity-critical]" in out
        assert "-> tp.helpers:stamp_metrics" in out
        assert "-> tp.helpers:annotate" in out
        assert "-> time.time() at" in out

    def test_explain_unknown_fingerprint_exits_2(self, capsys):
        assert lint_main([fixture("taint_project"), "--explain", "nope"]) == 2

    def test_bad_path_exits_2(self, capsys):
        assert lint_main(["definitely/not/a/path"]) == 2

    def test_cli_subcommand_is_wired(self, capsys):
        from repro.cli import main as cli_main

        code = cli_main(["lint", fixture("wire_contract_ok.py")])
        assert code == 0
        assert "0 findings" in capsys.readouterr().out


VIOLATION = "# lint: parity-critical\nimport math\nx = math.pow(2.0, 3.0)\n"


def _git(repo, *arguments):
    subprocess.run(
        ["git", *arguments],
        cwd=str(repo),
        check=True,
        capture_output=True,
        text=True,
    )


@pytest.fixture
def git_repo(tmp_path):
    _git(tmp_path, "init", "-q")
    _git(tmp_path, "config", "user.email", "lint@example.com")
    _git(tmp_path, "config", "user.name", "lint")
    return tmp_path


class TestGitScoping:
    def test_changed_reports_only_uncommitted_files(
        self, git_repo, monkeypatch, capsys
    ):
        (git_repo / "committed.py").write_text(VIOLATION)
        _git(git_repo, "add", "committed.py")
        _git(git_repo, "commit", "-q", "-m", "seed")
        (git_repo / "fresh.py").write_text(VIOLATION)
        monkeypatch.chdir(git_repo)

        code = lint_main(
            [".", "--changed", "--format", "json", "--baseline", "absent.json"]
        )
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["new"] == 1
        assert all(f["path"].endswith("fresh.py") for f in payload["findings"])

    def test_changed_with_a_clean_tree_passes(self, git_repo, monkeypatch, capsys):
        (git_repo / "committed.py").write_text(VIOLATION)
        _git(git_repo, "add", "committed.py")
        _git(git_repo, "commit", "-q", "-m", "seed")
        monkeypatch.chdir(git_repo)

        # The violation exists but is committed: nothing is in scope.
        code = lint_main([".", "--changed", "--baseline", "absent.json"])
        assert code == 0
        # Without scoping the same run fails.
        capsys.readouterr()
        assert lint_main([".", "--baseline", "absent.json"]) == 1

    def test_since_scopes_to_files_changed_after_the_revision(
        self, git_repo, monkeypatch, capsys
    ):
        (git_repo / "old.py").write_text(VIOLATION)
        _git(git_repo, "add", "old.py")
        _git(git_repo, "commit", "-q", "-m", "first")
        (git_repo / "new.py").write_text(VIOLATION)
        _git(git_repo, "add", "new.py")
        _git(git_repo, "commit", "-q", "-m", "second")
        monkeypatch.chdir(git_repo)

        code = lint_main(
            [
                ".",
                "--since",
                "HEAD~1",
                "--format",
                "json",
                "--baseline",
                "absent.json",
            ]
        )
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["new"] == 1
        assert all(f["path"].endswith("new.py") for f in payload["findings"])
