"""Unit tests for repro.core.config and repro.core.thresholds."""

from __future__ import annotations

import pytest

from repro import AdvisorConfig, FragmentationSpec, SystemParameters
from repro.core.thresholds import ExclusionReport, evaluate_thresholds
from repro.errors import AdvisorError
from repro.storage import DiskParameters


class TestAdvisorConfig:
    def test_defaults(self):
        config = AdvisorConfig()
        assert config.top_fraction == 0.25
        assert config.top_candidates == 10
        assert config.max_fragments == 100_000
        assert not config.include_baseline

    def test_resolved_min_fragments_defaults_to_disks(self):
        config = AdvisorConfig()
        assert config.resolved_min_fragments(64) == 64
        assert AdvisorConfig(min_fragments=10).resolved_min_fragments(64) == 10

    def test_resolved_min_fragment_pages(self):
        assert AdvisorConfig().resolved_min_fragment_pages(16) == 16
        assert AdvisorConfig(min_fragment_pages=4).resolved_min_fragment_pages(16) == 4

    def test_invalid_values(self):
        with pytest.raises(AdvisorError):
            AdvisorConfig(top_fraction=0.0)
        with pytest.raises(AdvisorError):
            AdvisorConfig(top_fraction=1.5)
        with pytest.raises(AdvisorError):
            AdvisorConfig(top_candidates=0)
        with pytest.raises(AdvisorError):
            AdvisorConfig(max_fragmentation_dimensions=0)
        with pytest.raises(AdvisorError):
            AdvisorConfig(min_fragments=0)
        with pytest.raises(AdvisorError):
            AdvisorConfig(max_fragments=0)
        with pytest.raises(AdvisorError):
            AdvisorConfig(min_fragment_pages=0)
        with pytest.raises(AdvisorError):
            AdvisorConfig(bitmap_cardinality_threshold=0)
        with pytest.raises(AdvisorError):
            AdvisorConfig(allocation_skew_cv=-0.1)
        with pytest.raises(AdvisorError):
            AdvisorConfig(min_fragments=1000, max_fragments=10)


class TestEvaluateThresholds:
    def evaluate(self, toy_schema, spec, system=None, config=None):
        system = system if system is not None else SystemParameters(num_disks=8)
        config = config if config is not None else AdvisorConfig()
        fact = toy_schema.fact_table()
        return evaluate_thresholds(spec, toy_schema, fact, system, config)

    def test_good_candidate_passes(self, toy_schema):
        spec = FragmentationSpec.of(("time", "month"), ("store", "region"))
        assert self.evaluate(toy_schema, spec) == []

    def test_too_few_fragments_excluded(self, toy_schema):
        spec = FragmentationSpec.of(("time", "year"))  # 2 fragments < 8 disks
        violations = self.evaluate(toy_schema, spec)
        assert any("minimum" in v for v in violations)

    def test_too_many_fragments_excluded(self, toy_schema):
        spec = FragmentationSpec.of(("time", "month"), ("product", "item"), ("store", "store"))
        config = AdvisorConfig(max_fragments=1000)
        violations = self.evaluate(toy_schema, spec, config=config)
        assert any("exceed" in v for v in violations)

    def test_fragment_size_below_prefetch_granule_excluded(self, toy_schema):
        # 192,000 fragments of a ~1M row / ~7.8k page table: far below 16 pages.
        spec = FragmentationSpec.of(("time", "month"), ("product", "item"), ("store", "store"))
        violations = self.evaluate(toy_schema, spec)
        assert any("prefetching granule" in v for v in violations)

    def test_capacity_violation(self, toy_schema, tiny_disk_system):
        spec = FragmentationSpec.of(("time", "month"), ("store", "region"))
        violations = self.evaluate(toy_schema, spec, system=tiny_disk_system)
        assert any("capacity" in v.lower() or "holds" in v for v in violations)

    def test_baseline_not_checked_for_min_fragments(self, toy_schema):
        violations = self.evaluate(toy_schema, FragmentationSpec.none())
        assert not any("minimum" in v for v in violations)

    def test_fixed_prefetch_used_as_hint(self, toy_schema):
        spec = FragmentationSpec.of(("time", "month"), ("product", "group"), ("store", "region"))
        small_prefetch = SystemParameters(num_disks=8, prefetch_pages_fact=1)
        large_prefetch = SystemParameters(num_disks=8, prefetch_pages_fact=512)
        assert self.evaluate(toy_schema, spec, system=small_prefetch) == []
        violations = self.evaluate(toy_schema, spec, system=large_prefetch)
        assert any("prefetching granule" in v for v in violations)


class TestExclusionReport:
    def test_records_and_counts(self, toy_schema):
        report = ExclusionReport()
        good = FragmentationSpec.of(("time", "month"))
        bad = FragmentationSpec.of(("time", "year"))
        report.record(good, [])
        report.record(bad, ["too few fragments (< minimum)"])
        assert report.considered == 2
        assert report.excluded_count == 1
        assert report.surviving_count == 1
        assert report.reasons_for(bad.label) is not None
        assert report.reasons_for(good.label) is None

    def test_violation_histogram(self):
        report = ExclusionReport()
        report.record(FragmentationSpec.of(("a", "x")), ["only 2 fragments (< minimum 8)"])
        report.record(FragmentationSpec.of(("b", "y")), ["only 3 fragments (< minimum 8)"])
        histogram = report.violation_histogram()
        assert sum(histogram.values()) == 2

    def test_describe(self):
        report = ExclusionReport()
        report.record(FragmentationSpec.of(("a", "x")), ["reason"])
        text = report.describe()
        assert "1" in text and "a.x" in text
