"""Unit tests for repro.schema: levels, dimensions, fact tables, schemas, validation."""

from __future__ import annotations

import pytest

from repro import Dimension, FactTable, Level, Measure, SkewSpec, StarSchema
from repro.errors import SchemaError
from repro.schema import validate_schema


def make_time() -> Dimension:
    return Dimension(
        name="time",
        levels=[Level("year", 2), Level("quarter", 8), Level("month", 24)],
    )


class TestLevel:
    def test_valid_level(self):
        level = Level("month", 24)
        assert level.name == "month"
        assert level.cardinality == 24

    def test_rejects_empty_name(self):
        with pytest.raises(SchemaError):
            Level("", 5)
        with pytest.raises(SchemaError):
            Level("   ", 5)

    def test_rejects_non_positive_cardinality(self):
        with pytest.raises(SchemaError):
            Level("x", 0)
        with pytest.raises(SchemaError):
            Level("x", -2)

    def test_rejects_non_int_cardinality(self):
        with pytest.raises(SchemaError):
            Level("x", 2.5)  # type: ignore[arg-type]
        with pytest.raises(SchemaError):
            Level("x", True)  # type: ignore[arg-type]


class TestDimension:
    def test_navigation(self):
        time = make_time()
        assert time.level_names == ("year", "quarter", "month")
        assert time.top_level.name == "year"
        assert time.bottom_level.name == "month"
        assert time.cardinality == 24
        assert time.level("quarter").cardinality == 8
        assert time.has_level("month")
        assert not time.has_level("week")

    def test_level_index_and_ordering(self):
        time = make_time()
        assert time.level_index("year") == 0
        assert time.level_index("month") == 2
        assert time.is_coarser_or_equal("year", "month")
        assert time.is_coarser_or_equal("month", "month")
        assert not time.is_coarser_or_equal("month", "quarter")

    def test_fanout(self):
        time = make_time()
        assert time.fanout("year", "month") == pytest.approx(12.0)
        assert time.fanout("quarter", "month") == pytest.approx(3.0)
        with pytest.raises(SchemaError):
            time.fanout("month", "year")

    def test_unknown_level_raises(self):
        with pytest.raises(SchemaError):
            make_time().level("week")
        with pytest.raises(SchemaError):
            make_time().level_index("week")

    def test_rejects_empty_levels(self):
        with pytest.raises(SchemaError):
            Dimension(name="d", levels=[])

    def test_rejects_duplicate_level_names(self):
        with pytest.raises(SchemaError):
            Dimension(name="d", levels=[Level("a", 2), Level("a", 4)])

    def test_rejects_decreasing_cardinalities(self):
        with pytest.raises(SchemaError):
            Dimension(name="d", levels=[Level("a", 10), Level("b", 5)])

    def test_equal_cardinalities_allowed(self):
        dimension = Dimension(name="d", levels=[Level("a", 5), Level("b", 5)])
        assert dimension.cardinality == 5

    def test_default_skew_is_none(self):
        assert not make_time().skew.is_skewed

    def test_skew_attached(self):
        dim = Dimension(name="d", levels=[Level("a", 10)], skew=SkewSpec(theta=0.5))
        assert dim.skew.is_skewed

    def test_size_bytes(self):
        dim = Dimension(name="d", levels=[Level("a", 100)], row_size_bytes=50)
        assert dim.size_bytes() == 5000

    def test_rejects_bad_row_size(self):
        with pytest.raises(SchemaError):
            Dimension(name="d", levels=[Level("a", 2)], row_size_bytes=0)

    def test_iteration_yields_levels(self):
        assert [lvl.name for lvl in make_time()] == ["year", "quarter", "month"]


class TestMeasure:
    def test_valid(self):
        measure = Measure("revenue", 8)
        assert measure.size_bytes == 8

    def test_invalid(self):
        with pytest.raises(SchemaError):
            Measure("", 8)
        with pytest.raises(SchemaError):
            Measure("x", 0)


class TestFactTable:
    def make(self, rows=1000, row_size=100) -> FactTable:
        return FactTable(
            name="sales",
            row_count=rows,
            row_size_bytes=row_size,
            dimension_names=("time", "product"),
        )

    def test_pages_and_blocking_factor(self):
        fact = self.make(rows=1000, row_size=100)
        assert fact.rows_per_page(8192) == 81
        assert fact.pages(8192) == 13  # ceil(1000 / 81)

    def test_pages_row_larger_than_page(self):
        fact = self.make(rows=10, row_size=10_000)
        assert fact.rows_per_page(8192) == 1
        assert fact.pages(8192) == 10

    def test_size_bytes(self):
        assert self.make(rows=10, row_size=100).size_bytes() == 1000

    def test_invalid_page_size(self):
        with pytest.raises(SchemaError):
            self.make().pages(0)
        with pytest.raises(SchemaError):
            self.make().rows_per_page(-1)

    def test_rejects_bad_construction(self):
        with pytest.raises(SchemaError):
            FactTable("f", 0, 10, ("a",))
        with pytest.raises(SchemaError):
            FactTable("f", 10, 0, ("a",))
        with pytest.raises(SchemaError):
            FactTable("f", 10, 10, ())
        with pytest.raises(SchemaError):
            FactTable("f", 10, 10, ("a", "a"))


class TestStarSchema:
    def make_schema(self) -> StarSchema:
        time = make_time()
        product = Dimension(name="product", levels=[Level("group", 10), Level("item", 100)])
        fact = FactTable(
            name="sales",
            row_count=10_000,
            row_size_bytes=64,
            dimension_names=("time", "product"),
        )
        return StarSchema(name="s", dimensions=(time, product), fact_tables=(fact,))

    def test_navigation(self):
        schema = self.make_schema()
        assert schema.dimension_names == ("time", "product")
        assert schema.dimension("time").name == "time"
        assert schema.has_dimension("product")
        assert not schema.has_dimension("store")
        assert schema.fact_table().name == "sales"
        assert schema.fact_table("sales").name == "sales"

    def test_level_cardinality_helper(self):
        assert self.make_schema().level_cardinality("time", "month") == 24

    def test_dimensions_of(self):
        schema = self.make_schema()
        dims = schema.dimensions_of(schema.fact_table())
        assert [d.name for d in dims] == ["time", "product"]

    def test_total_size(self):
        schema = self.make_schema()
        expected_fact = 10_000 * 64
        expected_dims = 24 * 64 + 100 * 64
        assert schema.total_size_bytes() == expected_fact + expected_dims

    def test_describe_mentions_everything(self):
        text = self.make_schema().describe()
        assert "time" in text and "product" in text and "sales" in text

    def test_unknown_lookups_raise(self):
        schema = self.make_schema()
        with pytest.raises(SchemaError):
            schema.dimension("nope")
        with pytest.raises(SchemaError):
            schema.fact_table("nope")

    def test_fact_referencing_unknown_dimension_rejected(self):
        time = make_time()
        fact = FactTable("f", 10, 10, ("time", "ghost"))
        with pytest.raises(SchemaError):
            StarSchema(name="s", dimensions=(time,), fact_tables=(fact,))

    def test_duplicate_names_rejected(self):
        time = make_time()
        fact = FactTable("f", 10, 10, ("time",))
        with pytest.raises(SchemaError):
            StarSchema(name="s", dimensions=(time, make_time()), fact_tables=(fact,))
        with pytest.raises(SchemaError):
            StarSchema(name="s", dimensions=(time,), fact_tables=(fact, fact))

    def test_empty_schema_rejected(self):
        time = make_time()
        fact = FactTable("f", 10, 10, ("time",))
        with pytest.raises(SchemaError):
            StarSchema(name="s", dimensions=(), fact_tables=(fact,))
        with pytest.raises(SchemaError):
            StarSchema(name="s", dimensions=(time,), fact_tables=())


class TestValidateSchema:
    def test_clean_schema_has_no_warnings(self, toy_schema):
        assert validate_schema(toy_schema) == []

    def test_warns_on_unreferenced_dimension(self):
        time = make_time()
        orphan = Dimension(name="orphan", levels=[Level("x", 5)])
        fact = FactTable("f", 1000, 64, ("time",))
        schema = StarSchema(name="s", dimensions=(time, orphan), fact_tables=(fact,))
        warnings = validate_schema(schema)
        assert any("orphan" in w for w in warnings)

    def test_warns_on_degenerate_hierarchy(self):
        flat = Dimension(name="flat", levels=[Level("a", 5), Level("b", 5)])
        fact = FactTable("f", 1000, 64, ("flat",))
        schema = StarSchema(name="s", dimensions=(flat,), fact_tables=(fact,))
        assert any("degenerate" in w for w in validate_schema(schema))

    def test_warns_on_cardinality_one_bottom(self):
        tiny = Dimension(name="tiny", levels=[Level("only", 1)])
        fact = FactTable("f", 1000, 64, ("tiny",))
        schema = StarSchema(name="s", dimensions=(tiny,), fact_tables=(fact,))
        assert any("cardinality 1" in w for w in validate_schema(schema))

    def test_warns_on_narrow_fact_rows(self):
        time = make_time()
        product = Dimension(name="product", levels=[Level("item", 10)])
        fact = FactTable("f", 1000, 8, ("time", "product"))
        schema = StarSchema(name="s", dimensions=(time, product), fact_tables=(fact,))
        assert any("foreign keys" in w for w in validate_schema(schema))

    def test_strict_mode_escalates(self):
        tiny = Dimension(name="tiny", levels=[Level("only", 1)])
        fact = FactTable("f", 1000, 64, ("tiny",))
        schema = StarSchema(name="s", dimensions=(tiny,), fact_tables=(fact,))
        with pytest.raises(SchemaError):
            validate_schema(schema, strict=True)
