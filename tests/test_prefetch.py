"""Unit tests for repro.storage.prefetch: granule candidates, timing, optimization."""

from __future__ import annotations

import pytest

from repro.errors import StorageError
from repro.storage import DiskParameters, PrefetchPolicy, PrefetchSetting
from repro.storage.prefetch import (
    expected_run_read_time_ms,
    optimal_prefetch_pages,
    prefetch_candidates,
)

PAGE = 8192


class TestPrefetchCandidates:
    def test_powers_of_two(self):
        assert prefetch_candidates(16) == [1, 2, 4, 8, 16]

    def test_non_power_limit_included(self):
        candidates = prefetch_candidates(20)
        assert candidates[-1] == 20
        assert 16 in candidates

    def test_single_page(self):
        assert prefetch_candidates(1) == [1]

    def test_invalid(self):
        with pytest.raises(StorageError):
            prefetch_candidates(0)


class TestExpectedRunReadTime:
    def test_zero_run_costs_nothing(self):
        assert expected_run_read_time_ms(0, 8, DiskParameters(), PAGE) == 0.0

    def test_single_request_when_granule_covers_run(self):
        disk = DiskParameters()
        time = expected_run_read_time_ms(4, 8, disk, PAGE)
        expected = disk.positioning_time_ms + 8 * disk.page_transfer_time_ms(PAGE)
        assert time == pytest.approx(expected)

    def test_multiple_requests(self):
        disk = DiskParameters()
        time = expected_run_read_time_ms(20, 8, disk, PAGE)
        # ceil(20/8) = 3 requests transferring 24 pages.
        expected = 3 * disk.positioning_time_ms + 24 * disk.page_transfer_time_ms(PAGE)
        assert time == pytest.approx(expected)

    def test_invalid_arguments(self):
        disk = DiskParameters()
        with pytest.raises(StorageError):
            expected_run_read_time_ms(-1, 8, disk, PAGE)
        with pytest.raises(StorageError):
            expected_run_read_time_ms(4, 0, disk, PAGE)


class TestOptimalPrefetchPages:
    def test_large_runs_prefer_large_granules(self):
        disk = DiskParameters()
        small = optimal_prefetch_pages([2.0], disk, PAGE)
        large = optimal_prefetch_pages([500.0], disk, PAGE)
        assert large > small

    def test_tiny_runs_prefer_single_page(self):
        disk = DiskParameters()
        assert optimal_prefetch_pages([1.0], disk, PAGE) == 1

    def test_weights_shift_optimum(self):
        disk = DiskParameters()
        runs = [1.0, 512.0]
        favour_small = optimal_prefetch_pages(runs, disk, PAGE, weights=[100.0, 0.001])
        favour_large = optimal_prefetch_pages(runs, disk, PAGE, weights=[0.001, 100.0])
        assert favour_large >= favour_small

    def test_optimum_is_actually_minimal(self):
        disk = DiskParameters()
        runs, weights = [37.0, 120.0], [1.0, 2.0]
        best = optimal_prefetch_pages(runs, disk, PAGE, weights)
        best_cost = sum(
            w * expected_run_read_time_ms(r, best, disk, PAGE)
            for r, w in zip(runs, weights)
        )
        for granule in prefetch_candidates():
            cost = sum(
                w * expected_run_read_time_ms(r, granule, disk, PAGE)
                for r, w in zip(runs, weights)
            )
            assert best_cost <= cost + 1e-9

    def test_zero_weights_fall_back_to_uniform(self):
        disk = DiskParameters()
        assert optimal_prefetch_pages([64.0, 64.0], disk, PAGE, weights=[0.0, 0.0]) >= 1

    def test_invalid_arguments(self):
        disk = DiskParameters()
        with pytest.raises(StorageError):
            optimal_prefetch_pages([], disk, PAGE)
        with pytest.raises(StorageError):
            optimal_prefetch_pages([-1.0], disk, PAGE)
        with pytest.raises(StorageError):
            optimal_prefetch_pages([1.0, 2.0], disk, PAGE, weights=[1.0])
        with pytest.raises(StorageError):
            optimal_prefetch_pages([1.0], disk, PAGE, weights=[-1.0])


class TestPrefetchSetting:
    def test_fixed_constructor(self):
        setting = PrefetchSetting.fixed(16, 4)
        assert setting.fact_pages == 16
        assert setting.bitmap_pages == 4
        assert setting.fact_policy is PrefetchPolicy.FIXED
        assert setting.bitmap_policy is PrefetchPolicy.FIXED

    def test_describe(self):
        setting = PrefetchSetting(
            fact_pages=32,
            bitmap_pages=2,
            fact_policy=PrefetchPolicy.AUTO,
            bitmap_policy=PrefetchPolicy.FIXED,
        )
        text = setting.describe()
        assert "32 pages" in text and "auto" in text and "fixed" in text

    def test_invalid(self):
        with pytest.raises(StorageError):
            PrefetchSetting(fact_pages=0, bitmap_pages=1)
        with pytest.raises(StorageError):
            PrefetchSetting(fact_pages=1, bitmap_pages=0)
