"""Persistent on-disk evaluation cache: round trips, warm starts, failure modes.

The contract under test (repro.engine.store):

* a second advisor *process* (modelled here as a fresh cache/advisor loading
  the same directory) answers its sweep from the disk store, bit-identically;
* a corrupted, truncated or version-mismatched store is silently ignored —
  the run falls back to a cold evaluation with the identical fingerprint and
  then atomically rewrites the store;
* an unwritable store location can never fail an evaluation.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro import (
    AdvisorConfig,
    EngineOptions,
    EvaluationCache,
    SystemParameters,
    Warlock,
    recommendation_fingerprint,
    synthetic_schema,
)
from repro.engine import CacheStore, store_salt
from repro.engine.store import (
    BATCHES_FILENAME,
    CANDIDATES_FILENAME,
    ENTRIES_FILENAME,
)
from repro.workload.generator import random_query_mix


@pytest.fixture(scope="module")
def scenario():
    schema = synthetic_schema(
        num_dimensions=4,
        levels_per_dimension=3,
        bottom_cardinality=300,
        fact_rows=2_000_000,
        seed=3,
    )
    workload = random_query_mix(schema, num_classes=6, seed=5)
    system = SystemParameters(num_disks=16)
    config = AdvisorConfig(max_fragments=20_000, top_candidates=8)
    return schema, workload, system, config


def _advisor(scenario, cache_dir, jobs=1):
    schema, workload, system, config = scenario
    return Warlock(
        schema,
        workload,
        system,
        config,
        options=EngineOptions(jobs=jobs, cache_dir=str(cache_dir)),
    )


class TestRoundTrip:
    def test_cold_run_writes_all_store_files(self, scenario, tmp_path):
        advisor = _advisor(scenario, tmp_path)
        advisor.recommend()
        assert (tmp_path / ENTRIES_FILENAME).exists()
        assert (tmp_path / BATCHES_FILENAME).exists()
        assert (tmp_path / CANDIDATES_FILENAME).exists()
        # No leftover temp files: saves are write-temp-then-rename.
        assert not list(tmp_path.glob("*.tmp"))

    def test_store_load_returns_the_saved_entries(self, scenario, tmp_path):
        advisor = _advisor(scenario, tmp_path)
        advisor.recommend()
        structures, candidates, reports = CacheStore(tmp_path).load()
        assert len(candidates) == len(dict(advisor.cache._candidates))
        assert len(structures) == len(dict(advisor.cache.structure_items()))
        assert set(candidates) == set(advisor.cache._candidates)
        # The candidate-exclusion report rides along with the store.
        assert len(reports) == 1

    def test_candidates_are_stored_columnar_not_pickled(self, scenario, tmp_path):
        from repro.engine import CandidateColumns

        advisor = _advisor(scenario, tmp_path)
        advisor.recommend()
        _structures, candidates, _reports = CacheStore(tmp_path).load()
        assert candidates
        assert all(
            isinstance(value, CandidateColumns) for value in candidates.values()
        )

    def test_batch_entries_round_trip_bit_exact(self, scenario, tmp_path):
        from repro.costmodel.batch import AccessStructureBatch
        from repro.engine.store import _BATCH_ARRAY_FIELDS

        advisor = _advisor(scenario, tmp_path)
        advisor.recommend()
        structures, _, _ = CacheStore(tmp_path).load()
        original = dict(advisor.cache.structure_items())
        batches = {
            key: value
            for key, value in structures.items()
            if isinstance(value, AccessStructureBatch)
        }
        assert batches, "the vectorized sweep must spill class-axis batches"
        for key, loaded in batches.items():
            source = original[key]
            assert loaded.query_names == source.query_names
            assert loaded.fragments_total == source.fragments_total
            assert loaded.index_attributes == source.index_attributes
            for field in _BATCH_ARRAY_FIELDS:
                ours, theirs = getattr(source, field), getattr(loaded, field)
                assert ours.dtype == theirs.dtype, field
                assert np.array_equal(ours, theirs), field

    def test_loaded_candidate_arrays_retain_no_base(self, scenario, tmp_path):
        """Regression: loaded per-candidate arrays used to be numpy *views*
        into the group's stacked cube / concatenated allocation vector, so one
        surviving candidate pinned its whole group's arrays in memory."""
        advisor = _advisor(scenario, tmp_path)
        advisor.recommend()
        _structures, candidates, _reports = CacheStore(tmp_path).load()
        assert candidates
        for value in candidates.values():
            columns = value.columns
            for array in (
                columns.metrics,
                columns.disks_used,
                columns.sequential,
                columns.forced,
                value.allocation_disks,
                value.allocation_pages,
            ):
                array = np.asarray(array)
                assert array.base is None, "candidate array is a view"

    def test_disk_hits_are_counted(self, scenario, tmp_path):
        cold = _advisor(scenario, tmp_path)
        cold.recommend()
        warm = _advisor(scenario, tmp_path)
        warm.recommend()
        stats = warm.cache.stats
        assert warm.cache.loaded_from_disk > 0
        assert stats.candidate_disk_hits == stats.candidate_hits > 0
        assert stats.disk_hit_rate >= 0.9


@pytest.mark.parametrize("jobs", [1, 4])
class TestWarmStartParity:
    def test_cold_warm_and_corrupted_fingerprints_match(self, scenario, tmp_path, jobs):
        cold = _advisor(scenario, tmp_path, jobs=jobs).recommend()
        fingerprint = recommendation_fingerprint(cold)

        warm_advisor = _advisor(scenario, tmp_path, jobs=jobs)
        warm = warm_advisor.recommend()
        assert recommendation_fingerprint(warm) == fingerprint
        assert warm_advisor.cache.stats.disk_hit_rate >= 0.9

        # Corrupt every file in place: the store must be silently ignored.
        (tmp_path / ENTRIES_FILENAME).write_bytes(b"this is not a database")
        (tmp_path / BATCHES_FILENAME).write_bytes(b"\x00\x01garbage")
        (tmp_path / CANDIDATES_FILENAME).write_bytes(b"\x00\x01garbage")
        corrupted_advisor = _advisor(scenario, tmp_path, jobs=jobs)
        corrupted = corrupted_advisor.recommend()
        assert recommendation_fingerprint(corrupted) == fingerprint
        assert corrupted_advisor.cache.loaded_from_disk == 0
        assert corrupted_advisor.cache.stats.disk_hits == 0

        # ... and the corrupted store was atomically replaced by a fresh one.
        recovered_advisor = _advisor(scenario, tmp_path, jobs=jobs)
        recovered = recovered_advisor.recommend()
        assert recommendation_fingerprint(recovered) == fingerprint
        assert recovered_advisor.cache.stats.disk_hit_rate >= 0.9


class TestFailureModes:
    def test_version_salt_mismatch_is_ignored(self, scenario, tmp_path, monkeypatch):
        cold = _advisor(scenario, tmp_path)
        fingerprint = recommendation_fingerprint(cold.recommend())
        # A future repro version computes a different salt: the old store
        # must never be trusted, only silently replaced.
        monkeypatch.setattr(repro, "__version__", "999.0.0")
        mismatched = _advisor(scenario, tmp_path)
        assert mismatched.cache.loaded_from_disk == 0
        result = mismatched.recommend()
        assert recommendation_fingerprint(result) == fingerprint

    def test_salt_covers_the_package_version(self, monkeypatch):
        before = store_salt()
        monkeypatch.setattr(repro, "__version__", "999.0.0")
        assert store_salt() != before

    def test_unwritable_cache_dir_is_harmless(self, scenario, tmp_path):
        # A cache "directory" that is actually a file: loads nothing, saves
        # nowhere, and the evaluation still succeeds bit-identically.
        blocker = tmp_path / "not-a-directory"
        blocker.write_text("occupied")
        schema, workload, system, config = scenario
        reference = Warlock(schema, workload, system, config).recommend()
        advisor = _advisor(scenario, blocker)
        result = advisor.recommend()
        assert recommendation_fingerprint(result) == recommendation_fingerprint(reference)
        assert advisor.cache.loaded_from_disk == 0
        assert advisor.persist_cache() is None
        assert blocker.read_text() == "occupied"

    def test_missing_directory_is_created_on_save(self, scenario, tmp_path):
        nested = tmp_path / "a" / "b" / "cache"
        advisor = _advisor(scenario, nested)
        advisor.recommend()
        assert (nested / ENTRIES_FILENAME).exists()

    def test_truncated_sqlite_only_still_loads_batches(self, scenario, tmp_path):
        # The store files are validated independently: corrupt entry and
        # candidate files must not poison the (intact) batch file.
        cold = _advisor(scenario, tmp_path)
        fingerprint = recommendation_fingerprint(cold.recommend())
        (tmp_path / ENTRIES_FILENAME).write_bytes(b"broken")
        (tmp_path / CANDIDATES_FILENAME).write_bytes(b"broken")
        advisor = _advisor(scenario, tmp_path)
        result = advisor.recommend()
        assert recommendation_fingerprint(result) == fingerprint
        # Candidates were gone, but the class-axis batches warm-started.
        assert advisor.cache.loaded_from_disk > 0
        assert advisor.cache.stats.structure_disk_hits > 0

    def test_truncated_candidates_only_still_loads_the_rest(self, scenario, tmp_path):
        cold = _advisor(scenario, tmp_path)
        fingerprint = recommendation_fingerprint(cold.recommend())
        (tmp_path / CANDIDATES_FILENAME).write_bytes(b"broken")
        advisor = _advisor(scenario, tmp_path)
        result = advisor.recommend()
        assert recommendation_fingerprint(result) == fingerprint
        assert advisor.cache.stats.candidate_disk_hits == 0
        assert advisor.cache.stats.structure_disk_hits > 0


class TestKeyEncoding:
    def test_round_trip(self):
        from repro.engine.store import _decode_key, _encode_key

        salt = store_salt()
        key = ("batch", "abc123", "def456")
        assert _decode_key(salt, _encode_key(salt, key)) == key

    def test_malformed_or_foreign_keys_are_rejected(self):
        import json

        from repro.engine.store import _decode_key, _encode_key

        salt = store_salt()
        assert _decode_key(salt, json.dumps(["other-salt", "a", "b"])) is None
        assert _decode_key(salt, json.dumps([salt])) is None
        assert _decode_key(salt, json.dumps([salt, "a", 7])) is None
        assert _decode_key(salt, json.dumps({"not": "a list"})) is None

    def test_undecodable_payload_skips_that_entry_only(self, scenario, tmp_path):
        # One truncated pickle must forfeit one entry, not the whole store.
        import sqlite3

        from repro.engine.store import ENTRIES_FILENAME, _encode_key

        advisor = _advisor(scenario, tmp_path)
        advisor.recommend()
        connection = sqlite3.connect(tmp_path / ENTRIES_FILENAME)
        connection.execute(
            "INSERT INTO entries VALUES (?, ?, ?)",
            (_encode_key(store_salt(), ("bad-entry",)), "structure", b"\x80truncated"),
        )
        connection.commit()
        connection.close()
        structures, candidates, _reports = CacheStore(tmp_path).load()
        assert ("bad-entry",) not in structures
        assert len(candidates) == len(dict(advisor.cache._candidates))

    def test_foreign_salted_rows_are_skipped_not_fatal(self, scenario, tmp_path):
        # A single foreign-salted row inside an otherwise valid store must be
        # skipped without discarding the valid entries.
        import sqlite3

        from repro.engine.store import ENTRIES_FILENAME

        advisor = _advisor(scenario, tmp_path)
        advisor.recommend()
        connection = sqlite3.connect(tmp_path / ENTRIES_FILENAME)
        connection.execute(
            "INSERT INTO entries VALUES (?, ?, ?)",
            ('["foreign-salt", "x"]', "structure", b"junk"),
        )
        connection.commit()
        connection.close()
        structures, candidates, _reports = CacheStore(tmp_path).load()
        assert len(candidates) == len(dict(advisor.cache._candidates))
        assert all(len(key) > 0 for key in structures)


class TestCacheStoreHook:
    def test_attach_is_idempotent_per_directory(self, scenario, tmp_path):
        cache = EvaluationCache()
        store = CacheStore(tmp_path)
        assert cache.attach(store) == 0  # empty directory
        assert cache.attach(CacheStore(tmp_path)) == 0
        assert cache.store is store

    def test_attach_to_another_directory_flushes_the_old_store(self, scenario, tmp_path):
        # Unsaved entries accumulated for directory A must reach A before the
        # cache starts persisting to directory B.
        schema, workload, system, config = scenario
        dir_a, dir_b = tmp_path / "a", tmp_path / "b"
        advisor = Warlock(
            schema, workload, system, config, options=EngineOptions(cache_dir=str(dir_a))
        )
        advisor.recommend()  # attaches A and persists the sweep there
        # Make the cache dirty again, then switch stores.
        advisor.cache.merge_structures([(("extra",), "entry")])
        assert advisor.cache.dirty
        advisor.cache.attach(CacheStore(dir_b))
        structures_a, _, _ = CacheStore(dir_a).load()
        assert ("extra",) in structures_a

    def test_recomputed_entries_stop_counting_as_disk_hits(self):
        cache = EvaluationCache()
        cache._disk_keys.add(("k",))
        # An in-process (re)computation of the same key must clear the
        # disk-origin flag, so later hits are not misreported as disk hits.
        cache.merge_structures([(("k",), "computed")])
        assert cache._memoized_structure(("k",), lambda: "unused") == "computed"
        assert cache.stats.structure_hits == 1
        assert cache.stats.structure_disk_hits == 0

    def test_persist_skips_clean_caches(self, scenario, tmp_path):
        advisor = _advisor(scenario, tmp_path)
        advisor.recommend()  # engine persisted at the end of the sweep
        assert not advisor.cache.dirty
        assert advisor.persist_cache() is None

    def test_save_and_load_are_symmetric(self, scenario, tmp_path):
        schema, workload, system, config = scenario
        advisor = Warlock(schema, workload, system, config)
        advisor.recommend()
        store = CacheStore(tmp_path / "explicit")
        written = advisor.cache.save(store)
        # Evaluation entries plus the one candidate-exclusion report (reports
        # persist with the store but are not counted by len()).
        assert written == len(advisor.cache) + 1
        fresh = EvaluationCache()
        assert fresh.load(store) == written
        assert len(fresh) == len(advisor.cache)

    def test_saves_merge_instead_of_overwriting(self, tmp_path):
        # Two writers with disjoint entries: the second save must union with
        # the directory's content, not replace it last-one-wins.
        first = EvaluationCache()
        first.merge_structures([(("a",), "alpha")])
        assert first.save(CacheStore(tmp_path)) == 1
        second = EvaluationCache()
        second.merge_structures([(("b",), "beta")])
        assert second.save(CacheStore(tmp_path)) == 2
        structures, _, _ = CacheStore(tmp_path).load()
        assert structures == {("a",): "alpha", ("b",): "beta"}

    def test_shared_cache_dir_with_tuning_studies(self, scenario, tmp_path):
        from repro.tuning import disk_count_study

        schema, workload, system, config = scenario
        advisor = _advisor(scenario, tmp_path)
        spec = advisor.recommend().best.spec
        # A later process runs only the study: it warm-starts from the
        # recommend() run's spilled structures.
        study_cache = EvaluationCache()
        disk_count_study(
            schema,
            workload,
            system,
            spec,
            disk_counts=(8, 16),
            config=config,
            cache=study_cache,
            options=EngineOptions(cache_dir=str(tmp_path)),
        )
        assert study_cache.loaded_from_disk > 0
        assert study_cache.stats.structure_disk_hits > 0


def _store_size(cache_dir) -> int:
    return sum(
        (cache_dir / name).stat().st_size
        for name in (ENTRIES_FILENAME, BATCHES_FILENAME, CANDIDATES_FILENAME)
        if (cache_dir / name).exists()
    )


class TestStoreMaintenance:
    """Byte-budgeted LRU garbage collection and the append/compact write path."""

    def test_invalid_budget(self, tmp_path):
        with pytest.raises(ValueError):
            CacheStore(tmp_path, max_bytes=0)
        with pytest.raises(ValueError):
            CacheStore(tmp_path, max_bytes=-5)

    def test_lru_evicts_untouched_entries_first(self, tmp_path):
        # Four 10 KB entries on disk; a second process touches two of them,
        # adds a fifth, and saves under a budget that holds only three.
        first = EvaluationCache()
        first.merge_structures(
            [((f"k{i}",), bytes([i]) * 10_000) for i in range(1, 5)]
        )
        assert first.save(CacheStore(tmp_path)) == 4

        budget = 60_000
        second = EvaluationCache()
        budgeted = CacheStore(tmp_path, max_bytes=budget)
        assert second.attach(budgeted) == 4
        # Hits refresh k3/k4; k1/k2 stay merely loaded (not touched).
        assert second._memoized_structure(("k3",), lambda: None) == b"\x03" * 10_000
        assert second._memoized_structure(("k4",), lambda: None) == b"\x04" * 10_000
        second.merge_structures([(("k5",), b"\x05" * 10_000)])
        written = second.save(budgeted)
        assert written is not None and 0 < written < 5

        structures, _, _ = CacheStore(tmp_path).load()
        assert _store_size(tmp_path) <= budget
        # Eviction is strictly oldest-first: untouched k1/k2 age out before
        # the entries this run touched, so the survivors form a suffix of the
        # LRU order and the newest entry always makes it.
        order = [("k1",), ("k2",), ("k3",), ("k4",), ("k5",)]
        survivors = [key for key in order if key in structures]
        assert survivors == order[len(order) - len(survivors) :]
        assert ("k1",) not in structures
        assert ("k5",) in structures

        # Survivors still serve warm (disk) hits for a third process.
        third = EvaluationCache()
        assert third.attach(CacheStore(tmp_path)) == len(survivors)
        assert third._memoized_structure(("k5",), lambda: None) == b"\x05" * 10_000
        assert third.stats.structure_disk_hits == 1

    def test_budget_smaller_than_any_store_clears_the_directory(self, tmp_path):
        cache = EvaluationCache()
        cache.merge_structures([(("k",), b"x" * 50_000)])
        store = CacheStore(tmp_path, max_bytes=1_000)
        assert cache.save(store) == 0
        assert _store_size(tmp_path) == 0
        assert CacheStore(tmp_path).load() == ({}, {}, {})

    def test_unbudgeted_saves_never_evict(self, tmp_path):
        cache = EvaluationCache()
        cache.merge_structures(
            [((f"k{i}",), bytes([i]) * 10_000) for i in range(1, 9)]
        )
        assert cache.save(CacheStore(tmp_path)) == 8
        structures, _, _ = CacheStore(tmp_path).load()
        assert len(structures) == 8

    def test_budgeted_sweeps_stay_under_budget_and_warm_start(
        self, scenario, tmp_path
    ):
        schema, workload, system, config = scenario
        baseline_dir = tmp_path / "unbounded"
        _advisor(scenario, baseline_dir).recommend()
        unbounded = _store_size(baseline_dir)

        # Three quarters of the unbounded footprint: tight enough to force
        # eviction, loose enough that survivors keep serving warm starts.
        budget_mb = (unbounded * 0.75) / (1024 * 1024)
        effective_budget = int(budget_mb * 1024 * 1024)
        bounded_dir = tmp_path / "bounded"
        options = EngineOptions(
            cache_dir=str(bounded_dir), cache_max_mb=budget_mb
        )
        cold = Warlock(schema, workload, system, config, options=options)
        fingerprint = recommendation_fingerprint(cold.recommend())
        assert _store_size(bounded_dir) <= effective_budget

        warm = Warlock(schema, workload, system, config, options=options)
        assert warm.cache.loaded_from_disk > 0
        assert recommendation_fingerprint(warm.recommend()) == fingerprint
        assert _store_size(bounded_dir) <= effective_budget

    def test_append_then_compaction_preserves_fingerprint(self, scenario, tmp_path):
        # First sweep writes the store; a reweighted-workload sweep appends
        # into the same directory; the original sweep must still warm-start
        # bit-identically afterwards.
        schema, workload, system, config = scenario
        cold = _advisor(scenario, tmp_path)
        fingerprint = recommendation_fingerprint(cold.recommend())
        other_system = SystemParameters(num_disks=8)
        Warlock(
            schema,
            workload,
            other_system,
            config,
            options=EngineOptions(cache_dir=str(tmp_path)),
        ).recommend()
        warm = _advisor(scenario, tmp_path)
        assert recommendation_fingerprint(warm.recommend()) == fingerprint
        assert warm.cache.stats.disk_hit_rate >= 0.9


class TestRobustnessCounters:
    """Every degraded load is counted: salt mismatches, corrupt entries,
    fallback (whole-file) loads — surfaced via ``CacheStats`` and, through
    the session registry, ``GET /healthz``."""

    def test_clean_loads_count_nothing(self, scenario, tmp_path):
        _advisor(scenario, tmp_path).recommend()
        warm = _advisor(scenario, tmp_path)
        stats = warm.cache.stats
        assert stats.store_salt_mismatches == 0
        assert stats.store_corrupt_entries == 0
        assert stats.store_fallback_loads == 0
        assert stats.store_load_anomalies == 0

    def test_salt_mismatch_is_counted_per_file(self, scenario, tmp_path, monkeypatch):
        _advisor(scenario, tmp_path).recommend()
        monkeypatch.setattr(repro, "__version__", "999.0.0")
        mismatched = _advisor(scenario, tmp_path)
        # All three store files (entries, batches, candidates) carry the salt.
        assert mismatched.cache.stats.store_salt_mismatches == 3
        assert mismatched.cache.stats.store_fallback_loads == 0

    @pytest.mark.parametrize(
        "filename", [ENTRIES_FILENAME, BATCHES_FILENAME, CANDIDATES_FILENAME]
    )
    def test_corrupting_each_file_kind_counts_a_fallback(
        self, scenario, tmp_path, filename
    ):
        _advisor(scenario, tmp_path).recommend()
        (tmp_path / filename).write_bytes(b"\x00\x01 this is rubble")
        degraded = _advisor(scenario, tmp_path)
        stats = degraded.cache.stats
        assert stats.store_fallback_loads == 1
        assert stats.store_salt_mismatches == 0
        # The other two files still load; the sweep still answers warm.
        assert degraded.cache.loaded_from_disk > 0

    def test_undecodable_entry_is_counted_as_corrupt(self, scenario, tmp_path):
        import sqlite3

        from repro.engine.store import _encode_key

        _advisor(scenario, tmp_path).recommend()
        connection = sqlite3.connect(tmp_path / ENTRIES_FILENAME)
        connection.execute(
            "INSERT INTO entries VALUES (?, ?, ?)",
            (_encode_key(store_salt(), ("bad-entry",)), "structure", b"\x80trunc"),
        )
        connection.commit()
        connection.close()
        degraded = _advisor(scenario, tmp_path)
        assert degraded.cache.stats.store_corrupt_entries >= 1
        assert degraded.cache.stats.store_fallback_loads == 0
        assert degraded.cache.loaded_from_disk > 0

    def test_counters_survive_describe(self, scenario, tmp_path):
        _advisor(scenario, tmp_path).recommend()
        (tmp_path / CANDIDATES_FILENAME).write_bytes(b"rubble")
        degraded = _advisor(scenario, tmp_path)
        assert "store anomalies" in degraded.cache.stats.describe()
        assert "1 fallback" in degraded.cache.stats.describe()

    def test_store_load_stats_copy_is_independent(self, tmp_path):
        store = CacheStore(tmp_path)
        snapshot = store.load_stats.copy()
        store.load_stats.corrupt_entries += 5
        assert snapshot.corrupt_entries == 0
