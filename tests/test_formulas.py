"""Unit tests for repro.costmodel.formulas: Yao/Cardenas, containment estimates.

The array branches of ``cardenas_pages`` and ``expected_distinct_ancestors``
carry a bit-parity contract with their scalar forms (the vectorized class-axis
sweep depends on it), so the property tests here compare vectorized results
against scalar loops with ``==`` — exact equality, not approximate.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.costmodel import (
    cardenas_pages,
    expected_distinct_ancestors,
    pages_for_rows,
    yao_pages,
)
from repro.errors import CostModelError

ARRAY_SETTINGS = settings(max_examples=60, deadline=None)

#: Value pools covering zeros, fractional expectations and warehouse scales.
#: Page counts are 0 or >= 1 (the model's ``ceil``-derived domain, where the
#: Cardenas base ``1 - 1/m`` stays in [0, 1)).
_ROWS = st.floats(min_value=0.0, max_value=5e8, allow_nan=False)
_PAGES = st.one_of(
    st.just(0.0), st.floats(min_value=1.0, max_value=5e6, allow_nan=False)
)
_SELECTED = st.floats(min_value=0.0, max_value=1e9, allow_nan=False)


class TestPagesForRows:
    def test_exact_fit(self):
        assert pages_for_rows(100, 10) == 10

    def test_rounding_up(self):
        assert pages_for_rows(101, 10) == 11

    def test_zero_rows(self):
        assert pages_for_rows(0, 10) == 0

    def test_fractional_rows(self):
        assert pages_for_rows(0.5, 10) == 1

    def test_invalid(self):
        with pytest.raises(CostModelError):
            pages_for_rows(-1, 10)
        with pytest.raises(CostModelError):
            pages_for_rows(10, 0)


class TestCardenas:
    def test_zero_selection(self):
        assert cardenas_pages(1000, 100, 0) == 0.0

    def test_full_selection_approaches_all_pages(self):
        assert cardenas_pages(1000, 100, 1000) == pytest.approx(100, rel=0.01)

    def test_single_row_single_page(self):
        assert cardenas_pages(1000, 100, 1) == pytest.approx(1.0, rel=0.01)

    def test_monotone_in_selection(self):
        previous = 0.0
        for k in (1, 10, 100, 500, 1000):
            value = cardenas_pages(1000, 100, k)
            assert value >= previous
            previous = value

    def test_bounded_by_total_pages(self):
        assert cardenas_pages(1000, 100, 10_000) <= 100

    def test_zero_pages(self):
        assert cardenas_pages(0, 0, 10) == 0.0

    def test_invalid(self):
        with pytest.raises(CostModelError):
            cardenas_pages(-1, 10, 1)


class TestYao:
    def test_zero_selection(self):
        assert yao_pages(1000, 100, 0) == 0.0

    def test_all_rows_selected(self):
        assert yao_pages(1000, 100, 1000) == 100.0

    def test_more_than_all_rows(self):
        assert yao_pages(1000, 100, 5000) == 100.0

    def test_single_row(self):
        assert yao_pages(1000, 100, 1) == pytest.approx(1.0, rel=0.01)

    def test_close_to_cardenas(self):
        exact = yao_pages(10_000, 1000, 500)
        approx = cardenas_pages(10_000, 1000, 500)
        assert exact == pytest.approx(approx, rel=0.05)

    def test_monotone_in_selection(self):
        values = [yao_pages(2000, 200, k) for k in (1, 5, 50, 500, 2000)]
        assert values == sorted(values)

    def test_large_inputs_fall_back_gracefully(self):
        # Must not raise or overflow for warehouse-scale numbers.
        value = yao_pages(50_000_000, 500_000, 1_000_000)
        assert 0 < value <= 500_000

    def test_bounded_by_pages(self):
        assert yao_pages(100, 10, 60) <= 10

    def test_invalid(self):
        with pytest.raises(CostModelError):
            yao_pages(-1, 10, 1)


class TestCardenasVectorized:
    """Array inputs: bit-identical to a scalar loop, same guards, monotone."""

    @ARRAY_SETTINGS
    @given(st.lists(st.tuples(_ROWS, _PAGES, _SELECTED), min_size=1, max_size=40))
    def test_matches_scalar_loop_bitwise(self, triples):
        rows = np.array([t[0] for t in triples])
        pages = np.array([t[1] for t in triples])
        selected = np.array([t[2] for t in triples])
        vectorized = cardenas_pages(rows, pages, selected)
        assert isinstance(vectorized, np.ndarray)
        scalar = [cardenas_pages(*t) for t in triples]
        assert vectorized.tolist() == scalar

    def test_broadcasts_scalar_arguments(self):
        selected = np.array([0.0, 1.0, 10.0, 1000.0])
        vectorized = cardenas_pages(1000.0, 100.0, selected)
        assert vectorized.tolist() == [
            cardenas_pages(1000.0, 100.0, k) for k in selected.tolist()
        ]

    @ARRAY_SETTINGS
    @given(st.tuples(_ROWS, _PAGES))
    def test_monotone_in_selection_on_arrays(self, pair):
        rows, pages = pair
        selected = np.array([0.0, 1.0, 7.5, 100.0, 10_000.0, 1e8])
        values = cardenas_pages(rows, pages, selected)
        assert values.tolist() == sorted(values.tolist())
        assert (values <= pages).all()
        assert (values >= 0.0).all()

    def test_zero_guards_match_scalar(self):
        rows = np.array([0.0, 100.0, 100.0, 0.0])
        pages = np.array([10.0, 0.0, 10.0, 0.0])
        selected = np.array([5.0, 5.0, 0.0, 0.0])
        assert cardenas_pages(rows, pages, selected).tolist() == [0.0, 0.0, 0.0, 0.0]

    def test_negative_arrays_rejected(self):
        with pytest.raises(CostModelError):
            cardenas_pages(np.array([-1.0]), np.array([10.0]), np.array([1.0]))
        with pytest.raises(CostModelError):
            cardenas_pages(np.array([10.0]), np.array([-1.0]), np.array([1.0]))
        with pytest.raises(CostModelError):
            cardenas_pages(np.array([10.0]), np.array([10.0]), np.array([-1.0]))


class TestExpectedDistinctAncestorsVectorized:
    """Array inputs: bit-identical to a scalar loop, same guards, monotone."""

    @ARRAY_SETTINGS
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
                st.integers(min_value=1, max_value=1_000_000),
                st.integers(min_value=1, max_value=1_000_000),
            ),
            min_size=1,
            max_size=40,
        )
    )
    def test_matches_scalar_loop_bitwise(self, triples):
        # Order each (fine, coarse) pair to respect containment.
        triples = [
            (selected, max(a, b), min(a, b)) for selected, a, b in triples
        ]
        selected = np.array([t[0] for t in triples])
        fine = np.array([t[1] for t in triples], dtype=np.float64)
        coarse = np.array([t[2] for t in triples], dtype=np.float64)
        vectorized = expected_distinct_ancestors(selected, fine, coarse)
        assert isinstance(vectorized, np.ndarray)
        scalar = [expected_distinct_ancestors(*t) for t in triples]
        assert vectorized.tolist() == scalar

    @ARRAY_SETTINGS
    @given(
        st.integers(min_value=1, max_value=100_000),
        st.integers(min_value=1, max_value=100),
    )
    def test_monotone_and_bounded_on_arrays(self, fine, ratio):
        coarse = max(1, fine // ratio)
        selected = np.array([0.0, 1.0, 2.0, 10.0, 500.0, float(fine), 2.0 * fine])
        values = expected_distinct_ancestors(selected, fine, coarse)
        assert values.tolist() == sorted(values.tolist())
        assert (values <= coarse).all()
        assert values[0] == 0.0
        if fine >= 1:
            assert values[-1] == pytest.approx(
                expected_distinct_ancestors(float(fine), fine, coarse)
            )

    def test_containment_violation_rejected_on_arrays(self):
        with pytest.raises(CostModelError):
            expected_distinct_ancestors(np.array([1.0]), np.array([10.0]), np.array([20.0]))
        with pytest.raises(CostModelError):
            expected_distinct_ancestors(np.array([-1.0]), np.array([10.0]), np.array([5.0]))
        with pytest.raises(CostModelError):
            expected_distinct_ancestors(np.array([1.0]), np.array([0.0]), np.array([0.0]))


class TestExpectedDistinctAncestors:
    def test_single_value_single_ancestor(self):
        assert expected_distinct_ancestors(1, 100, 10) == pytest.approx(1.0)

    def test_zero_values(self):
        assert expected_distinct_ancestors(0, 100, 10) == 0.0

    def test_all_values_all_ancestors(self):
        assert expected_distinct_ancestors(100, 100, 10) == pytest.approx(10, rel=0.01)

    def test_monotone(self):
        values = [expected_distinct_ancestors(k, 1000, 50) for k in (1, 5, 20, 100, 1000)]
        assert values == sorted(values)

    def test_bounded_by_coarse_cardinality(self):
        assert expected_distinct_ancestors(10_000, 1000, 20) <= 20

    def test_equal_cardinalities_identity_like(self):
        assert expected_distinct_ancestors(1, 50, 50) == pytest.approx(1.0)

    def test_invalid(self):
        with pytest.raises(CostModelError):
            expected_distinct_ancestors(1, 10, 20)
        with pytest.raises(CostModelError):
            expected_distinct_ancestors(-1, 20, 10)
        with pytest.raises(CostModelError):
            expected_distinct_ancestors(1, 0, 0)
