"""Unit tests for repro.costmodel.formulas: Yao/Cardenas, containment estimates."""

from __future__ import annotations

import pytest

from repro.costmodel import (
    cardenas_pages,
    expected_distinct_ancestors,
    pages_for_rows,
    yao_pages,
)
from repro.errors import CostModelError


class TestPagesForRows:
    def test_exact_fit(self):
        assert pages_for_rows(100, 10) == 10

    def test_rounding_up(self):
        assert pages_for_rows(101, 10) == 11

    def test_zero_rows(self):
        assert pages_for_rows(0, 10) == 0

    def test_fractional_rows(self):
        assert pages_for_rows(0.5, 10) == 1

    def test_invalid(self):
        with pytest.raises(CostModelError):
            pages_for_rows(-1, 10)
        with pytest.raises(CostModelError):
            pages_for_rows(10, 0)


class TestCardenas:
    def test_zero_selection(self):
        assert cardenas_pages(1000, 100, 0) == 0.0

    def test_full_selection_approaches_all_pages(self):
        assert cardenas_pages(1000, 100, 1000) == pytest.approx(100, rel=0.01)

    def test_single_row_single_page(self):
        assert cardenas_pages(1000, 100, 1) == pytest.approx(1.0, rel=0.01)

    def test_monotone_in_selection(self):
        previous = 0.0
        for k in (1, 10, 100, 500, 1000):
            value = cardenas_pages(1000, 100, k)
            assert value >= previous
            previous = value

    def test_bounded_by_total_pages(self):
        assert cardenas_pages(1000, 100, 10_000) <= 100

    def test_zero_pages(self):
        assert cardenas_pages(0, 0, 10) == 0.0

    def test_invalid(self):
        with pytest.raises(CostModelError):
            cardenas_pages(-1, 10, 1)


class TestYao:
    def test_zero_selection(self):
        assert yao_pages(1000, 100, 0) == 0.0

    def test_all_rows_selected(self):
        assert yao_pages(1000, 100, 1000) == 100.0

    def test_more_than_all_rows(self):
        assert yao_pages(1000, 100, 5000) == 100.0

    def test_single_row(self):
        assert yao_pages(1000, 100, 1) == pytest.approx(1.0, rel=0.01)

    def test_close_to_cardenas(self):
        exact = yao_pages(10_000, 1000, 500)
        approx = cardenas_pages(10_000, 1000, 500)
        assert exact == pytest.approx(approx, rel=0.05)

    def test_monotone_in_selection(self):
        values = [yao_pages(2000, 200, k) for k in (1, 5, 50, 500, 2000)]
        assert values == sorted(values)

    def test_large_inputs_fall_back_gracefully(self):
        # Must not raise or overflow for warehouse-scale numbers.
        value = yao_pages(50_000_000, 500_000, 1_000_000)
        assert 0 < value <= 500_000

    def test_bounded_by_pages(self):
        assert yao_pages(100, 10, 60) <= 10

    def test_invalid(self):
        with pytest.raises(CostModelError):
            yao_pages(-1, 10, 1)


class TestExpectedDistinctAncestors:
    def test_single_value_single_ancestor(self):
        assert expected_distinct_ancestors(1, 100, 10) == pytest.approx(1.0)

    def test_zero_values(self):
        assert expected_distinct_ancestors(0, 100, 10) == 0.0

    def test_all_values_all_ancestors(self):
        assert expected_distinct_ancestors(100, 100, 10) == pytest.approx(10, rel=0.01)

    def test_monotone(self):
        values = [expected_distinct_ancestors(k, 1000, 50) for k in (1, 5, 20, 100, 1000)]
        assert values == sorted(values)

    def test_bounded_by_coarse_cardinality(self):
        assert expected_distinct_ancestors(10_000, 1000, 20) <= 20

    def test_equal_cardinalities_identity_like(self):
        assert expected_distinct_ancestors(1, 50, 50) == pytest.approx(1.0)

    def test_invalid(self):
        with pytest.raises(CostModelError):
            expected_distinct_ancestors(1, 10, 20)
        with pytest.raises(CostModelError):
            expected_distinct_ancestors(-1, 20, 10)
        with pytest.raises(CostModelError):
            expected_distinct_ancestors(1, 0, 0)
