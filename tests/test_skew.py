"""Unit tests for repro.skew: Zipf distributions, skew specs and balance metrics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import CostModelError, SchemaError
from repro.skew import (
    SkewSpec,
    ZipfDistribution,
    coefficient_of_variation,
    gini_coefficient,
    skew_classification,
    top_fraction_share,
    uniform_probabilities,
    zipf_probabilities,
)


class TestUniformProbabilities:
    def test_sums_to_one(self):
        probs = uniform_probabilities(10)
        assert probs.shape == (10,)
        assert probs.sum() == pytest.approx(1.0)

    def test_all_equal(self):
        probs = uniform_probabilities(7)
        assert np.allclose(probs, 1.0 / 7)

    def test_single_value(self):
        assert uniform_probabilities(1)[0] == pytest.approx(1.0)

    def test_rejects_non_positive(self):
        with pytest.raises(SchemaError):
            uniform_probabilities(0)
        with pytest.raises(SchemaError):
            uniform_probabilities(-3)


class TestZipfProbabilities:
    def test_theta_zero_is_uniform(self):
        assert np.allclose(zipf_probabilities(20, 0.0), uniform_probabilities(20))

    def test_sums_to_one(self):
        for theta in (0.25, 0.5, 1.0, 2.0):
            assert zipf_probabilities(100, theta).sum() == pytest.approx(1.0)

    def test_monotonically_decreasing(self):
        probs = zipf_probabilities(50, 0.8)
        assert np.all(np.diff(probs) <= 1e-15)

    def test_higher_theta_more_concentrated(self):
        mild = zipf_probabilities(100, 0.3)
        strong = zipf_probabilities(100, 1.5)
        assert strong[0] > mild[0]
        assert strong[-1] < mild[-1]

    def test_classic_zipf_ratio(self):
        probs = zipf_probabilities(10, 1.0)
        # Second value carries half the first's weight under theta = 1.
        assert probs[1] / probs[0] == pytest.approx(0.5)

    def test_rejects_negative_theta(self):
        with pytest.raises(SchemaError):
            zipf_probabilities(10, -0.1)

    def test_rejects_non_positive_size(self):
        with pytest.raises(SchemaError):
            zipf_probabilities(0, 1.0)


class TestZipfDistribution:
    def test_counts_preserve_total(self):
        dist = ZipfDistribution(n=37, theta=0.9)
        counts = dist.counts(10_001)
        assert counts.sum() == 10_001
        assert np.all(counts >= 0)

    def test_counts_zero_total(self):
        counts = ZipfDistribution(n=5, theta=1.0).counts(0)
        assert counts.sum() == 0

    def test_counts_rejects_negative_total(self):
        with pytest.raises(SchemaError):
            ZipfDistribution(n=5, theta=1.0).counts(-1)

    def test_counts_uniform_even_split(self):
        counts = ZipfDistribution(n=4, theta=0.0).counts(100)
        assert np.all(counts == 25)

    def test_is_uniform_flag(self):
        assert ZipfDistribution(n=3, theta=0.0).is_uniform
        assert not ZipfDistribution(n=3, theta=0.2).is_uniform

    def test_max_probability_matches_first(self):
        dist = ZipfDistribution(n=8, theta=1.0)
        assert dist.max_probability() == pytest.approx(dist.probabilities()[0])

    def test_invalid_parameters(self):
        with pytest.raises(SchemaError):
            ZipfDistribution(n=0, theta=1.0)
        with pytest.raises(SchemaError):
            ZipfDistribution(n=5, theta=-1.0)


class TestSkewSpec:
    def test_default_is_no_skew(self):
        assert not SkewSpec().is_skewed
        assert not SkewSpec.none().is_skewed

    def test_positive_theta_is_skewed(self):
        assert SkewSpec(theta=0.5).is_skewed

    def test_distribution_materialization(self):
        dist = SkewSpec(theta=0.7).distribution(12)
        assert dist.n == 12
        assert dist.theta == pytest.approx(0.7)

    def test_rejects_negative_theta(self):
        with pytest.raises(SchemaError):
            SkewSpec(theta=-0.2)


class TestBalanceMetrics:
    def test_cv_of_balanced_input_is_zero(self):
        assert coefficient_of_variation([5, 5, 5, 5]) == pytest.approx(0.0)

    def test_cv_increases_with_imbalance(self):
        assert coefficient_of_variation([1, 9]) > coefficient_of_variation([4, 6])

    def test_cv_all_zero_is_zero(self):
        assert coefficient_of_variation([0, 0, 0]) == 0.0

    def test_cv_rejects_empty(self):
        with pytest.raises(CostModelError):
            coefficient_of_variation([])

    def test_cv_rejects_negative(self):
        with pytest.raises(CostModelError):
            coefficient_of_variation([1, -1])

    def test_gini_bounds(self):
        assert gini_coefficient([3, 3, 3]) == pytest.approx(0.0, abs=1e-12)
        concentrated = gini_coefficient([0, 0, 0, 100])
        assert 0.7 < concentrated <= 1.0

    def test_gini_all_zero(self):
        assert gini_coefficient([0, 0]) == 0.0

    def test_top_fraction_share_uniform(self):
        assert top_fraction_share([1] * 10, 0.2) == pytest.approx(0.2)

    def test_top_fraction_share_concentrated(self):
        values = [100] + [1] * 9
        assert top_fraction_share(values, 0.1) > 0.9

    def test_top_fraction_share_invalid_fraction(self):
        with pytest.raises(CostModelError):
            top_fraction_share([1, 2], 0.0)
        with pytest.raises(CostModelError):
            top_fraction_share([1, 2], 1.5)

    def test_skew_classification_bands(self):
        assert skew_classification(0.01) == "none"
        assert skew_classification(0.2) == "notable"
        assert skew_classification(5.0) == "severe"

    def test_skew_classification_invalid(self):
        with pytest.raises(CostModelError):
            skew_classification(-0.1)
        with pytest.raises(CostModelError):
            skew_classification(0.5, notable_threshold=0)
