"""Unit tests for repro.storage: disk parameters, system parameters, architectures."""

from __future__ import annotations

import pytest

from repro import Architecture, DiskParameters, SystemParameters
from repro.errors import StorageError


class TestDiskParameters:
    def test_positioning_time(self):
        disk = DiskParameters(avg_seek_ms=6.0, avg_rotational_ms=3.0)
        assert disk.positioning_time_ms == pytest.approx(9.0)

    def test_transfer_time_scales_linearly(self):
        disk = DiskParameters(transfer_mb_per_s=25.0)
        one_mb = disk.transfer_time_ms(1024 * 1024)
        assert one_mb == pytest.approx(40.0)
        assert disk.transfer_time_ms(2 * 1024 * 1024) == pytest.approx(2 * one_mb)

    def test_page_transfer_time(self):
        disk = DiskParameters(transfer_mb_per_s=25.0)
        assert disk.page_transfer_time_ms(8192) == pytest.approx(
            disk.transfer_time_ms(8192)
        )

    def test_request_time_includes_positioning(self):
        disk = DiskParameters(avg_seek_ms=5.0, avg_rotational_ms=3.0, transfer_mb_per_s=25.0)
        time_1 = disk.request_time_ms(1, 8192)
        time_16 = disk.request_time_ms(16, 8192)
        assert time_1 > disk.positioning_time_ms
        # 16 pages pay the positioning only once.
        assert time_16 < 16 * time_1

    def test_request_time_zero_pages(self):
        assert DiskParameters().request_time_ms(0, 8192) == 0.0

    def test_capacity_conversions(self):
        disk = DiskParameters(capacity_gb=1.0)
        assert disk.capacity_bytes == 1024 ** 3
        assert disk.capacity_pages(8192) == 1024 ** 3 // 8192

    def test_presets(self):
        assert DiskParameters.modern().transfer_mb_per_s > DiskParameters().transfer_mb_per_s
        assert DiskParameters.legacy().capacity_gb < DiskParameters().capacity_gb

    def test_invalid_parameters(self):
        with pytest.raises(StorageError):
            DiskParameters(capacity_gb=0)
        with pytest.raises(StorageError):
            DiskParameters(avg_seek_ms=-1)
        with pytest.raises(StorageError):
            DiskParameters(avg_rotational_ms=-1)
        with pytest.raises(StorageError):
            DiskParameters(transfer_mb_per_s=0)

    def test_invalid_call_arguments(self):
        disk = DiskParameters()
        with pytest.raises(StorageError):
            disk.transfer_time_ms(-1)
        with pytest.raises(StorageError):
            disk.page_transfer_time_ms(0)
        with pytest.raises(StorageError):
            disk.request_time_ms(-1, 8192)
        with pytest.raises(StorageError):
            disk.capacity_pages(0)


class TestArchitecture:
    def test_parse_aliases(self):
        assert Architecture.parse("SE") is Architecture.SHARED_EVERYTHING
        assert Architecture.parse("shared everything") is Architecture.SHARED_EVERYTHING
        assert Architecture.parse("SD") is Architecture.SHARED_DISK
        assert Architecture.parse("shared_disk") is Architecture.SHARED_DISK
        assert Architecture.parse(Architecture.SHARED_DISK) is Architecture.SHARED_DISK

    def test_parse_unknown(self):
        with pytest.raises(StorageError):
            Architecture.parse("shared nothing")

    def test_labels(self):
        assert "Shared" in Architecture.SHARED_DISK.label
        assert "Shared" in Architecture.SHARED_EVERYTHING.label


class TestSystemParameters:
    def test_defaults(self):
        system = SystemParameters()
        assert system.num_disks == 64
        assert system.fact_prefetch_is_auto
        assert system.bitmap_prefetch_is_auto
        assert system.architecture is Architecture.SHARED_DISK

    def test_architecture_string_coerced(self):
        system = SystemParameters(architecture="SE")
        assert system.architecture is Architecture.SHARED_EVERYTHING

    def test_effective_nodes_default(self):
        assert SystemParameters(num_disks=64).effective_num_nodes == 8
        assert SystemParameters(num_disks=4).effective_num_nodes == 1
        assert SystemParameters(num_disks=64, num_nodes=16).effective_num_nodes == 16

    def test_coordination_overhead_by_architecture(self):
        sd = SystemParameters(architecture="SD")
        se = SystemParameters(architecture="SE")
        assert sd.effective_coordination_overhead_ms > se.effective_coordination_overhead_ms
        explicit = SystemParameters(coordination_overhead_ms=0.0)
        assert explicit.effective_coordination_overhead_ms == 0.0

    def test_fixed_prefetch(self):
        system = SystemParameters(prefetch_pages_fact=32, prefetch_pages_bitmap=4)
        assert not system.fact_prefetch_is_auto
        assert not system.bitmap_prefetch_is_auto

    def test_invalid_prefetch(self):
        with pytest.raises(StorageError):
            SystemParameters(prefetch_pages_fact=0)
        with pytest.raises(StorageError):
            SystemParameters(prefetch_pages_bitmap="sometimes")
        with pytest.raises(StorageError):
            SystemParameters(prefetch_pages_fact=True)

    def test_capacity_totals(self):
        system = SystemParameters(num_disks=4, disk=DiskParameters(capacity_gb=1.0))
        assert system.total_capacity_bytes == 4 * 1024 ** 3
        assert system.total_capacity_pages == 4 * (1024 ** 3 // 8192)

    def test_pages_for_bytes(self):
        system = SystemParameters(page_size_bytes=8192)
        assert system.pages_for_bytes(0) == 0
        assert system.pages_for_bytes(1) == 1
        assert system.pages_for_bytes(8192) == 1
        assert system.pages_for_bytes(8193) == 2
        with pytest.raises(StorageError):
            system.pages_for_bytes(-1)

    def test_with_disks_preserves_other_fields(self):
        system = SystemParameters(num_disks=8, prefetch_pages_fact=16)
        scaled = system.with_disks(128)
        assert scaled.num_disks == 128
        assert scaled.prefetch_pages_fact == 16
        assert scaled.page_size_bytes == system.page_size_bytes

    def test_with_architecture(self):
        system = SystemParameters(architecture="SD")
        se = system.with_architecture("SE")
        assert se.architecture is Architecture.SHARED_EVERYTHING
        assert se.num_disks == system.num_disks

    def test_with_prefetch(self):
        system = SystemParameters()
        fixed = system.with_prefetch(fact=64, bitmap=2)
        assert fixed.prefetch_pages_fact == 64
        assert fixed.prefetch_pages_bitmap == 2
        partially = system.with_prefetch(fact=8)
        assert partially.prefetch_pages_fact == 8
        assert partially.bitmap_prefetch_is_auto

    def test_invalid_construction(self):
        with pytest.raises(StorageError):
            SystemParameters(num_disks=0)
        with pytest.raises(StorageError):
            SystemParameters(page_size_bytes=0)
        with pytest.raises(StorageError):
            SystemParameters(num_nodes=0)
        with pytest.raises(StorageError):
            SystemParameters(coordination_overhead_ms=-1.0)
        with pytest.raises(StorageError):
            SystemParameters(disk="not-a-disk")  # type: ignore[arg-type]
        with pytest.raises(StorageError):
            SystemParameters(architecture="mesh")

    def test_describe_mentions_key_facts(self):
        text = SystemParameters(num_disks=16).describe()
        assert "16 disks" in text
        assert "page size" in text
