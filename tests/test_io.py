"""Unit tests for repro.io: configuration round-trips and result exporters."""

from __future__ import annotations

import json

import pytest

from repro import (
    AdvisorConfig,
    SystemParameters,
    Warlock,
    apb1_query_mix,
    apb1_schema,
    candidate_to_dict,
    load_config_file,
    parse_config,
    recommendation_to_dict,
    schema_from_dict,
    schema_to_dict,
    system_from_dict,
    system_to_dict,
    workload_from_list,
    workload_to_list,
)
from repro.errors import SchemaError, StorageError, WorkloadError
from repro.io import example_config


class TestSchemaRoundTrip:
    def test_roundtrip_preserves_structure(self, toy_schema):
        restored = schema_from_dict(schema_to_dict(toy_schema))
        assert restored.name == toy_schema.name
        assert restored.dimension_names == toy_schema.dimension_names
        for dimension in toy_schema.dimensions:
            other = restored.dimension(dimension.name)
            assert other.level_names == dimension.level_names
            assert other.cardinality == dimension.cardinality
            assert other.skew.theta == dimension.skew.theta
        assert restored.fact_table().row_count == toy_schema.fact_table().row_count

    def test_roundtrip_is_json_serializable(self, skewed_schema):
        payload = json.dumps(schema_to_dict(skewed_schema))
        restored = schema_from_dict(json.loads(payload))
        assert restored.dimension("product").skew.theta == pytest.approx(1.0)

    def test_apb1_roundtrip(self):
        schema = apb1_schema(scale=0.1, skew={"product": 0.5})
        restored = schema_from_dict(schema_to_dict(schema))
        assert restored.dimension("product").level("code").cardinality == 9000
        assert restored.fact_table().row_count == schema.fact_table().row_count

    def test_missing_block_rejected(self):
        with pytest.raises(SchemaError):
            schema_from_dict({"name": "x", "dimensions": []})


class TestSystemRoundTrip:
    def test_roundtrip(self):
        system = SystemParameters(
            num_disks=48,
            page_size_bytes=4096,
            architecture="SE",
            prefetch_pages_fact=32,
            num_nodes=6,
            coordination_overhead_ms=1.5,
        )
        restored = system_from_dict(system_to_dict(system))
        assert restored.num_disks == 48
        assert restored.page_size_bytes == 4096
        assert restored.architecture is system.architecture
        assert restored.prefetch_pages_fact == 32
        assert restored.bitmap_prefetch_is_auto
        assert restored.num_nodes == 6
        assert restored.coordination_overhead_ms == pytest.approx(1.5)

    def test_defaults_applied(self):
        system = system_from_dict({})
        assert system.num_disks == 64
        assert system.fact_prefetch_is_auto

    def test_invalid_config_rejected(self):
        with pytest.raises(StorageError):
            system_from_dict("not a dict")  # type: ignore[arg-type]


class TestWorkloadRoundTrip:
    def test_roundtrip(self, toy_workload):
        restored = workload_from_list(workload_to_list(toy_workload))
        assert len(restored) == len(toy_workload)
        for query_class in toy_workload:
            other = restored.query_class(query_class.name)
            assert other.weight == query_class.weight
            assert other.accessed_dimensions == query_class.accessed_dimensions

    def test_value_count_defaults_to_one(self):
        mix = workload_from_list(
            [{"name": "q", "restrictions": [["time", "month"]], "weight": 2}]
        )
        assert mix.query_class("q").restrictions[0].value_count == 1

    def test_invalid_restriction_shape(self):
        with pytest.raises(WorkloadError):
            workload_from_list([{"name": "q", "restrictions": [["time"]]}])

    def test_empty_rejected(self):
        with pytest.raises(WorkloadError):
            workload_from_list([])


class TestParseConfig:
    def test_example_config_parses_and_validates(self):
        schema, workload, system = parse_config(example_config())
        assert schema.name == "my_warehouse"
        assert len(workload) == 2
        assert system.num_disks == 32

    def test_missing_blocks_rejected(self):
        with pytest.raises(SchemaError):
            parse_config({"workload": []})
        with pytest.raises(WorkloadError):
            parse_config({"schema": example_config()["schema"]})

    def test_inconsistent_workload_rejected(self):
        raw = example_config()
        raw["workload"][0]["restrictions"] = [["ghost", "level", 1]]
        with pytest.raises(WorkloadError):
            parse_config(raw)

    def test_load_config_file(self, tmp_path):
        path = tmp_path / "config.json"
        path.write_text(json.dumps(example_config()))
        schema, workload, system = load_config_file(str(path))
        assert schema.has_dimension("product")
        assert workload.query_class("yearly-report").weight == 1


class TestExporters:
    @pytest.fixture(scope="class")
    def recommendation(self):
        schema = apb1_schema(scale=0.02)
        workload = apb1_query_mix()
        system = SystemParameters(num_disks=16)
        advisor = Warlock(schema, workload, system, AdvisorConfig(max_fragments=50_000))
        return advisor.recommend()

    def test_candidate_export_is_json_serializable(self, recommendation):
        payload = candidate_to_dict(recommendation.best)
        text = json.dumps(payload)
        assert recommendation.best.label in text
        assert payload["metrics"]["io_cost_ms"] > 0
        assert payload["database_statistics"]["fragment_count"] == recommendation.best.fragment_count
        assert payload["prefetch"]["fact_pages"] >= 1
        assert "disk_of_fragment" not in payload["allocation"]

    def test_candidate_export_with_allocation(self, recommendation):
        payload = candidate_to_dict(recommendation.best, include_allocation=True)
        assignment = payload["allocation"]["disk_of_fragment"]
        assert len(assignment) == recommendation.best.fragment_count

    def test_recommendation_export(self, recommendation):
        payload = recommendation_to_dict(recommendation, include_all_candidates=True)
        json.dumps(payload)
        assert payload["candidate_space"]["evaluated"] == len(recommendation.evaluated)
        assert payload["ranked"][0]["final_rank"] == 1
        assert payload["ranked"][0]["fragmentation"] == recommendation.best.label
        assert len(payload["evaluated"]) == len(recommendation.evaluated)
        assert len(payload["best_query_statistics"]) == len(recommendation.workload)

    def test_recommendation_export_minimal(self, recommendation):
        payload = recommendation_to_dict(
            recommendation, include_all_candidates=False, include_query_statistics=False
        )
        assert "evaluated" not in payload
        assert "best_query_statistics" not in payload
