"""Unit tests for repro.analysis.charts: ASCII bar charts."""

from __future__ import annotations

import pytest

from repro import AdvisorConfig, FragmentationSpec, SystemParameters, Warlock
from repro.analysis import (
    access_profile_chart,
    bar_chart,
    disk_access_profile,
    occupancy_chart,
    tradeoff_chart,
)
from repro.errors import ReportError


@pytest.fixture(scope="module")
def chart_candidate():
    from repro import (
        Dimension,
        DimensionRestriction,
        FactTable,
        Level,
        QueryClass,
        QueryMix,
        StarSchema,
    )

    time = Dimension("time", [Level("year", 2), Level("month", 24)])
    product = Dimension("product", [Level("group", 10), Level("item", 200)])
    fact = FactTable("sales", 500_000, 64, ("time", "product"))
    schema = StarSchema("charts", (time, product), (fact,))
    workload = QueryMix(
        [
            QueryClass("by-month", [DimensionRestriction("time", "month")], 2),
            QueryClass(
                "by-group",
                [DimensionRestriction("product", "group"), DimensionRestriction("time", "year")],
                1,
            ),
        ]
    )
    system = SystemParameters(num_disks=8)
    advisor = Warlock(schema, workload, system, AdvisorConfig(max_fragments=10_000))
    candidate = advisor.evaluate_spec(FragmentationSpec.of(("time", "month")))
    return advisor, candidate


class TestBarChart:
    def test_basic_rendering(self):
        chart = bar_chart([1, 2, 4], labels=["a", "b", "c"], width=8, title="demo")
        lines = chart.splitlines()
        assert lines[0] == "demo"
        assert len(lines) == 4
        # The largest value gets the full width, the smallest a quarter of it.
        assert lines[3].count("#") == 8
        assert lines[1].count("#") == 2

    def test_mapping_input(self):
        chart = bar_chart({"x": 10.0, "y": 5.0}, width=10)
        assert "x" in chart and "y" in chart
        assert chart.splitlines()[0].count("#") == 10

    def test_all_zero_values(self):
        chart = bar_chart([0, 0], labels=["a", "b"], width=10)
        assert chart.count("#") == 0

    def test_value_format(self):
        chart = bar_chart([1.234], labels=["a"], width=5, value_format="{:.2f}")
        assert "1.23" in chart

    def test_invalid_input(self):
        with pytest.raises(ReportError):
            bar_chart([])
        with pytest.raises(ReportError):
            bar_chart([1, 2], labels=["only-one"])
        with pytest.raises(ReportError):
            bar_chart([1], width=0)
        with pytest.raises(ReportError):
            bar_chart([-1.0])


class TestOccupancyChart:
    def test_small_configuration_lists_every_disk(self, chart_candidate):
        _, candidate = chart_candidate
        chart = occupancy_chart(candidate)
        assert "disk 0" in chart and "disk 7" in chart
        assert candidate.label in chart

    def test_large_configuration_is_summarized(self, chart_candidate):
        advisor, _ = chart_candidate
        wide_advisor = Warlock(
            advisor.schema,
            advisor.workload,
            SystemParameters(num_disks=128),
            AdvisorConfig(max_fragments=10_000),
        )
        candidate = wide_advisor.evaluate_spec(FragmentationSpec.of(("product", "item")))
        chart = occupancy_chart(candidate, max_disks=16)
        assert "most and" in chart
        assert chart.count("disk ") <= 17


class TestAccessProfileChart:
    def test_renders_profile(self, chart_candidate):
        advisor, candidate = chart_candidate
        profile = disk_access_profile(
            candidate, advisor.workload.query_class("by-month"), samples=3, seed=0
        )
        chart = access_profile_chart(profile.pages_per_disk, "by-month")
        assert "by-month" in chart
        assert chart.count("disk") >= advisor.system.num_disks

    def test_aggregates_many_disks(self):
        chart = access_profile_chart(list(range(100)), "wide", max_disks=10)
        assert "aggregated" in chart

    def test_empty_rejected(self):
        with pytest.raises(ReportError):
            access_profile_chart([], "none")


class TestTradeoffChart:
    def test_both_metrics(self, chart_candidate):
        advisor, candidate = chart_candidate
        other = advisor.evaluate_spec(FragmentationSpec.of(("product", "item")))
        chart = tradeoff_chart([candidate, other])
        assert "I/O cost" in chart and "Response time" in chart
        assert candidate.label in chart and other.label in chart

    def test_single_metric(self, chart_candidate):
        _, candidate = chart_candidate
        chart = tradeoff_chart([candidate], metric="io_cost")
        assert "I/O cost" in chart and "Response time" not in chart

    def test_invalid(self, chart_candidate):
        _, candidate = chart_candidate
        with pytest.raises(ReportError):
            tradeoff_chart([])
        with pytest.raises(ReportError):
            tradeoff_chart([candidate], metric="latency")
