"""Integration tests for the full advisor pipeline (repro.core.advisor)."""

from __future__ import annotations

import pytest

from repro import (
    AdvisorConfig,
    FragmentationSpec,
    QueryClass,
    QueryMix,
    DimensionRestriction,
    SystemParameters,
    Warlock,
)
from repro.errors import AdvisorError, WorkloadError


class TestWarlockConstruction:
    def test_construction_validates_workload(self, toy_schema, small_system):
        bad_mix = QueryMix([QueryClass("q", [DimensionRestriction("ghost", "x")])])
        with pytest.raises(WorkloadError):
            Warlock(toy_schema, bad_mix, small_system)

    def test_default_config(self, toy_schema, toy_workload, small_system):
        advisor = Warlock(toy_schema, toy_workload, small_system)
        assert advisor.config.top_fraction == 0.25
        assert advisor.fact.name == "sales"

    def test_explicit_fact_table(self, toy_schema, toy_workload, small_system):
        advisor = Warlock(toy_schema, toy_workload, small_system, fact_table="sales")
        assert advisor.fact.name == "sales"


class TestCandidateGeneration:
    def test_generate_specs_excludes_and_survives(self, toy_advisor):
        surviving, report = toy_advisor.generate_specs()
        assert report.considered == 35  # 4*3*3 - 1 point fragmentations
        assert report.surviving_count == len(surviving)
        assert report.excluded_count + report.surviving_count == report.considered
        assert len(surviving) > 0

    def test_all_survivors_pass_thresholds(self, toy_advisor):
        surviving, _ = toy_advisor.generate_specs()
        for spec in surviving:
            fragments = spec.fragment_count(toy_advisor.schema)
            assert fragments >= toy_advisor.system.num_disks
            assert fragments <= toy_advisor.config.max_fragments

    def test_all_excluded_raises(self, toy_schema, toy_workload):
        # Demand more fragments than any candidate can produce.
        system = SystemParameters(num_disks=8)
        config = AdvisorConfig(min_fragments=10_000_000, max_fragments=20_000_000)
        advisor = Warlock(toy_schema, toy_workload, system, config)
        with pytest.raises(AdvisorError):
            advisor.generate_specs()

    def test_max_dimensionality_respected(self, toy_schema, toy_workload, small_system):
        config = AdvisorConfig(max_fragmentation_dimensions=1, max_fragments=10_000)
        advisor = Warlock(toy_schema, toy_workload, small_system, config)
        surviving, _ = advisor.generate_specs()
        assert all(spec.dimensionality <= 1 for spec in surviving)


class TestEvaluation:
    def test_evaluate_spec_produces_complete_candidate(self, toy_advisor):
        spec = FragmentationSpec.of(("time", "month"), ("store", "region"))
        candidate = toy_advisor.evaluate_spec(spec)
        assert candidate.spec == spec
        assert candidate.fragment_count == 96
        assert candidate.io_cost_ms > 0
        assert candidate.response_time_ms > 0
        assert candidate.allocation.total_pages > 0
        assert candidate.prefetch.fact_pages >= 1
        assert len(candidate.evaluation.per_class) == 4

    def test_candidate_summary_keys(self, toy_advisor):
        spec = FragmentationSpec.of(("time", "month"), ("store", "region"))
        summary = toy_advisor.evaluate_spec(spec).summary()
        assert {"fragmentation", "fragments", "io_cost_ms", "response_time_ms"} <= set(summary)

    def test_evaluate_candidates_with_explicit_specs(self, toy_advisor):
        specs = [
            FragmentationSpec.of(("time", "month")),
            FragmentationSpec.of(("time", "quarter"), ("product", "group")),
        ]
        candidates, report = toy_advisor.evaluate_candidates(specs)
        assert len(candidates) == 2
        assert report.considered == 0  # explicit specs bypass threshold accounting


class TestRecommendation:
    def test_recommend_end_to_end(self, toy_advisor):
        recommendation = toy_advisor.recommend()
        assert len(recommendation.ranked) >= 1
        assert recommendation.best is recommendation.ranked[0].candidate
        assert recommendation.exclusion_report.considered == 35
        assert len(recommendation.evaluated) == recommendation.exclusion_report.surviving_count

    def test_ranking_is_consistent_with_metrics(self, toy_advisor):
        recommendation = toy_advisor.recommend()
        responses = [r.response_time_ms for r in recommendation.ranked]
        assert responses == sorted(responses)

    def test_best_beats_average_candidate(self, toy_advisor):
        """The recommended fragmentation must be no worse than the average
        evaluated candidate on both metrics it was selected by."""
        recommendation = toy_advisor.recommend()
        mean_io = sum(c.io_cost_ms for c in recommendation.evaluated) / len(
            recommendation.evaluated
        )
        assert recommendation.best.io_cost_ms <= mean_io

    def test_candidate_lookup(self, toy_advisor):
        recommendation = toy_advisor.recommend()
        label = recommendation.best.label
        assert recommendation.candidate(label).label == label
        with pytest.raises(AdvisorError):
            recommendation.candidate("no such fragmentation")

    def test_describe(self, toy_advisor):
        text = toy_advisor.recommend().describe()
        assert "WARLOCK recommendation" in text
        assert "Top" in text

    def test_analyze_returns_report(self, toy_advisor):
        recommendation = toy_advisor.recommend()
        report = toy_advisor.analyze(recommendation.best)
        assert "Database statistic" in report
        assert "Prefetch granule suggestion" in report

    def test_deterministic_recommendation(self, toy_schema, toy_workload, small_system):
        config = AdvisorConfig(max_fragments=10_000, top_candidates=5)
        first = Warlock(toy_schema, toy_workload, small_system, config).recommend()
        second = Warlock(toy_schema, toy_workload, small_system, config).recommend()
        assert [r.label for r in first.ranked] == [r.label for r in second.ranked]

    def test_workload_reweighting_changes_outcome_inputs(self, toy_schema, toy_workload, small_system):
        """Re-weighting the mix (interactive fine-tuning) changes the evaluation."""
        config = AdvisorConfig(max_fragments=10_000)
        base = Warlock(toy_schema, toy_workload, small_system, config).recommend()
        shifted_mix = toy_workload.reweighted({"yearly-report": 1000.0})
        shifted = Warlock(toy_schema, shifted_mix, small_system, config).recommend()
        base_by_label = {c.label: c for c in base.evaluated}
        changed = [
            c.label
            for c in shifted.evaluated
            if abs(c.io_cost_ms - base_by_label[c.label].io_cost_ms) > 1e-6
        ]
        assert changed  # the evaluation reacted to the new weights


class TestApb1Integration:
    """End-to-end run on the (scaled-down) APB-1 configuration of the demo."""

    @pytest.fixture(scope="class")
    def recommendation(self, apb_small_schema, apb_workload):
        system = SystemParameters(num_disks=32)
        config = AdvisorConfig(max_fragments=50_000, top_candidates=10)
        return Warlock(apb_small_schema, apb_workload, system, config).recommend()

    def test_produces_ranked_list(self, recommendation):
        assert 1 <= len(recommendation.ranked) <= 10

    def test_winner_uses_workload_dimensions(self, recommendation):
        """The winning fragmentation uses dimensions the workload actually restricts."""
        shares = recommendation.workload.dimension_access_shares()
        for attribute in recommendation.best.spec.attributes:
            assert shares.get(attribute.dimension, 0.0) > 0.0

    def test_winner_beats_single_fragment_style_candidates(self, recommendation):
        """Fragmented winners dominate coarse candidates on response time."""
        coarse = [c for c in recommendation.evaluated if c.fragment_count <= 64]
        if coarse:
            best_coarse = min(c.response_time_ms for c in coarse)
            assert recommendation.best.response_time_ms <= best_coarse * 1.5

    def test_allocation_fits_capacity(self, recommendation):
        assert recommendation.best.allocation.fits_capacity()
