"""True positives for the pool-boundary-picklability rule."""

from concurrent.futures import ProcessPoolExecutor

SHARED_STATE = {"warm": 0}


def sweep(chunks):
    def local_worker(chunk):
        return len(chunk)

    with ProcessPoolExecutor(max_workers=2) as pool:
        lam = pool.submit(lambda: 1)
        closure = pool.submit(local_worker, chunks[0])
        handle = pool.submit(print, open("results.txt"))
        shared = pool.submit(print, SHARED_STATE)
    return lam, closure, handle, shared


def bad_initializer(context):
    pool = ProcessPoolExecutor(initializer=print, initargs=(lambda: context,))
    return pool
