"""Leaf module holding the real definitions."""


def compute(x: float) -> float:
    return x + 1


def twice(fn: object, x: float) -> float:
    return fn(fn(x))
