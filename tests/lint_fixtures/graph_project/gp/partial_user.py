"""functools.partial: the first argument is a deferred call."""

import functools

from gp import compute


def run_partial(x: float) -> float:
    callback = functools.partial(compute, x)
    return callback()
