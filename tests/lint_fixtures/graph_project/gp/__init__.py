"""Package front door: re-exports the core entry point."""

from gp.core import compute
