"""Relative imports: of a package re-export, and aliased from a sibling."""

from . import compute
from .core import twice as t2


def run(x: float) -> float:
    return t2(compute, x)
