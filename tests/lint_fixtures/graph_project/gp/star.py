"""Star import: names resolve through the star source."""

from gp.core import *  # noqa: F403


def run_star(x: float) -> float:
    return compute(x)  # noqa: F405
