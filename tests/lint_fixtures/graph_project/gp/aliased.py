"""Aliased module import: attribute chains expand through the alias."""

import gp.core as core


def run_alias(x: float) -> float:
    return core.compute(x)
