# lint: service-module
"""The lock-discipline pattern with documented suppressions."""


def close_evicted(victims):
    for session, lock in victims:
        try:
            session.close()  # lint: disable=lock-discipline -- lock acquired non-blocking upstream
        finally:
            lock.release()


def close_evicted_standalone(victims):
    for session, lock in victims:
        try:
            # lint: disable=lock-discipline -- lock acquired non-blocking upstream
            session.close()
        finally:
            lock.release()
