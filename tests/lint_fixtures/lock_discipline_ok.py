# lint: service-module
"""Clean negative for the lock-discipline rule: submit under the lock."""


def handle(entry, request):
    with entry.lock:
        session = entry.session
        return session.submit(request)
