"""A not-thread-safe class for the lock-discipline fixtures.

The annotation is harvested project-wide during the collect pass, so the
``_bad``/``_ok`` fixtures in this directory see it cross-file exactly the
way the real rules see ``EvaluationCache``/``AdvisorSession``.
"""


# lint: not-thread-safe instances=session
class FixtureSession:
    def submit(self, request):
        return request

    def close(self):
        pass
