"""BAD: module-level import cycle with :mod:`cyc.alpha`."""

from cyc.alpha import alpha_value


def beta_value() -> int:
    return alpha_value() + 1
