"""BAD: module-level import cycle with :mod:`cyc.beta`."""

from cyc.beta import beta_value


def alpha_value() -> int:
    return beta_value() + 1
