"""Parity-critical module whose metrics are tainted through helper hops."""

from tp.helpers import stamp_metrics


def evaluate(cost: float) -> dict:
    metrics = {"cost": cost}
    return stamp_metrics(metrics)
