"""Helpers reachable from the parity-critical cost model."""

import os
import random
import time


def stamp_metrics(metrics: dict) -> dict:
    return annotate(metrics)


def annotate(metrics: dict) -> dict:
    # BAD: wall-clock time flows into a parity-critical metric payload.
    metrics["stamp"] = time.time()
    return metrics


def stable_listing(root: str) -> list:
    # OK: the listing is sorted before use, so iteration order is stable.
    return sorted(os.listdir(root))


def unreachable_jitter() -> float:
    # OK for the taint rule: nothing parity-critical ever calls this.
    return random.random()
