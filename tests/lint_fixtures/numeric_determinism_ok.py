# lint: parity-critical
"""Clean negatives for the numeric-determinism rule."""

from repro.costmodel.formulas import _elementwise_pow


def ordered_reduction(values):
    return sum(sorted(float(v) for v in values))


def pinned_pow(base, exponent):
    return _elementwise_pow(base, exponent)


def list_accumulation(values):
    total = 0.0
    for value in sorted(values):
        total += value
    return total
