"""Clean negatives for the deprecation-hygiene rule."""

from repro import Warlock
from repro.api import EngineOptions
from repro.engine import EvaluationCache
from repro.tuning import disk_count_study


def modern_options(schema, workload, system, layout):
    advisor = Warlock(
        schema,
        workload,
        system,
        options=EngineOptions(jobs=4, vectorize=False),
    )
    # cache=<instance> is the supported sharing hook, not a deprecated kwarg.
    study = disk_count_study(
        schema, workload, system, layout, cache=EvaluationCache()
    )
    return advisor, study
