"""True positives for the deprecation-hygiene rule."""

from repro import Warlock
from repro.tuning import disk_count_study


def legacy_kwargs(schema, workload, system, layout):
    advisor = Warlock(schema, workload, system, jobs=4, vectorize=False)
    study = disk_count_study(
        schema, workload, system, layout, cache=False, cache_dir="/tmp/cache"
    )
    return advisor, study
