"""Call sites whose arguments reach a boundary through a helper chain."""

import pickle

from bp.models import CleanConfig, Config
from bp.tasks import emit, run_in_pool, spill

SHARED_STATE = {"hits": 0}


def tally(state: dict) -> int:
    return len(state)


def cache_result(value: float) -> bytes:
    # BAD: lambda reaches the cache-store pickle path via bp.tasks:spill.
    return spill(lambda: value)


def parallel_increment(numbers: list) -> object:
    # BAD: nested function reaches the pool boundary via bp.tasks:run_in_pool.
    def add_one(x: float) -> float:
        return x + 1

    return run_in_pool(add_one, numbers)


def parallel_count() -> object:
    # BAD: module-level mutable reaches the pool boundary; the worker gets a
    # copy, so mutation silently diverges.
    return run_in_pool(tally, SHARED_STATE)


def publish() -> str:
    # BAD: dataclass with a lambda field default crosses the JSON wire.
    return emit(Config())


def snapshot(path: str) -> bytes:
    # BAD: open() handle reaches the cache-store path directly.
    return pickle.dumps(open(path))


def publish_clean(scale: float) -> str:
    # OK: plain data and a clean dataclass cross the wire.
    emit(CleanConfig(scale=scale))
    return emit({"scale": scale})
