"""Dataclasses used across serialization boundaries."""

from dataclasses import dataclass, field


@dataclass
class Config:
    """BAD when serialized: the field default is a lambda."""

    scale: float = 1.0
    transform: object = field(default=lambda value: value)


@dataclass
class CleanConfig:
    """OK: only plain data."""

    scale: float = 1.0
