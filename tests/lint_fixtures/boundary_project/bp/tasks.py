"""Helpers that forward values into serialization boundaries."""

import json
import pickle
from concurrent.futures import ProcessPoolExecutor


def spill(payload: object) -> bytes:
    return pickle.dumps(payload)


def run_in_pool(fn: object, value: object) -> object:
    with ProcessPoolExecutor() as pool:
        future = pool.submit(fn, value)
        return future.result()


def emit(record: object) -> str:
    return json.dumps(record)
