"""Clean negatives for the pool-boundary-picklability rule."""

from concurrent.futures import ProcessPoolExecutor

FROZEN_CONFIG = ("alpha", "beta")


def evaluate_chunk(chunk):
    return len(chunk)


def initialize_worker(context):
    return context


def sweep(chunks, context):
    with ProcessPoolExecutor(
        max_workers=2, initializer=initialize_worker, initargs=(context,)
    ) as pool:
        futures = [pool.submit(evaluate_chunk, chunk) for chunk in chunks]
    return futures


def local_callbacks(chunks):
    # Lambdas are fine when they never cross the pool boundary.
    keyed = sorted(chunks, key=lambda chunk: len(chunk))
    return [FROZEN_CONFIG, keyed]
