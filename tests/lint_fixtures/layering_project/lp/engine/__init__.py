"""OK: the engine (layer 1) imports downward, and reaches up only lazily."""

from lp.costmodel import evaluate


def sweep(value: float) -> float:
    return evaluate(value)


def report(value: float) -> float:
    # A lazy (function-scope) import of a higher layer is the sanctioned
    # escape hatch — it does not execute at import time.
    from lp.service import serve

    serve()
    return value
