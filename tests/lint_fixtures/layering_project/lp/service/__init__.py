"""The top layer of the fixture project."""


def serve() -> int:
    return 1
