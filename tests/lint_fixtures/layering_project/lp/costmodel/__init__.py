"""BAD: the cost model (layer 0) imports the service front end (layer 3)."""

from lp.service import serve


def evaluate(value: float) -> float:
    serve()
    return value * 2.0
