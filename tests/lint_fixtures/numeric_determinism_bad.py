# lint: parity-critical
"""True positives for the numeric-determinism rule."""

import math


def unordered_reduction(values):
    return sum({float(v) for v in values})


def bare_pow(base, exponent):
    scaled = math.pow(base, exponent)
    return scaled + base**2


def set_accumulation(values):
    total = 0.0
    for value in set(values):
        total += value
    return total
