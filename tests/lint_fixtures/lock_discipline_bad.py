# lint: service-module
"""True positive for the lock-discipline rule: submit outside the lock."""


def handle(entry, request):
    session = entry.session
    return session.submit(request)
