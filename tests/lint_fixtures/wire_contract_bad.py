# lint: wire-types
"""True positives for the wire-contract rule."""

from repro.api.progress import ProgressEvent


class LeakyResult:
    """A public wire type without to_dict()."""

    def __init__(self, value):
        self.value = value


def empty_sweep_event():
    return ProgressEvent(
        phase="evaluate", completed=0, total=0, chunk=0, num_chunks=0
    )
