# lint: wire-types
"""Clean negatives for the wire-contract rule."""

from repro.api.progress import ProgressEvent


class TidyResult:
    def __init__(self, value):
        self.value = value

    def to_dict(self):
        return {"value": self.value}


class _Internal:
    """Private helpers need no wire contract."""


def completion_event():
    return ProgressEvent(
        phase="evaluate", completed=1, total=1, chunk=1, num_chunks=1
    )
