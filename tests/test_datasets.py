"""Unit tests for repro.datasets: APB-1-style, retail and synthetic factories."""

from __future__ import annotations

import pytest

from repro import (
    apb1_query_mix,
    apb1_schema,
    retail_query_mix,
    retail_schema,
    synthetic_schema,
    validate_schema,
)
from repro.datasets.apb1 import APB1_BASE_FACT_ROWS
from repro.datasets.retail import RETAIL_BASE_FACT_ROWS
from repro.errors import SchemaError


class TestApb1Schema:
    def test_structure(self):
        schema = apb1_schema()
        assert schema.dimension_names == ("product", "customer", "time", "channel")
        product = schema.dimension("product")
        assert product.level_names == ("division", "line", "family", "group", "class", "code")
        assert product.cardinality == 9000
        assert schema.dimension("time").cardinality == 24
        assert schema.dimension("channel").cardinality == 9
        assert schema.fact_table().row_count == APB1_BASE_FACT_ROWS

    def test_scaling(self):
        small = apb1_schema(scale=0.1)
        assert small.fact_table().row_count == pytest.approx(
            APB1_BASE_FACT_ROWS * 0.1, rel=1e-6
        )
        with pytest.raises(SchemaError):
            apb1_schema(scale=0)

    def test_skew_attachment(self):
        schema = apb1_schema(skew={"product": 0.8})
        assert schema.dimension("product").skew.theta == pytest.approx(0.8)
        assert not schema.dimension("time").skew.is_skewed

    def test_unknown_skew_dimension_rejected(self):
        with pytest.raises(SchemaError):
            apb1_schema(skew={"warehouse": 0.5})

    def test_passes_validation(self):
        assert validate_schema(apb1_schema()) == []

    def test_hierarchies_monotone(self):
        for dimension in apb1_schema().dimensions:
            cards = [level.cardinality for level in dimension.levels]
            assert cards == sorted(cards)


class TestApb1Workload:
    def test_validates_against_schema(self):
        apb1_query_mix().validate(apb1_schema())

    def test_has_multiple_classes_with_shares(self):
        mix = apb1_query_mix()
        assert len(mix) == 8
        assert sum(mix.shares().values()) == pytest.approx(1.0)

    def test_covers_all_dimensions(self):
        shares = apb1_query_mix().dimension_access_shares()
        assert set(shares) == {"product", "customer", "time", "channel"}


class TestRetail:
    def test_structure(self):
        schema = retail_schema()
        assert schema.dimension_names == ("date", "store", "item", "promotion")
        assert schema.dimension("item").cardinality == 40000
        assert schema.fact_table().row_count == RETAIL_BASE_FACT_ROWS

    def test_default_skew(self):
        schema = retail_schema()
        assert schema.dimension("item").skew.is_skewed
        assert schema.dimension("store").skew.is_skewed
        assert not schema.dimension("date").skew.is_skewed

    def test_scaling_and_validation(self):
        small = retail_schema(scale=0.01)
        assert small.fact_table().row_count == 500_000
        # The full-size schema is clean; the tiny one legitimately triggers the
        # sparsity warning (dimension value space >> fact rows).
        assert validate_schema(retail_schema()) == []
        assert any("sparse" in warning for warning in validate_schema(small))
        with pytest.raises(SchemaError):
            retail_schema(scale=-1)

    def test_workload_validates(self):
        retail_query_mix().validate(retail_schema())
        assert len(retail_query_mix()) == 7


class TestSynthetic:
    def test_shape(self):
        schema = synthetic_schema(num_dimensions=3, levels_per_dimension=2, fact_rows=1000)
        assert len(schema.dimensions) == 3
        assert all(len(d.levels) == 2 for d in schema.dimensions)
        assert schema.fact_table().row_count == 1000

    def test_hierarchies_valid(self):
        schema = synthetic_schema(num_dimensions=5, levels_per_dimension=4)
        for dimension in schema.dimensions:
            cards = [level.cardinality for level in dimension.levels]
            assert cards == sorted(cards)
            assert len(set(level.name for level in dimension.levels)) == len(cards)

    def test_reproducible_with_seed(self):
        first = synthetic_schema(seed=3)
        second = synthetic_schema(seed=3)
        assert first.describe() == second.describe()

    def test_no_jitter_without_seed(self):
        schema = synthetic_schema(seed=None, bottom_cardinality=100)
        for dimension in schema.dimensions:
            assert dimension.cardinality >= 100

    def test_skew_recycling(self):
        schema = synthetic_schema(num_dimensions=4, skew_thetas=[0.5, 0.0])
        thetas = [d.skew.theta for d in schema.dimensions]
        assert thetas == [0.5, 0.0, 0.5, 0.0]

    def test_invalid_parameters(self):
        with pytest.raises(SchemaError):
            synthetic_schema(num_dimensions=0)
        with pytest.raises(SchemaError):
            synthetic_schema(levels_per_dimension=0)
        with pytest.raises(SchemaError):
            synthetic_schema(bottom_cardinality=0)
