"""Unit tests for repro.simulation: query instances and the replay simulator."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    DimensionRestriction,
    DiskSimulator,
    FragmentationSpec,
    IOCostModel,
    QueryClass,
    build_layout,
    choose_allocation,
    design_bitmap_scheme,
    instantiate_query,
)
from repro.bitmap import BitmapScheme
from repro.errors import SimulationError
from repro.storage import PrefetchSetting

PREFETCH = PrefetchSetting.fixed(8, 2)


@pytest.fixture
def sim_setup(toy_schema, toy_workload, small_system):
    layout = build_layout(
        toy_schema, FragmentationSpec.of(("time", "quarter"), ("product", "group"))
    )
    scheme = design_bitmap_scheme(toy_schema, toy_workload)
    allocation = choose_allocation(layout, small_system, scheme)
    simulator = DiskSimulator(small_system)
    return layout, scheme, allocation, simulator


class TestInstantiateQuery:
    def test_point_restriction_single_fragment(self, sim_setup):
        layout, scheme, _, _ = sim_setup
        query = QueryClass(
            "q",
            [
                DimensionRestriction("time", "quarter"),
                DimensionRestriction("product", "group"),
            ],
        )
        rng = np.random.default_rng(0)
        instance = instantiate_query(layout, query, scheme, rng)
        assert instance.fragments_accessed == 1
        assert instance.total_fact_pages >= 1

    def test_coarse_restriction_selects_block(self, sim_setup):
        layout, scheme, _, _ = sim_setup
        query = QueryClass("q", [DimensionRestriction("time", "year")])
        instance = instantiate_query(layout, query, scheme, np.random.default_rng(0))
        # One year = 4 quarters, product axis unrestricted (10 groups).
        assert instance.fragments_accessed == 40

    def test_unrestricted_query_touches_everything(self, sim_setup):
        layout, scheme, _, _ = sim_setup
        query = QueryClass("scan", [])
        instance = instantiate_query(layout, query, scheme, np.random.default_rng(0))
        assert instance.fragments_accessed == layout.fragment_count

    def test_fine_restriction_confines_to_ancestor(self, sim_setup):
        layout, scheme, _, _ = sim_setup
        query = QueryClass("q", [DimensionRestriction("time", "month")])
        instance = instantiate_query(layout, query, scheme, np.random.default_rng(0))
        # One month maps to one quarter; product axis unrestricted.
        assert instance.fragments_accessed == 10

    def test_residual_restriction_reads_bitmaps(self, sim_setup, toy_schema):
        from repro.bitmap import BitmapIndex, BitmapType

        # A layout fragmented on time only, and a highly selective residual
        # predicate (item x store, 1/8000) backed by bitmap indexes: the bitmap
        # plan wins the access-path choice and bitmap pages are read.
        layout = build_layout(toy_schema, FragmentationSpec.of(("time", "quarter")))
        scheme = BitmapScheme(
            [
                BitmapIndex("product", "item", BitmapType.ENCODED, 200),
                BitmapIndex("store", "store", BitmapType.ENCODED, 40),
            ]
        )
        query = QueryClass(
            "q",
            [
                DimensionRestriction("product", "item"),
                DimensionRestriction("store", "store"),
            ],
        )
        instance = instantiate_query(layout, query, scheme, np.random.default_rng(0))
        assert instance.total_bitmap_pages > 0
        assert not instance.sequential

    def test_scan_plan_chosen_for_unselective_residual(self, sim_setup):
        layout, scheme, _, _ = sim_setup
        # product.group (selectivity 1/10) is not worth a bitmap-driven plan.
        query = QueryClass("q", [DimensionRestriction("product", "group")])
        instance = instantiate_query(layout, query, scheme, np.random.default_rng(0))
        assert instance.total_bitmap_pages == 0
        assert instance.sequential

    def test_no_bitmap_forces_scan(self, sim_setup):
        layout, _, _, _ = sim_setup
        query = QueryClass("q", [DimensionRestriction("store", "store")])
        instance = instantiate_query(layout, query, BitmapScheme(), np.random.default_rng(0))
        assert instance.sequential
        assert instance.total_bitmap_pages == 0

    def test_fragment_indices_valid(self, sim_setup):
        layout, scheme, _, _ = sim_setup
        query = QueryClass("q", [DimensionRestriction("time", "year")])
        instance = instantiate_query(layout, query, scheme, np.random.default_rng(1))
        assert instance.fragment_indices.min() >= 0
        assert instance.fragment_indices.max() < layout.fragment_count
        assert len(np.unique(instance.fragment_indices)) == instance.fragments_accessed

    def test_reproducible_with_seeded_rng(self, sim_setup):
        layout, scheme, _, _ = sim_setup
        query = QueryClass("q", [DimensionRestriction("time", "quarter")])
        first = instantiate_query(layout, query, scheme, np.random.default_rng(5))
        second = instantiate_query(layout, query, scheme, np.random.default_rng(5))
        assert np.array_equal(first.fragment_indices, second.fragment_indices)

    def test_weighted_sampling_prefers_heavy_values(self, skewed_schema, toy_workload):
        """Under skew, weighted instance sampling hits the heavy fragments more often."""
        layout = build_layout(skewed_schema, FragmentationSpec.of(("product", "item")))
        scheme = design_bitmap_scheme(skewed_schema, toy_workload)
        query = QueryClass("q", [DimensionRestriction("product", "item")])
        rng = np.random.default_rng(42)
        weighted_hits = [
            int(instantiate_query(layout, query, scheme, rng, weighted_values=True).fragment_indices[0])
            for _ in range(200)
        ]
        # Item 0 is the most frequent value under Zipf; it must be sampled
        # far more often than the uniform 1/200 expectation.
        share_of_top = sum(1 for hit in weighted_hits if hit == 0) / len(weighted_hits)
        assert share_of_top > 0.02

    def test_unfragmented_layout(self, toy_schema, toy_workload):
        layout = build_layout(toy_schema, FragmentationSpec.none())
        scheme = design_bitmap_scheme(toy_schema, toy_workload)
        query = toy_workload.query_class("yearly-report")
        instance = instantiate_query(layout, query, scheme, np.random.default_rng(0))
        assert instance.fragments_accessed == 1


class TestDiskSimulator:
    def test_run_instance_basic_invariants(self, sim_setup):
        layout, scheme, allocation, simulator = sim_setup
        query = QueryClass("q", [DimensionRestriction("time", "year")])
        instance = instantiate_query(layout, query, scheme, np.random.default_rng(0))
        result = simulator.run_instance(instance, allocation, PREFETCH)
        assert result.response_time_ms > 0
        assert result.busy_time_ms > 0
        assert result.response_time_ms <= result.busy_time_ms + 1000
        assert 1 <= result.disks_used <= simulator.system.num_disks
        assert result.per_disk_busy_ms.shape == (simulator.system.num_disks,)
        assert result.busy_time_ms == pytest.approx(result.per_disk_busy_ms.sum())
        assert result.parallelism >= 0

    def test_parallel_query_faster_than_serial_work(self, sim_setup):
        layout, scheme, allocation, simulator = sim_setup
        query = QueryClass("scan", [])
        instance = instantiate_query(layout, query, scheme, np.random.default_rng(0))
        result = simulator.run_instance(instance, allocation, PREFETCH)
        assert result.disks_used == simulator.system.num_disks
        assert result.response_time_ms < result.busy_time_ms

    def test_run_workload_aggregates(self, sim_setup, toy_workload):
        layout, scheme, allocation, simulator = sim_setup
        result = simulator.run_workload(
            layout, toy_workload, scheme, allocation, PREFETCH, queries_per_class=3, seed=0
        )
        assert set(result.per_class_response_ms) == {qc.name for qc in toy_workload}
        assert result.weighted_response_ms > 0
        assert result.weighted_busy_ms >= result.weighted_response_ms * 0.5
        assert all(n == 3 for n in result.per_class_samples.values())
        assert "weighted" in result.describe()

    def test_run_workload_reproducible(self, sim_setup, toy_workload):
        layout, scheme, allocation, simulator = sim_setup
        first = simulator.run_workload(
            layout, toy_workload, scheme, allocation, PREFETCH, queries_per_class=2, seed=3
        )
        second = simulator.run_workload(
            layout, toy_workload, scheme, allocation, PREFETCH, queries_per_class=2, seed=3
        )
        assert first.weighted_response_ms == pytest.approx(second.weighted_response_ms)

    def test_run_workload_invalid_samples(self, sim_setup, toy_workload):
        layout, scheme, allocation, simulator = sim_setup
        with pytest.raises(SimulationError):
            simulator.run_workload(
                layout, toy_workload, scheme, allocation, PREFETCH, queries_per_class=0
            )

    def test_run_batch(self, sim_setup, toy_workload):
        layout, scheme, allocation, simulator = sim_setup
        rng = np.random.default_rng(0)
        instances = [
            instantiate_query(layout, qc, scheme, rng) for qc in toy_workload for _ in range(2)
        ]
        result = simulator.run_batch(instances, allocation, PREFETCH)
        assert result.makespan_ms > 0
        assert result.average_completion_ms <= result.makespan_ms + 1e-9
        assert 0 < result.disk_utilisation <= 1.0
        assert len(result.per_query_completion_ms) == len(instances)

    def test_run_batch_empty_rejected(self, sim_setup):
        _, _, allocation, simulator = sim_setup
        with pytest.raises(SimulationError):
            simulator.run_batch([], allocation, PREFETCH)

    def test_rejects_bad_system(self):
        with pytest.raises(SimulationError):
            DiskSimulator("nope")  # type: ignore[arg-type]


class TestModelAgainstSimulation:
    """The analytical model must agree with the replay simulator in expectation."""

    def test_busy_time_agreement(self, sim_setup, toy_workload, small_system):
        layout, scheme, allocation, simulator = sim_setup
        model = IOCostModel(small_system)
        evaluation = model.evaluate(layout, toy_workload, scheme, PREFETCH)
        simulated = simulator.run_workload(
            layout, toy_workload, scheme, allocation, PREFETCH, queries_per_class=10, seed=0
        )
        assert simulated.weighted_busy_ms == pytest.approx(
            evaluation.total_io_cost_ms, rel=0.35
        )

    def test_response_time_agreement(self, sim_setup, toy_workload, small_system):
        layout, scheme, allocation, simulator = sim_setup
        model = IOCostModel(small_system)
        evaluation = model.evaluate(layout, toy_workload, scheme, PREFETCH)
        simulated = simulator.run_workload(
            layout, toy_workload, scheme, allocation, PREFETCH, queries_per_class=10, seed=0
        )
        assert simulated.weighted_response_ms == pytest.approx(
            evaluation.total_response_time_ms, rel=0.5
        )
