"""Unit tests for repro.fragmentation.spec and enumeration."""

from __future__ import annotations

import pytest

from repro import FragmentationAttribute, FragmentationSpec, enumerate_point_fragmentations
from repro.errors import FragmentationError
from repro.fragmentation import count_point_fragmentations


class TestFragmentationAttribute:
    def test_cardinality(self, toy_schema):
        attribute = FragmentationAttribute("time", "quarter")
        assert attribute.cardinality(toy_schema) == 8

    def test_describe(self):
        assert FragmentationAttribute("time", "month").describe() == "time.month"

    def test_invalid(self):
        with pytest.raises(FragmentationError):
            FragmentationAttribute("", "month")
        with pytest.raises(FragmentationError):
            FragmentationAttribute("time", "")


class TestFragmentationSpec:
    def test_of_constructor(self):
        spec = FragmentationSpec.of(("time", "month"), ("product", "group"))
        assert spec.dimensionality == 2
        assert spec.dimensions == ("time", "product")
        assert spec.is_fragmented
        assert not spec.is_one_dimensional

    def test_none_baseline(self):
        spec = FragmentationSpec.none()
        assert spec.dimensionality == 0
        assert not spec.is_fragmented
        assert spec.label == "(unfragmented)"

    def test_one_dimensional(self):
        spec = FragmentationSpec.of(("time", "quarter"))
        assert spec.is_one_dimensional

    def test_fragment_count(self, toy_schema):
        spec = FragmentationSpec.of(("time", "quarter"), ("product", "group"))
        assert spec.fragment_count(toy_schema) == 8 * 10
        assert spec.axis_cardinalities(toy_schema) == (8, 10)

    def test_fragment_count_baseline(self, toy_schema):
        assert FragmentationSpec.none().fragment_count(toy_schema) == 1

    def test_uses_dimension_and_attribute_for(self):
        spec = FragmentationSpec.of(("time", "month"))
        assert spec.uses_dimension("time")
        assert not spec.uses_dimension("product")
        assert spec.attribute_for("time").level == "month"
        assert spec.attribute_for("product") is None

    def test_duplicate_dimension_rejected(self):
        with pytest.raises(FragmentationError):
            FragmentationSpec.of(("time", "month"), ("time", "year"))

    def test_validate_ok(self, toy_schema):
        FragmentationSpec.of(("time", "month"), ("store", "region")).validate(toy_schema)

    def test_validate_unknown_dimension(self, toy_schema):
        with pytest.raises(FragmentationError):
            FragmentationSpec.of(("ghost", "x")).validate(toy_schema)

    def test_validate_unknown_level(self, toy_schema):
        with pytest.raises(FragmentationError):
            FragmentationSpec.of(("time", "week")).validate(toy_schema)

    def test_label_and_describe(self, toy_schema):
        spec = FragmentationSpec.of(("time", "quarter"), ("product", "group"))
        assert spec.label == "time.quarter x product.group"
        assert "80 fragments" in spec.describe(toy_schema)
        assert str(spec) == spec.label


class TestEnumeration:
    def test_candidate_space_size(self, toy_schema):
        # Per-dimension choices: time 3+1, product 2+1, store 2+1 -> 4*3*3 - 1.
        expected = 4 * 3 * 3 - 1
        specs = list(enumerate_point_fragmentations(toy_schema))
        assert len(specs) == expected
        assert count_point_fragmentations(toy_schema) == expected

    def test_baseline_inclusion(self, toy_schema):
        with_baseline = list(
            enumerate_point_fragmentations(toy_schema, include_baseline=True)
        )
        without = list(enumerate_point_fragmentations(toy_schema))
        assert len(with_baseline) == len(without) + 1
        assert with_baseline[0].dimensionality == 0

    def test_max_dimensions_filter(self, toy_schema):
        one_dim = list(enumerate_point_fragmentations(toy_schema, max_dimensions=1))
        assert all(spec.dimensionality == 1 for spec in one_dim)
        # 3 + 2 + 2 single-attribute candidates.
        assert len(one_dim) == 7

    def test_all_specs_unique_and_valid(self, toy_schema):
        specs = list(enumerate_point_fragmentations(toy_schema))
        labels = [spec.label for spec in specs]
        assert len(set(labels)) == len(labels)
        for spec in specs:
            spec.validate(toy_schema)

    def test_at_most_one_attribute_per_dimension(self, toy_schema):
        for spec in enumerate_point_fragmentations(toy_schema):
            dims = [a.dimension for a in spec.attributes]
            assert len(set(dims)) == len(dims)

    def test_invalid_max_dimensions(self, toy_schema):
        with pytest.raises(FragmentationError):
            list(enumerate_point_fragmentations(toy_schema, max_dimensions=-1))

    def test_deterministic_order(self, toy_schema):
        first = [spec.label for spec in enumerate_point_fragmentations(toy_schema)]
        second = [spec.label for spec in enumerate_point_fragmentations(toy_schema)]
        assert first == second
