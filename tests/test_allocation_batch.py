"""Parity tests for repro.allocation.batch: batched LPT vs the scalar heap.

The scalar schemes (greedy_size_allocation, round_robin_allocation and the
choose_allocation dispatcher) stay the reference implementation; the batched
path used by the candidate-axis executor must reproduce them field by field —
same disk of every fragment, same accumulated occupancy doubles, same scheme
decision — on uniform, skewed and adversarially tie-heavy fragment sizes.
"""

from __future__ import annotations

import heapq

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import (
    FragmentationSpec,
    build_layout,
    choose_allocation,
    design_bitmap_scheme,
    greedy_size_allocation,
)
from repro.allocation import (
    batched_greedy_size_allocation,
    choose_allocations_batch,
    lpt_assignments,
)
from repro.errors import AllocationError


def _reference_lpt(pages: np.ndarray, num_disks: int) -> np.ndarray:
    """The scalar heap loop of greedy_size_allocation, inlined verbatim."""
    order = np.argsort(-pages, kind="stable")
    assignment = np.empty(len(pages), dtype=np.int64)
    heap = [(0.0, disk) for disk in range(num_disks)]
    heapq.heapify(heap)
    for fragment_index in order:
        occupancy, disk = heapq.heappop(heap)
        assignment[fragment_index] = disk
        heapq.heappush(heap, (occupancy + float(pages[fragment_index]), disk))
    return assignment


# Skewed distributions with heavy ties: tiny value pools plus large outliers.
_PAGE_VALUES = st.one_of(
    st.sampled_from([0.0, 1.0, 1.0, 2.0, 7.0]),
    st.floats(min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False),
)
_PAGES_LISTS = st.lists(
    st.lists(_PAGE_VALUES, min_size=0, max_size=50).map(
        lambda values: np.asarray(values, dtype=np.float64)
    ),
    min_size=1,
    max_size=8,
)


class TestLptAssignments:
    @settings(max_examples=200, deadline=None)
    @given(pages_lists=_PAGES_LISTS, num_disks=st.integers(min_value=1, max_value=16))
    def test_matches_scalar_heap(self, pages_lists, num_disks):
        assignments = lpt_assignments(pages_lists, num_disks)
        assert len(assignments) == len(pages_lists)
        for pages, assignment in zip(pages_lists, assignments):
            assert np.array_equal(assignment, _reference_lpt(pages, num_disks))

    def test_empty_batch(self):
        assert lpt_assignments([], 4) == []

    def test_all_empty_candidates(self):
        assignments = lpt_assignments([np.empty(0), np.empty(0)], 4)
        assert all(a.shape == (0,) for a in assignments)

    def test_mixed_lengths_pad_correctly(self):
        # One long, one short candidate: the short one's padded steps must not
        # disturb its occupancy accounting.
        long = np.array([5.0, 4.0, 3.0, 2.0, 1.0, 1.0, 1.0])
        short = np.array([9.0])
        for pages, assignment in zip(
            [long, short], lpt_assignments([long, short], 3)
        ):
            assert np.array_equal(assignment, _reference_lpt(pages, 3))

    def test_invalid_disks(self):
        with pytest.raises(AllocationError):
            lpt_assignments([np.array([1.0])], 0)


@pytest.fixture
def mixed_layouts(toy_schema, skewed_schema):
    """Uniform and skewed layouts, as one candidate group would mix them."""
    return [
        build_layout(
            toy_schema, FragmentationSpec.of(("time", "month"), ("store", "region"))
        ),
        build_layout(skewed_schema, FragmentationSpec.of(("product", "item"))),
        build_layout(toy_schema, FragmentationSpec.of(("time", "quarter"))),
        build_layout(
            skewed_schema,
            FragmentationSpec.of(("product", "item"), ("time", "quarter")),
        ),
    ]


def _assert_allocations_identical(batched, scalar):
    assert batched.scheme == scalar.scheme
    assert np.array_equal(batched.disk_of_fragment, scalar.disk_of_fragment)
    assert np.array_equal(batched.fragment_pages, scalar.fragment_pages)
    assert np.array_equal(batched.occupancy_pages, scalar.occupancy_pages)
    assert batched.occupancy_cv == scalar.occupancy_cv


class TestBatchedGreedy:
    def test_field_parity_per_layout(self, mixed_layouts, small_system):
        batched = batched_greedy_size_allocation(mixed_layouts, small_system)
        for layout, allocation in zip(mixed_layouts, batched):
            _assert_allocations_identical(
                allocation, greedy_size_allocation(layout, small_system)
            )

    def test_field_parity_with_bitmaps(
        self, mixed_layouts, small_system, toy_schema, toy_workload
    ):
        scheme = design_bitmap_scheme(toy_schema, toy_workload)
        layouts = [layout for layout in mixed_layouts if layout.schema is toy_schema]
        batched = batched_greedy_size_allocation(layouts, small_system, scheme)
        for layout, allocation in zip(layouts, batched):
            _assert_allocations_identical(
                allocation, greedy_size_allocation(layout, small_system, scheme)
            )


class TestChooseAllocationsBatch:
    def test_scheme_decisions_match_scalar_chooser(self, mixed_layouts, small_system):
        batched = choose_allocations_batch(mixed_layouts, small_system)
        for layout, allocation in zip(mixed_layouts, batched):
            _assert_allocations_identical(
                allocation, choose_allocation(layout, small_system)
            )

    def test_threshold_override(self, mixed_layouts, small_system):
        forced = choose_allocations_batch(
            mixed_layouts, small_system, skew_threshold_cv=1e9
        )
        assert all(allocation.scheme == "round_robin" for allocation in forced)

    def test_invalid_threshold(self, mixed_layouts, small_system):
        with pytest.raises(AllocationError):
            choose_allocations_batch(
                mixed_layouts, small_system, skew_threshold_cv=-1
            )

    def test_empty_group(self, small_system):
        assert choose_allocations_batch([], small_system) == []
