"""Asyncio HTTP front end: advisor sessions served over the wire.

The paper frames WARLOCK as an *interactive* what-if advisor an administrator
probes repeatedly against one warehouse.  This module serves that interaction
over HTTP on the standard library alone: an :func:`asyncio.start_server`
listener parses requests, a :class:`~repro.service.registry.SessionRegistry`
maps each warehouse onto one warm :class:`~repro.api.AdvisorSession`, and a
bounded :class:`~repro.service.executor.RequestExecutor` runs the submits on
worker threads so the event loop never blocks on a sweep.

Endpoints (one request per connection, ``Connection: close``):

=======  ==============================  ==========================================
method   path                            behaviour
=======  ==============================  ==========================================
GET      ``/healthz``                    liveness probe (registry/executor stats)
GET      ``/warehouses``                 registered warehouses + session states
PUT      ``/warehouses/{name}``          register a warehouse (JSON body: the CLI
                                         config format, or ``{"dataset": ...}``)
DELETE   ``/warehouses/{name}``          drop the registration, close its session
POST     ``/warehouses/{name}/submit``   serve one advisor request (the
                                         ``to_dict`` form of
                                         :mod:`repro.api.requests`)
=======  ==============================  ==========================================

``POST .../submit`` answers JSON by default.  With ``?stream=1`` or
``Accept: text/event-stream`` it streams Server-Sent Events instead: one
``progress`` frame per :class:`~repro.api.ProgressEvent` (the engine's chunk
boundaries, composite "sweep k of n" for tune/simulate), then one ``result``
frame with the full response, then ``done``.  A client that disconnects
mid-stream flips the request's :class:`~repro.api.CancellationToken`: the
sweep stops cooperatively at its next chunk boundary and every completed
evaluation stays in the session cache (content-addressed, so the next request
resumes warm) — abandoning a browser tab never wastes the work it paid for.
"""

from __future__ import annotations

import asyncio
import json
import threading
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from repro.api.options import EngineOptions
from repro.api.progress import CancellationToken
from repro.api.requests import request_from_dict
from repro.core.config import AdvisorConfig
from repro.errors import EvaluationCancelled, ServiceError, WarlockError
from repro.service.executor import RequestExecutor
from repro.service.registry import SessionRegistry

__all__ = ["AdvisorServer", "warehouse_inputs_from_dict"]

#: Upper bound on accepted request bodies (a config for a big schema is KBs).
MAX_BODY_BYTES = 16 * 1024 * 1024

#: Status lines for the responses the server actually produces.
_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    499: "Client Closed Request",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


def warehouse_inputs_from_dict(raw: Dict[str, Any]) -> Tuple[Any, Any, Any, Any, Dict]:
    """Parse a warehouse registration body.

    Two forms are accepted: the CLI's JSON configuration format (``schema`` /
    ``workload`` / ``system`` blocks, see ``warlock example-config``) or the
    bundled-dataset shorthand ``{"dataset": "apb1"|"retail", "scale": ...,
    "skew": ..., "disks": ..., "architecture": ...}``.  Both may carry an
    ``advisor`` block (:class:`~repro.core.AdvisorConfig` fields) and an
    ``engine`` block (:class:`~repro.api.EngineOptions` overrides).

    Returns ``(schema, workload, system, config, engine_overrides)``.
    """
    from repro.io.config import engine_section_from_dict, parse_config

    if "dataset" in raw:
        from repro.datasets import (
            apb1_query_mix,
            apb1_schema,
            retail_query_mix,
            retail_schema,
        )
        from repro.storage import SystemParameters

        dataset = raw["dataset"]
        scale = float(raw.get("scale", 0.1))
        skew = float(raw.get("skew", 0.0))
        if dataset == "apb1":
            schema = apb1_schema(scale=scale, skew={"product": skew} if skew else None)
            workload = apb1_query_mix()
        elif dataset == "retail":
            schema = retail_schema(scale=scale)
            workload = retail_query_mix()
        else:
            raise ServiceError(f"unknown dataset {dataset!r} (apb1 or retail)")
        system = SystemParameters(
            num_disks=int(raw.get("disks", 64)),
            architecture=raw.get("architecture", "shared_disk"),
        )
    else:
        schema, workload, system = parse_config(raw)
    config = None
    if raw.get("advisor"):
        try:
            config = AdvisorConfig(**raw["advisor"])
        except TypeError as error:
            raise ServiceError(f"invalid advisor block: {error}")
    engine = engine_section_from_dict(raw)
    return schema, workload, system, config, engine


class AdvisorServer:
    """The advisor-as-a-service front end (stdlib asyncio, no hard deps)."""

    def __init__(
        self,
        registry: Optional[SessionRegistry] = None,
        executor: Optional[RequestExecutor] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        options: Optional[EngineOptions] = None,
    ) -> None:
        self.registry = registry if registry is not None else SessionRegistry()
        self.executor = executor if executor is not None else RequestExecutor()
        self.host = host
        self.port = port
        #: Default engine options for warehouses registered over HTTP (their
        #: ``engine`` block overrides individual fields).
        self.options = options if options is not None else EngineOptions()
        self._server: Optional[asyncio.base_events.Server] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._stop_requested = threading.Event()
        #: Requests served, by outcome (monotone counters for /healthz).
        self.served = 0
        self.cancelled = 0

    # -- lifecycle --------------------------------------------------------------

    async def start(self) -> None:
        """Bind the listener (``port=0`` picks a free port, reported back)."""
        self._loop = asyncio.get_running_loop()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self.executor.start()

    async def stop_async(self) -> None:
        """Close the listener and shut the service down."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self.executor.shutdown(wait=False)
        self.registry.close()

    async def serve_until(
        self, shutdown=None, poll_interval: float = 0.1, on_ready=None
    ) -> None:
        """Serve until ``shutdown`` (a cancel signal) fires or stop() is called."""
        from repro.api.progress import cancel_requested

        await self.start()
        if on_ready is not None:
            on_ready(self)
        try:
            while not self._stop_requested.is_set():
                if shutdown is not None and cancel_requested(shutdown):
                    break
                await asyncio.sleep(poll_interval)
        finally:
            await self.stop_async()

    def run(self, shutdown=None, on_ready=None) -> None:
        """Blocking entry point (the CLI ``serve`` command)."""
        asyncio.run(self.serve_until(shutdown=shutdown, on_ready=on_ready))

    def start_in_background(self, timeout: float = 10.0) -> "AdvisorServer":
        """Run the server on a daemon thread; returns once the port is bound.

        The test-and-benchmark harness: callers talk to ``self.port`` over
        real sockets and call :meth:`stop` to tear down.
        """
        ready = threading.Event()

        async def _serve() -> None:
            await self.start()
            ready.set()
            try:
                while not self._stop_requested.is_set():
                    await asyncio.sleep(0.05)
            finally:
                await self.stop_async()

        def _runner() -> None:
            try:
                asyncio.run(_serve())
            finally:
                ready.set()  # unblock the waiter on a failed bind too

        self._thread = threading.Thread(
            target=_runner, name="advisor-http-server", daemon=True
        )
        self._thread.start()
        if not ready.wait(timeout) or self._server is None and self.port == 0:
            raise ServiceError("advisor server failed to start", status=500)
        return self

    def stop(self, timeout: float = 10.0) -> None:
        """Stop a background server started with :meth:`start_in_background`."""
        self._stop_requested.set()
        if self._thread is not None:
            self._thread.join(timeout)
            self._thread = None

    @property
    def url(self) -> str:
        """Base URL of the bound listener."""
        return f"http://{self.host}:{self.port}"

    # -- connection handling ----------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            try:
                method, path, query, headers, body = await self._read_request(reader)
            except ServiceError as error:
                await self._write_json(writer, error.status, {"error": str(error)})
                return
            except (asyncio.IncompleteReadError, ConnectionError, ValueError):
                return  # malformed or aborted before a full request: nothing to answer
            try:
                await self._dispatch(reader, writer, method, path, query, headers, body)
            except ServiceError as error:
                await self._write_json(writer, error.status, {"error": str(error)})
            except WarlockError as error:
                await self._write_json(
                    writer, 400, {"error": str(error), "type": type(error).__name__}
                )
            except (ConnectionError, BrokenPipeError):
                pass  # client went away mid-response; cancellation already handled
            except Exception as error:  # pragma: no cover - defensive catch-all
                try:
                    await self._write_json(
                        writer, 500, {"error": f"internal error: {error}"}
                    )
                except Exception:
                    pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:
                pass

    async def _read_request(self, reader: asyncio.StreamReader):
        request_line = await reader.readline()
        if not request_line:
            raise ValueError("empty request")
        try:
            method, target, _version = request_line.decode("latin-1").split()
        except ValueError:
            raise ServiceError("malformed request line", status=400)
        headers: Dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length") or 0)
        if length > MAX_BODY_BYTES:
            raise ServiceError(f"request body over {MAX_BODY_BYTES} bytes", status=413)
        body = await reader.readexactly(length) if length else b""
        parts = urlsplit(target)
        query = {k: v[-1] for k, v in parse_qs(parts.query).items()}
        return method.upper(), parts.path.rstrip("/") or "/", query, headers, body

    @staticmethod
    def _json_body(body: bytes) -> Dict[str, Any]:
        if not body:
            raise ServiceError("request body must be a JSON object")
        try:
            payload = json.loads(body)
        except json.JSONDecodeError as error:
            raise ServiceError(f"invalid JSON body: {error}")
        if not isinstance(payload, dict):
            raise ServiceError("request body must be a JSON object")
        return payload

    # -- routing ----------------------------------------------------------------

    async def _dispatch(self, reader, writer, method, path, query, headers, body):
        if path == "/healthz" and method == "GET":
            await self._write_json(
                writer,
                200,
                {
                    "status": "ok",
                    "served": self.served,
                    "cancelled": self.cancelled,
                    "pending": self.executor.pending,
                    "live_sessions": self.registry.live_sessions,
                    "store": self.registry.store_health(),
                },
            )
            return
        if path == "/warehouses" and method == "GET":
            await self._write_json(writer, 200, self.registry.describe())
            return
        parts = [part for part in path.split("/") if part]
        if len(parts) == 2 and parts[0] == "warehouses":
            name = parts[1]
            if method == "PUT":
                await self._register_warehouse(writer, name, body)
                return
            if method == "DELETE":
                removed = self.registry.remove(name)
                await self._write_json(writer, 200 if removed else 404,
                                       {"removed": removed, "name": name})
                return
            raise ServiceError(f"method {method} not allowed here", status=405)
        if len(parts) == 3 and parts[0] == "warehouses" and parts[2] == "submit":
            if method != "POST":
                raise ServiceError(f"method {method} not allowed here", status=405)
            await self._submit(reader, writer, parts[1], query, headers, body)
            return
        raise ServiceError(f"no route for {method} {path}", status=404)

    async def _register_warehouse(self, writer, name: str, body: bytes) -> None:
        payload = self._json_body(body)
        schema, workload, system, config, engine = warehouse_inputs_from_dict(payload)
        options = self.options.replace(**engine) if engine else self.options
        entry = self.registry.register(
            name, schema, workload, system, config=config, options=options
        )
        await self._write_json(writer, 200, {"registered": entry.describe()})

    # -- request execution ------------------------------------------------------

    async def _submit(self, reader, writer, name, query, headers, body) -> None:
        payload = self._json_body(body)
        try:
            request = request_from_dict(payload)
        except TypeError as error:
            # Unknown/missing fields surface as dataclass constructor errors;
            # they are the client's malformed body, not a server fault.
            raise ServiceError(f"invalid request body: {error}")
        entry = self.registry.acquire(name)
        stream = query.get("stream") not in (None, "0", "false") or (
            "text/event-stream" in headers.get("accept", "")
        )
        loop = asyncio.get_running_loop()
        events: "asyncio.Queue[Tuple[str, Any]]" = asyncio.Queue()
        token = CancellationToken()

        def emit(event) -> None:
            # Worker thread → event loop: hop through call_soon_threadsafe.
            loop.call_soon_threadsafe(events.put_nowait, ("progress", event.to_dict()))

        def run():
            # One request at a time per session: the evaluation cache is not
            # thread-safe, and serializing here keeps every session's warmth
            # (memo, cache) consistent under concurrent clients.
            with entry.lock:
                session = entry.ensure_session()
                return session.submit(
                    request, on_progress=emit if stream else None, cancel=token
                )

        job = self.executor.submit(
            run,
            label=f"{name}:{payload.get('kind', '?')}",
            on_done=lambda: loop.call_soon_threadsafe(events.put_nowait, ("done", None)),
            cancel=token,
        )
        # From here on the client has sent its full request; any further read
        # returns data we ignore — EOF means the client hung up, which turns
        # into a cooperative cancel at the next chunk boundary.
        watchdog = asyncio.create_task(self._cancel_on_disconnect(reader, token))
        try:
            if stream:
                await self._stream_response(writer, events, job, token)
            else:
                while True:
                    kind, _data = await events.get()
                    if kind == "done":
                        break
                await self._finish_plain(writer, payload, job)
        finally:
            watchdog.cancel()

    async def _cancel_on_disconnect(self, reader, token: CancellationToken) -> None:
        try:
            while True:
                data = await reader.read(4096)
                if not data:
                    break
        except (ConnectionError, asyncio.CancelledError):
            return  # cancelled by normal completion, or reset already handled
        except Exception:  # pragma: no cover - any transport error = hung up
            pass
        token.cancel()
        self.cancelled += 1

    def _result_payload(self, payload: Dict[str, Any], job) -> Dict[str, Any]:
        result = job.outcome()
        response: Dict[str, Any] = {
            "kind": payload.get("kind"),
            "result": result.to_dict(),
        }
        fingerprint = getattr(result, "fingerprint", None)
        if fingerprint is not None:
            response["fingerprint"] = fingerprint
        return response

    async def _finish_plain(self, writer, payload, job) -> None:
        try:
            response = self._result_payload(payload, job)
        except EvaluationCancelled as error:
            # A deadline-tripped cancel is the server's 504; every other
            # cancel came from the client hanging up (499).  Either way the
            # session's completed entries stay warm for a retry.
            status = 504 if job.timed_out else 499
            await self._write_json(writer, status, {"error": str(error)})
            return
        self.served += 1
        await self._write_json(writer, 200, response)

    async def _stream_response(self, writer, events, job, token) -> None:
        headers = (
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: text/event-stream\r\n"
            b"Cache-Control: no-cache\r\n"
            b"Connection: close\r\n\r\n"
        )
        writer.write(headers)
        disconnected = False
        while True:
            kind, data = await events.get()
            if kind == "done":
                break
            if disconnected:
                continue  # drain remaining frames; the cancel is already set
            frame = f"event: progress\ndata: {json.dumps(data)}\n\n".encode()
            try:
                writer.write(frame)
                await writer.drain()
            except (ConnectionError, BrokenPipeError):
                # The client hung up between watchdog polls: same contract.
                token.cancel()
                self.cancelled += 1
                disconnected = True
        if disconnected:
            return
        try:
            response = self._result_payload({"kind": None}, job)
            response.pop("kind", None)
            final = f"event: result\ndata: {json.dumps(response)}\n\n"
            self.served += 1
        except EvaluationCancelled as error:
            cause = "deadline" if job.timed_out else "cancelled"
            final = (
                "event: error\ndata: "
                + json.dumps({"error": str(error), "cause": cause})
                + "\n\n"
            )
        except WarlockError as error:
            final = (
                "event: error\ndata: "
                + json.dumps({"error": str(error), "type": type(error).__name__})
                + "\n\n"
            )
        try:
            writer.write(final.encode() + b"event: done\ndata: {}\n\n")
            await writer.drain()
        except (ConnectionError, BrokenPipeError):
            pass

    # -- response writing -------------------------------------------------------

    async def _write_json(self, writer, status: int, payload: Dict[str, Any]) -> None:
        body = json.dumps(payload).encode()
        reason = _REASONS.get(status, "OK")
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n\r\n"
        ).encode("latin-1")
        writer.write(head + body)
        await writer.drain()
