"""Advisor-as-a-service: the HTTP front end over advisor sessions.

The package turns the in-process :class:`~repro.api.AdvisorSession` workflow
into a long-running service: a :class:`SessionRegistry` keeps one warm session
per registered warehouse (LRU-bounded, idle-timed-out), a
:class:`RequestExecutor` drains submitted requests on a fixed worker pool with
503 back-pressure, and :class:`AdvisorServer` serves the ``submit()`` wire
format over stdlib asyncio HTTP with Server-Sent-Events progress streaming
and disconnect-driven cooperative cancellation.

Start one from Python::

    from repro.service import AdvisorServer

    server = AdvisorServer().start_in_background()
    ...  # PUT {server.url}/warehouses/shop, POST .../shop/submit
    server.stop()

or from the shell with ``warlock serve``.
"""

from repro.service.executor import RequestExecutor, RequestJob
from repro.service.registry import SessionRegistry, WarehouseEntry
from repro.service.server import AdvisorServer, warehouse_inputs_from_dict

__all__ = [
    "AdvisorServer",
    "RequestExecutor",
    "RequestJob",
    "SessionRegistry",
    "WarehouseEntry",
    "warehouse_inputs_from_dict",
]
