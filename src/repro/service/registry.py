"""A bounded registry of live advisor sessions, one per warehouse.

The service maps each registered warehouse — a (schema, workload, system)
input set plus its advisor/engine options — onto at most one long-lived
:class:`~repro.api.AdvisorSession`.  Sessions are where all the warmth lives
(compiled class matrix, bitmap scheme, the evaluation cache, the recommend
memo), so the registry's job is to keep the hot ones and bound the cold ones:

* **Lazy construction** — registering a warehouse stores only its inputs;
  the session is built on the first request that needs it (inside the worker
  thread, so registration stays cheap and the event loop never compiles a
  class matrix).
* **LRU eviction** — at most ``max_sessions`` sessions are live at a time;
  acquiring one refreshes its recency and evicts the least-recently-used
  session over the cap.  Evicted sessions are *closed* (their cache flushes
  to an attached persistent store), and the warehouse stays registered — a
  later request simply rebuilds the session, warm from disk if a store is
  configured.
* **Idle timeout** — sessions idle longer than ``idle_timeout`` seconds are
  closed on the next registry access (the registry never needs its own
  reaper thread).

Sessions serve one request at a time: the shared
:class:`~repro.engine.EvaluationCache` is not thread-safe, so each entry
carries a lock the server holds around ``session.submit(...)``.  Entries
whose lock is held (a request in flight) are never evicted; the next
least-recently-used idle session goes instead.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import Any, Dict, List, Optional, Tuple

from repro.api.options import EngineOptions
from repro.api.session import AdvisorSession
from repro.core.config import AdvisorConfig
from repro.errors import ServiceError
from repro.schema import StarSchema
from repro.storage import SystemParameters
from repro.workload import QueryMix

__all__ = ["SessionRegistry", "WarehouseEntry"]

#: Default cap on simultaneously live sessions.
DEFAULT_MAX_SESSIONS = 8

#: An evicted session paired with its *still-held* entry lock: the caller
#: closes the session, then releases the lock (see ``_collect_evictions``).
_Victim = Tuple[AdvisorSession, threading.Lock]


class WarehouseEntry:
    """One registered warehouse: its inputs plus the (lazy) live session."""

    __slots__ = (
        "name",
        "schema",
        "workload",
        "system",
        "config",
        "options",
        "session",
        "lock",
        "last_used",
        "requests",
    )

    def __init__(
        self,
        name: str,
        schema: StarSchema,
        workload: QueryMix,
        system: SystemParameters,
        config: Optional[AdvisorConfig],
        options: Optional[EngineOptions],
    ) -> None:
        self.name = name
        self.schema = schema
        self.workload = workload
        self.system = system
        self.config = config
        self.options = options
        self.session: Optional[AdvisorSession] = None
        #: Serializes submits on the session (the evaluation cache is not
        #: thread-safe); also the in-flight marker eviction respects.
        self.lock = threading.Lock()
        self.last_used = 0.0
        self.requests = 0

    def ensure_session(self) -> AdvisorSession:
        """The live session, built on first use (call with ``lock`` held)."""
        if self.session is None:
            self.session = AdvisorSession(
                self.schema,
                self.workload,
                self.system,
                config=self.config,
                options=self.options,
            )
        return self.session

    def describe(self) -> Dict[str, Any]:
        """JSON-ready summary row for ``GET /warehouses``."""
        return {
            "name": self.name,
            "schema": self.schema.name,
            "classes": len(self.workload),
            "system": self.system.describe(),
            "live": self.session is not None,
            "requests": self.requests,
        }


class SessionRegistry:
    """Bounded, LRU-evicting map of warehouse name → session entry."""

    def __init__(
        self,
        max_sessions: int = DEFAULT_MAX_SESSIONS,
        idle_timeout: Optional[float] = None,
        clock=time.monotonic,
    ) -> None:
        if max_sessions < 1:
            raise ServiceError(f"max_sessions must be positive, got {max_sessions}")
        if idle_timeout is not None and idle_timeout <= 0:
            raise ServiceError(f"idle_timeout must be positive, got {idle_timeout}")
        self.max_sessions = max_sessions
        self.idle_timeout = idle_timeout
        self._clock = clock
        #: Recency order: least-recently-used first.
        self._entries: "OrderedDict[str, WarehouseEntry]" = OrderedDict()
        self._lock = threading.Lock()
        #: Sessions closed by the LRU cap / idle timeout since construction.
        self.evictions = 0

    # -- registration -----------------------------------------------------------

    def register(
        self,
        name: str,
        schema: StarSchema,
        workload: QueryMix,
        system: SystemParameters,
        config: Optional[AdvisorConfig] = None,
        options: Optional[EngineOptions] = None,
    ) -> WarehouseEntry:
        """Register (or replace) a warehouse; any previous session is closed."""
        if not name:
            raise ServiceError("warehouse name must be non-empty")
        entry = WarehouseEntry(name, schema, workload, system, config, options)
        entry.last_used = self._clock()
        with self._lock:
            previous = self._entries.pop(name, None)
            self._entries[name] = entry
        if previous is not None:
            # Close under the entry lock: a worker that acquired the entry
            # before the swap may still be submitting on this session.
            with previous.lock:
                if previous.session is not None:
                    previous.session.close()
                    previous.session = None
        return entry

    def remove(self, name: str) -> bool:
        """Drop a warehouse registration entirely, closing its session."""
        with self._lock:
            entry = self._entries.pop(name, None)
        if entry is None:
            return False
        # Close under the entry lock: an in-flight request that acquired this
        # entry before the pop still owns the session until it releases.
        with entry.lock:
            if entry.session is not None:
                entry.session.close()
                entry.session = None
        return True

    # -- access -----------------------------------------------------------------

    def acquire(self, name: str) -> WarehouseEntry:
        """The entry for ``name``: recency refreshed, bounds enforced.

        Raises :class:`~repro.errors.ServiceError` (404) for an unregistered
        warehouse.  The caller holds ``entry.lock`` around the session use;
        the registry itself never blocks on a busy session.
        """
        now = self._clock()
        to_close: List[_Victim] = []
        with self._lock:
            entry = self._entries.get(name)
            if entry is None:
                raise ServiceError(f"unknown warehouse {name!r}", status=404)
            entry.last_used = now
            entry.requests += 1
            self._entries.move_to_end(name)
            to_close = self._collect_evictions(keep=name)
        for session, lock in to_close:
            # The victim's entry lock was acquired (non-blocking) inside
            # _collect_evictions, so no worker can be mid-submit on this
            # session; close outside the registry lock, release last.
            try:
                session.close()  # lint: disable=lock-discipline -- entry lock acquired non-blocking in _collect_evictions; released in finally
            finally:
                lock.release()
        return entry

    def _collect_evictions(self, keep: str) -> List["_Victim"]:
        """Pick sessions to close (idle timeout + LRU cap); registry lock held.

        A victim's entry lock is acquired *non-blocking* here: success proves
        no request is in flight and freezes the entry until the caller closes
        the session and releases; failure means the session is busy and it is
        skipped (the cap then falls on the next least-recently-used idle
        session).  The returned pairs carry the still-held locks — the caller
        closes each session and releases its lock outside the registry lock.
        """
        victims: List[_Victim] = []
        live = [e for e in self._entries.values() if e.session is not None]
        for entry in live:
            if entry.name == keep:
                continue
            idle = (
                self.idle_timeout is not None
                and self._clock() - entry.last_used > self.idle_timeout
            )
            if idle and entry.lock.acquire(blocking=False):
                victims.append((entry.session, entry.lock))
                entry.session = None
        live = [e for e in self._entries.values() if e.session is not None]
        # The acquired entry's session is built lazily after this call, so
        # count it as live already — otherwise the cap is enforced one
        # request late and briefly overshoots.
        keep_entry = self._entries.get(keep)
        prospective = len(live) + (
            1 if keep_entry is not None and keep_entry.session is None else 0
        )
        over = prospective - self.max_sessions
        if over > 0:
            # self._entries iterates least-recently-used first.
            for entry in live:
                if over <= 0:
                    break
                if entry.name == keep:
                    continue
                if entry.lock.acquire(blocking=False):
                    victims.append((entry.session, entry.lock))
                    entry.session = None
                    over -= 1
        self.evictions += len(victims)
        return victims

    # -- bookkeeping ------------------------------------------------------------

    def names(self) -> List[str]:
        """Registered warehouse names, least-recently-used first."""
        with self._lock:
            return list(self._entries)

    @property
    def live_sessions(self) -> int:
        """Number of currently constructed sessions."""
        with self._lock:
            return sum(1 for e in self._entries.values() if e.session is not None)

    def describe(self) -> Dict[str, Any]:
        """JSON-ready registry snapshot for ``GET /warehouses``."""
        with self._lock:
            rows = [entry.describe() for entry in self._entries.values()]
        return {
            "warehouses": rows,
            "max_sessions": self.max_sessions,
            "idle_timeout": self.idle_timeout,
            "live_sessions": sum(1 for row in rows if row["live"]),
            "evictions": self.evictions,
        }

    def store_health(self) -> Dict[str, int]:
        """Aggregate store robustness counters over the live sessions.

        Sums the :class:`~repro.engine.cache.CacheStats` store counters
        (salt mismatches, corrupt entries, fallback loads) of every
        currently constructed session, for ``GET /healthz``.  Counters live
        with their session, so an evicted session's anomalies leave the sum
        — the probe reports the health of the warm state currently serving
        requests, not service-lifetime history.  Reads are lock-free
        snapshots of monotone ints: a concurrent cache load can at worst
        make the sum momentarily stale, never wrong by more than the load
        in flight.
        """
        totals = {"salt_mismatches": 0, "corrupt_entries": 0, "fallback_loads": 0}
        with self._lock:
            entries = list(self._entries.values())
        for entry in entries:
            session = entry.session
            stats = session.stats if session is not None else None
            if stats is None:
                continue
            totals["salt_mismatches"] += stats.store_salt_mismatches
            totals["corrupt_entries"] += stats.store_corrupt_entries
            totals["fallback_loads"] += stats.store_fallback_loads
        return totals

    def close(self) -> None:
        """Close every live session (flushes caches to attached stores)."""
        with self._lock:
            entries = list(self._entries.values())
        for entry in entries:
            # Shutdown still respects the entry lock: a request draining in
            # the executor may hold it until its submit returns.
            with entry.lock:
                if entry.session is not None:
                    entry.session.close()
                    entry.session = None
