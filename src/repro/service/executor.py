"""The bounded queue/drain request executor of the advisor service.

The shape follows PostBOUND's ``ParallelQueryExecutor`` (SNIPPETS.md
exemplar 3): producers enqueue work onto one bounded queue, a fixed pool of
worker threads drains it, and a ``drain()`` barrier lets a caller wait until
everything submitted so far has finished.  Differences fitting this service:

* the queue is **bounded and non-blocking on submit** — a saturated service
  answers 503 immediately (back-pressure to the client) instead of stacking
  unbounded work behind the listener;
* each submission returns a :class:`RequestJob` handle carrying the result /
  error and a completion hook the asyncio front end uses to wake the awaiting
  coroutine (``loop.call_soon_threadsafe``) without polling.

Workers are plain threads: one advisor request is CPU-heavy Python that
itself fans out over the engine's *process* pool, so the thread count caps
concurrent sweeps while the real parallelism stays in the engine.
"""

from __future__ import annotations

import queue
import threading
import time
from typing import Any, Callable, List, Optional

from repro.errors import ServiceError

__all__ = ["RequestExecutor", "RequestJob"]

#: Default worker threads draining the request queue.
DEFAULT_WORKERS = 4
#: Default bound on queued-but-not-started requests.
DEFAULT_CAPACITY = 64


class RequestJob:
    """Handle of one submitted request: result, error, completion event.

    ``deadline`` (a ``time.monotonic()`` instant, set by the executor when it
    runs with a request timeout) budgets queue wait *plus* execution: a job
    whose deadline passes while still queued is failed with a 504 without
    running, and one that is still executing at the deadline has its
    ``cancel`` token tripped so the sweep stops cooperatively at the next
    chunk boundary — completed entries stay warm in the session cache either
    way.  ``timed_out`` records which of the job's endings was deadline-
    driven, so the front end can distinguish a 504 from a client-side 499.
    """

    def __init__(
        self,
        fn: Callable[[], Any],
        label: str = "",
        on_done: Optional[Callable[[], None]] = None,
        cancel: Any = None,
        deadline: Optional[float] = None,
    ) -> None:
        self.fn = fn
        self.label = label
        self.result: Any = None
        self.error: Optional[BaseException] = None
        self.cancel = cancel
        self.deadline = deadline
        self.timed_out = False
        self._on_done = on_done
        self._done = threading.Event()

    def _remaining(self) -> Optional[float]:
        """Seconds left until the deadline (``None`` without one)."""
        if self.deadline is None:
            return None
        return self.deadline - time.monotonic()

    def expire(self) -> None:
        """Fail the job with a 504 without running it (queue-wait overrun)."""
        self.timed_out = True
        self.error = ServiceError(
            f"request deadline exceeded while queued"
            + (f" ({self.label})" if self.label else ""),
            status=504,
        )
        self._finish()

    def run(self) -> None:
        """Execute the job (worker side); never raises."""
        timer: Optional[threading.Timer] = None
        remaining = self._remaining()
        if remaining is not None and self.cancel is not None:

            def fire() -> None:
                self.timed_out = True
                self.cancel.cancel()

            timer = threading.Timer(max(remaining, 0.0), fire)
            timer.daemon = True
            timer.start()
        try:
            self.result = self.fn()
        except BaseException as error:  # noqa: BLE001 - relayed to the waiter
            self.error = error
        finally:
            if timer is not None:
                timer.cancel()
            self._finish()

    def _finish(self) -> None:
        self._done.set()
        if self._on_done is not None:
            try:
                self._on_done()
            except Exception:  # pragma: no cover - notification best-effort
                pass

    @property
    def done(self) -> bool:
        return self._done.is_set()

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the job finished; True when it did."""
        return self._done.wait(timeout)

    def outcome(self) -> Any:
        """The job's result, re-raising its error (call after completion)."""
        if not self._done.is_set():
            raise ServiceError("request job read before completion", status=500)
        if self.error is not None:
            raise self.error
        return self.result


#: Poison pill the shutdown path posts once per worker.
_STOP = object()


class RequestExecutor:
    """A fixed worker pool draining one bounded request queue.

    ``timeout`` (seconds, ``None`` = no deadline) stamps every submitted job
    with a deadline covering queue wait plus execution — see
    :class:`RequestJob` for the 504 semantics.
    """

    def __init__(
        self,
        workers: int = DEFAULT_WORKERS,
        capacity: int = DEFAULT_CAPACITY,
        timeout: Optional[float] = None,
    ) -> None:
        if workers < 1:
            raise ServiceError(f"workers must be positive, got {workers}")
        if capacity < 1:
            raise ServiceError(f"capacity must be positive, got {capacity}")
        if timeout is not None and timeout <= 0:
            raise ServiceError(f"timeout must be positive or None, got {timeout}")
        self.workers = workers
        self.capacity = capacity
        self.timeout = timeout
        self._queue: "queue.Queue[Any]" = queue.Queue(maxsize=capacity)
        self._threads: List[threading.Thread] = []
        self._pending = 0
        self._idle = threading.Condition()
        self._shutdown = False
        self._started = False
        self._start_lock = threading.Lock()

    # -- lifecycle --------------------------------------------------------------

    def start(self) -> None:
        """Spin up the worker threads (idempotent; submit() starts lazily)."""
        with self._start_lock:
            if self._started:
                return
            self._started = True
            for number in range(self.workers):
                thread = threading.Thread(
                    target=self._drain_loop,
                    name=f"advisor-request-worker-{number}",
                    daemon=True,
                )
                thread.start()
                self._threads.append(thread)

    def shutdown(self, wait: bool = True) -> None:
        """Stop accepting work and terminate the workers via poison pills."""
        with self._start_lock:
            if self._shutdown:
                return
            self._shutdown = True
            started = self._started
        if not started:
            return
        for _ in self._threads:
            self._queue.put(_STOP)
        if wait:
            for thread in self._threads:
                thread.join()

    # -- submission -------------------------------------------------------------

    def submit(
        self,
        fn: Callable[[], Any],
        label: str = "",
        on_done: Optional[Callable[[], None]] = None,
        cancel: Any = None,
    ) -> RequestJob:
        """Enqueue one request; 503 immediately when the queue is saturated.

        ``cancel`` is the request's cooperative cancel token; with a
        configured executor ``timeout`` it is tripped when the deadline
        passes mid-execution.
        """
        if self._shutdown:
            raise ServiceError("request executor is shut down", status=503)
        self.start()
        deadline = (
            time.monotonic() + self.timeout if self.timeout is not None else None
        )
        job = RequestJob(fn, label=label, on_done=on_done, cancel=cancel, deadline=deadline)
        with self._idle:
            self._pending += 1
        try:
            self._queue.put_nowait(job)
        except queue.Full:
            with self._idle:
                self._pending -= 1
            raise ServiceError(
                f"request queue saturated ({self.capacity} queued); retry later",
                status=503,
            )
        return job

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Block until everything submitted so far finished; True when idle."""
        with self._idle:
            return self._idle.wait_for(lambda: self._pending == 0, timeout)

    @property
    def pending(self) -> int:
        """Requests submitted but not yet finished (queued + running)."""
        with self._idle:
            return self._pending

    # -- worker side ------------------------------------------------------------

    def _drain_loop(self) -> None:
        while True:
            item = self._queue.get()
            if item is _STOP:
                break
            try:
                remaining = item._remaining()
                if remaining is not None and remaining <= 0:
                    # The deadline passed while the job sat in the queue:
                    # answer 504 without burning a worker on doomed work.
                    item.expire()
                else:
                    item.run()
            finally:
                with self._idle:
                    self._pending -= 1
                    if self._pending == 0:
                        self._idle.notify_all()
