"""What-if studies over a fixed fragmentation.

Every study follows the same pattern: keep the schema, workload and
fragmentation fixed, vary exactly one input (disk count, architecture, prefetch
granule, bitmap exclusions, skew, query weights), re-run the evaluation and
collect the headline metrics per setting.  The result is a
:class:`TuningStudy`, which knows how to render itself as a text table and how
to report the best setting for a chosen metric.

Every study shares one :class:`repro.engine.EvaluationCache` across its
settings (pass ``cache=`` to share it across *studies* too, e.g. with the
advisor run that produced the spec).  Settings that leave the access structure
unchanged — varied weights, architectures, coordination overheads — then reuse
the memoized estimation instead of recomputing it; the cache key covers every
input that can change a number, so the reuse is always exact.

Pass ``options=EngineOptions(cache_dir=...)`` to back the study cache with a
persistent :class:`repro.engine.CacheStore`: the study then warm-starts from
evaluations earlier *processes* spilled to that directory (typically the
``recommend`` run that produced the spec) and spills its own settings back
for the next session.  A cache that is already attached to a store keeps it,
so the CLI's ``tune`` command simply hands the advisor's store-backed cache
to every study.  The legacy ``vectorize=`` / ``cache_dir=`` kwargs remain as
deprecation shims for :class:`~repro.api.EngineOptions`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.core import AdvisorConfig, Warlock
from repro.errors import AdvisorError
from repro.fragmentation import FragmentationSpec
from repro.schema import StarSchema
from repro.storage import SystemParameters
from repro.workload import QueryMix

__all__ = [
    "TuningStudy",
    "disk_count_study",
    "architecture_study",
    "prefetch_study",
    "bitmap_exclusion_study",
    "skew_study",
    "workload_weight_study",
]

#: Metric columns every study records per setting.
_METRIC_COLUMNS = (
    "io_cost_ms",
    "response_time_ms",
    "pages_accessed",
    "io_requests",
    "bitmap_pages",
    "occupancy_cv",
    "allocation_scheme",
)


@dataclass(frozen=True)
class TuningStudy:
    """Result of one what-if study.

    ``records`` maps the varied setting (rendered as a string) to the metric
    dict of the candidate evaluated under that setting.
    """

    name: str
    parameter: str
    records: Tuple[Tuple[str, Dict[str, object]], ...] = field(default=())

    def __post_init__(self) -> None:
        if not self.records:
            raise AdvisorError(f"tuning study {self.name!r} has no records")

    @property
    def settings(self) -> List[str]:
        """The varied settings, in evaluation order."""
        return [setting for setting, _ in self.records]

    def metrics_for(self, setting: str) -> Dict[str, object]:
        """Metric record of one setting."""
        for candidate_setting, record in self.records:
            if candidate_setting == setting:
                return record
        raise AdvisorError(f"study {self.name!r} has no setting {setting!r}")

    def best_setting(self, metric: str = "response_time_ms") -> str:
        """Setting minimizing ``metric`` (ties resolved towards the earlier setting)."""
        numeric = [
            (setting, record[metric])
            for setting, record in self.records
            if isinstance(record.get(metric), (int, float))
        ]
        if not numeric:
            raise AdvisorError(
                f"study {self.name!r} has no numeric values for metric {metric!r}"
            )
        return min(numeric, key=lambda item: item[1])[0]

    def series(self, metric: str) -> List[Tuple[str, float]]:
        """(setting, value) pairs of a numeric metric, in evaluation order."""
        return [
            (setting, float(record[metric]))
            for setting, record in self.records
            if isinstance(record.get(metric), (int, float))
        ]

    def format(self) -> str:
        """Render the study as a text table."""
        from repro.analysis import format_table

        headers = [self.parameter, "I/O cost [ms]", "response [ms]", "pages/query",
                   "I/O requests", "bitmap pages", "occupancy CV", "allocation"]
        rows = []
        for setting, record in self.records:
            rows.append(
                [
                    setting,
                    f"{record['io_cost_ms']:,.0f}",
                    f"{record['response_time_ms']:,.0f}",
                    f"{record['pages_accessed']:,.0f}",
                    f"{record['io_requests']:,.0f}",
                    f"{record['bitmap_pages']:,}",
                    f"{record['occupancy_cv']:.3f}",
                    str(record["allocation_scheme"]),
                ]
            )
        return f"{self.name}\n{format_table(headers, rows)}"

    def to_dict(self) -> Dict[str, object]:
        """Stable plain-dict form (JSON-ready) for serving study results."""
        return {
            "name": self.name,
            "parameter": self.parameter,
            "records": [
                {"setting": setting, "metrics": dict(record)}
                for setting, record in self.records
            ],
        }


def _candidate_metrics(candidate) -> Dict[str, object]:
    """Extract the standard metric record from an evaluated candidate."""
    summary = candidate.summary()
    return {column: summary[column] for column in _METRIC_COLUMNS}


def _study_setup(owner, options, cache, vectorize, cache_dir):
    """Resolve a study's engine options and its shared evaluation cache.

    ``vectorize=`` / ``cache_dir=`` are the deprecated per-kwarg shims of
    :class:`~repro.api.EngineOptions` (see :func:`resolve_engine_options`).
    With ``options.cache_dir`` the cache is attached to the persistent store
    of that directory (warm-start now, spill at the end of the study);
    attaching is a no-op when ``cache`` already carries a store for the same
    directory.
    """
    # Imported lazily: repro.api sits above the tuning layer (its session
    # dispatches to these studies).
    from repro.api.options import UNSET, resolve_engine_options
    from repro.engine import CacheStore, EvaluationCache

    options, _ = resolve_engine_options(
        options,
        owner=owner,
        vectorize=UNSET if vectorize is None else vectorize,
        cache_dir=UNSET if cache_dir is None else cache_dir,
        # One frame deeper than a shimmed constructor: the warning must pin
        # the study function's caller, not this helper's.
        stacklevel=6,
    )
    cache = cache if cache is not None else EvaluationCache()
    if options.cache_dir:
        cache.attach(CacheStore(options.cache_dir))
    return options, cache


def _check_cancel(cancel) -> None:
    """Abort a study at a setting boundary when its cancel signal is set.

    Settings are a study's chunks: everything evaluated before the cancel is
    already recorded in the shared cache and stays valid for a retry.
    """
    if cancel is None:
        return
    from repro.api.progress import cancel_requested
    from repro.errors import EvaluationCancelled

    if cancel_requested(cancel):
        raise EvaluationCancelled("tuning study cancelled between settings")


def _notify_setting(on_progress, completed: int, total: int, label: str) -> None:
    """Emit one per-setting progress event (settings are a study's chunks).

    The unit accounting is per setting — a study evaluates one candidate per
    setting, so candidates, chunks and units all count settings here.
    """
    if on_progress is None:
        return
    from repro.api.progress import ProgressEvent

    on_progress(
        ProgressEvent(
            phase="study",
            completed=completed,
            total=total,
            chunk=completed,
            num_chunks=total,
            completed_units=completed,
            total_units=total,
            label=label,
        )
    )


def _finish(cache, options) -> None:
    """Spill the study's new entries to the attached store (persist policy)."""
    if options.persist:
        cache.persist()


def _evaluate(
    schema: StarSchema,
    workload: QueryMix,
    system: SystemParameters,
    spec: FragmentationSpec,
    config: Optional[AdvisorConfig],
    bitmap_exclude: Sequence[Tuple[str, str]] = (),
    cache=None,
    options=None,
):
    """Evaluate ``spec`` under one concrete input setting."""
    advisor = Warlock(
        schema, workload, system, config, cache=cache, options=options
    )
    scheme = advisor.design_bitmaps()
    if bitmap_exclude:
        scheme = scheme.without(*bitmap_exclude)
    return advisor.evaluate_spec(spec, scheme)


def disk_count_study(
    schema: StarSchema,
    workload: QueryMix,
    system: SystemParameters,
    spec: FragmentationSpec,
    disk_counts: Sequence[int] = (8, 16, 32, 64, 128),
    config: Optional[AdvisorConfig] = None,
    cache=None,
    vectorize: Any = None,
    cache_dir: Any = None,
    options=None,
    cancel=None,
    on_progress=None,
) -> TuningStudy:
    """Vary the number of disks (the classic scale-out question)."""
    if not disk_counts:
        raise AdvisorError("disk_count_study needs at least one disk count")
    options, cache = _study_setup("disk_count_study", options, cache, vectorize, cache_dir)
    records = []
    for disks in disk_counts:
        _check_cancel(cancel)
        candidate = _evaluate(
            schema,
            workload,
            system.with_disks(disks),
            spec,
            config,
            cache=cache,
            options=options,
        )
        records.append((str(disks), _candidate_metrics(candidate)))
        _notify_setting(on_progress, len(records), len(disk_counts), str(disks))
    _finish(cache, options)
    return TuningStudy(
        name=f"Disk-count study for {spec.label}",
        parameter="disks",
        records=tuple(records),
    )


def architecture_study(
    schema: StarSchema,
    workload: QueryMix,
    system: SystemParameters,
    spec: FragmentationSpec,
    config: Optional[AdvisorConfig] = None,
    cache=None,
    vectorize: Any = None,
    cache_dir: Any = None,
    options=None,
    cancel=None,
    on_progress=None,
) -> TuningStudy:
    """Compare Shared Everything and Shared Disk for the same fragmentation."""
    options, cache = _study_setup(
        "architecture_study", options, cache, vectorize, cache_dir
    )
    records = []
    for architecture in ("shared_everything", "shared_disk"):
        _check_cancel(cancel)
        candidate = _evaluate(
            schema,
            workload,
            system.with_architecture(architecture),
            spec,
            config,
            cache=cache,
            options=options,
        )
        records.append((architecture, _candidate_metrics(candidate)))
        _notify_setting(on_progress, len(records), 2, architecture)
    _finish(cache, options)
    return TuningStudy(
        name=f"Architecture study for {spec.label}",
        parameter="architecture",
        records=tuple(records),
    )


def prefetch_study(
    schema: StarSchema,
    workload: QueryMix,
    system: SystemParameters,
    spec: FragmentationSpec,
    fact_granules: Sequence[Union[int, str]] = (1, 4, 16, 64, 256, "auto"),
    config: Optional[AdvisorConfig] = None,
    cache=None,
    vectorize: Any = None,
    cache_dir: Any = None,
    options=None,
    cancel=None,
    on_progress=None,
) -> TuningStudy:
    """Vary the fact-table prefetch granule (bitmap granule stays on auto)."""
    if not fact_granules:
        raise AdvisorError("prefetch_study needs at least one granule")
    options, cache = _study_setup("prefetch_study", options, cache, vectorize, cache_dir)
    records = []
    for granule in fact_granules:
        _check_cancel(cancel)
        varied = system.with_prefetch(fact=granule)
        candidate = _evaluate(
            schema, workload, varied, spec, config, cache=cache, options=options
        )
        label = "auto" if isinstance(granule, str) else f"{granule} pages"
        record = _candidate_metrics(candidate)
        record["resolved_fact_granule"] = candidate.prefetch.fact_pages
        records.append((label, record))
        _notify_setting(on_progress, len(records), len(fact_granules), label)
    _finish(cache, options)
    return TuningStudy(
        name=f"Prefetch study for {spec.label}",
        parameter="fact prefetch",
        records=tuple(records),
    )


def bitmap_exclusion_study(
    schema: StarSchema,
    workload: QueryMix,
    system: SystemParameters,
    spec: FragmentationSpec,
    exclusions: Sequence[Sequence[Tuple[str, str]]] = ((),),
    config: Optional[AdvisorConfig] = None,
    cache=None,
    vectorize: Any = None,
    cache_dir: Any = None,
    options=None,
    cancel=None,
    on_progress=None,
) -> TuningStudy:
    """Vary the set of excluded bitmap indexes (the space-saving knob of §3.3)."""
    if not exclusions:
        raise AdvisorError("bitmap_exclusion_study needs at least one exclusion set")
    options, cache = _study_setup(
        "bitmap_exclusion_study", options, cache, vectorize, cache_dir
    )
    records = []
    for excluded in exclusions:
        _check_cancel(cancel)
        excluded = tuple(excluded)
        candidate = _evaluate(
            schema,
            workload,
            system,
            spec,
            config,
            bitmap_exclude=excluded,
            cache=cache,
            options=options,
        )
        label = (
            "all suggested indexes"
            if not excluded
            else "without " + ", ".join(f"{d}.{l}" for d, l in excluded)
        )
        records.append((label, _candidate_metrics(candidate)))
        _notify_setting(on_progress, len(records), len(exclusions), label)
    _finish(cache, options)
    return TuningStudy(
        name=f"Bitmap exclusion study for {spec.label}",
        parameter="bitmap scheme",
        records=tuple(records),
    )


def skew_study(
    schema_factory,
    workload: QueryMix,
    system: SystemParameters,
    spec: FragmentationSpec,
    thetas: Sequence[float] = (0.0, 0.5, 1.0),
    config: Optional[AdvisorConfig] = None,
    cache=None,
    vectorize: Any = None,
    cache_dir: Any = None,
    options=None,
    cancel=None,
    on_progress=None,
) -> TuningStudy:
    """Vary the data skew.

    ``schema_factory`` is a callable mapping a Zipf theta to a schema (for
    instance ``lambda theta: apb1_schema(skew={"product": theta})``), because
    skew is a schema property rather than a system parameter.
    """
    if not thetas:
        raise AdvisorError("skew_study needs at least one theta")
    options, cache = _study_setup("skew_study", options, cache, vectorize, cache_dir)
    records = []
    for theta in thetas:
        _check_cancel(cancel)
        schema = schema_factory(theta)
        candidate = _evaluate(
            schema, workload, system, spec, config, cache=cache, options=options
        )
        records.append((f"{theta:.2f}", _candidate_metrics(candidate)))
        _notify_setting(on_progress, len(records), len(thetas), f"{theta:.2f}")
    _finish(cache, options)
    return TuningStudy(
        name=f"Skew study for {spec.label}",
        parameter="zipf theta",
        records=tuple(records),
    )


def workload_weight_study(
    schema: StarSchema,
    workload: QueryMix,
    system: SystemParameters,
    spec: FragmentationSpec,
    reweightings: Dict[str, Dict[str, float]],
    config: Optional[AdvisorConfig] = None,
    cache=None,
    vectorize: Any = None,
    cache_dir: Any = None,
    options=None,
    cancel=None,
    on_progress=None,
) -> TuningStudy:
    """Vary the query-class weights ("query load specifics can be adapted").

    ``reweightings`` maps a label to the weight overrides passed to
    :meth:`repro.workload.QueryMix.reweighted`.  The unmodified mix is always
    evaluated first under the label ``"baseline"``.
    """
    options, cache = _study_setup(
        "workload_weight_study", options, cache, vectorize, cache_dir
    )
    records = []
    _check_cancel(cancel)
    baseline = _evaluate(
        schema, workload, system, spec, config, cache=cache, options=options
    )
    records.append(("baseline", _candidate_metrics(baseline)))
    _notify_setting(on_progress, 1, 1 + len(reweightings), "baseline")
    for label, weights in reweightings.items():
        _check_cancel(cancel)
        candidate = _evaluate(
            schema,
            workload.reweighted(weights),
            system,
            spec,
            config,
            cache=cache,
            options=options,
        )
        records.append((label, _candidate_metrics(candidate)))
        _notify_setting(on_progress, len(records), 1 + len(reweightings), label)
    _finish(cache, options)
    return TuningStudy(
        name=f"Workload weight study for {spec.label}",
        parameter="workload",
        records=tuple(records),
    )
