"""Interactive fine-tuning studies (§3.3 of the paper).

WARLOCK "provides several options to facilitate interactive fine tuning: disk
parameters, query load specifics and bitmap configurations can be interactively
adapted to examine the performance variations they imply."  This package
formalizes those what-if studies as functions that re-evaluate a fragmentation
under systematically varied inputs and return a :class:`TuningStudy` — a small
result table the analysis layer (or the CLI / a notebook) can render directly.
"""

from repro.tuning.studies import (
    TuningStudy,
    architecture_study,
    bitmap_exclusion_study,
    disk_count_study,
    prefetch_study,
    skew_study,
    workload_weight_study,
)

__all__ = [
    "TuningStudy",
    "disk_count_study",
    "architecture_study",
    "prefetch_study",
    "bitmap_exclusion_study",
    "skew_study",
    "workload_weight_study",
]
