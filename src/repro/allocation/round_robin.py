"""Logical round-robin allocation.

Fact-table and bitmap fragments are stored on disk "according to a logical
order of the fragmentation dimensions": fragments are enumerated in the
lexicographic (C-) order of their fragmentation attribute values and dealt to
the disks in turn.  Neighbouring fragments — which a hierarchically restricted
star query tends to touch together — therefore land on different disks, which
maximizes the I/O parallelism available to a single query.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.allocation.placement import Allocation, fragment_total_pages
from repro.bitmap import BitmapScheme
from repro.errors import AllocationError
from repro.fragmentation import FragmentationLayout
from repro.storage import SystemParameters

__all__ = ["round_robin_allocation"]


def round_robin_allocation(
    layout: FragmentationLayout,
    system: SystemParameters,
    bitmap_scheme: Optional[BitmapScheme] = None,
    start_disk: int = 0,
) -> Allocation:
    """Place the fragments of ``layout`` round-robin over the system's disks.

    Parameters
    ----------
    layout:
        The fragmentation layout to place.
    system:
        Target system (number of disks).
    bitmap_scheme:
        Bitmap indexes co-located with the fact fragments; their pages are
        charged to the same disk.
    start_disk:
        Disk receiving the first fragment (useful to stagger multiple fact
        tables over the same disk pool).
    """
    if not 0 <= start_disk < system.num_disks:
        raise AllocationError(
            f"start_disk {start_disk} out of range [0, {system.num_disks})"
        )
    fragment_count = layout.fragment_count
    assignment = (np.arange(fragment_count, dtype=np.int64) + start_disk) % system.num_disks
    pages = fragment_total_pages(layout, bitmap_scheme)
    return Allocation(
        layout=layout,
        system=system,
        disk_of_fragment=assignment,
        fragment_pages=pages,
        scheme="round_robin",
    )
