"""Disk allocation schemes (§2 of the paper).

Fact-table and bitmap fragments are placed on disks either with a *logical
round-robin* scheme (fragments follow the logical order of the fragmentation
dimensions and are dealt to disks in turn) or, under notable data skew, with a
*greedy size-based* scheme that places fragments ordered by decreasing size on
the currently least-occupied disk to keep disk occupancy balanced.
"""

from repro.allocation.placement import Allocation, fragment_total_pages
from repro.allocation.round_robin import round_robin_allocation
from repro.allocation.greedy import greedy_size_allocation
from repro.allocation.chooser import NOTABLE_SKEW_CV, choose_allocation
from repro.allocation.batch import (
    batched_greedy_size_allocation,
    choose_allocations_batch,
    lpt_assignments,
)

__all__ = [
    "Allocation",
    "fragment_total_pages",
    "round_robin_allocation",
    "greedy_size_allocation",
    "choose_allocation",
    "choose_allocations_batch",
    "batched_greedy_size_allocation",
    "lpt_assignments",
    "NOTABLE_SKEW_CV",
]
