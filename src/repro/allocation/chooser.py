"""Allocation scheme selection.

WARLOCK uses the logical round-robin scheme by default and switches to the
greedy size-based scheme "under notable data skew".  The chooser encodes that
decision: when the coefficient of variation of the fragment sizes exceeds a
threshold, the greedy scheme is used.
"""

from __future__ import annotations

from typing import Optional

from repro.allocation.greedy import greedy_size_allocation
from repro.allocation.placement import Allocation
from repro.allocation.round_robin import round_robin_allocation
from repro.bitmap import BitmapScheme
from repro.errors import AllocationError
from repro.fragmentation import FragmentationLayout
from repro.storage import SystemParameters

__all__ = ["choose_allocation", "NOTABLE_SKEW_CV"]

#: Fragment-size coefficient of variation above which skew is considered
#: "notable" and the greedy size-based scheme is preferred.
NOTABLE_SKEW_CV = 0.10


def choose_allocation(
    layout: FragmentationLayout,
    system: SystemParameters,
    bitmap_scheme: Optional[BitmapScheme] = None,
    skew_threshold_cv: float = NOTABLE_SKEW_CV,
) -> Allocation:
    """Pick and build the allocation WARLOCK would recommend for ``layout``.

    Parameters
    ----------
    layout, system, bitmap_scheme:
        As for the individual allocation schemes.
    skew_threshold_cv:
        Fragment-size CV above which the greedy size-based scheme is used.
    """
    if skew_threshold_cv < 0:
        raise AllocationError(
            f"skew_threshold_cv must be non-negative, got {skew_threshold_cv}"
        )
    if layout.fragment_size_cv > skew_threshold_cv:
        return greedy_size_allocation(layout, system, bitmap_scheme)
    return round_robin_allocation(layout, system, bitmap_scheme)
