"""Allocation objects: the mapping from fragments to disks.

An :class:`Allocation` records, for every fragment of a fragmentation layout,
the disk it is stored on.  Bitmap fragments follow the fact-table fragment they
belong to (the paper: "bitmap fragmentation exactly follows the fact table
fragmentation"), so a single assignment vector covers both, and the occupancy
accounting simply adds the bitmap pages of a fragment to its fact pages.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import cached_property
from typing import Dict, Optional, Sequence

import numpy as np

from repro.bitmap import BitmapScheme
from repro.errors import AllocationError
from repro.fragmentation import FragmentationLayout
from repro.skew import coefficient_of_variation, gini_coefficient
from repro.storage import SystemParameters

__all__ = ["fragment_total_pages", "Allocation"]


def fragment_total_pages(
    layout: FragmentationLayout, bitmap_scheme: Optional[BitmapScheme] = None
) -> np.ndarray:
    """Fact plus bitmap pages of every fragment of ``layout``.

    Bitmap storage is charged per fragment because bitmap fragments are
    co-located with their fact fragment.
    """
    pages = layout.fragment_fact_pages.astype(np.float64)
    if bitmap_scheme is not None and not bitmap_scheme.is_empty:
        bits_per_row = bitmap_scheme.total_storage_bits_per_row
        bitmap_bytes = layout.fragment_rows * bits_per_row / 8.0
        bitmap_pages = np.ceil(bitmap_bytes / layout.page_size_bytes)
        pages = pages + bitmap_pages
    return pages


@dataclass(frozen=True)
class Allocation:
    """A placement of every fragment (fact + bitmaps) onto a disk.

    Parameters
    ----------
    layout:
        The fragmentation layout being placed.
    system:
        System parameters (number of disks, capacities).
    disk_of_fragment:
        Integer array, one entry per fragment (flat index order), holding the
        disk number in ``[0, system.num_disks)``.
    fragment_pages:
        Pages charged per fragment (fact plus co-located bitmap pages).
    scheme:
        Name of the allocation scheme that produced the placement
        (``"round_robin"`` or ``"greedy_size"``).
    """

    layout: FragmentationLayout
    system: SystemParameters
    disk_of_fragment: np.ndarray
    fragment_pages: np.ndarray
    scheme: str

    def __post_init__(self) -> None:
        assignment = np.asarray(self.disk_of_fragment, dtype=np.int64)
        pages = np.asarray(self.fragment_pages, dtype=np.float64)
        if assignment.shape != (self.layout.fragment_count,):
            raise AllocationError(
                f"disk assignment has {assignment.shape[0] if assignment.ndim else 0} "
                f"entries but the layout has {self.layout.fragment_count} fragments"
            )
        if pages.shape != (self.layout.fragment_count,):
            raise AllocationError(
                f"fragment_pages has {pages.shape[0] if pages.ndim else 0} entries "
                f"but the layout has {self.layout.fragment_count} fragments"
            )
        if assignment.size and (assignment.min() < 0 or assignment.max() >= self.system.num_disks):
            raise AllocationError(
                f"disk assignment contains disks outside [0, {self.system.num_disks})"
            )
        if np.any(pages < 0):
            raise AllocationError("fragment page counts must be non-negative")
        object.__setattr__(self, "disk_of_fragment", assignment)
        object.__setattr__(self, "fragment_pages", pages)

    # -- basic accessors ---------------------------------------------------------

    @property
    def num_disks(self) -> int:
        """Number of disks in the target configuration."""
        return self.system.num_disks

    def disk_of(self, fragment_index: int) -> int:
        """Disk holding the fragment with the given flat index."""
        if not 0 <= fragment_index < self.layout.fragment_count:
            raise AllocationError(
                f"fragment index {fragment_index} out of range "
                f"[0, {self.layout.fragment_count})"
            )
        return int(self.disk_of_fragment[fragment_index])

    def fragments_on(self, disk: int) -> np.ndarray:
        """Flat indices of the fragments stored on ``disk``."""
        if not 0 <= disk < self.num_disks:
            raise AllocationError(f"disk {disk} out of range [0, {self.num_disks})")
        return np.nonzero(self.disk_of_fragment == disk)[0]

    # -- occupancy ------------------------------------------------------------------

    @cached_property
    def occupancy_pages(self) -> np.ndarray:
        """Pages stored on each disk (fact plus bitmap pages)."""
        occupancy = np.zeros(self.num_disks, dtype=np.float64)
        np.add.at(occupancy, self.disk_of_fragment, self.fragment_pages)
        return occupancy

    @cached_property
    def fragments_per_disk(self) -> np.ndarray:
        """Number of fragments stored on each disk."""
        counts = np.zeros(self.num_disks, dtype=np.int64)
        np.add.at(counts, self.disk_of_fragment, 1)
        return counts

    @property
    def total_pages(self) -> float:
        """Total pages placed (all disks)."""
        return float(self.fragment_pages.sum())

    @property
    def max_occupancy_pages(self) -> float:
        """Pages on the most loaded disk."""
        return float(self.occupancy_pages.max())

    @property
    def min_occupancy_pages(self) -> float:
        """Pages on the least loaded disk."""
        return float(self.occupancy_pages.min())

    @property
    def occupancy_cv(self) -> float:
        """Coefficient of variation of per-disk occupancy (0 = perfectly balanced)."""
        return coefficient_of_variation(self.occupancy_pages.tolist())

    @property
    def occupancy_gini(self) -> float:
        """Gini coefficient of per-disk occupancy."""
        return gini_coefficient(self.occupancy_pages.tolist())

    @property
    def occupancy_imbalance(self) -> float:
        """Max over mean occupancy ratio (1.0 = perfectly balanced)."""
        mean = self.occupancy_pages.mean()
        if mean == 0:
            return 1.0
        return float(self.max_occupancy_pages / mean)

    def fits_capacity(self) -> bool:
        """True when the most loaded disk stays within the disk capacity."""
        capacity_pages = self.system.disk.capacity_pages(self.system.page_size_bytes)
        return self.max_occupancy_pages <= capacity_pages

    # -- access distribution -----------------------------------------------------------

    def access_distribution(
        self,
        fragment_indices: Sequence[int],
        pages_per_fragment: Optional[Sequence[float]] = None,
    ) -> np.ndarray:
        """Pages read from each disk when the given fragments are accessed.

        Parameters
        ----------
        fragment_indices:
            Flat indices of the accessed fragments.
        pages_per_fragment:
            Pages read from each accessed fragment.  Defaults to the stored
            fragment page counts (a full-fragment read).
        """
        indices = np.asarray(list(fragment_indices), dtype=np.int64)
        if indices.size and (
            indices.min() < 0 or indices.max() >= self.layout.fragment_count
        ):
            raise AllocationError("accessed fragment index out of range")
        if pages_per_fragment is None:
            pages = self.fragment_pages[indices]
        else:
            pages = np.asarray(list(pages_per_fragment), dtype=np.float64)
            if pages.shape != indices.shape:
                raise AllocationError(
                    "pages_per_fragment must match fragment_indices in length"
                )
        distribution = np.zeros(self.num_disks, dtype=np.float64)
        if indices.size:
            np.add.at(distribution, self.disk_of_fragment[indices], pages)
        return distribution

    # -- presentation ----------------------------------------------------------------------

    def occupancy_summary(self) -> Dict[str, float]:
        """Key occupancy statistics as a plain dict (for reports / JSON)."""
        return {
            "scheme": self.scheme,
            "num_disks": float(self.num_disks),
            "total_pages": self.total_pages,
            "max_occupancy_pages": self.max_occupancy_pages,
            "min_occupancy_pages": self.min_occupancy_pages,
            "occupancy_cv": self.occupancy_cv,
            "occupancy_imbalance": self.occupancy_imbalance,
        }

    def describe(self) -> str:
        """Human-readable occupancy summary."""
        return (
            f"{self.scheme} allocation over {self.num_disks} disks: "
            f"{self.total_pages:,.0f} pages total, per-disk "
            f"{self.min_occupancy_pages:,.0f}..{self.max_occupancy_pages:,.0f} pages, "
            f"CV {self.occupancy_cv:.4f}, imbalance "
            f"{self.occupancy_imbalance:.3f}"
        )

    # -- capacity planning ------------------------------------------------------------------

    def disks_needed_for_capacity(self) -> int:
        """Minimum number of identical disks that could hold the placed data."""
        capacity_pages = self.system.disk.capacity_pages(self.system.page_size_bytes)
        if capacity_pages <= 0:
            raise AllocationError("disk capacity is zero pages")
        return max(1, int(math.ceil(self.total_pages / capacity_pages)))
