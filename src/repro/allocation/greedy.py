"""Greedy size-based allocation.

Under notable data skew the fragment sizes differ widely and a round-robin
placement can leave disks unevenly occupied.  The greedy scheme therefore
considers fragments ordered by decreasing size and stores each on the currently
least-occupied disk (classic LPT / longest-processing-time placement), which
keeps disk occupancy balanced.
"""

from __future__ import annotations

import heapq
from typing import Optional

import numpy as np

from repro.allocation.placement import Allocation, fragment_total_pages
from repro.bitmap import BitmapScheme
from repro.fragmentation import FragmentationLayout
from repro.storage import SystemParameters

__all__ = ["greedy_size_allocation"]


def greedy_size_allocation(
    layout: FragmentationLayout,
    system: SystemParameters,
    bitmap_scheme: Optional[BitmapScheme] = None,
) -> Allocation:
    """Place fragments by decreasing size onto the least occupied disk.

    Ties between equally occupied disks are broken towards the lower disk
    number, which makes the placement deterministic.
    """
    pages = fragment_total_pages(layout, bitmap_scheme)
    order = np.argsort(-pages, kind="stable")
    assignment = np.empty(layout.fragment_count, dtype=np.int64)

    # Min-heap of (occupancy, disk number); pushing the updated occupancy back
    # keeps every placement O(log num_disks).
    heap = [(0.0, disk) for disk in range(system.num_disks)]
    heapq.heapify(heap)
    for fragment_index in order:
        occupancy, disk = heapq.heappop(heap)
        assignment[fragment_index] = disk
        heapq.heappush(heap, (occupancy + float(pages[fragment_index]), disk))

    return Allocation(
        layout=layout,
        system=system,
        disk_of_fragment=assignment,
        fragment_pages=pages,
        scheme="greedy_size",
    )
