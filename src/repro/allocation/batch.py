"""Batched disk allocation for the candidate-axis executor.

The candidate-vectorized sweep evaluates whole same-axis-structure groups as
(candidate × class) numpy batches, but allocation used to drop back to one
Python heap loop per candidate (:mod:`repro.allocation.greedy`).  This module
runs the same LPT placement over a padded (candidate × fragment) page matrix
for a whole group at once: per placement step, one ``argmin`` row picks the
least-occupied disk of *every* candidate simultaneously, so the interpreter
iterates ``max(fragment_count)`` times per group instead of
``sum(fragment_count)`` times.

Parity is exact, not approximate: the scalar heap pops ``(occupancy, disk)``
tuples — the minimum occupancy, lowest disk number first — which is precisely
``np.argmin`` over an occupancy row (first index of the minimum), and each
disk's occupancy accumulates the same floats in the same order, so every
intermediate double and every tie-break decision is bit-identical to
:func:`~repro.allocation.greedy.greedy_size_allocation`.  The scalar schemes
remain the reference implementation; the parity suite asserts field-by-field
equality.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.allocation.chooser import NOTABLE_SKEW_CV
from repro.allocation.placement import Allocation, fragment_total_pages
from repro.allocation.round_robin import round_robin_allocation
from repro.bitmap import BitmapScheme
from repro.errors import AllocationError
from repro.fragmentation import FragmentationLayout
from repro.storage import SystemParameters

__all__ = [
    "lpt_assignments",
    "batched_greedy_size_allocation",
    "choose_allocations_batch",
]


def lpt_assignments(
    pages_list: Sequence[np.ndarray], num_disks: int
) -> List[np.ndarray]:
    """LPT disk assignments for many independent fragment-size vectors.

    For each entry of ``pages_list`` (one candidate's per-fragment page
    counts) this computes the same assignment the scalar heap produces: visit
    fragments by decreasing size (stable order on ties) and place each on the
    currently least-occupied disk, ties towards the lower disk number.  All
    candidates advance in lockstep over a padded (candidate × fragment)
    matrix; rows shorter than the widest candidate add zero occupancy in
    their padded steps, which leaves their accumulated doubles untouched.
    """
    if num_disks < 1:
        raise AllocationError(f"need at least one disk, got {num_disks}")
    n = len(pages_list)
    if n == 0:
        return []
    counts = np.fromiter((len(pages) for pages in pages_list), dtype=np.int64, count=n)
    max_fragments = int(counts.max())
    if max_fragments == 0:
        return [np.empty(0, dtype=np.int64) for _ in range(n)]

    # Pad with -1.0: page counts are non-negative, so under the descending
    # (stable argsort of the negated matrix) order every pad sorts strictly
    # after every real fragment and the real prefix matches the scalar
    # ``np.argsort(-pages, kind="stable")`` exactly.
    padded = np.full((n, max_fragments), -1.0, dtype=np.float64)
    for i, pages in enumerate(pages_list):
        padded[i, : len(pages)] = pages
    order = np.argsort(-padded, axis=1, kind="stable")
    sorted_pages = np.take_along_axis(padded, order, axis=1)

    occupancy = np.zeros((n, num_disks), dtype=np.float64)
    chosen = np.empty((n, max_fragments), dtype=np.int64)
    rows = np.arange(n)
    for step in range(max_fragments):
        # First index of the row minimum == (min occupancy, min disk), the
        # scalar heap's pop order.
        disks = np.argmin(occupancy, axis=1)
        chosen[:, step] = disks
        active = step < counts
        occupancy[rows, disks] += np.where(active, sorted_pages[:, step], 0.0)

    assignments: List[np.ndarray] = []
    for i in range(n):
        count = int(counts[i])
        assignment = np.empty(count, dtype=np.int64)
        assignment[order[i, :count]] = chosen[i, :count]
        assignments.append(assignment)
    return assignments


def batched_greedy_size_allocation(
    layouts: Sequence[FragmentationLayout],
    system: SystemParameters,
    bitmap_scheme: Optional[BitmapScheme] = None,
) -> List[Allocation]:
    """Greedy size-based allocations for many layouts in one batched pass.

    Bit-identical to calling
    :func:`~repro.allocation.greedy.greedy_size_allocation` per layout.
    """
    pages_list = [fragment_total_pages(layout, bitmap_scheme) for layout in layouts]
    assignments = lpt_assignments(pages_list, system.num_disks)
    return [
        Allocation(
            layout=layout,
            system=system,
            disk_of_fragment=assignment,
            fragment_pages=pages,
            scheme="greedy_size",
        )
        for layout, pages, assignment in zip(layouts, pages_list, assignments)
    ]


def choose_allocations_batch(
    layouts: Sequence[FragmentationLayout],
    system: SystemParameters,
    bitmap_scheme: Optional[BitmapScheme] = None,
    skew_threshold_cv: float = NOTABLE_SKEW_CV,
) -> List[Allocation]:
    """Scheme selection plus placement for a whole candidate group.

    The per-layout decision mirrors
    :func:`~repro.allocation.chooser.choose_allocation` exactly: layouts with
    a fragment-size CV above the threshold take the (batched) greedy scheme,
    the rest take logical round-robin (already a cheap ``arange``, so it runs
    per layout).
    """
    if skew_threshold_cv < 0:
        raise AllocationError(
            f"skew_threshold_cv must be non-negative, got {skew_threshold_cv}"
        )
    allocations: List[Optional[Allocation]] = [None] * len(layouts)
    greedy_positions: List[int] = []
    for i, layout in enumerate(layouts):
        if layout.fragment_size_cv > skew_threshold_cv:
            greedy_positions.append(i)
        else:
            allocations[i] = round_robin_allocation(layout, system, bitmap_scheme)
    if greedy_positions:
        batched = batched_greedy_size_allocation(
            [layouts[i] for i in greedy_positions], system, bitmap_scheme
        )
        for position, allocation in zip(greedy_positions, batched):
            allocations[position] = allocation
    return allocations  # type: ignore[return-value]
