"""WARLOCK advisor core (prediction layer, §3.2).

The advisor glues the substrates together: it enumerates fragmentation
candidates, excludes candidates by thresholds, evaluates the survivors with the
analytical I/O model, ranks them with the twofold heuristic (overall I/O cost
first, response time among the leading X%), and packages the top candidates —
each with its bitmap scheme, prefetch suggestion and disk allocation — into a
recommendation.
"""

from repro.core.config import AdvisorConfig
from repro.core.thresholds import ExclusionReport, evaluate_thresholds
from repro.core.candidates import FragmentationCandidate
from repro.core.ranking import (
    RankedCandidate,
    rank_candidates,
    rank_candidates_columnar,
)
from repro.core.advisor import Recommendation, Warlock

__all__ = [
    "AdvisorConfig",
    "ExclusionReport",
    "evaluate_thresholds",
    "FragmentationCandidate",
    "RankedCandidate",
    "rank_candidates",
    "rank_candidates_columnar",
    "Warlock",
    "Recommendation",
]
