"""Exclusion thresholds on the fragmentation candidate space.

The prediction layer applies thresholds to exclude fragmentations "that, for
instance, cause fragment sizes to drop below the prefetching granule etc."
before the expensive cost evaluation runs.  Each rule is cheap: it only needs
the fragment count the spec induces and the fact-table volume, not a
materialized layout.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.config import AdvisorConfig
from repro.fragmentation import FragmentationSpec
from repro.schema import FactTable, StarSchema
from repro.storage import SystemParameters

__all__ = ["evaluate_thresholds", "ExclusionReport"]

#: Prefetch granule (pages) assumed by the minimum-fragment-size threshold when
#: the system asks for auto-optimized prefetching.  Matches a common 128 KB
#: prefetch unit on 8 KB pages.
DEFAULT_PREFETCH_HINT_PAGES = 16


def _prefetch_hint_pages(system: SystemParameters) -> int:
    """Prefetch granule used as the minimum-fragment-size hint."""
    if not system.fact_prefetch_is_auto:
        return int(system.prefetch_pages_fact)
    return DEFAULT_PREFETCH_HINT_PAGES


def evaluate_thresholds(
    spec: FragmentationSpec,
    schema: StarSchema,
    fact: FactTable,
    system: SystemParameters,
    config: AdvisorConfig,
) -> List[str]:
    """Return the list of threshold violations of ``spec`` (empty = candidate survives).

    The rules, in evaluation order:

    1. *minimum fragment count* — the candidate must produce at least one
       fragment per disk, otherwise parallel I/O cannot use the configuration;
    2. *maximum fragment count* — overly fine fragmentations explode catalogue
       and management overhead;
    3. *minimum fragment size* — the average fragment must not drop below the
       prefetching granule;
    4. *capacity* — the fact table (ignoring bitmaps) must fit the disk pool.
    """
    violations: List[str] = []
    fragment_count = spec.fragment_count(schema)

    min_fragments = config.resolved_min_fragments(system.num_disks)
    if spec.is_fragmented and fragment_count < min_fragments:
        violations.append(
            f"only {fragment_count:,} fragments (< minimum {min_fragments:,}, "
            f"one per disk)"
        )

    if fragment_count > config.max_fragments:
        violations.append(
            f"{fragment_count:,} fragments exceed the maximum of "
            f"{config.max_fragments:,}"
        )

    total_pages = fact.pages(system.page_size_bytes)
    average_fragment_pages = total_pages / fragment_count
    min_pages = config.resolved_min_fragment_pages(_prefetch_hint_pages(system))
    if average_fragment_pages < min_pages:
        violations.append(
            f"average fragment size {average_fragment_pages:,.1f} pages drops "
            f"below the prefetching granule ({min_pages} pages)"
        )

    if total_pages > system.total_capacity_pages:
        violations.append(
            f"fact table needs {total_pages:,} pages but the disk pool only "
            f"holds {system.total_capacity_pages:,}"
        )

    return violations


@dataclass
class ExclusionReport:
    """Book-keeping of which candidates the thresholds excluded and why."""

    considered: int = 0
    excluded: Dict[str, Tuple[str, ...]] = field(default_factory=dict)

    def record(self, spec: FragmentationSpec, violations: List[str]) -> None:
        """Record the outcome of threshold evaluation for one candidate."""
        self.considered += 1
        if violations:
            self.excluded[spec.label] = tuple(violations)

    @property
    def excluded_count(self) -> int:
        """Number of candidates the thresholds removed."""
        return len(self.excluded)

    @property
    def surviving_count(self) -> int:
        """Number of candidates that passed all thresholds."""
        return self.considered - self.excluded_count

    def reasons_for(self, label: str) -> Optional[Tuple[str, ...]]:
        """The violation list of an excluded candidate, or ``None`` if it survived."""
        return self.excluded.get(label)

    def violation_histogram(self) -> Dict[str, int]:
        """How often each violation kind (first word group) was triggered."""
        histogram: Dict[str, int] = {}
        for violations in self.excluded.values():
            for violation in violations:
                key = violation.split("(")[0].strip()
                histogram[key] = histogram.get(key, 0) + 1
        return histogram

    def describe(self) -> str:
        """Human-readable summary used in reports."""
        lines = [
            f"Candidate space: {self.considered:,} point fragmentations considered, "
            f"{self.excluded_count:,} excluded by thresholds, "
            f"{self.surviving_count:,} evaluated"
        ]
        for label, violations in sorted(self.excluded.items()):
            lines.append(f"  excluded {label}: {'; '.join(violations)}")
        return "\n".join(lines)
