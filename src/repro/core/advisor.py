"""The WARLOCK advisor: input layer -> prediction layer -> recommendation.

:class:`Warlock` is the classic one-shot entry point a DBA (or a GUI / CLI
front end) interacts with.  It takes the three input blocks of the paper's
input layer — the star schema, the DBS & disk parameters and the weighted
star query mix — and produces a :class:`Recommendation`: the ranked list of
fragmentation candidates, each complete with bitmap scheme, prefetch
suggestion, disk allocation and per-query-class cost prediction.

Since the API redesign, :class:`Warlock` is a thin compatibility wrapper over
an :class:`~repro.api.AdvisorSession`: the session owns the compiled inputs,
the evaluation engine and the shared cache, and additionally serves typed
requests, incremental what-if deltas (``session.with_delta(...)``) and
progress/cancellation.  New code should use sessions directly; ``Warlock``
keeps the historical surface (``recommend()``, ``evaluate_spec()``,
``generate_specs()``, ...) stable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.bitmap import BitmapScheme
from repro.core.candidates import FragmentationCandidate
from repro.core.config import AdvisorConfig
from repro.core.ranking import RankedCandidate
from repro.core.thresholds import ExclusionReport
from repro.errors import AdvisorError
from repro.fragmentation import FragmentationSpec
from repro.schema import StarSchema
from repro.storage import SystemParameters
from repro.workload import QueryMix

__all__ = ["Warlock", "Recommendation"]

#: Per-kind entry bound of the advisor's default evaluation cache.  Structure
#: entries are tiny; candidate entries carry per-fragment arrays, so the bound
#: keeps a long-lived advisor's footprint at worst tens of MB while still
#: covering several full sweeps.
DEFAULT_CACHE_ENTRIES = 2048


@dataclass(frozen=True)
class Recommendation:
    """The advisor's output: ranked candidates plus provenance."""

    ranked: Tuple[RankedCandidate, ...]
    evaluated: Tuple[FragmentationCandidate, ...]
    exclusion_report: ExclusionReport
    config: AdvisorConfig
    schema: StarSchema
    workload: QueryMix
    system: SystemParameters

    @property
    def best(self) -> FragmentationCandidate:
        """The top-ranked fragmentation candidate."""
        if not self.ranked:
            raise AdvisorError("the recommendation contains no ranked candidates")
        return self.ranked[0].candidate

    def candidate(self, label: str) -> FragmentationCandidate:
        """Look up an evaluated candidate by its fragmentation label."""
        for candidate in self.evaluated:
            if candidate.label == label:
                return candidate
        raise AdvisorError(f"no evaluated candidate labelled {label!r}")

    def describe(self) -> str:
        """Compact multi-line summary of the ranked list."""
        lines = [
            f"WARLOCK recommendation for schema {self.schema.name!r} "
            f"({self.system.describe()})",
            self.exclusion_report.describe().splitlines()[0],
            f"Top {len(self.ranked)} fragmentations "
            f"(leading {self.config.top_fraction:.0%} by I/O cost, ranked by "
            f"response time):",
        ]
        lines.extend(f"  {ranked.describe()}" for ranked in self.ranked)
        return "\n".join(lines)

    def to_dict(
        self,
        include_all_candidates: bool = False,
        include_query_statistics: bool = True,
    ) -> Dict[str, Any]:
        """Stable plain-dict form (see :func:`repro.io.recommendation_to_dict`)."""
        # Imported lazily: repro.io builds on the analysis layer, which the
        # core must not depend on at import time.
        from repro.io import recommendation_to_dict

        return recommendation_to_dict(
            self,
            include_all_candidates=include_all_candidates,
            include_query_statistics=include_query_statistics,
        )


class Warlock:
    """The data allocation advisor (compatibility wrapper over a session).

    Parameters
    ----------
    schema:
        Star schema (dimensions with hierarchy cardinalities, fact tables with
        row counts and sizes, optional skew).
    workload:
        Weighted star-query mix.
    system:
        DBS & disk parameters.
    config:
        Advisor tunables; defaults follow the paper.
    fact_table:
        Name of the fact table to fragment; the schema's primary fact table
        when omitted.
    options:
        Execution options (:class:`repro.api.EngineOptions`): worker count,
        vectorization, caching, persistent store directory and spill policy.
        Defaults to serial, vectorized, cached, memory-only.
    cache:
        A concrete :class:`repro.engine.EvaluationCache` instance to share
        evaluations across advisors/sessions (what-if tuning does).  ``None``
        (default) creates a private bounded cache when ``options.cache`` is
        true.
    jobs, vectorize, cache_dir:
        Deprecated aliases of the corresponding :class:`EngineOptions`
        fields; passing them emits an
        :class:`~repro.api.EngineOptionsDeprecationWarning`.  ``cache=False``
        is likewise a deprecated alias of ``EngineOptions(cache=False)``.
    """

    def __init__(
        self,
        schema: StarSchema,
        workload: QueryMix,
        system: SystemParameters,
        config: Optional[AdvisorConfig] = None,
        fact_table: Optional[str] = None,
        jobs: Any = None,
        cache: Any = None,
        vectorize: Any = None,
        cache_dir: Any = None,
        options: Optional["EngineOptions"] = None,  # noqa: F821
    ) -> None:
        # Imported lazily: repro.api sits above the core in the layer stack
        # (its session imports this module).
        from repro.api.options import UNSET, resolve_engine_options
        from repro.api.session import AdvisorSession

        options, shared_cache = resolve_engine_options(
            options,
            owner="Warlock",
            jobs=UNSET if jobs is None else jobs,
            vectorize=UNSET if vectorize is None else vectorize,
            cache=UNSET if cache is None else cache,
            cache_dir=UNSET if cache_dir is None else cache_dir,
        )
        self._session = AdvisorSession(
            schema,
            workload,
            system,
            config=config,
            fact_table=fact_table,
            options=options,
            cache=shared_cache,
        )

    # -- session views ----------------------------------------------------------

    @property
    def session(self):
        """The underlying :class:`repro.api.AdvisorSession`."""
        return self._session

    @property
    def schema(self) -> StarSchema:
        return self._session.schema

    @property
    def workload(self) -> QueryMix:
        return self._session.workload

    @property
    def system(self) -> SystemParameters:
        return self._session.system

    @property
    def config(self) -> AdvisorConfig:
        return self._session.config

    @property
    def fact(self):
        return self._session.fact

    @property
    def schema_warnings(self):
        return self._session.schema_warnings

    @property
    def options(self):
        """The session's :class:`repro.api.EngineOptions`."""
        return self._session.options

    @property
    def cache(self):
        return self._session.cache

    @property
    def jobs(self):
        return self._session.options.jobs

    @property
    def vectorize(self) -> bool:
        return self._session.options.vectorize

    @property
    def cache_dir(self) -> Optional[str]:
        return self._session.options.cache_dir

    # -- candidate generation ---------------------------------------------------

    def generate_specs(self) -> Tuple[List[FragmentationSpec], ExclusionReport]:
        """Enumerate point fragmentations and apply the exclusion thresholds."""
        return self._session.generate_specs()

    # -- evaluation -------------------------------------------------------------

    def design_bitmaps(self) -> BitmapScheme:
        """Design the workload-driven bitmap scheme (shared across candidates)."""
        return self._session.design_bitmaps()

    def engine(self):
        """The candidate-evaluation engine bound to this advisor's inputs."""
        return self._session.engine

    def persist_cache(self) -> Optional[int]:
        """Spill the evaluation cache to its persistent store, if one is attached.

        The engine already persists after every sweep; this flushes anything
        accumulated since (e.g. by tuning studies sharing the cache).  Returns
        the number of entries written, or ``None`` when there is no attached
        store, nothing new to save, the store is unwritable, or
        ``options.persist`` is false (the store is read-only).
        """
        return self._session.persist_cache()

    def evaluate_spec(
        self,
        spec: FragmentationSpec,
        bitmap_scheme: Optional[BitmapScheme] = None,
    ) -> FragmentationCandidate:
        """Fully evaluate a single fragmentation candidate."""
        return self._session.evaluate_spec(spec, bitmap_scheme=bitmap_scheme)

    def evaluate_candidates(
        self,
        specs: Optional[List[FragmentationSpec]] = None,
        on_progress=None,
        cancel=None,
    ) -> Tuple[List[FragmentationCandidate], ExclusionReport]:
        """Evaluate every surviving candidate (or an explicit list of specs).

        The sweep runs through the evaluation engine: serial when
        ``jobs == 1``, on a process pool otherwise, with identical results
        either way.
        """
        if specs is None:
            specs, report = self.generate_specs()
        else:
            report = ExclusionReport()
        if not specs:
            return [], report
        candidates = self._session.engine.evaluate_specs(
            specs, on_progress=on_progress, cancel=cancel
        )
        return candidates, report

    # -- recommendation ---------------------------------------------------------

    def recommend(self, on_progress=None, cancel=None) -> Recommendation:
        """Run the full pipeline and return the ranked recommendation.

        ``on_progress`` receives one :class:`repro.api.ProgressEvent` per
        completed evaluation chunk; ``cancel`` (a
        :class:`repro.api.CancellationToken` or a zero-argument callable)
        aborts the sweep at the next chunk boundary with
        :class:`~repro.errors.EvaluationCancelled`.
        """
        return self._session.recommend(
            on_progress=on_progress, cancel=cancel
        ).recommendation

    # -- analysis convenience ---------------------------------------------------

    def analyze(self, candidate: FragmentationCandidate) -> str:
        """Render the detailed per-query-class statistic for ``candidate``.

        Thin convenience wrapper over :func:`repro.analysis.format_query_analysis`
        (imported lazily to keep the core free of presentation dependencies).
        """
        from repro.analysis import format_query_analysis

        return format_query_analysis(candidate, self.workload)
