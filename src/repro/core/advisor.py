"""The WARLOCK advisor: input layer -> prediction layer -> recommendation.

:class:`Warlock` is the top-level object a DBA (or a GUI / CLI front end)
interacts with.  It takes the three input blocks of the paper's input layer —
the star schema, the DBS & disk parameters and the weighted star query mix —
and produces a :class:`Recommendation`: the ranked list of fragmentation
candidates, each complete with bitmap scheme, prefetch suggestion, disk
allocation and per-query-class cost prediction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.bitmap import BitmapScheme, design_bitmap_scheme
from repro.core.candidates import FragmentationCandidate
from repro.core.config import AdvisorConfig
from repro.core.ranking import RankedCandidate, rank_candidates
from repro.core.thresholds import ExclusionReport, evaluate_thresholds
from repro.errors import AdvisorError
from repro.fragmentation import (
    FragmentationSpec,
    enumerate_point_fragmentations,
)
from repro.schema import StarSchema, validate_schema
from repro.storage import SystemParameters
from repro.workload import QueryMix

__all__ = ["Warlock", "Recommendation"]

#: Per-kind entry bound of the advisor's default evaluation cache.  Structure
#: entries are tiny; candidate entries carry per-fragment arrays, so the bound
#: keeps a long-lived advisor's footprint at worst tens of MB while still
#: covering several full sweeps.
DEFAULT_CACHE_ENTRIES = 2048


@dataclass(frozen=True)
class Recommendation:
    """The advisor's output: ranked candidates plus provenance."""

    ranked: Tuple[RankedCandidate, ...]
    evaluated: Tuple[FragmentationCandidate, ...]
    exclusion_report: ExclusionReport
    config: AdvisorConfig
    schema: StarSchema
    workload: QueryMix
    system: SystemParameters

    @property
    def best(self) -> FragmentationCandidate:
        """The top-ranked fragmentation candidate."""
        if not self.ranked:
            raise AdvisorError("the recommendation contains no ranked candidates")
        return self.ranked[0].candidate

    def candidate(self, label: str) -> FragmentationCandidate:
        """Look up an evaluated candidate by its fragmentation label."""
        for candidate in self.evaluated:
            if candidate.label == label:
                return candidate
        raise AdvisorError(f"no evaluated candidate labelled {label!r}")

    def describe(self) -> str:
        """Compact multi-line summary of the ranked list."""
        lines = [
            f"WARLOCK recommendation for schema {self.schema.name!r} "
            f"({self.system.describe()})",
            self.exclusion_report.describe().splitlines()[0],
            f"Top {len(self.ranked)} fragmentations "
            f"(leading {self.config.top_fraction:.0%} by I/O cost, ranked by "
            f"response time):",
        ]
        lines.extend(f"  {ranked.describe()}" for ranked in self.ranked)
        return "\n".join(lines)


class Warlock:
    """The data allocation advisor.

    Parameters
    ----------
    schema:
        Star schema (dimensions with hierarchy cardinalities, fact tables with
        row counts and sizes, optional skew).
    workload:
        Weighted star-query mix.
    system:
        DBS & disk parameters.
    config:
        Advisor tunables; defaults follow the paper.
    fact_table:
        Name of the fact table to fragment; the schema's primary fact table
        when omitted.
    jobs:
        Worker processes used by the candidate-evaluation engine.  ``1``
        (default) evaluates serially in-process; higher values sweep the
        candidates on a process pool with guaranteed result parity; ``"auto"``
        picks the worker count per sweep from the available CPUs and the
        candidate count (:func:`repro.engine.adaptive_jobs`).
    cache:
        Evaluation cache (:class:`repro.engine.EvaluationCache`).  ``None``
        (default) creates a private cache, so repeated ``recommend()`` /
        ``evaluate_spec()`` calls on the same advisor reuse access structures;
        pass a shared instance to reuse evaluations across advisors (what-if
        tuning does), or ``False`` to disable caching entirely.
    vectorize:
        ``True`` (default) evaluates each candidate's per-query-class cost
        sweep as numpy vectors over the class axis; ``False`` runs the scalar
        reference path (CLI ``--no-vectorize``).  Results are bit-identical
        either way.
    cache_dir:
        Directory of a persistent evaluation-cache store
        (:class:`repro.engine.CacheStore`; CLI ``--cache-dir``).  When given,
        the cache warm-starts from disk on the first evaluation and spills
        back after every sweep, so repeated advisor *processes* on the same
        inputs answer their sweeps from the store.  A corrupted, stale or
        unwritable store silently degrades to a cold in-memory run — it can
        never change a result.  Ignored when ``cache=False``.
    """

    def __init__(
        self,
        schema: StarSchema,
        workload: QueryMix,
        system: SystemParameters,
        config: Optional[AdvisorConfig] = None,
        fact_table: Optional[str] = None,
        jobs=1,
        cache=None,
        vectorize: bool = True,
        cache_dir: Optional[str] = None,
    ) -> None:
        # Imported lazily to keep `repro.core` importable before `repro.engine`
        # (the engine imports core.candidates).
        from repro.engine import EvaluationCache

        if jobs != "auto" and (not isinstance(jobs, int) or jobs < 1):
            raise AdvisorError(
                f'jobs must be a positive integer or "auto", got {jobs!r}'
            )
        self.schema = schema
        self.workload = workload
        self.system = system
        self.config = config if config is not None else AdvisorConfig()
        self.fact = schema.fact_table(fact_table)
        self.schema_warnings = validate_schema(schema)
        workload.validate(schema)
        self.jobs = jobs
        self.vectorize = vectorize
        if cache is False:
            self.cache = None
        elif cache is None:
            # Bounded by default: candidate entries retain whole evaluations
            # (per-fragment allocation arrays included), so an advisor that
            # lives across many large sweeps must not grow without limit.
            self.cache = EvaluationCache(max_entries=DEFAULT_CACHE_ENTRIES)
        else:
            self.cache = cache
        self.cache_dir = cache_dir
        self._engine = None

    # -- candidate generation -------------------------------------------------------

    def generate_specs(self) -> Tuple[List[FragmentationSpec], ExclusionReport]:
        """Enumerate point fragmentations and apply the exclusion thresholds."""
        report = ExclusionReport()
        surviving: List[FragmentationSpec] = []
        for spec in enumerate_point_fragmentations(
            self.schema,
            fact_table=self.fact.name,
            max_dimensions=self.config.max_fragmentation_dimensions,
            include_baseline=self.config.include_baseline,
        ):
            violations = evaluate_thresholds(
                spec, self.schema, self.fact, self.system, self.config
            )
            report.record(spec, violations)
            if not violations:
                surviving.append(spec)
        if not surviving:
            raise AdvisorError(
                "all fragmentation candidates were excluded by the thresholds; "
                "relax min/max fragment bounds or check the system parameters"
            )
        return surviving, report

    # -- evaluation ---------------------------------------------------------------------

    def design_bitmaps(self) -> BitmapScheme:
        """Design the workload-driven bitmap scheme (shared across candidates)."""
        return design_bitmap_scheme(
            self.schema,
            self.workload,
            fact_table=self.fact.name,
            cardinality_threshold=self.config.bitmap_cardinality_threshold,
        )

    def engine(self):
        """The candidate-evaluation engine bound to this advisor's inputs.

        Memoized: every input the engine captures is immutable, and engine
        construction re-validates the workload, which needs doing only once.
        """
        from repro.engine import EvaluationEngine

        if self._engine is None:
            self._engine = EvaluationEngine(
                self.schema,
                self.workload,
                self.system,
                self.config,
                fact_table=self.fact.name,
                jobs=self.jobs,
                cache=self.cache if self.cache is not None else False,
                vectorize=self.vectorize,
                cache_dir=self.cache_dir,
            )
        return self._engine

    def persist_cache(self) -> Optional[int]:
        """Spill the evaluation cache to its persistent store, if one is attached.

        The engine already persists after every sweep; this flushes anything
        accumulated since (e.g. by tuning studies sharing the cache).  Returns
        the number of entries written, or ``None`` when there is no attached
        store, nothing new to save, or the store is unwritable.
        """
        if self.cache is None:
            return None
        return self.cache.persist()

    def evaluate_spec(
        self,
        spec: FragmentationSpec,
        bitmap_scheme: Optional[BitmapScheme] = None,
    ) -> FragmentationCandidate:
        """Fully evaluate a single fragmentation candidate."""
        return self.engine().evaluate_spec(spec, bitmap_scheme=bitmap_scheme)

    def evaluate_candidates(
        self, specs: Optional[List[FragmentationSpec]] = None
    ) -> Tuple[List[FragmentationCandidate], ExclusionReport]:
        """Evaluate every surviving candidate (or an explicit list of specs).

        The sweep runs through the evaluation engine: serial when
        ``jobs == 1``, on a process pool otherwise, with identical results
        either way.
        """
        if specs is None:
            specs, report = self.generate_specs()
        else:
            report = ExclusionReport()
        if not specs:
            return [], report
        # The memoized engine designs (and keeps) the bitmap scheme itself, so
        # repeated sweeps reuse one scheme object and its cached signature.
        candidates = self.engine().evaluate_specs(specs)
        return candidates, report

    # -- recommendation --------------------------------------------------------------------

    def recommend(self) -> Recommendation:
        """Run the full pipeline and return the ranked recommendation."""
        specs, report = self.generate_specs()
        candidates, _ = self.evaluate_candidates(specs)
        ranked = rank_candidates(
            candidates,
            top_fraction=self.config.top_fraction,
            top_candidates=self.config.top_candidates,
        )
        return Recommendation(
            ranked=tuple(ranked),
            evaluated=tuple(candidates),
            exclusion_report=report,
            config=self.config,
            schema=self.schema,
            workload=self.workload,
            system=self.system,
        )

    # -- analysis convenience -----------------------------------------------------------------

    def analyze(self, candidate: FragmentationCandidate) -> str:
        """Render the detailed per-query-class statistic for ``candidate``.

        Thin convenience wrapper over :func:`repro.analysis.format_query_analysis`
        (imported lazily to keep the core free of presentation dependencies).
        """
        from repro.analysis import format_query_analysis

        return format_query_analysis(candidate, self.workload)
