"""Advisor configuration.

The configuration bundles every tunable of the prediction layer: the candidate
space bounds, the exclusion thresholds, the ranking heuristic's leading-X%
fraction, the bitmap heuristic threshold and the allocation skew threshold.
Defaults follow the behaviour described in the paper; every knob exists so the
"interactive fine tuning" of §3.3 can be expressed programmatically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.allocation import NOTABLE_SKEW_CV
from repro.bitmap.scheme import DEFAULT_CARDINALITY_THRESHOLD
from repro.errors import AdvisorError

__all__ = ["AdvisorConfig"]


@dataclass(frozen=True)
class AdvisorConfig:
    """Tunables of the WARLOCK advisor pipeline.

    Parameters
    ----------
    top_fraction:
        The "leading X%" of candidates (by overall I/O cost) that are re-ranked
        by response time in the second phase of the heuristic.
    top_candidates:
        How many ranked candidates the recommendation retains for analysis.
    max_fragmentation_dimensions:
        Upper bound on the dimensionality of generated fragmentations
        (``None`` = no bound, i.e. full MDHF space).
    min_fragments:
        Exclusion threshold: candidates inducing fewer fragments than this
        cannot exploit the available disks and are dropped (defaults to the
        number of disks — at least one fragment per disk).  Set to an integer
        to override, or leave ``None`` to derive from the system.
    max_fragments:
        Exclusion threshold: candidates inducing more fragments than this are
        dropped (fragment management overhead, catalogue size).
    min_fragment_pages:
        Exclusion threshold: candidates whose *average* fragment size falls
        below this many pages are dropped.  ``None`` derives the bound from the
        prefetching granule, per the paper ("fragment sizes drop below the
        prefetching granule").
    bitmap_cardinality_threshold:
        Attribute cardinality above which encoded (rather than standard)
        bitmaps are used.
    allocation_skew_cv:
        Fragment-size CV above which the greedy size-based allocation is used
        instead of round-robin.
    include_baseline:
        Whether the unfragmented baseline participates in the evaluation (it is
        reported but never wins under a parallel workload).
    """

    top_fraction: float = 0.25
    top_candidates: int = 10
    max_fragmentation_dimensions: Optional[int] = None
    min_fragments: Optional[int] = None
    max_fragments: int = 100_000
    min_fragment_pages: Optional[int] = None
    bitmap_cardinality_threshold: int = DEFAULT_CARDINALITY_THRESHOLD
    allocation_skew_cv: float = NOTABLE_SKEW_CV
    include_baseline: bool = False

    def __post_init__(self) -> None:
        if not 0 < self.top_fraction <= 1:
            raise AdvisorError(
                f"top_fraction must be in (0, 1], got {self.top_fraction}"
            )
        if self.top_candidates <= 0:
            raise AdvisorError(
                f"top_candidates must be positive, got {self.top_candidates}"
            )
        if (
            self.max_fragmentation_dimensions is not None
            and self.max_fragmentation_dimensions < 1
        ):
            raise AdvisorError(
                "max_fragmentation_dimensions must be at least 1 when set, got "
                f"{self.max_fragmentation_dimensions}"
            )
        if self.min_fragments is not None and self.min_fragments < 1:
            raise AdvisorError(
                f"min_fragments must be at least 1 when set, got {self.min_fragments}"
            )
        if self.max_fragments < 1:
            raise AdvisorError(
                f"max_fragments must be at least 1, got {self.max_fragments}"
            )
        if self.min_fragment_pages is not None and self.min_fragment_pages < 1:
            raise AdvisorError(
                "min_fragment_pages must be at least 1 when set, got "
                f"{self.min_fragment_pages}"
            )
        if self.bitmap_cardinality_threshold < 1:
            raise AdvisorError(
                "bitmap_cardinality_threshold must be at least 1, got "
                f"{self.bitmap_cardinality_threshold}"
            )
        if self.allocation_skew_cv < 0:
            raise AdvisorError(
                f"allocation_skew_cv must be non-negative, got {self.allocation_skew_cv}"
            )
        if self.min_fragments is not None and self.min_fragments > self.max_fragments:
            raise AdvisorError(
                f"min_fragments ({self.min_fragments}) exceeds max_fragments "
                f"({self.max_fragments})"
            )

    def resolved_min_fragments(self, num_disks: int) -> int:
        """The effective minimum fragment count (defaults to the disk count)."""
        if self.min_fragments is not None:
            return self.min_fragments
        return max(1, num_disks)

    def resolved_min_fragment_pages(self, prefetch_pages_hint: int) -> int:
        """The effective minimum average fragment size in pages.

        Defaults to the prefetching granule hint so that fragments do not drop
        below the prefetch unit, as the paper's threshold example states.
        """
        if self.min_fragment_pages is not None:
            return self.min_fragment_pages
        return max(1, prefetch_pages_hint)
