"""Fragmentation candidates.

A :class:`FragmentationCandidate` bundles everything the advisor knows about
one fragmentation: its materialized layout, the bitmap scheme designed for it,
the prefetch granules, the analytical evaluation over the query mix and the
physical disk allocation.  The analysis/output layer renders these objects; the
ranking orders them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.allocation import Allocation
from repro.bitmap import BitmapScheme
from repro.costmodel import WorkloadEvaluation
from repro.fragmentation import FragmentationLayout, FragmentationSpec
from repro.storage import PrefetchSetting

__all__ = ["FragmentationCandidate"]


@dataclass(frozen=True)
class FragmentationCandidate:
    """One fully evaluated fragmentation candidate."""

    spec: FragmentationSpec
    layout: FragmentationLayout
    bitmap_scheme: BitmapScheme
    prefetch: PrefetchSetting
    evaluation: WorkloadEvaluation
    allocation: Allocation

    # -- headline metrics --------------------------------------------------------

    @property
    def label(self) -> str:
        """Human-readable identifier of the fragmentation."""
        return self.spec.label

    @property
    def fragment_count(self) -> int:
        """Number of fragments the candidate induces."""
        return self.layout.fragment_count

    @property
    def io_cost_ms(self) -> float:
        """Workload-weighted I/O access cost (device busy time, milliseconds)."""
        return self.evaluation.total_io_cost_ms

    @property
    def response_time_ms(self) -> float:
        """Workload-weighted I/O response time (milliseconds)."""
        return self.evaluation.total_response_time_ms

    @property
    def pages_accessed(self) -> float:
        """Workload-weighted pages read per query."""
        return self.evaluation.total_pages_accessed

    @property
    def io_requests(self) -> float:
        """Workload-weighted disk requests per query."""
        return self.evaluation.total_io_requests

    @property
    def bitmap_storage_pages(self) -> int:
        """Total pages occupied by the candidate's bitmap indexes."""
        return self.bitmap_scheme.storage_pages(
            self.layout.fact.row_count, self.layout.page_size_bytes
        )

    # -- serialization helpers ------------------------------------------------------

    def summary(self) -> Dict[str, float]:
        """Flat summary dict used by reports, comparisons and the CLI."""
        return {
            "fragmentation": self.label,
            "dimensionality": self.spec.dimensionality,
            "fragments": self.fragment_count,
            "avg_fragment_pages": self.layout.average_fragment_pages,
            "io_cost_ms": self.io_cost_ms,
            "response_time_ms": self.response_time_ms,
            "pages_accessed": self.pages_accessed,
            "io_requests": self.io_requests,
            "bitmap_pages": self.bitmap_storage_pages,
            "allocation_scheme": self.allocation.scheme,
            "occupancy_cv": self.allocation.occupancy_cv,
            "prefetch_fact_pages": self.prefetch.fact_pages,
            "prefetch_bitmap_pages": self.prefetch.bitmap_pages,
        }

    def describe(self) -> str:
        """One-line summary used in the ranked list."""
        return (
            f"{self.label}: {self.fragment_count:,} fragments, "
            f"I/O cost {self.io_cost_ms:,.0f} ms, response "
            f"{self.response_time_ms:,.0f} ms, "
            f"{self.allocation.scheme} allocation"
        )

    def to_dict(self, include_allocation: bool = False) -> Dict[str, object]:
        """Stable plain-dict form (see :func:`repro.io.candidate_to_dict`)."""
        # Imported lazily: repro.io builds on the analysis layer, which the
        # core must not depend on at import time.
        from repro.io import candidate_to_dict

        return candidate_to_dict(self, include_allocation=include_allocation)
