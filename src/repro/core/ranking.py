"""Two-phase ranking heuristic (§3.2 of the paper).

Throughput (total I/O work) and response time are often contradicting goals: a
broadly declustered fragmentation achieves high parallelism and low response
times but more total I/O; a clustered one minimizes I/O volume but offers
little parallelism.  WARLOCK uses a simple heuristic preferring fragmentations
that reduce overall I/O requirements (also the right goal for multi-user
throughput): it first orders all candidates by the overall I/O access cost of
the query mix, keeps the leading ``X%``, and ranks those by the overall I/O
response time.  The resulting top list is presented to the user.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence

from repro.core.candidates import FragmentationCandidate
from repro.errors import AdvisorError

__all__ = ["RankedCandidate", "rank_candidates"]


@dataclass(frozen=True)
class RankedCandidate:
    """A candidate annotated with its ranking positions.

    ``io_rank`` is the candidate's position in the first phase (1 = lowest I/O
    cost over all evaluated candidates); ``final_rank`` its position in the
    final (response-time) ordering of the leading X%.
    """

    candidate: FragmentationCandidate
    io_rank: int
    final_rank: int

    @property
    def label(self) -> str:
        """Fragmentation label of the wrapped candidate."""
        return self.candidate.label

    @property
    def io_cost_ms(self) -> float:
        """Workload-weighted I/O cost of the wrapped candidate."""
        return self.candidate.io_cost_ms

    @property
    def response_time_ms(self) -> float:
        """Workload-weighted response time of the wrapped candidate."""
        return self.candidate.response_time_ms

    def describe(self) -> str:
        """One ranked line: final rank, label, metrics, first-phase rank."""
        return (
            f"#{self.final_rank:<2d} {self.candidate.describe()} "
            f"(I/O-cost rank {self.io_rank})"
        )


def rank_candidates(
    candidates: Sequence[FragmentationCandidate],
    top_fraction: float = 0.25,
    top_candidates: int = 10,
) -> List[RankedCandidate]:
    """Apply the twofold ranking and return the final top list.

    Parameters
    ----------
    candidates:
        Evaluated candidates (any order).
    top_fraction:
        Fraction ``X`` of candidates (by I/O cost) admitted to the second
        phase.  At least one candidate is always admitted.
    top_candidates:
        Length of the returned list (fewer when not enough candidates survive).

    Returns
    -------
    list of RankedCandidate
        Ordered by ascending response time among the leading X% by I/O cost.

    Raises
    ------
    AdvisorError
        When no candidates are supplied or the fraction is out of range.
    """
    if not candidates:
        raise AdvisorError("cannot rank an empty candidate list")
    if not 0 < top_fraction <= 1:
        raise AdvisorError(f"top_fraction must be in (0, 1], got {top_fraction}")
    if top_candidates <= 0:
        raise AdvisorError(f"top_candidates must be positive, got {top_candidates}")

    # Phase 1: order by overall I/O access cost (ties: fewer fragments first,
    # then label for determinism).
    by_io = sorted(
        candidates,
        key=lambda c: (c.io_cost_ms, c.fragment_count, c.label),
    )
    io_rank = {id(candidate): rank + 1 for rank, candidate in enumerate(by_io)}

    leading_count = max(1, int(math.ceil(top_fraction * len(by_io))))
    leading = by_io[:leading_count]

    # Phase 2: rank the leading X% by overall I/O response time.
    by_response = sorted(
        leading,
        key=lambda c: (c.response_time_ms, c.io_cost_ms, c.label),
    )

    ranked = [
        RankedCandidate(
            candidate=candidate,
            io_rank=io_rank[id(candidate)],
            final_rank=rank + 1,
        )
        for rank, candidate in enumerate(by_response[:top_candidates])
    ]
    return ranked
