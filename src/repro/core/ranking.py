"""Two-phase ranking heuristic (§3.2 of the paper).

Throughput (total I/O work) and response time are often contradicting goals: a
broadly declustered fragmentation achieves high parallelism and low response
times but more total I/O; a clustered one minimizes I/O volume but offers
little parallelism.  WARLOCK uses a simple heuristic preferring fragmentations
that reduce overall I/O requirements (also the right goal for multi-user
throughput): it first orders all candidates by the overall I/O access cost of
the query mix, keeps the leading ``X%``, and ranks those by the overall I/O
response time.  The resulting top list is presented to the user.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.candidates import FragmentationCandidate
from repro.errors import AdvisorError

__all__ = ["RankedCandidate", "rank_candidates", "rank_candidates_columnar"]


@dataclass(frozen=True)
class RankedCandidate:
    """A candidate annotated with its ranking positions.

    ``io_rank`` is the candidate's position in the first phase (1 = lowest I/O
    cost over all evaluated candidates); ``final_rank`` its position in the
    final (response-time) ordering of the leading X%.
    """

    candidate: FragmentationCandidate
    io_rank: int
    final_rank: int

    @property
    def label(self) -> str:
        """Fragmentation label of the wrapped candidate."""
        return self.candidate.label

    @property
    def io_cost_ms(self) -> float:
        """Workload-weighted I/O cost of the wrapped candidate."""
        return self.candidate.io_cost_ms

    @property
    def response_time_ms(self) -> float:
        """Workload-weighted response time of the wrapped candidate."""
        return self.candidate.response_time_ms

    def describe(self) -> str:
        """One ranked line: final rank, label, metrics, first-phase rank."""
        return (
            f"#{self.final_rank:<2d} {self.candidate.describe()} "
            f"(I/O-cost rank {self.io_rank})"
        )


def rank_candidates(
    candidates: Sequence[FragmentationCandidate],
    top_fraction: float = 0.25,
    top_candidates: int = 10,
) -> List[RankedCandidate]:
    """Apply the twofold ranking and return the final top list.

    Parameters
    ----------
    candidates:
        Evaluated candidates (any order).
    top_fraction:
        Fraction ``X`` of candidates (by I/O cost) admitted to the second
        phase.  At least one candidate is always admitted.
    top_candidates:
        Length of the returned list (fewer when not enough candidates survive).

    Returns
    -------
    list of RankedCandidate
        Ordered by ascending response time among the leading X% by I/O cost.

    Raises
    ------
    AdvisorError
        When no candidates are supplied or the fraction is out of range.
    """
    _validate_ranking_arguments(candidates, top_fraction, top_candidates)

    # Phase 1: order by overall I/O access cost (ties: fewer fragments first,
    # then label for determinism).  Positions are sorted rather than the
    # candidate objects so that a list containing the same object twice (the
    # session cache hands out shared instances) still gets one rank per slot.
    by_io = sorted(
        range(len(candidates)),
        key=lambda i: (
            candidates[i].io_cost_ms,
            candidates[i].fragment_count,
            candidates[i].label,
        ),
    )
    io_rank = {position: rank + 1 for rank, position in enumerate(by_io)}

    leading_count = max(1, int(math.ceil(top_fraction * len(by_io))))
    leading = by_io[:leading_count]

    # Phase 2: rank the leading X% by overall I/O response time.
    by_response = sorted(
        leading,
        key=lambda i: (
            candidates[i].response_time_ms,
            candidates[i].io_cost_ms,
            candidates[i].label,
        ),
    )

    ranked = [
        RankedCandidate(
            candidate=candidates[position],
            io_rank=io_rank[position],
            final_rank=rank + 1,
        )
        for rank, position in enumerate(by_response[:top_candidates])
    ]
    return ranked


def _validate_ranking_arguments(candidates, top_fraction, top_candidates) -> None:
    if not candidates:
        raise AdvisorError("cannot rank an empty candidate list")
    if not 0 < top_fraction <= 1:
        raise AdvisorError(f"top_fraction must be in (0, 1], got {top_fraction}")
    if top_candidates <= 0:
        raise AdvisorError(f"top_candidates must be positive, got {top_candidates}")


def _headline_totals(
    candidates: Sequence[FragmentationCandidate],
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-candidate ``(io_cost_ms, response_time_ms)`` vectors.

    When every candidate carries a columnar evaluation block over one shared
    class shape, the totals are accumulated class by class straight off the
    metric cubes — the same left-to-right ``sum(w * v)`` the scalar
    ``total_io_cost_ms`` / ``total_response_time_ms`` properties compute, so
    each vector element is the bit-identical IEEE-754 double.  Candidates
    without columns (scalar-path evaluations) fall back to the per-candidate
    property probes, which produce the same doubles by definition.
    """
    n = len(candidates)
    weights: Optional[Tuple[float, ...]] = None
    per_io: Optional[np.ndarray] = None
    per_response: Optional[np.ndarray] = None
    for k, candidate in enumerate(candidates):
        columns = candidate.evaluation.columns
        if columns is None or (weights is not None and columns.weights != weights):
            per_io = None
            break
        if per_io is None:
            weights = columns.weights
            per_io = np.empty((n, len(weights)), dtype=np.float64)
            per_response = np.empty((n, len(weights)), dtype=np.float64)
        # The last two metric fields are the per-class I/O cost and response
        # time (see repro.costmodel.model.NUM_METRIC_FIELDS layout).
        per_io[k] = columns.metrics[:, -2]
        per_response[k] = columns.metrics[:, -1]
    if per_io is not None and per_response is not None and weights is not None:
        io_cost = np.zeros(n, dtype=np.float64)
        response = np.zeros(n, dtype=np.float64)
        for c, weight in enumerate(weights):
            io_cost = io_cost + weight * per_io[:, c]
            response = response + weight * per_response[:, c]
        return io_cost, response
    io_cost = np.array([c.io_cost_ms for c in candidates], dtype=np.float64)
    response = np.array([c.response_time_ms for c in candidates], dtype=np.float64)
    return io_cost, response


def rank_candidates_columnar(
    candidates: Sequence[FragmentationCandidate],
    top_fraction: float = 0.25,
    top_candidates: int = 10,
) -> List[RankedCandidate]:
    """Vectorized twofold ranking, bit-identical to :func:`rank_candidates`.

    Ranks the whole sweep off one ``(candidate,)`` total-cost vector taken
    from the metric cubes instead of probing ``total_io_cost_ms`` one
    candidate at a time: both phases are single stable ``np.lexsort`` passes
    over the same ``(io_cost, fragment_count, label)`` and
    ``(response_time, io_cost, label)`` tie-break keys, and only the
    candidates that make the final top list are wrapped in
    :class:`RankedCandidate` objects.  The parity suite asserts equality with
    the scalar reference on tie-heavy and duplicate-object inputs.
    """
    _validate_ranking_arguments(candidates, top_fraction, top_candidates)

    n = len(candidates)
    labels = np.array([c.label for c in candidates])
    fragment_counts = np.fromiter(
        (c.fragment_count for c in candidates), dtype=np.int64, count=n
    )
    io_cost, response = _headline_totals(candidates)

    # Phase 1 (np.lexsort is stable; the last key is primary, matching the
    # scalar sort key order exactly — numpy's unicode comparison is the same
    # code-point ordering as Python's str).
    order_io = np.lexsort((labels, fragment_counts, io_cost))
    io_ranks = np.empty(n, dtype=np.int64)
    io_ranks[order_io] = np.arange(1, n + 1)

    leading_count = max(1, int(math.ceil(top_fraction * n)))
    leading = order_io[:leading_count]

    # Phase 2 over the leading X% only; stability over the phase-1 order
    # resolves full-key ties identically to the scalar re-sort.
    final = leading[
        np.lexsort((labels[leading], io_cost[leading], response[leading]))
    ]

    return [
        RankedCandidate(
            candidate=candidates[position],
            io_rank=int(io_ranks[position]),
            final_rank=rank + 1,
        )
        for rank, position in enumerate(final[:top_candidates].tolist())
    ]
