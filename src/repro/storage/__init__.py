"""Disk and database system parameter model (WARLOCK input layer, §3.1).

The DBA specifies page size, number of disks and their capacity, average
rotational / seek / transfer times and the prefetching granule.  The prefetch
granule may be fixed or left to WARLOCK to optimize per object class (fact
table fragments vs. bitmap fragments), which :mod:`repro.storage.prefetch`
implements.
"""

from repro.storage.disk import DiskParameters
from repro.storage.prefetch import (
    PrefetchPolicy,
    PrefetchSetting,
    optimal_prefetch_pages,
    prefetch_candidates,
)
from repro.storage.system import Architecture, SystemParameters

__all__ = [
    "DiskParameters",
    "Architecture",
    "SystemParameters",
    "PrefetchPolicy",
    "PrefetchSetting",
    "optimal_prefetch_pages",
    "prefetch_candidates",
]
