"""Database system parameters and parallel architectures.

WARLOCK targets parallel data warehouses based on a Shared Everything (SE) or
Shared Disk (SD) architecture.  In both, every processing node can reach every
disk, so the data allocation problem is the same; what differs is the
coordination overhead the cost model charges per parallel sub-query and the
degree of processing parallelism available.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Union

from repro.errors import StorageError
from repro.storage.disk import DiskParameters

__all__ = ["Architecture", "SystemParameters"]


class Architecture(enum.Enum):
    """Parallel database architecture supported by WARLOCK."""

    SHARED_EVERYTHING = "shared_everything"
    SHARED_DISK = "shared_disk"

    @property
    def label(self) -> str:
        """Human readable label used in reports."""
        return {
            Architecture.SHARED_EVERYTHING: "Shared Everything",
            Architecture.SHARED_DISK: "Shared Disk",
        }[self]

    @classmethod
    def parse(cls, value: Union[str, "Architecture"]) -> "Architecture":
        """Parse an architecture from a string (``"SE"``, ``"SD"``, full names...)."""
        if isinstance(value, Architecture):
            return value
        text = str(value).strip().lower().replace("-", "_").replace(" ", "_")
        aliases = {
            "se": cls.SHARED_EVERYTHING,
            "shared_everything": cls.SHARED_EVERYTHING,
            "sharedeverything": cls.SHARED_EVERYTHING,
            "smp": cls.SHARED_EVERYTHING,
            "sd": cls.SHARED_DISK,
            "shared_disk": cls.SHARED_DISK,
            "shareddisk": cls.SHARED_DISK,
            "cluster": cls.SHARED_DISK,
        }
        if text not in aliases:
            raise StorageError(
                f"unknown architecture {value!r}; expected one of "
                f"'shared_everything'/'SE' or 'shared_disk'/'SD'"
            )
        return aliases[text]


#: Sentinel accepted for the ``prefetch_pages`` parameters meaning "let the
#: advisor optimize the granule" (the paper: "WARLOCK offers the choice to set a
#: fixed value or to determine itself optimal values").
AUTO = "auto"


@dataclass(frozen=True)
class SystemParameters:
    """The complete DBS & disk parameter block of the input layer.

    Parameters
    ----------
    num_disks:
        Number of disks data may be declustered over.
    disk:
        Per-disk physical characteristics.
    page_size_bytes:
        Database page size in bytes.
    architecture:
        Shared Everything or Shared Disk.
    num_nodes:
        Processing nodes.  Defaults to one node per 8 disks (at least 1) which
        matches typical SD cluster sizing; only response-time coordination
        overheads depend on it.
    prefetch_pages_fact / prefetch_pages_bitmap:
        Prefetch granule (in pages) used when reading fact-table respectively
        bitmap fragments.  Either an integer number of pages or the string
        ``"auto"`` to let the advisor derive an optimal value per fragmentation
        (fragment sizes of fact tables and bitmaps strongly differ, hence the
        two independent settings).
    coordination_overhead_ms:
        Per-parallel-subquery startup/coordination cost charged by the response
        time model; Shared Disk systems typically pay more than Shared
        Everything ones.
    """

    num_disks: int = 64
    disk: DiskParameters = field(default_factory=DiskParameters)
    page_size_bytes: int = 8192
    architecture: Architecture = Architecture.SHARED_DISK
    num_nodes: Optional[int] = None
    prefetch_pages_fact: Union[int, str] = AUTO
    prefetch_pages_bitmap: Union[int, str] = AUTO
    coordination_overhead_ms: Optional[float] = None

    def __post_init__(self) -> None:
        if self.num_disks <= 0:
            raise StorageError(f"num_disks must be positive, got {self.num_disks}")
        if self.page_size_bytes <= 0:
            raise StorageError(
                f"page_size_bytes must be positive, got {self.page_size_bytes}"
            )
        if not isinstance(self.disk, DiskParameters):
            raise StorageError(
                f"disk must be a DiskParameters instance, got {type(self.disk).__name__}"
            )
        architecture = Architecture.parse(self.architecture)
        object.__setattr__(self, "architecture", architecture)
        for attr in ("prefetch_pages_fact", "prefetch_pages_bitmap"):
            value = getattr(self, attr)
            if isinstance(value, str):
                if value.lower() != AUTO:
                    raise StorageError(
                        f"{attr} must be a positive integer or 'auto', got {value!r}"
                    )
                object.__setattr__(self, attr, AUTO)
            elif isinstance(value, bool) or not isinstance(value, int) or value <= 0:
                raise StorageError(
                    f"{attr} must be a positive integer or 'auto', got {value!r}"
                )
        if self.num_nodes is not None and self.num_nodes <= 0:
            raise StorageError(f"num_nodes must be positive, got {self.num_nodes}")
        if self.coordination_overhead_ms is not None and self.coordination_overhead_ms < 0:
            raise StorageError(
                "coordination_overhead_ms must be non-negative, "
                f"got {self.coordination_overhead_ms}"
            )

    # -- derived quantities ---------------------------------------------------

    @property
    def effective_num_nodes(self) -> int:
        """Processing nodes available for parallel query execution."""
        if self.num_nodes is not None:
            return self.num_nodes
        return max(1, self.num_disks // 8)

    @property
    def effective_coordination_overhead_ms(self) -> float:
        """Per-subquery coordination cost; SD pays more than SE by default."""
        if self.coordination_overhead_ms is not None:
            return self.coordination_overhead_ms
        if self.architecture is Architecture.SHARED_DISK:
            return 2.0
        return 0.5

    @property
    def fact_prefetch_is_auto(self) -> bool:
        """True when the fact-table prefetch granule should be optimized."""
        return self.prefetch_pages_fact == AUTO

    @property
    def bitmap_prefetch_is_auto(self) -> bool:
        """True when the bitmap prefetch granule should be optimized."""
        return self.prefetch_pages_bitmap == AUTO

    @property
    def total_capacity_bytes(self) -> int:
        """Aggregate capacity of all disks."""
        return self.num_disks * self.disk.capacity_bytes

    @property
    def total_capacity_pages(self) -> int:
        """Aggregate capacity of all disks in pages."""
        return self.num_disks * self.disk.capacity_pages(self.page_size_bytes)

    def pages_for_bytes(self, num_bytes: int) -> int:
        """Number of pages needed to store ``num_bytes``."""
        if num_bytes < 0:
            raise StorageError(f"num_bytes must be non-negative, got {num_bytes}")
        if num_bytes == 0:
            return 0
        return -(-num_bytes // self.page_size_bytes)

    def with_disks(self, num_disks: int) -> "SystemParameters":
        """A copy of these parameters with a different number of disks."""
        return SystemParameters(
            num_disks=num_disks,
            disk=self.disk,
            page_size_bytes=self.page_size_bytes,
            architecture=self.architecture,
            num_nodes=self.num_nodes,
            prefetch_pages_fact=self.prefetch_pages_fact,
            prefetch_pages_bitmap=self.prefetch_pages_bitmap,
            coordination_overhead_ms=self.coordination_overhead_ms,
        )

    def with_architecture(self, architecture: Union[str, Architecture]) -> "SystemParameters":
        """A copy of these parameters with a different architecture."""
        return SystemParameters(
            num_disks=self.num_disks,
            disk=self.disk,
            page_size_bytes=self.page_size_bytes,
            architecture=Architecture.parse(architecture),
            num_nodes=self.num_nodes,
            prefetch_pages_fact=self.prefetch_pages_fact,
            prefetch_pages_bitmap=self.prefetch_pages_bitmap,
            coordination_overhead_ms=self.coordination_overhead_ms,
        )

    def with_prefetch(
        self,
        fact: Union[int, str, None] = None,
        bitmap: Union[int, str, None] = None,
    ) -> "SystemParameters":
        """A copy of these parameters with different prefetch granules."""
        return SystemParameters(
            num_disks=self.num_disks,
            disk=self.disk,
            page_size_bytes=self.page_size_bytes,
            architecture=self.architecture,
            num_nodes=self.num_nodes,
            prefetch_pages_fact=(
                self.prefetch_pages_fact if fact is None else fact
            ),
            prefetch_pages_bitmap=(
                self.prefetch_pages_bitmap if bitmap is None else bitmap
            ),
            coordination_overhead_ms=self.coordination_overhead_ms,
        )

    def describe(self) -> str:
        """Human-readable summary used by reports and the CLI."""
        fact_pref = (
            "auto" if self.fact_prefetch_is_auto else f"{self.prefetch_pages_fact} pages"
        )
        bitmap_pref = (
            "auto"
            if self.bitmap_prefetch_is_auto
            else f"{self.prefetch_pages_bitmap} pages"
        )
        return (
            f"{self.architecture.label}, {self.num_disks} disks x "
            f"{self.disk.capacity_gb:g} GB, page size {self.page_size_bytes} B, "
            f"seek {self.disk.avg_seek_ms:g} ms, rotation "
            f"{self.disk.avg_rotational_ms:g} ms, transfer "
            f"{self.disk.transfer_mb_per_s:g} MB/s, prefetch fact={fact_pref}, "
            f"bitmap={bitmap_pref}"
        )
