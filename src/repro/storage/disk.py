"""Physical disk parameter model.

WARLOCK's cost model charges each disk request a positioning overhead (average
seek plus average rotational delay) and a transfer time proportional to the
number of pages moved.  Prefetching amortizes the positioning overhead over a
multi-page granule, which is why the prefetch size is performance sensitive.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import StorageError

__all__ = ["DiskParameters"]

_BYTES_PER_MB = 1024 * 1024
_BYTES_PER_GB = 1024 * 1024 * 1024


@dataclass(frozen=True)
class DiskParameters:
    """Service-time characteristics and capacity of a single disk.

    Parameters
    ----------
    capacity_gb:
        Usable capacity of the disk in gigabytes.
    avg_seek_ms:
        Average seek time per request, in milliseconds.
    avg_rotational_ms:
        Average rotational latency per request, in milliseconds (typically half
        a revolution).
    transfer_mb_per_s:
        Sustained sequential transfer rate in megabytes per second.
    """

    capacity_gb: float = 36.0
    avg_seek_ms: float = 6.0
    avg_rotational_ms: float = 3.0
    transfer_mb_per_s: float = 25.0

    def __post_init__(self) -> None:
        if self.capacity_gb <= 0:
            raise StorageError(f"capacity_gb must be positive, got {self.capacity_gb}")
        if self.avg_seek_ms < 0:
            raise StorageError(f"avg_seek_ms must be non-negative, got {self.avg_seek_ms}")
        if self.avg_rotational_ms < 0:
            raise StorageError(
                f"avg_rotational_ms must be non-negative, got {self.avg_rotational_ms}"
            )
        if self.transfer_mb_per_s <= 0:
            raise StorageError(
                f"transfer_mb_per_s must be positive, got {self.transfer_mb_per_s}"
            )

    # -- derived quantities ---------------------------------------------------

    @property
    def capacity_bytes(self) -> int:
        """Capacity in bytes."""
        return int(self.capacity_gb * _BYTES_PER_GB)

    @property
    def positioning_time_ms(self) -> float:
        """Average positioning overhead (seek + rotational delay) per request."""
        return self.avg_seek_ms + self.avg_rotational_ms

    def transfer_time_ms(self, num_bytes: float) -> float:
        """Time to transfer ``num_bytes`` once positioned, in milliseconds."""
        if num_bytes < 0:
            raise StorageError(f"num_bytes must be non-negative, got {num_bytes}")
        return num_bytes / (self.transfer_mb_per_s * _BYTES_PER_MB) * 1000.0

    def page_transfer_time_ms(self, page_size_bytes: int) -> float:
        """Time to transfer a single page once positioned, in milliseconds."""
        if page_size_bytes <= 0:
            raise StorageError(
                f"page_size_bytes must be positive, got {page_size_bytes}"
            )
        return self.transfer_time_ms(page_size_bytes)

    def request_time_ms(self, pages: float, page_size_bytes: int) -> float:
        """Service time of one request reading ``pages`` consecutive pages."""
        if pages < 0:
            raise StorageError(f"pages must be non-negative, got {pages}")
        if pages == 0:
            return 0.0
        return self.positioning_time_ms + pages * self.page_transfer_time_ms(
            page_size_bytes
        )

    def capacity_pages(self, page_size_bytes: int) -> int:
        """Number of pages that fit on the disk."""
        if page_size_bytes <= 0:
            raise StorageError(
                f"page_size_bytes must be positive, got {page_size_bytes}"
            )
        return self.capacity_bytes // page_size_bytes

    @classmethod
    def modern(cls) -> "DiskParameters":
        """A modern (for 2001) high-end SCSI disk: 73 GB, fast positioning."""
        return cls(
            capacity_gb=73.0,
            avg_seek_ms=4.7,
            avg_rotational_ms=2.0,
            transfer_mb_per_s=50.0,
        )

    @classmethod
    def legacy(cls) -> "DiskParameters":
        """A slower, smaller legacy disk, useful for sensitivity studies."""
        return cls(
            capacity_gb=9.0,
            avg_seek_ms=9.5,
            avg_rotational_ms=4.2,
            transfer_mb_per_s=10.0,
        )
