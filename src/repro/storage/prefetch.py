"""Prefetch granule modelling and optimization.

Reading a run of consecutive useful pages with a prefetch granule of ``G``
pages issues ``ceil(run / G)`` disk requests.  Each request pays the
positioning overhead once and transfers a full granule, so the last request of
a run may transfer pages that are not needed ("over-read").  Small granules
waste positioning time, large granules waste transfer time; the trade-off
depends on how many consecutive useful pages a query typically touches per
fragment, which in turn depends on the fragmentation (fragment sizes of fact
tables and bitmaps strongly differ).  This is why WARLOCK optionally derives
the granule itself, separately for fact-table and bitmap access.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

import numpy as np

from repro.errors import StorageError
from repro.storage.disk import DiskParameters

__all__ = [
    "PrefetchPolicy",
    "PrefetchSetting",
    "prefetch_candidates",
    "optimal_prefetch_pages",
    "optimal_prefetch_pages_batch",
    "expected_run_read_time_ms",
]

#: Largest prefetch granule considered by the optimizer, in pages.  512 pages of
#: 8 KB is a 4 MB request, beyond which positioning overhead is negligible.
MAX_PREFETCH_PAGES = 512


class PrefetchPolicy(enum.Enum):
    """How the prefetch granule for an object class was determined."""

    FIXED = "fixed"
    AUTO = "auto"


def prefetch_candidates(max_pages: int = MAX_PREFETCH_PAGES) -> List[int]:
    """Candidate granules considered by the optimizer: powers of two up to ``max_pages``."""
    if max_pages <= 0:
        raise StorageError(f"max_pages must be positive, got {max_pages}")
    candidates = []
    granule = 1
    while granule <= max_pages:
        candidates.append(granule)
        granule *= 2
    if candidates[-1] != max_pages:
        candidates.append(max_pages)
    return candidates


def expected_run_read_time_ms(
    run_pages: float,
    granule_pages: int,
    disk: DiskParameters,
    page_size_bytes: int,
) -> float:
    """Expected time to read a run of ``run_pages`` consecutive useful pages.

    The run is read with ``ceil(run/granule)`` requests, each paying the
    positioning overhead and transferring a full granule (the trailing request
    over-reads).  ``run_pages`` may be fractional because it is usually an
    expectation over a query mix.
    """
    if run_pages < 0:
        raise StorageError(f"run_pages must be non-negative, got {run_pages}")
    if granule_pages <= 0:
        raise StorageError(f"granule_pages must be positive, got {granule_pages}")
    if run_pages == 0:
        return 0.0
    requests = max(1.0, -(-run_pages // granule_pages))
    pages_transferred = requests * granule_pages
    return requests * disk.positioning_time_ms + pages_transferred * (
        disk.page_transfer_time_ms(page_size_bytes)
    )


def optimal_prefetch_pages(
    run_lengths_pages: Sequence[float],
    disk: DiskParameters,
    page_size_bytes: int,
    weights: Sequence[float] = (),
    max_pages: int = MAX_PREFETCH_PAGES,
) -> int:
    """Granule minimizing the weighted expected read time over typical run lengths.

    Parameters
    ----------
    run_lengths_pages:
        Typical numbers of consecutive useful pages read per fragment per
        query class (one entry per query class).
    disk, page_size_bytes:
        Disk characteristics used for timing.
    weights:
        Optional weights matching ``run_lengths_pages`` (query class shares of
        the workload).  Uniform when omitted.
    max_pages:
        Largest granule to consider.

    Returns
    -------
    int
        The optimal granule in pages (ties resolved towards the smaller
        granule, which wastes less buffer space).
    """
    runs = [float(r) for r in run_lengths_pages if r is not None]
    if not runs:
        raise StorageError("optimal_prefetch_pages requires at least one run length")
    if any(r < 0 for r in runs):
        raise StorageError("run lengths must be non-negative")
    if weights:
        if len(weights) != len(runs):
            raise StorageError(
                f"weights length ({len(weights)}) must match run lengths "
                f"({len(runs)})"
            )
        weight_list = [float(w) for w in weights]
        if any(w < 0 for w in weight_list):
            raise StorageError("weights must be non-negative")
        if sum(weight_list) == 0:
            weight_list = [1.0] * len(runs)
    else:
        weight_list = [1.0] * len(runs)

    # Vectorized search: evaluate every (run, granule) pair at once.  A run of
    # R pages read with granule G issues max(1, ceil(R/G)) requests, each paying
    # the positioning overhead and transferring a full granule; zero-length runs
    # cost nothing (matching expected_run_read_time_ms).
    candidates = prefetch_candidates(max_pages)
    granules = np.asarray(candidates, dtype=np.float64)
    run_array = np.asarray(runs, dtype=np.float64)[:, None]
    weight_array = np.asarray(weight_list, dtype=np.float64)[:, None]
    requests = np.maximum(1.0, np.ceil(run_array / granules[None, :]))
    page_time = disk.page_transfer_time_ms(page_size_bytes)
    per_run = requests * disk.positioning_time_ms + requests * granules[None, :] * page_time
    per_run[run_array[:, 0] == 0.0, :] = 0.0
    costs = (weight_array * per_run).sum(axis=0)

    best_granule = 1
    best_cost = float("inf")
    for granule, cost in zip(candidates, costs):
        if cost < best_cost - 1e-12:
            best_cost = float(cost)
            best_granule = granule
    return best_granule


def optimal_prefetch_pages_batch(
    run_matrix,
    disk: DiskParameters,
    page_size_bytes: int,
    weights: Sequence[float] = (),
    max_pages: int = MAX_PREFETCH_PAGES,
) -> List[int]:
    """Optimal granules for a whole (candidate × class) run-length matrix.

    The candidate-axis twin of :func:`optimal_prefetch_pages`: one row per
    fragmentation candidate, evaluated as a single (candidate × class ×
    granule) cost tensor.  Bit-identical to the per-row scalar call: the
    per-pair cost arithmetic is the same elementwise expression, the class
    axis is reduced with the same sequential accumulation, and zero-length
    runs cost nothing — which also makes the unweighted form equivalent to
    the scalar path's "filter the positive runs first" (adding an exact 0.0
    never changes a sum), including the all-zero row that degenerates to
    granule 1.
    """
    candidates = prefetch_candidates(max_pages)
    granules = np.asarray(candidates, dtype=np.float64)
    runs = np.asarray(run_matrix, dtype=np.float64)
    if runs.ndim != 2:
        raise StorageError(
            f"run matrix must be 2-D (candidates x classes), got {runs.ndim}-D"
        )
    if (runs < 0).any():
        raise StorageError("run lengths must be non-negative")
    num_candidates, num_classes = runs.shape
    if num_classes == 0:
        raise StorageError("optimal_prefetch_pages requires at least one run length")
    if len(weights):
        if len(weights) != num_classes:
            raise StorageError(
                f"weights length ({len(weights)}) must match run lengths "
                f"({num_classes})"
            )
        weight_list = [float(w) for w in weights]
        if any(w < 0 for w in weight_list):
            raise StorageError("weights must be non-negative")
        if sum(weight_list) == 0:
            weight_list = [1.0] * num_classes
    else:
        weight_list = [1.0] * num_classes

    runs3 = runs[:, :, None]
    requests = np.maximum(1.0, np.ceil(runs3 / granules[None, None, :]))
    page_time = disk.page_transfer_time_ms(page_size_bytes)
    per_run = (
        requests * disk.positioning_time_ms
        + requests * granules[None, None, :] * page_time
    )
    per_run = np.where(runs3 == 0.0, 0.0, per_run)
    weight_array = np.asarray(weight_list, dtype=np.float64)[None, :, None]
    costs = (weight_array * per_run).sum(axis=1)

    best: List[int] = []
    for row in costs.tolist():
        best_granule = 1
        best_cost = float("inf")
        for granule, cost in zip(candidates, row):
            if cost < best_cost - 1e-12:
                best_cost = cost
                best_granule = granule
        best.append(best_granule)
    return best


@dataclass(frozen=True)
class PrefetchSetting:
    """Resolved prefetch granules for one fragmentation candidate.

    ``fact_pages`` / ``bitmap_pages`` are the granules (in pages) the cost model
    uses for fact-table and bitmap fragment access; the policies record whether
    each value was fixed by the DBA or derived by the optimizer, so the
    analysis layer can print a "prefetch granule suggestion".
    """

    fact_pages: int
    bitmap_pages: int
    fact_policy: PrefetchPolicy = PrefetchPolicy.FIXED
    bitmap_policy: PrefetchPolicy = PrefetchPolicy.FIXED

    def __post_init__(self) -> None:
        if self.fact_pages <= 0:
            raise StorageError(
                f"fact prefetch granule must be positive, got {self.fact_pages}"
            )
        if self.bitmap_pages <= 0:
            raise StorageError(
                f"bitmap prefetch granule must be positive, got {self.bitmap_pages}"
            )

    def describe(self) -> str:
        """Human readable summary, e.g. ``fact: 16 pages (auto), bitmap: 4 pages (fixed)``."""
        return (
            f"fact: {self.fact_pages} pages ({self.fact_policy.value}), "
            f"bitmap: {self.bitmap_pages} pages ({self.bitmap_policy.value})"
        )

    @classmethod
    def fixed(cls, fact_pages: int, bitmap_pages: int) -> "PrefetchSetting":
        """Construct a setting where both granules were fixed by the DBA."""
        return cls(
            fact_pages=fact_pages,
            bitmap_pages=bitmap_pages,
            fact_policy=PrefetchPolicy.FIXED,
            bitmap_policy=PrefetchPolicy.FIXED,
        )
