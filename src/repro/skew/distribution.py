"""Zipf-like value distributions used to model data skew.

The original tool asks the DBA to describe skew with a Zipf-like distribution
attached to the bottom level of a dimension.  The distribution assigns a
probability to each of the ``n`` distinct values of that level; fact-table rows
referencing the dimension are then spread over those values according to the
probabilities.  ``theta`` (often written *z*) controls the skew:

* ``theta = 0``   -- uniform distribution, no skew,
* ``theta = 0.5`` -- moderate skew,
* ``theta = 1.0`` -- classic Zipf ("80/20"-like) skew,
* larger values  -- extreme skew.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SchemaError

__all__ = [
    "zipf_probabilities",
    "uniform_probabilities",
    "ZipfDistribution",
    "SkewSpec",
]


def uniform_probabilities(n: int) -> np.ndarray:
    """Return the uniform probability vector over ``n`` values.

    Parameters
    ----------
    n:
        Number of distinct values; must be positive.
    """
    if n <= 0:
        raise SchemaError(f"number of values must be positive, got {n}")
    return np.full(n, 1.0 / n)


def zipf_probabilities(n: int, theta: float) -> np.ndarray:
    """Return the Zipf(``theta``) probability vector over ``n`` ranked values.

    The i-th (1-based) most frequent value receives probability proportional to
    ``1 / i**theta``.  ``theta = 0`` degenerates to the uniform distribution.

    Parameters
    ----------
    n:
        Number of distinct values; must be positive.
    theta:
        Skew parameter; must be non-negative.
    """
    if n <= 0:
        raise SchemaError(f"number of values must be positive, got {n}")
    if theta < 0:
        raise SchemaError(f"zipf theta must be non-negative, got {theta}")
    if theta == 0.0:
        return uniform_probabilities(n)
    ranks = np.arange(1, n + 1, dtype=float)
    weights = ranks ** (-theta)
    return weights / weights.sum()


@dataclass(frozen=True)
class ZipfDistribution:
    """A normalized Zipf-like distribution over ``n`` ranked values."""

    n: int
    theta: float = 0.0

    def __post_init__(self) -> None:
        if self.n <= 0:
            raise SchemaError(f"distribution size must be positive, got {self.n}")
        if self.theta < 0:
            raise SchemaError(f"zipf theta must be non-negative, got {self.theta}")

    def probabilities(self) -> np.ndarray:
        """Probability of each of the ``n`` values, most frequent first."""
        return zipf_probabilities(self.n, self.theta)

    def counts(self, total: int) -> np.ndarray:
        """Distribute ``total`` rows over the values, preserving the total exactly.

        The largest-remainder method is used so that ``counts(total).sum() ==
        total`` and no value receives a negative count.
        """
        if total < 0:
            raise SchemaError(f"total row count must be non-negative, got {total}")
        probs = self.probabilities()
        raw = probs * total
        floors = np.floor(raw).astype(np.int64)
        remainder = int(total - floors.sum())
        if remainder > 0:
            fractional = raw - floors
            # Give the leftover rows to the values with the largest fractional parts.
            order = np.argsort(-fractional, kind="stable")
            floors[order[:remainder]] += 1
        return floors

    @property
    def is_uniform(self) -> bool:
        """True when the distribution carries no skew."""
        return self.theta == 0.0

    def max_probability(self) -> float:
        """Probability of the most frequent value."""
        return float(self.probabilities()[0])


@dataclass(frozen=True)
class SkewSpec:
    """Skew descriptor attached to a dimension (bottom level).

    ``theta`` is the Zipf parameter applied to the values of the dimension's
    bottom level.  ``theta = 0`` (the default used when no skew is specified)
    means rows are spread uniformly.
    """

    theta: float = 0.0

    def __post_init__(self) -> None:
        if self.theta < 0:
            raise SchemaError(f"skew theta must be non-negative, got {self.theta}")

    @property
    def is_skewed(self) -> bool:
        """True when the descriptor specifies an actual (non-uniform) skew."""
        return self.theta > 0.0

    def distribution(self, cardinality: int) -> ZipfDistribution:
        """Materialize the distribution for a level of the given cardinality."""
        return ZipfDistribution(n=cardinality, theta=self.theta)

    @classmethod
    def none(cls) -> "SkewSpec":
        """Convenience constructor for "no skew"."""
        return cls(theta=0.0)
