"""Skew and balance metrics.

These metrics are used in two places:

* to characterize a dimension's value distribution (how skewed is the data the
  DBA described?), which drives WARLOCK's decision to switch from the logical
  round-robin allocation to the greedy size-based allocation, and
* to characterize the quality of a disk allocation (how balanced are disk
  occupancy and disk accesses?), which the analysis layer reports.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import CostModelError

__all__ = [
    "coefficient_of_variation",
    "gini_coefficient",
    "top_fraction_share",
    "skew_classification",
]


def _as_array(values: Sequence[float]) -> np.ndarray:
    array = np.asarray(list(values), dtype=float)
    if array.size == 0:
        raise CostModelError("metric requires at least one value")
    if np.any(array < 0):
        raise CostModelError("metric values must be non-negative")
    return array


def coefficient_of_variation(values: Sequence[float]) -> float:
    """Standard deviation divided by the mean (0 for perfectly balanced input).

    The population standard deviation is used.  A zero mean (all values zero)
    yields 0.0 by convention: an all-empty allocation is trivially balanced.
    """
    array = _as_array(values)
    mean = array.mean()
    if mean == 0:
        return 0.0
    return float(array.std() / mean)


def gini_coefficient(values: Sequence[float]) -> float:
    """Gini coefficient of the value distribution (0 = equal, →1 = concentrated)."""
    array = np.sort(_as_array(values))
    total = array.sum()
    if total == 0:
        return 0.0
    n = array.size
    index = np.arange(1, n + 1)
    return float((2.0 * np.sum(index * array)) / (n * total) - (n + 1.0) / n)


def top_fraction_share(values: Sequence[float], fraction: float = 0.2) -> float:
    """Share of the total carried by the top ``fraction`` of values.

    ``top_fraction_share(x, 0.2)`` answers the classic "how much of the data do
    the top 20% of values hold" question (1.0 means full concentration in that
    top slice, ``fraction`` means perfectly uniform).
    """
    if not 0 < fraction <= 1:
        raise CostModelError(f"fraction must be in (0, 1], got {fraction}")
    array = np.sort(_as_array(values))[::-1]
    total = array.sum()
    if total == 0:
        return 0.0
    k = max(1, int(round(fraction * array.size)))
    return float(array[:k].sum() / total)


def skew_classification(cv: float, notable_threshold: float = 0.10) -> str:
    """Classify a coefficient of variation as ``"none"``, ``"notable"`` or ``"severe"``.

    WARLOCK switches to the greedy size-based allocation under *notable* skew;
    this helper encodes the threshold used for that decision.  Values above ten
    times the notable threshold are labelled severe.
    """
    if cv < 0:
        raise CostModelError(f"coefficient of variation must be non-negative, got {cv}")
    if notable_threshold <= 0:
        raise CostModelError(
            f"notable_threshold must be positive, got {notable_threshold}"
        )
    if cv < notable_threshold:
        return "none"
    if cv < 10 * notable_threshold:
        return "notable"
    return "severe"
