"""Data-skew modelling (WARLOCK input layer, §3.1).

WARLOCK lets the DBA specify a Zipf-like data distribution at the bottom level
of each dimension.  This package provides the distribution itself plus a small
descriptor object (:class:`SkewSpec`) that schema definitions attach to a
dimension.
"""

from repro.skew.distribution import (
    SkewSpec,
    ZipfDistribution,
    uniform_probabilities,
    zipf_probabilities,
)
from repro.skew.metrics import (
    coefficient_of_variation,
    gini_coefficient,
    skew_classification,
    top_fraction_share,
)

__all__ = [
    "SkewSpec",
    "ZipfDistribution",
    "uniform_probabilities",
    "zipf_probabilities",
    "coefficient_of_variation",
    "gini_coefficient",
    "top_fraction_share",
    "skew_classification",
]
