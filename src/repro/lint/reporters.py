"""Text and JSON reporters for ``warlock lint``."""

from __future__ import annotations

import json
from typing import List

from repro.lint.framework import Finding, LintResult

__all__ = ["render_json", "render_text"]


def render_text(
    result: LintResult, new: List[Finding], baselined: List[Finding]
) -> str:
    """Human-readable report: one line per finding plus a summary line."""
    lines = [finding.describe() for finding in new]
    for finding in baselined:
        lines.append(f"{finding.describe()} [baselined]")
    noun = "finding" if len(new) == 1 else "findings"
    summary = (
        f"{len(new)} {noun} "
        f"({result.files_scanned} files, {len(result.rules)} rules"
    )
    if baselined:
        summary += f", {len(baselined)} baselined"
    if result.suppressed:
        summary += f", {result.suppressed} suppressed"
    summary += ")"
    lines.append(summary)
    return "\n".join(lines)


def render_json(
    result: LintResult, new: List[Finding], baselined: List[Finding]
) -> str:
    """Machine-readable report (stable key order)."""

    def row(finding: Finding, is_baselined: bool) -> dict:
        payload = {
            "rule": finding.rule,
            "path": finding.path,
            "line": finding.line,
            "col": finding.col,
            "message": finding.message,
            "snippet": finding.snippet,
            "fingerprint": finding.fingerprint,
            "baselined": is_baselined,
        }
        if finding.chain:
            payload["chain"] = list(finding.chain)
        return payload

    payload = {
        "findings": [row(f, False) for f in new] + [row(f, True) for f in baselined],
        "summary": {
            "new": len(new),
            "baselined": len(baselined),
            "suppressed": result.suppressed,
            "files_scanned": result.files_scanned,
            "rules": list(result.rules),
        },
    }
    return json.dumps(payload, indent=2, sort_keys=True)
