"""``python -m repro.lint`` — run the invariant checker standalone."""

import sys

from repro.lint.runner import main

if __name__ == "__main__":
    sys.exit(main())
