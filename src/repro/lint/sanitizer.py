"""Runtime concurrency sanitizer for the engine's lock-discipline contracts.

The static ``lock-discipline`` rule proves call *sites* sit inside the
per-entry lock's ``with`` scope; this module proves the discipline holds at
*run time*, where aliasing and dynamic dispatch can defeat lexical analysis.
It is strictly opt-in — ``WARLOCK_SANITIZE=1`` in the environment (checked by
:func:`install_from_env`, wired into the CLI and the test suite's conftest)
— and instrument-only: enabled, it changes no behavior on correct programs,
but a discipline violation raises :class:`SanitizerViolation` loudly with
**both** stack traces (the holder's entry stack and the violator's).

What it asserts:

* **Exclusive entry** — :class:`~repro.engine.EvaluationCache` and
  :class:`~repro.api.AdvisorSession` methods are never executing on the same
  instance from two threads at once (reentrant calls from the owning thread
  are fine: the cache's methods call each other).
* **Lock ownership** — ``WarehouseEntry.ensure_session`` (documented "call
  with ``lock`` held") actually runs with the entry lock held *by the
  calling thread*; the entry lock is transparently replaced with an
  owner-tracking wrapper to make that checkable.
* **Registry discipline** — ``SessionRegistry._collect_evictions`` runs with
  the registry lock held.

Enable/disable are idempotent and reversible (the originals are restored),
so a test can toggle the sanitizer without poisoning later tests.
"""

from __future__ import annotations

import functools
import os
import threading
import traceback
from typing import Any, Callable, Dict, List, Optional, Tuple

__all__ = [
    "SanitizerViolation",
    "disable_sanitizer",
    "enable_sanitizer",
    "install_from_env",
    "sanitizer_enabled",
]

ENV_VAR = "WARLOCK_SANITIZE"

#: Attribute name for the per-instance exclusive-entry guard.  Stored in the
#: instance ``__dict__`` so plain (non-slotted) classes need no cooperation.
_GUARD_ATTR = "_warlock_sanitizer_guard"


class SanitizerViolation(AssertionError):
    """A lock-discipline violation caught at run time.

    Deliberately *not* a :class:`~repro.errors.WarlockError`: service and CLI
    error handlers convert those into polite wire/exit codes, and a sanitizer
    finding must never be swallowed into a 4xx response — it should take the
    test (or the process) down with both stack traces attached.
    """


def _format_stack(skip: int = 2) -> str:
    """The current stack rendered like a traceback (without this helper)."""
    return "".join(traceback.format_stack()[:-skip])


class _ExclusiveEntry:
    """Per-instance guard: at most one thread inside, reentrancy allowed."""

    __slots__ = ("class_name", "_meta", "owner", "depth", "entry_method", "entry_stack")

    def __init__(self, class_name: str) -> None:
        self.class_name = class_name
        #: Serializes the guard bookkeeping itself (never held during the
        #: guarded method body, so it cannot mask the race it checks for).
        self._meta = threading.Lock()
        self.owner: Optional[int] = None
        self.depth = 0
        self.entry_method: Optional[str] = None
        self.entry_stack: Optional[str] = None

    def enter(self, method: str) -> None:
        me = threading.get_ident()
        with self._meta:
            if self.owner is None or self.owner == me:
                self.owner = me
                self.depth += 1
                if self.depth == 1:
                    self.entry_method = method
                    self.entry_stack = _format_stack(skip=3)
                return
            holder_stack = self.entry_stack or "<entry stack unavailable>\n"
            holder_method = self.entry_method
            holder = self.owner
        raise SanitizerViolation(
            f"concurrent entry into not-thread-safe {self.class_name}: "
            f"thread {me} called .{method}() while thread {holder} is inside "
            f".{holder_method}() on the same instance — hold the per-entry "
            f"lock around every use.\n"
            f"--- holder (thread {holder}) entered via ---\n{holder_stack}"
            f"--- violator (thread {me}) called from ---\n{_format_stack(skip=3)}"
        )

    def exit(self) -> None:
        with self._meta:
            self.depth -= 1
            if self.depth == 0:
                self.owner = None
                self.entry_method = None
                self.entry_stack = None


class _OwnedLock:
    """A :class:`threading.Lock` that remembers its owning thread.

    Drop-in for the per-entry lock (``acquire(blocking=)``, ``release()``,
    ``locked()``, context manager) plus :meth:`owned_by_current_thread`,
    which a plain lock cannot answer.
    """

    __slots__ = ("_lock", "_owner")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._owner: Optional[int] = None

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        acquired = self._lock.acquire(blocking, timeout)
        if acquired:
            self._owner = threading.get_ident()
        return acquired

    def release(self) -> None:
        self._owner = None
        self._lock.release()

    def locked(self) -> bool:
        return self._lock.locked()

    def owned_by_current_thread(self) -> bool:
        return self._owner == threading.get_ident()

    def __enter__(self) -> "_OwnedLock":
        self.acquire()
        return self

    def __exit__(self, *exc: Any) -> None:
        self.release()


#: (class, attribute) -> original callable, for :func:`disable_sanitizer`.
_originals: Dict[Tuple[type, str], Callable[..., Any]] = {}
_enabled = False
_toggle_lock = threading.Lock()

#: Methods guarded for exclusive entry, per class.
_CACHE_METHODS = (
    "access_structure",
    "access_structure_batch",
    "get_structure_batch",
    "put_structure_batch",
    "candidate",
    "get_candidate",
    "put_candidate",
    "structure_items",
    "merge_structures",
    "class_matrix",
    "get_exclusions",
    "put_exclusions",
    "load",
    "save",
    "attach",
    "persist",
    "clear",
    "reset_stats",
)
_SESSION_METHODS = (
    "submit",
    "recommend",
    "evaluate_spec",
    "compare",
    "tune",
    "simulate",
    "with_delta",
    "persist_cache",
    "close",
)


def _guarded(cls: type, method: Callable[..., Any]) -> Callable[..., Any]:
    class_name = cls.__name__

    @functools.wraps(method)
    def wrapper(self: Any, *args: Any, **kwargs: Any) -> Any:
        # dict.setdefault is atomic, so two racing first calls share a guard
        # (and the guard then reports their race, not a spurious one).
        guard = self.__dict__.setdefault(_GUARD_ATTR, _ExclusiveEntry(class_name))
        guard.enter(method.__name__)
        try:
            return method(self, *args, **kwargs)
        finally:
            guard.exit()

    wrapper.__wrapped_by_sanitizer__ = True  # type: ignore[attr-defined]
    return wrapper


def _wrap_methods(cls: type, names: Tuple[str, ...]) -> None:
    for name in names:
        original = cls.__dict__.get(name)
        if original is None or not callable(original):
            continue
        _originals[(cls, name)] = original
        setattr(cls, name, _guarded(cls, original))


def _install_entry_lock_tracking() -> None:
    """Swap ``WarehouseEntry.lock`` for :class:`_OwnedLock` on new entries
    and make ``ensure_session`` assert current-thread ownership."""
    from repro.service.registry import SessionRegistry, WarehouseEntry

    original_init = WarehouseEntry.__init__
    _originals[(WarehouseEntry, "__init__")] = original_init

    @functools.wraps(original_init)
    def init(self: Any, *args: Any, **kwargs: Any) -> None:
        original_init(self, *args, **kwargs)
        self.lock = _OwnedLock()

    WarehouseEntry.__init__ = init  # type: ignore[method-assign]

    original_ensure = WarehouseEntry.ensure_session
    _originals[(WarehouseEntry, "ensure_session")] = original_ensure

    @functools.wraps(original_ensure)
    def ensure_session(self: Any) -> Any:
        lock = self.lock
        # Entries created before enable_sanitizer() carry a plain lock,
        # which cannot answer ownership; only _OwnedLock is checkable.
        if isinstance(lock, _OwnedLock) and not lock.owned_by_current_thread():
            raise SanitizerViolation(
                f"WarehouseEntry.ensure_session({self.name!r}) called without "
                f"holding the entry lock on the calling thread — the session "
                f"build and every submit must run under 'with entry.lock:'.\n"
                f"--- called from ---\n{_format_stack(skip=3)}"
            )
        return original_ensure(self)

    WarehouseEntry.ensure_session = ensure_session  # type: ignore[method-assign]

    original_collect = SessionRegistry._collect_evictions
    _originals[(SessionRegistry, "_collect_evictions")] = original_collect

    @functools.wraps(original_collect)
    def collect(self: Any, keep: str) -> List[Any]:
        if not self._lock.locked():
            raise SanitizerViolation(
                f"SessionRegistry._collect_evictions() called without the "
                f"registry lock held — eviction selection must be atomic "
                f"with the recency update.\n"
                f"--- called from ---\n{_format_stack(skip=3)}"
            )
        return original_collect(self, keep)

    SessionRegistry._collect_evictions = collect  # type: ignore[method-assign]


def sanitizer_enabled() -> bool:
    """True while the sanitizer instrumentation is installed."""
    return _enabled


def enable_sanitizer() -> None:
    """Install the instrumentation (idempotent)."""
    global _enabled
    with _toggle_lock:
        if _enabled:
            return
        from repro.api.session import AdvisorSession
        from repro.engine.cache import EvaluationCache

        _wrap_methods(EvaluationCache, _CACHE_METHODS)
        _wrap_methods(AdvisorSession, _SESSION_METHODS)
        _install_entry_lock_tracking()
        _enabled = True


def disable_sanitizer() -> None:
    """Restore every instrumented callable (idempotent)."""
    global _enabled
    with _toggle_lock:
        if not _enabled:
            return
        for (cls, name), original in _originals.items():
            setattr(cls, name, original)
        _originals.clear()
        _enabled = False


def install_from_env(environ: Optional[Dict[str, str]] = None) -> bool:
    """Enable the sanitizer when ``WARLOCK_SANITIZE`` is truthy; return it."""
    env = environ if environ is not None else os.environ
    value = env.get(ENV_VAR, "").strip().lower()
    if value in {"1", "true", "yes", "on"}:
        enable_sanitizer()
        return True
    return False
