"""``repro.lint`` — static analysis + runtime sanitizers for the contracts.

Two halves:

* the AST rule framework (:mod:`repro.lint.framework`, the rules under
  :mod:`repro.lint.rules`) run via ``warlock lint`` / ``python -m
  repro.lint``;
* the opt-in runtime concurrency sanitizer (:mod:`repro.lint.sanitizer`),
  enabled with ``WARLOCK_SANITIZE=1``.
"""

from repro.lint.framework import (
    Finding,
    LintError,
    LintResult,
    ModuleInfo,
    ProjectIndex,
    Rule,
    RULES,
    register,
    run_lint,
)

__all__ = [
    "Finding",
    "LintError",
    "LintResult",
    "ModuleInfo",
    "ProjectIndex",
    "Rule",
    "RULES",
    "register",
    "run_lint",
]
