"""The ``warlock lint`` framework: AST rules over the engine's contracts.

Seven PRs of growth left the advisor's correctness resting on *conventions*:
bit-identical scalar accumulation order in the parity-critical cost code, an
:class:`~repro.engine.EvaluationCache` that is only touched under the
service's per-entry lock, picklable value payloads across the process-pool
boundary, stable wire types, and the deprecation discipline around
:class:`~repro.api.EngineOptions`.  This package encodes those conventions as
executable rules built on the standard library's :mod:`ast` — no new
dependencies — so CI can enforce what review used to.

Architecture (all stdlib):

* :class:`ModuleInfo` parses one file: source, AST, and the ``# lint:``
  directive comments extracted via :mod:`tokenize` (suppressions, module
  markers, class annotations).
* :class:`ProjectIndex` is the cross-file pass: rules may :meth:`Rule.collect`
  facts from every scanned module (e.g. which classes are annotated
  ``# lint: not-thread-safe``) before any :meth:`Rule.check` runs.
* :class:`Rule` subclasses register themselves in :data:`RULES` via
  :func:`register`; each yields :class:`Finding` objects.
* Suppressions are per-rule comments — ``# lint: disable=rule-name`` on the
  offending line or on a standalone comment line directly above it, with an
  optional ``-- reason`` tail that documents *why* the pattern is safe here.

Directive comment grammar (one per comment)::

    # lint: disable=rule-a,rule-b -- reason          suppression
    # lint: parity-critical                          module marker (rule scope)
    # lint: single-threaded                          module marker (rule scope)
    # lint: service-module                           module marker (rule scope)
    # lint: wire-types                               module marker (rule scope)
    # lint: not-thread-safe instances=cache,session  class annotation

Class annotations stand on the line directly above the ``class`` statement
(or trail on the same line) and are harvested project-wide during the collect
pass, so the rules see them no matter which file is being checked.
"""

from __future__ import annotations

import ast
import io
import os
import tokenize
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

if TYPE_CHECKING:
    from repro.lint.graphs import ProjectGraph

__all__ = [
    "Directive",
    "Finding",
    "LintError",
    "LintResult",
    "ModuleInfo",
    "ProjectIndex",
    "Rule",
    "RULES",
    "ThreadUnsafeClass",
    "collect_files",
    "register",
    "run_lint",
]

#: Module markers a ``# lint:`` comment may declare (scope switches for rules).
MODULE_MARKERS = frozenset(
    ["parity-critical", "single-threaded", "service-module", "wire-types"]
)


class LintError(Exception):
    """Raised for unusable lint input (bad path, unknown rule, bad baseline)."""


@dataclass(frozen=True)
class Directive:
    """One parsed ``# lint:`` comment."""

    line: int
    body: str
    #: True when the comment is the only content on its line (a standalone
    #: directive covers the next code line; a trailing one covers its own).
    standalone: bool


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    #: The stripped source line, for reporters and baseline fingerprints.
    snippet: str = ""
    #: 1-based index among findings sharing (rule, path, snippet) in one run,
    #: assigned by :func:`run_lint` in source order.  Keeps two identical
    #: offending lines in one file from collapsing onto one baseline entry.
    occurrence: int = 1
    #: Optional source-to-sink call chain (graph rules), rendered by
    #: ``warlock lint --explain``.
    chain: Tuple[str, ...] = ()

    @property
    def fingerprint(self) -> str:
        """Content identity used by the committed baseline.

        Deliberately line-number free (``rule:path:snippet``): re-ordering a
        file must not churn the baseline, while editing the offending line
        surfaces the finding again for a fresh decision.  Repeated identical
        snippets in one file are disambiguated with an occurrence suffix
        (``#2``, ``#3`` ...) so each real finding owns its own fingerprint;
        the first occurrence keeps the bare form for baseline stability.
        """
        base = f"{self.rule}:{self.path}:{self.snippet}"
        return base if self.occurrence <= 1 else f"{base}#{self.occurrence}"

    def describe(self) -> str:
        """One reporter line: ``path:line:col: rule: message``."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule}: {self.message}"


@dataclass(frozen=True)
class ThreadUnsafeClass:
    """A class annotated ``# lint: not-thread-safe`` somewhere in the project."""

    name: str
    path: str
    #: Receiver-name hints: a call ``<...>.hint.method(...)`` is treated as a
    #: call on an instance of this class (lexical analysis cannot type-infer).
    instance_hints: Tuple[str, ...]
    #: Every method the class defines (harvested from its body).
    methods: Tuple[str, ...]


def _parse_instance_hints(body: str) -> Tuple[str, ...]:
    """The ``instances=a,b`` tail of a ``not-thread-safe`` annotation."""
    for part in body.split():
        if part.startswith("instances="):
            return tuple(
                hint.strip() for hint in part[len("instances=") :].split(",") if hint.strip()
            )
    return ()


class ModuleInfo:
    """One parsed source file plus its ``# lint:`` directives."""

    def __init__(self, path: str, source: str, relative_to: Optional[str] = None) -> None:
        self.path = path.replace(os.sep, "/")
        self.source = source
        try:
            self.tree = ast.parse(source, filename=path)
        except SyntaxError as error:
            raise LintError(f"{path}: cannot parse: {error}") from error
        self.lines = source.splitlines()
        self.directives: List[Directive] = list(_iter_directives(source, path))
        #: line -> set of suppressed rule names ("*" suppresses every rule).
        self.suppressions: Dict[int, Set[str]] = {}
        #: Module-scope markers declared anywhere in the file.
        self.markers: Set[str] = set()
        #: Annotated classes defined in this module.
        self.thread_unsafe_classes: List[ThreadUnsafeClass] = []
        self._apply_directives()

    # -- directives -------------------------------------------------------------

    def _apply_directives(self) -> None:
        class_lines = {
            node.lineno: node
            for node in ast.walk(self.tree)
            if isinstance(node, ast.ClassDef)
        }
        for directive in self.directives:
            body = directive.body
            if body.startswith("disable="):
                spec = body[len("disable=") :].split("--", 1)[0]
                rules = {name.strip() for name in spec.split(",") if name.strip()}
                # A standalone suppression covers the next source line; a
                # trailing one covers its own line.
                target = directive.line + 1 if directive.standalone else directive.line
                self.suppressions.setdefault(target, set()).update(rules)
            elif body.split()[0] == "not-thread-safe":
                node = class_lines.get(
                    directive.line + 1 if directive.standalone else directive.line
                )
                if node is None:
                    raise LintError(
                        f"{self.path}:{directive.line}: 'not-thread-safe' "
                        f"annotation must sit on (or directly above) a class "
                        f"statement"
                    )
                methods = tuple(
                    item.name
                    for item in node.body
                    if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
                )
                self.thread_unsafe_classes.append(
                    ThreadUnsafeClass(
                        name=node.name,
                        path=self.path,
                        instance_hints=_parse_instance_hints(body),
                        methods=methods,
                    )
                )
            elif body.split()[0] in MODULE_MARKERS:
                self.markers.add(body.split()[0])
            else:
                raise LintError(
                    f"{self.path}:{directive.line}: unknown lint directive "
                    f"{body.split()[0]!r}"
                )

    # -- helpers for rules ------------------------------------------------------

    def snippet(self, line: int) -> str:
        """The stripped source text of ``line`` (1-based; '' out of range)."""
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""

    def suppressed(self, rule: str, line: int) -> bool:
        """True when ``rule`` is suppressed at ``line``."""
        rules = self.suppressions.get(line)
        return bool(rules) and (rule in rules or "*" in rules)

    def finding(self, rule: str, node: ast.AST, message: str) -> Finding:
        """Build a :class:`Finding` anchored at ``node``."""
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        return Finding(
            rule=rule,
            path=self.path,
            line=line,
            col=col,
            message=message,
            snippet=self.snippet(line),
        )


def _iter_directives(source: str, path: str) -> Iterator[Directive]:
    """Extract ``# lint:`` comments with :mod:`tokenize` (string-literal safe)."""
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            text = token.string.lstrip("#").strip()
            if not text.startswith("lint:"):
                continue
            body = text[len("lint:") :].strip()
            if not body:
                raise LintError(f"{path}:{token.start[0]}: empty lint directive")
            standalone = token.line.strip().startswith("#")
            yield Directive(line=token.start[0], body=body, standalone=standalone)
    except tokenize.TokenError:
        # ast.parse already vetted the syntax; a tokenizer hiccup (e.g. on a
        # trailing backslash) just means no directives past that point.
        return


@dataclass
class ProjectIndex:
    """Cross-file facts the collect pass accumulates for the check pass."""

    thread_unsafe: Dict[str, ThreadUnsafeClass] = field(default_factory=dict)
    #: The whole-program import/call graphs (see :mod:`repro.lint.graphs`),
    #: built once per run before any rule's collect pass.
    graph: Optional["ProjectGraph"] = None

    @property
    def guarded_methods(self) -> Set[str]:
        """Every method name of every ``not-thread-safe`` class."""
        methods: Set[str] = set()
        for info in self.thread_unsafe.values():
            methods.update(info.methods)
        return methods

    @property
    def instance_hints(self) -> Set[str]:
        """Every receiver-name hint of every ``not-thread-safe`` class."""
        hints: Set[str] = set()
        for info in self.thread_unsafe.values():
            hints.update(info.instance_hints)
        return hints


class Rule:
    """One lint rule.  Subclass, set ``name``/``description``, register."""

    name: str = ""
    description: str = ""

    def collect(self, module: ModuleInfo, project: ProjectIndex) -> None:
        """First pass over every module: accumulate cross-file facts."""

    def check(self, module: ModuleInfo, project: ProjectIndex) -> Iterator[Finding]:
        """Second pass: yield findings for ``module``."""
        raise NotImplementedError
        yield  # pragma: no cover


#: The global rule registry: rule name -> rule class.
RULES: Dict[str, type] = {}


def register(rule_cls: type) -> type:
    """Class decorator adding a :class:`Rule` subclass to :data:`RULES`."""
    if not rule_cls.name:
        raise LintError(f"rule {rule_cls.__name__} has no name")
    if rule_cls.name in RULES:
        raise LintError(f"duplicate rule name {rule_cls.name!r}")
    RULES[rule_cls.name] = rule_cls
    return rule_cls


def collect_files(paths: Sequence[str]) -> List[str]:
    """Expand files/directories into a sorted list of ``*.py`` files."""
    files: List[str] = []
    for path in paths:
        if os.path.isfile(path):
            files.append(path)
        elif os.path.isdir(path):
            for root, dirs, names in os.walk(path):
                dirs[:] = sorted(d for d in dirs if d != "__pycache__")
                for name in sorted(names):
                    if name.endswith(".py"):
                        files.append(os.path.join(root, name))
        else:
            raise LintError(f"no such file or directory: {path}")
    # De-duplicate while preserving deterministic order.
    seen: Set[str] = set()
    unique = []
    for file in files:
        normalized = os.path.normpath(file)
        if normalized not in seen:
            seen.add(normalized)
            unique.append(file)
    return unique


@dataclass
class LintResult:
    """Outcome of one lint run."""

    findings: List[Finding]
    files_scanned: int
    rules: Tuple[str, ...]
    #: Findings suppressed by ``# lint: disable=`` comments (count only; the
    #: reporters surface the number so silent suppression growth is visible).
    suppressed: int = 0

    @property
    def counts_by_rule(self) -> Dict[str, int]:
        counts: Dict[str, int] = {name: 0 for name in self.rules}
        for finding in self.findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return counts


def _assign_occurrences(findings: List[Finding]) -> List[Finding]:
    """Number findings sharing (rule, path, snippet) in source order.

    The fingerprint is line-number free, so two identical offending lines in
    one file would otherwise collapse onto one baseline entry and the second
    real finding would be silently absorbed.
    """
    counts: Dict[Tuple[str, str, str], int] = {}
    numbered: List[Finding] = []
    for finding in findings:
        key = (finding.rule, finding.path, finding.snippet)
        counts[key] = counts.get(key, 0) + 1
        if counts[key] > 1:
            finding = replace(finding, occurrence=counts[key])
        numbered.append(finding)
    return numbered


def run_lint(
    paths: Sequence[str],
    rule_names: Optional[Iterable[str]] = None,
) -> LintResult:
    """Run the (selected) rules over ``paths`` and return sorted findings.

    Two passes: every rule's :meth:`Rule.collect` sees every module first
    (cross-file facts like class annotations), then :meth:`Rule.check` runs
    per module.  Suppressed findings are counted but not returned.
    """
    # Import for side effect: the rule modules register themselves.  The
    # graph builder is imported here (not at module top) so framework stays
    # import-light for the sanitizer's startup path.
    from repro.lint import rules as _rules  # noqa: F401
    from repro.lint.graphs import build_project_graph

    if rule_names is None:
        selected = sorted(RULES)
    else:
        selected = []
        for name in rule_names:
            if name not in RULES:
                raise LintError(
                    f"unknown rule {name!r}; known rules: {', '.join(sorted(RULES))}"
                )
            if name not in selected:
                selected.append(name)
    instances = [RULES[name]() for name in selected]

    modules: List[ModuleInfo] = []
    for file in collect_files(paths):
        with open(file, "r", encoding="utf-8") as handle:
            source = handle.read()
        modules.append(ModuleInfo(file, source))

    project = ProjectIndex(graph=build_project_graph(modules))
    for module in modules:
        for info in module.thread_unsafe_classes:
            project.thread_unsafe[info.name] = info
        for rule in instances:
            rule.collect(module, project)

    findings: List[Finding] = []
    suppressed = 0
    for module in modules:
        for rule in instances:
            for finding in rule.check(module, project):
                if module.suppressed(finding.rule, finding.line):
                    suppressed += 1
                else:
                    findings.append(finding)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    findings = _assign_occurrences(findings)
    return LintResult(
        findings=findings,
        files_scanned=len(modules),
        rules=tuple(selected),
        suppressed=suppressed,
    )
