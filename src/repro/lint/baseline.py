"""The committed zero-finding baseline and its fingerprint matching.

The baseline file (``lint-baseline.json`` at the repo root) records the
fingerprints of findings that were present when the gate was introduced.
The policy of this repo is a **zero-finding baseline** — the committed file
is empty, every finding fails CI — but the mechanism is general: a finding
whose fingerprint appears in the baseline is reported as *baselined* and
does not fail the run, so the gate could be adopted mid-stream on a dirty
tree without blocking unrelated work.

Fingerprints are line-number free (``rule:path:stripped-source-line``):
moving code around a file does not churn the baseline, while editing the
offending line re-surfaces the finding for a fresh decision.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Tuple

from repro.lint.framework import Finding, LintError

__all__ = ["DEFAULT_BASELINE", "load_baseline", "split_findings", "write_baseline"]

DEFAULT_BASELINE = "lint-baseline.json"


def load_baseline(path: str) -> Dict[str, int]:
    """Fingerprint -> allowed count from a baseline file ({} when absent)."""
    if not os.path.exists(path):
        return {}
    try:
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        raise LintError(f"cannot read baseline {path}: {error}") from error
    if not isinstance(data, dict) or not isinstance(data.get("findings", []), list):
        raise LintError(f"baseline {path} is not a lint baseline file")
    counts: Dict[str, int] = {}
    for fingerprint in data.get("findings", []):
        counts[fingerprint] = counts.get(fingerprint, 0) + 1
    return counts


def write_baseline(path: str, findings: List[Finding]) -> None:
    """Write ``findings`` as the new baseline (sorted, deterministic)."""
    payload = {
        "version": 1,
        "findings": sorted(finding.fingerprint for finding in findings),
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def split_findings(
    findings: List[Finding], baseline: Dict[str, int]
) -> Tuple[List[Finding], List[Finding]]:
    """Partition into (new, baselined) against fingerprint counts.

    Duplicate fingerprints are matched one-for-one: a baseline entry absorbs
    at most as many findings as it was recorded with, so *adding* a second
    copy of a baselined pattern still fails the gate.
    """
    remaining = dict(baseline)
    new: List[Finding] = []
    baselined: List[Finding] = []
    for finding in findings:
        allowance = remaining.get(finding.fingerprint, 0)
        if allowance > 0:
            remaining[finding.fingerprint] = allowance - 1
            baselined.append(finding)
        else:
            new.append(finding)
    return new, baselined
