"""Whole-program graphs for ``warlock lint``: imports and calls.

PR 8's rules are lexical — each looks at one module's AST at a time — which
is blind to exactly the hazards the parity and boundary contracts care about:
a ``time.time()`` three calls upstream of a fingerprint, or an unpicklable
closure handed to a helper that forwards it into ``ProcessPoolExecutor``.
This module builds the two whole-program structures the graph rules run on:

* the **module import graph** — every project-internal import edge, tagged
  with its line and whether it is a *module-level* edge (executed at import
  time, the edges layering conformance is judged on) or a *lazy* one (inside
  a function body or a ``TYPE_CHECKING`` block — the repo's sanctioned
  escape hatch for upward calls);
* a **conservative call graph** — per-function nodes keyed by qualified name
  (``module:Class.method``), with call edges resolved through the module
  symbol tables: plain names, ``self.method(...)``, module-alias attribute
  chains (``import repro.engine as e; e.adaptive_jobs(...)``), re-exports
  through ``__init__`` (``from repro.engine import EvaluationCache``), star
  imports, aliased imports, and first arguments of ``functools.partial``.
  Function references passed as arguments become ``ref`` edges (a potential
  call — the executor invokes worker entry points it never names in a call
  expression).  Anything the symbol tables cannot resolve degrades to an
  *unknown callee* — recorded, never a crash and never a guess.

The graphs are deliberately conservative in both directions: no type
inference, no dataflow through containers, no dynamic dispatch.  Rules built
on top must treat "unknown" as "no evidence", not as "safe".

``warlock lint --graph dot|json`` renders the import graph (and, for JSON,
the call graph summary) for offline inspection and the CI artifact.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.lint.framework import ModuleInfo

__all__ = [
    "CallSite",
    "FunctionNode",
    "ImportEdge",
    "ProjectGraph",
    "build_project_graph",
    "module_name_for_path",
]


@dataclass(frozen=True)
class ImportEdge:
    """One project-internal import: ``src`` imports ``dst`` at ``line``."""

    src: str
    dst: str
    line: int
    #: True when the import executes lazily (inside a function) or never
    #: (``TYPE_CHECKING``); layering conformance ignores lazy edges.
    lazy: bool
    #: Symbol names pulled across (``()`` for ``import x``, ``("*",)`` for
    #: star imports).
    names: Tuple[str, ...] = ()


@dataclass(frozen=True)
class CallSite:
    """One (potential) call out of a function."""

    #: Resolved callee qualified name (``module:qualname``); None when the
    #: symbol tables could not resolve the target ("unknown callee").
    callee: Optional[str]
    #: The call target as written (``np.sum``, ``self._probe`` ...).
    dotted: str
    line: int
    #: ``call`` for a call expression, ``ref`` for a function reference
    #: passed as an argument (a potential indirect call).
    kind: str = "call"


@dataclass
class FunctionNode:
    """One function or method in the project call graph."""

    qname: str
    module: str
    path: str
    name: str
    line: int
    #: Positional parameter names in order (self included for methods).
    params: Tuple[str, ...]
    calls: List[CallSite] = field(default_factory=list)


def module_name_for_path(path: str) -> str:
    """Dotted module name for ``path``, walking up ``__init__.py`` chains.

    ``src/repro/engine/cache.py`` -> ``repro.engine.cache``; a file whose
    directory is not a package resolves to its bare stem (fixtures).
    """
    absolute = os.path.abspath(path)
    directory, filename = os.path.split(absolute)
    stem = filename[:-3] if filename.endswith(".py") else filename
    parts: List[str] = [] if stem == "__init__" else [stem]
    while os.path.exists(os.path.join(directory, "__init__.py")):
        directory, package = os.path.split(directory)
        if not package:
            break
        parts.insert(0, package)
    return ".".join(parts) if parts else stem


class _ModuleSymbols:
    """Top-level name bindings of one module (the resolution substrate)."""

    def __init__(self, module: str, is_package: bool) -> None:
        self.module = module
        self.is_package = is_package
        #: name -> qualified name of a function/class defined here.
        self.defs: Dict[str, str] = {}
        #: class name -> set of method names (for self./Class. resolution).
        self.class_methods: Dict[str, Set[str]] = {}
        #: local alias -> (source module, original symbol) from ``from`` imports.
        self.symbol_imports: Dict[str, Tuple[str, str]] = {}
        #: local alias -> dotted module name from ``import``/submodule imports.
        self.module_aliases: Dict[str, str] = {}
        #: modules star-imported into this namespace, in order.
        self.star_sources: List[str] = []


class ProjectGraph:
    """The import graph plus the conservative call graph of one lint run."""

    def __init__(self) -> None:
        #: module name -> source path (as scanned).
        self.modules: Dict[str, str] = {}
        #: source path -> module name.
        self.module_of_path: Dict[str, str] = {}
        self.imports: List[ImportEdge] = []
        #: qualified name -> function node.
        self.functions: Dict[str, FunctionNode] = {}
        self._symbols: Dict[str, _ModuleSymbols] = {}
        #: count of call sites that resolved to no project symbol.
        self.unknown_calls: int = 0

    # -- queries ---------------------------------------------------------------

    def module_level_imports(self, src: str) -> List[ImportEdge]:
        """The non-lazy import edges out of module ``src``."""
        return [e for e in self.imports if e.src == src and not e.lazy]

    def functions_in_module(self, module: str) -> List[FunctionNode]:
        return [node for node in self.functions.values() if node.module == module]

    def callees(self, qname: str) -> List[CallSite]:
        node = self.functions.get(qname)
        return list(node.calls) if node is not None else []

    def resolve_symbol(self, module: str, name: str) -> Optional[str]:
        """Chase ``name`` in ``module`` through re-export chains.

        Returns a function/class qualified name (``mod:qualname``), a module
        name (when the symbol is a submodule), or None.
        """
        return self._chase(module, name, set())

    def resolve_expression(
        self,
        module: str,
        expr: ast.expr,
        class_name: Optional[str] = None,
        local_defs: Optional[Dict[str, str]] = None,
    ) -> Optional[str]:
        """Resolve a Name/Attribute expression in ``module``'s namespace.

        The public face of the call-target resolver, for rules that walk
        their own ASTs: ``class_name`` enables ``self.method`` resolution,
        ``local_defs`` maps names bound to nested functions in the enclosing
        scope.  Returns a qualified name, a module name, or None.
        """
        symbols = self._symbols.get(module)
        if symbols is None:
            return None
        return _resolve_target(self, symbols, expr, class_name, local_defs or {})

    # -- construction helpers --------------------------------------------------

    def _chase(self, module: str, name: str, seen: Set[Tuple[str, str]]) -> Optional[str]:
        if (module, name) in seen:
            return None
        seen.add((module, name))
        symbols = self._symbols.get(module)
        if symbols is None:
            return None
        if name in symbols.defs:
            return symbols.defs[name]
        submodule = f"{module}.{name}"
        if submodule in self.modules:
            return submodule
        if name in symbols.symbol_imports:
            source, original = symbols.symbol_imports[name]
            return self._chase(source, original, seen)
        if name in symbols.module_aliases:
            target = symbols.module_aliases[name]
            return target if target in self.modules else None
        for source in symbols.star_sources:
            resolved = self._chase(source, name, seen)
            if resolved is not None:
                return resolved
        return None

    # -- rendering -------------------------------------------------------------

    def render_dot(self) -> str:
        """The import graph in Graphviz dot (module-level solid, lazy dashed)."""
        lines = ["digraph imports {", "  rankdir=LR;", '  node [shape=box, fontsize=10];']
        for name in sorted(self.modules):
            lines.append(f'  "{name}";')
        edges: Set[Tuple[str, str, bool]] = set()
        for edge in self.imports:
            edges.add((edge.src, edge.dst, edge.lazy))
        for src, dst, lazy in sorted(edges):
            style = ' [style=dashed, color=gray]' if lazy else ""
            lines.append(f'  "{src}" -> "{dst}"{style};')
        lines.append("}")
        return "\n".join(lines)

    def render_json(self) -> Dict[str, object]:
        """JSON-ready description of both graphs (stable ordering)."""
        return {
            "modules": {name: self.modules[name] for name in sorted(self.modules)},
            "imports": [
                {
                    "src": edge.src,
                    "dst": edge.dst,
                    "line": edge.line,
                    "lazy": edge.lazy,
                    "names": list(edge.names),
                }
                for edge in sorted(
                    self.imports, key=lambda e: (e.src, e.dst, e.line)
                )
            ],
            "functions": {
                qname: {
                    "path": node.path,
                    "line": node.line,
                    "calls": [
                        {
                            "callee": site.callee,
                            "dotted": site.dotted,
                            "line": site.line,
                            "kind": site.kind,
                        }
                        for site in node.calls
                    ],
                }
                for qname, node in sorted(self.functions.items())
            },
            "summary": {
                "modules": len(self.modules),
                "import_edges": len(self.imports),
                "functions": len(self.functions),
                "unknown_calls": self.unknown_calls,
            },
        }


def build_project_graph(modules: Sequence[ModuleInfo]) -> ProjectGraph:
    """Build the import and call graphs over the scanned ``modules``."""
    graph = ProjectGraph()
    infos: List[Tuple[ModuleInfo, str, bool]] = []
    for info in modules:
        name = module_name_for_path(info.path)
        is_package = os.path.basename(info.path) == "__init__.py"
        if name in graph.modules:
            # Duplicate module names (loose fixture files): first wins, the
            # rest degrade to unresolvable — never a crash.
            continue
        graph.modules[name] = info.path
        graph.module_of_path[info.path] = name
        infos.append((info, name, is_package))

    for info, name, is_package in infos:
        _collect_symbols_and_imports(graph, info, name, is_package)
    # Register every function node first, then resolve call sites: a call in
    # module A may target a function in module B scanned later.
    for info, name, _ in infos:
        _walk_functions(graph, info, name, record_calls=False)
    for info, name, _ in infos:
        _walk_functions(graph, info, name, record_calls=True)
    for node in graph.functions.values():
        graph.unknown_calls += sum(1 for site in node.calls if site.callee is None)
    return graph


def _is_type_checking_test(test: ast.expr) -> bool:
    if isinstance(test, ast.Name):
        return test.id == "TYPE_CHECKING"
    if isinstance(test, ast.Attribute):
        return test.attr == "TYPE_CHECKING"
    return False


def _resolve_relative(module: str, is_package: bool, level: int, target: Optional[str]) -> str:
    """Absolute module name for a relative ``from``-import."""
    parts = module.split(".")
    # In a package's __init__, level 1 is the package itself; in a plain
    # module, level 1 is its containing package.
    drop = level - 1 if is_package else level
    base = parts[: len(parts) - drop] if drop else parts
    if target:
        base = base + target.split(".")
    return ".".join(base)


def _project_prefix(graph: ProjectGraph, dotted: str) -> Optional[str]:
    """Longest prefix of ``dotted`` that names a scanned module."""
    parts = dotted.split(".")
    for end in range(len(parts), 0, -1):
        candidate = ".".join(parts[:end])
        if candidate in graph.modules:
            return candidate
    return None


def _collect_symbols_and_imports(
    graph: ProjectGraph, info: ModuleInfo, name: str, is_package: bool
) -> None:
    symbols = _ModuleSymbols(name, is_package)
    graph._symbols[name] = symbols

    for node in info.tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            symbols.defs[node.name] = f"{name}:{node.name}"
        elif isinstance(node, ast.ClassDef):
            symbols.defs[node.name] = f"{name}:{node.name}"
            symbols.class_methods[node.name] = {
                item.name
                for item in node.body
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
            }

    # Walk every import statement, tracking laziness: anything nested in a
    # function executes lazily; a TYPE_CHECKING block never executes.
    def walk(body: Sequence[ast.stmt], lazy: bool) -> None:
        for node in body:
            if isinstance(node, ast.Import):
                _record_import(graph, symbols, name, node, lazy)
            elif isinstance(node, ast.ImportFrom):
                _record_import_from(graph, symbols, name, is_package, node, lazy)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                walk(node.body, True)
            elif isinstance(node, ast.ClassDef):
                walk(node.body, lazy)
            elif isinstance(node, ast.If):
                branch_lazy = lazy or _is_type_checking_test(node.test)
                walk(node.body, branch_lazy)
                walk(node.orelse, lazy)
            elif isinstance(node, (ast.Try, ast.With, ast.For, ast.While)):
                walk(getattr(node, "body", []), lazy)
                walk(getattr(node, "orelse", []), lazy)
                walk(getattr(node, "finalbody", []), lazy)
                for handler in getattr(node, "handlers", []):
                    walk(handler.body, lazy)

    walk(info.tree.body, False)


def _record_import(
    graph: ProjectGraph,
    symbols: _ModuleSymbols,
    module: str,
    node: ast.Import,
    lazy: bool,
) -> None:
    for alias in node.names:
        target = alias.name
        bound = alias.asname if alias.asname else target.split(".")[0]
        if alias.asname:
            symbols.module_aliases[bound] = target
        else:
            symbols.module_aliases.setdefault(bound, target.split(".")[0])
        dst = _project_prefix(graph, target)
        if dst is not None and dst != module:
            graph.imports.append(
                ImportEdge(src=module, dst=dst, line=node.lineno, lazy=lazy)
            )


def _record_import_from(
    graph: ProjectGraph,
    symbols: _ModuleSymbols,
    module: str,
    is_package: bool,
    node: ast.ImportFrom,
    lazy: bool,
) -> None:
    if node.level:
        source = _resolve_relative(module, is_package, node.level, node.module)
    else:
        source = node.module or ""
    if not source:
        return
    names: List[str] = []
    for alias in node.names:
        names.append(alias.name)
        bound = alias.asname if alias.asname else alias.name
        if alias.name == "*":
            symbols.star_sources.append(source)
        elif f"{source}.{alias.name}" in graph.modules:
            # ``from repro import engine`` binds a submodule, not a symbol.
            symbols.module_aliases[bound] = f"{source}.{alias.name}"
        else:
            symbols.symbol_imports[bound] = (source, alias.name)
    dst = _project_prefix(graph, source)
    if dst is not None and dst != module:
        graph.imports.append(
            ImportEdge(
                src=module, dst=dst, line=node.lineno, lazy=lazy, names=tuple(names)
            )
        )


#: Dotted suffixes treated as ``functools.partial``.
_PARTIAL_NAMES = {"partial", "functools.partial"}


def _dotted_text(expr: ast.expr) -> Optional[str]:
    """``a.b.c`` for a pure Name/Attribute chain, else None."""
    parts: List[str] = []
    node = expr
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _walk_functions(
    graph: ProjectGraph, info: ModuleInfo, module: str, record_calls: bool
) -> None:
    symbols = graph._symbols[module]

    def add_function(
        node: ast.AST,
        qualname: str,
        class_name: Optional[str],
        local_defs: Dict[str, str],
    ) -> None:
        assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        qname = f"{module}:{qualname}"
        if not record_calls:
            args = node.args
            params = tuple(
                a.arg
                for a in (
                    list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
                )
            )
            graph.functions[qname] = FunctionNode(
                qname=qname,
                module=module,
                path=info.path,
                name=node.name,
                line=node.lineno,
                params=params,
            )
        func = graph.functions[qname]

        # Nested defs become their own nodes; names they bind resolve locally.
        nested: Dict[str, str] = dict(local_defs)
        for child in node.body:
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                nested[child.name] = f"{module}:{qualname}.{child.name}"

        for child in node.body:
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                add_function(child, f"{qualname}.{child.name}", class_name, nested)
            elif record_calls:
                for sub in ast.walk(child):
                    if isinstance(sub, ast.Call):
                        _record_call(graph, symbols, func, sub, class_name, nested)

    for node in info.tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            add_function(node, node.name, None, {})
        elif isinstance(node, ast.ClassDef):
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    add_function(item, f"{node.name}.{item.name}", node.name, {})


def _record_call(
    graph: ProjectGraph,
    symbols: _ModuleSymbols,
    func: FunctionNode,
    call: ast.Call,
    class_name: Optional[str],
    local_defs: Dict[str, str],
) -> None:
    dotted = _dotted_text(call.func) or "<dynamic>"
    callee = _resolve_target(graph, symbols, call.func, class_name, local_defs)
    func.calls.append(
        CallSite(callee=callee, dotted=dotted, line=call.lineno, kind="call")
    )
    # functools.partial(f, ...): the first argument is a deferred call.
    if dotted in _PARTIAL_NAMES and call.args:
        target = call.args[0]
        ref_dotted = _dotted_text(target)
        if ref_dotted is not None:
            resolved = _resolve_target(graph, symbols, target, class_name, local_defs)
            func.calls.append(
                CallSite(
                    callee=resolved, dotted=ref_dotted, line=call.lineno, kind="ref"
                )
            )
        return
    # Function references handed to another call are potential calls.
    for arg in list(call.args) + [kw.value for kw in call.keywords]:
        if isinstance(arg, (ast.Name, ast.Attribute)):
            ref_dotted = _dotted_text(arg)
            if ref_dotted is None:
                continue
            resolved = _resolve_target(graph, symbols, arg, class_name, local_defs)
            if resolved is not None and resolved in graph.functions:
                func.calls.append(
                    CallSite(
                        callee=resolved, dotted=ref_dotted, line=arg.lineno, kind="ref"
                    )
                )


def _resolve_target(
    graph: ProjectGraph,
    symbols: _ModuleSymbols,
    expr: ast.expr,
    class_name: Optional[str],
    local_defs: Dict[str, str],
) -> Optional[str]:
    """Resolve a call/reference target to a project qualified name."""
    if isinstance(expr, ast.Name):
        if expr.id in local_defs:
            return local_defs[expr.id]
        resolved = graph.resolve_symbol(symbols.module, expr.id)
        return _normalize(graph, resolved)
    if not isinstance(expr, ast.Attribute):
        return None
    dotted = _dotted_text(expr)
    if dotted is None:
        return None
    parts = dotted.split(".")
    # self.method() inside a class body.
    if parts[0] == "self" and class_name is not None and len(parts) == 2:
        methods = symbols.class_methods.get(class_name, set())
        if parts[1] in methods:
            return f"{symbols.module}:{class_name}.{parts[1]}"
        return None
    # Expand a leading module alias, then find the longest module prefix.
    head = parts[0]
    if head in symbols.module_aliases:
        parts = symbols.module_aliases[head].split(".") + parts[1:]
    elif head in symbols.symbol_imports:
        source, original = symbols.symbol_imports[head]
        base = graph.resolve_symbol(source, original)
        if base is None:
            return None
        if base in graph.modules:
            parts = base.split(".") + parts[1:]
        elif ":" in base and len(parts) == 2:
            # Class imported from elsewhere: Class.method
            base_module, base_name = base.split(":", 1)
            base_symbols = graph._symbols.get(base_module)
            if (
                base_symbols is not None
                and parts[1] in base_symbols.class_methods.get(base_name, set())
            ):
                return f"{base_module}:{base_name}.{parts[1]}"
            return None
        else:
            return None
    elif head in symbols.class_methods and len(parts) == 2:
        # Class.method on a locally defined class.
        if parts[1] in symbols.class_methods[head]:
            return f"{symbols.module}:{head}.{parts[1]}"
        return None
    dotted = ".".join(parts)
    prefix = _project_prefix(graph, dotted)
    if prefix is None:
        return None
    remainder = dotted[len(prefix) :].lstrip(".")
    if not remainder:
        return prefix
    tail = remainder.split(".")
    if len(tail) == 1:
        return _normalize(graph, graph.resolve_symbol(prefix, tail[0]))
    if len(tail) == 2:
        target_symbols = graph._symbols.get(prefix)
        if target_symbols is not None and tail[1] in target_symbols.class_methods.get(
            tail[0], set()
        ):
            return f"{prefix}:{tail[0]}.{tail[1]}"
    return None


def _normalize(graph: ProjectGraph, resolved: Optional[str]) -> Optional[str]:
    """Collapse class qnames onto their ``__init__`` when one exists."""
    if resolved is None:
        return None
    if ":" in resolved:
        init = f"{resolved.split(':', 1)[0]}:{resolved.split(':', 1)[1]}.__init__"
        if init in graph.functions:
            return init
    return resolved
