"""Rule modules register themselves on import (see ``framework.RULES``)."""

from repro.lint.rules import (  # noqa: F401
    deprecation,
    lock_discipline,
    numeric_determinism,
    picklability,
    wire_contract,
)
