"""Rule modules register themselves on import (see ``framework.RULES``)."""

from repro.lint.rules import (  # noqa: F401
    boundary_serialization,
    deprecation,
    determinism_taint,
    layering,
    lock_discipline,
    numeric_determinism,
    picklability,
    wire_contract,
)
