"""Rule ``numeric-determinism``: keep parity-critical arithmetic ordered.

The cost model's bit-identical parity contract (scalar reference vs columnar
kernels, warm vs cold cache, HTTP vs in-process) depends on scalar
accumulation happening in one deterministic order and on ``**`` routing
through the pinned float-pow helper (``costmodel/formulas.py``), which pins
CPython float semantics on both the scalar and vectorized paths.  This rule
guards the parity-critical modules — ``costmodel/``, ``allocation/`` and
``core/ranking.py``, or anything marked ``# lint: parity-critical`` — against
the patterns that break those contracts:

* ``sum()`` / ``np.sum()`` over a set or dict expression — unordered
  reduction, the float result depends on hash iteration order;
* ``for`` loops iterating a set/dict expression whose body accumulates
  (``+=`` and friends) — same hazard spelled as a loop;
* ``math.pow(...)`` or the ``**`` operator anywhere outside the pinned helper
  module — pow must flow through ``_elementwise_pow`` so the scalar and numpy
  paths agree bit-for-bit.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.lint.framework import Finding, ModuleInfo, ProjectIndex, Rule, register

#: Path fragments that make a module parity-critical without a marker.
PARITY_PATHS = ("/costmodel/", "/allocation/")
PARITY_SUFFIXES = ("core/ranking.py",)

#: The one module allowed to spell ``**`` / ``pow`` directly: it *is* the
#: pinned helper.
POW_HELPER_SUFFIX = "costmodel/formulas.py"

_REDUCERS = {"sum", "fsum", "prod", "min", "max"}


def _is_parity_module(module: ModuleInfo) -> bool:
    if "parity-critical" in module.markers:
        return True
    path = module.path
    return any(part in path for part in PARITY_PATHS) or path.endswith(PARITY_SUFFIXES)


def _call_name(func: ast.expr) -> Optional[str]:
    """Trailing identifier of a call target (``np.sum`` -> ``sum``)."""
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _dotted(func: ast.expr) -> str:
    """Best-effort dotted name (``math.pow`` -> ``"math.pow"``)."""
    parts = []
    node = func
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    return ".".join(reversed(parts))


def _is_unordered(expr: ast.expr) -> bool:
    """True when ``expr`` evaluates to a set, or iterates one."""
    if isinstance(expr, (ast.Set, ast.SetComp)):
        return True
    if isinstance(expr, ast.Call):
        name = _call_name(expr.func)
        if isinstance(expr.func, ast.Name) and name in {"set", "frozenset"}:
            return True
    if isinstance(expr, (ast.GeneratorExp, ast.ListComp)):
        # A comprehension is only as ordered as its innermost iterable.
        return any(_is_unordered(gen.iter) for gen in expr.generators)
    return False


@register
class NumericDeterminismRule(Rule):
    name = "numeric-determinism"
    description = (
        "parity-critical modules must not reduce over unordered collections "
        "or bypass the pinned float-pow helper"
    )

    def check(self, module: ModuleInfo, project: ProjectIndex) -> Iterator[Finding]:
        if not _is_parity_module(module):
            return
        pow_allowed = module.path.endswith(POW_HELPER_SUFFIX)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                name = _call_name(node.func)
                if name in _REDUCERS and node.args and _is_unordered(node.args[0]):
                    yield module.finding(
                        self.name,
                        node,
                        f"{_dotted(node.func)}() over an unordered collection: "
                        f"the float result depends on set iteration order; "
                        f"reduce over a sorted or insertion-ordered sequence",
                    )
                elif not pow_allowed and _dotted(node.func) == "math.pow":
                    yield module.finding(
                        self.name,
                        node,
                        "math.pow() in a parity-critical module: route powers "
                        "through costmodel.formulas._elementwise_pow so scalar "
                        "and vectorized paths agree bit-for-bit",
                    )
            elif (
                isinstance(node, ast.BinOp)
                and isinstance(node.op, ast.Pow)
                and not pow_allowed
            ):
                yield module.finding(
                    self.name,
                    node,
                    "'**' in a parity-critical module: route powers through "
                    "costmodel.formulas._elementwise_pow so scalar and "
                    "vectorized paths agree bit-for-bit",
                )
            elif isinstance(node, (ast.For, ast.AsyncFor)) and _is_unordered(
                node.iter
            ):
                if any(
                    isinstance(child, ast.AugAssign)
                    for stmt in node.body
                    for child in ast.walk(stmt)
                ):
                    yield module.finding(
                        self.name,
                        node,
                        "accumulating over an unordered collection: iterate a "
                        "sorted or insertion-ordered sequence so the running "
                        "float total is deterministic",
                    )
