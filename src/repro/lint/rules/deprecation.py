"""Rule ``deprecation-hygiene``: no internal callers on the legacy shims.

``EngineOptions`` consolidated the engine knobs in PR 5; the old per-kwarg
spellings (``jobs=``, ``vectorize=``, ``cache_dir=``, ``cache=False``)
survive on a known set of shimmed callables purely for external
compatibility, warning :class:`~repro.api.EngineOptionsDeprecationWarning`.
Internal code migrated off them in the same PR — and must stay off, or the
warnings CI treats as noise start masking real ones.  This rule flags any
call to a shimmed owner that passes a deprecated keyword.

``cache=<EvaluationCache instance>`` is *not* deprecated (it is the
supported cross-engine sharing hook); only the literal ``cache=False``
switch is flagged.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.lint.framework import Finding, ModuleInfo, ProjectIndex, Rule, register

#: Callables that still accept the legacy kwargs through
#: ``repro.api.options.resolve_engine_options``.
SHIMMED_OWNERS = frozenset(
    [
        "Warlock",
        "EvaluationEngine",
        "compare_specs",
        "disk_count_study",
        "architecture_study",
        "prefetch_study",
        "bitmap_exclusion_study",
        "skew_study",
        "workload_weight_study",
    ]
)

_DEPRECATED_KWARGS = ("jobs", "vectorize", "cache_dir")


def _call_name(node: ast.Call) -> Optional[str]:
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


@register
class DeprecationHygieneRule(Rule):
    name = "deprecation-hygiene"
    description = (
        "internal callers must pass options=EngineOptions(...) instead of "
        "the deprecated legacy kwargs on shimmed callables"
    )

    def check(self, module: ModuleInfo, project: ProjectIndex) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = _call_name(node)
            if name not in SHIMMED_OWNERS:
                continue
            for keyword in node.keywords:
                if keyword.arg in _DEPRECATED_KWARGS:
                    yield module.finding(
                        self.name,
                        keyword.value,
                        f"{name}({keyword.arg}=...) uses a deprecated legacy "
                        f"kwarg: pass options=EngineOptions("
                        f"{keyword.arg}=...) instead",
                    )
                elif (
                    keyword.arg == "cache"
                    and isinstance(keyword.value, ast.Constant)
                    and keyword.value.value is False
                ):
                    yield module.finding(
                        self.name,
                        keyword.value,
                        f"{name}(cache=False) uses the deprecated switch: "
                        f"pass options=EngineOptions(cache=False) instead",
                    )
