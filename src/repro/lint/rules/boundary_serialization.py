"""Rule ``boundary-serialization``: serialization boundaries, transitively.

PR 8's ``pool-boundary-picklability`` rule checks the *literal* call site: a
lambda spelled directly inside ``pool.submit(...)``.  It cannot see the same
lambda handed to a helper that forwards it into the pool two calls later, a
closure tucked into a dataclass field, or an open handle reaching the cache
store's pickle path.  This rule runs the same checks *through the call
graph*:

* **Boundary sinks** are the places a value leaves the process or the
  object graph: ``ProcessPoolExecutor`` ``submit``/``map``/``initargs``
  (kind ``pool``), ``pickle.dump``/``pickle.dumps`` and
  ``np.savez``/``np.savez_compressed`` (kind ``store`` — the
  :class:`~repro.engine.store.CacheStore` spill formats), and
  ``json.dump``/``json.dumps`` (kind ``wire`` — every ``to_dict`` payload
  the HTTP service emits goes through it).
* **Summaries**: a function parameter that flows into a boundary call —
  directly, or as an argument to another function whose parameter does —
  is *boundary-reaching*.  The summaries propagate over the call graph to a
  fixpoint, so a helper chain of any depth is seen.
* **Checks**: at every call whose argument lands in a boundary-reaching
  parameter, the argument expression must not contain a lambda, a reference
  to a function nested inside another function (a closure), an inline
  ``open(...)`` handle, or — for the ``pool`` kind only — a module-level
  mutable (workers receive a copy; mutation silently diverges).  A project
  dataclass whose **field default is a lambda** is flagged when it crosses
  any boundary: the instance drags the unpicklable default along.

Direct ``pool.submit(...)`` literals stay the lexical rule's findings (one
finding per defect, not two); this rule owns everything the lexical rule
cannot see, plus the non-pool sinks.  Unresolvable callees contribute no
summaries — conservative both ways, the parity/service test suites remain
the runtime backstop.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.lint.framework import (
    Finding,
    ModuleInfo,
    ProjectIndex,
    Rule,
    register,
)
from repro.lint.graphs import ProjectGraph

_POOL_TYPES = {"ProcessPoolExecutor", "Pool"}
_POOL_METHODS = {"submit", "map", "apply_async", "imap", "imap_unordered"}

#: Dotted boundary calls -> boundary kind.
BOUNDARY_CALLS: Dict[str, str] = {
    "pickle.dump": "store",
    "pickle.dumps": "store",
    "np.savez": "store",
    "np.savez_compressed": "store",
    "numpy.savez": "store",
    "numpy.savez_compressed": "store",
    "json.dump": "wire",
    "json.dumps": "wire",
}

_KIND_LABEL = {
    "pool": "the process-pool boundary",
    "store": "the cache-store pickle/npz path",
    "wire": "the JSON wire format",
}


def _dotted_text(expr: ast.expr) -> Optional[str]:
    parts: List[str] = []
    node = expr
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


@dataclass
class _CallRecord:
    """One call with its argument expressions, for the summary fixpoint."""

    callee: str
    node: ast.Call
    #: (callee parameter name, argument expression) pairs.
    bindings: List[Tuple[str, ast.expr]]
    #: Parameter names of the *enclosing* function appearing per binding.
    caller_params: List[Set[str]]


@dataclass
class _FunctionFacts:
    qname: str
    module_path: str
    params: Tuple[str, ...]
    #: (param name, kind) pairs that reach a boundary directly in this body.
    direct: Set[Tuple[str, str]] = field(default_factory=set)
    calls: List[_CallRecord] = field(default_factory=list)


@dataclass
class _ModuleFacts:
    pool_names: Set[str] = field(default_factory=set)
    nested_functions: Set[str] = field(default_factory=set)
    module_mutables: Dict[str, int] = field(default_factory=dict)
    #: Direct non-pool boundary calls to check lexically: (kind, call node).
    direct_sinks: List[Tuple[str, ast.Call]] = field(default_factory=list)


@register
class BoundarySerializationRule(Rule):
    name = "boundary-serialization"
    description = (
        "values reaching a pool submit, the cache-store pickle/npz path or "
        "the JSON wire — through any helper chain or dataclass field — must "
        "be serializable"
    )

    def __init__(self) -> None:
        self._module_facts: Dict[str, _ModuleFacts] = {}
        self._functions: Dict[str, _FunctionFacts] = {}
        #: dataclass qname -> (field name, line) of a lambda field default.
        self._bad_dataclasses: Dict[str, Tuple[str, int]] = {}
        self._summary: Optional[Dict[str, Set[Tuple[str, str]]]] = None
        self._graph: Optional[ProjectGraph] = None

    # -- collect ----------------------------------------------------------------

    def collect(self, module: ModuleInfo, project: ProjectIndex) -> None:
        graph = project.graph
        if graph is None:
            return
        self._graph = graph
        name = graph.module_of_path.get(module.path)
        if name is None:
            return
        facts = _ModuleFacts()
        self._module_facts[module.path] = facts
        _collect_module_facts(module, facts)
        _collect_bad_dataclasses(module, name, self._bad_dataclasses)
        _collect_function_facts(module, name, graph, facts, self._functions)

    # -- fixpoint ---------------------------------------------------------------

    def _boundary_summary(self) -> Dict[str, Set[Tuple[str, str]]]:
        """(param, kind) pairs per function that reach a boundary."""
        if self._summary is not None:
            return self._summary
        summary: Dict[str, Set[Tuple[str, str]]] = {
            qname: set(facts.direct) for qname, facts in self._functions.items()
        }
        changed = True
        while changed:
            changed = False
            for qname, facts in self._functions.items():
                mine = summary[qname]
                for record in facts.calls:
                    callee = summary.get(record.callee)
                    if not callee:
                        continue
                    for (param, expr), caller_params in zip(
                        record.bindings, record.caller_params
                    ):
                        kinds = {kind for (name, kind) in callee if name == param}
                        for kind in kinds:
                            for caller_param in caller_params:
                                if (caller_param, kind) not in mine:
                                    mine.add((caller_param, kind))
                                    changed = True
        self._summary = summary
        return summary

    # -- check ------------------------------------------------------------------

    def check(self, module: ModuleInfo, project: ProjectIndex) -> Iterator[Finding]:
        graph = project.graph
        if graph is None:
            return
        name = graph.module_of_path.get(module.path)
        if name is None:
            return
        facts = self._module_facts.get(module.path)
        if facts is None:
            return
        summary = self._boundary_summary()

        # 1. Direct non-pool sinks: the literal arguments must serialize.
        for kind, call in facts.direct_sinks:
            payload = list(call.args) + [kw.value for kw in call.keywords]
            for arg in payload:
                yield from self._check_expr(module, facts, arg, kind, direct=True)

        # 2. Transitive sites: arguments landing in boundary-reaching params.
        for qname, function in self._functions.items():
            if function.module_path != module.path:
                continue
            for record in function.calls:
                reaching = summary.get(record.callee, set())
                if not reaching:
                    continue
                for param, expr in record.bindings:
                    kinds = sorted({k for (p, k) in reaching if p == param})
                    for kind in kinds:
                        yield from self._check_expr(
                            module, facts, expr, kind, direct=False, callee=record.callee
                        )

    def _check_expr(
        self,
        module: ModuleInfo,
        facts: _ModuleFacts,
        expr: ast.expr,
        kind: str,
        direct: bool,
        callee: Optional[str] = None,
    ) -> Iterator[Finding]:
        where = _KIND_LABEL[kind]
        via = "" if direct else f" via {callee}"
        for sub in ast.walk(expr):
            if isinstance(sub, ast.Lambda):
                yield module.finding(
                    self.name,
                    sub,
                    f"lambda reaches {where}{via}: lambdas do not "
                    f"serialize; use a module-level function",
                )
            elif isinstance(sub, ast.Call):
                dotted = _dotted_text(sub.func)
                if dotted == "open":
                    yield module.finding(
                        self.name,
                        sub,
                        f"open() handle reaches {where}{via}: pass the path "
                        f"and open at the consumer",
                    )
                elif dotted is not None:
                    yield from self._check_dataclass(module, sub, dotted, kind, via)
            elif isinstance(sub, ast.Name):
                if sub.id in facts.nested_functions:
                    yield module.finding(
                        self.name,
                        sub,
                        f"nested function {sub.id!r} reaches {where}{via}: "
                        f"closures do not serialize; hoist it to module level",
                    )
                elif kind == "pool" and sub.id in facts.module_mutables:
                    yield module.finding(
                        self.name,
                        sub,
                        f"module-level mutable {sub.id!r} (defined at line "
                        f"{facts.module_mutables[sub.id]}) reaches {where}"
                        f"{via}: workers receive a copy, so mutation "
                        f"silently diverges; pass an immutable snapshot",
                    )

    def _check_dataclass(
        self, module: ModuleInfo, call: ast.Call, dotted: str, kind: str, via: str
    ) -> Iterator[Finding]:
        # Resolution through the project graph: the constructor may be
        # imported under an alias or re-exported.
        resolved = self._resolve_in_module(module, call.func)
        if resolved is None:
            return
        bad = self._bad_dataclasses.get(resolved)
        if bad is None:
            return
        field_name, line = bad
        yield module.finding(
            self.name,
            call,
            f"dataclass {resolved} crosses {_KIND_LABEL[kind]}{via} but its "
            f"field {field_name!r} defaults to a lambda (defined at line "
            f"{line} of its module): the instance drags an unserializable "
            f"default along; use a module-level function or a sentinel",
        )

    def _resolve_in_module(self, module: ModuleInfo, expr: ast.expr) -> Optional[str]:
        graph = self._graph
        if graph is None:
            return None
        name = graph.module_of_path.get(module.path)
        if name is None:
            return None
        return graph.resolve_expression(name, expr)


def _collect_module_facts(module: ModuleInfo, facts: _ModuleFacts) -> None:
    """Pool names, nested function names, module mutables, direct sinks."""
    depth = 0

    class Visitor(ast.NodeVisitor):
        def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
            nonlocal depth
            if depth > 0:
                facts.nested_functions.add(node.name)
            depth += 1
            self.generic_visit(node)
            depth -= 1

        visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

        def visit_Assign(self, node: ast.Assign) -> None:
            value = node.value
            if isinstance(value, ast.Call):
                dotted = _dotted_text(value.func)
                if dotted is not None and dotted.split(".")[-1] in _POOL_TYPES:
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            facts.pool_names.add(target.id)
            if depth == 0 and isinstance(
                value,
                (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp),
            ):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        facts.module_mutables[target.id] = node.lineno
            self.generic_visit(node)

        def visit_With(self, node: ast.With) -> None:
            for item in node.items:
                expr = item.context_expr
                if isinstance(expr, ast.Call):
                    dotted = _dotted_text(expr.func)
                    if (
                        dotted is not None
                        and dotted.split(".")[-1] in _POOL_TYPES
                        and isinstance(item.optional_vars, ast.Name)
                    ):
                        facts.pool_names.add(item.optional_vars.id)
            self.generic_visit(node)

        visit_AsyncWith = visit_With  # type: ignore[assignment]

        def visit_Call(self, node: ast.Call) -> None:
            dotted = _dotted_text(node.func)
            if dotted is not None and dotted in BOUNDARY_CALLS:
                facts.direct_sinks.append((BOUNDARY_CALLS[dotted], node))
            self.generic_visit(node)

    Visitor().visit(module.tree)


def _collect_bad_dataclasses(
    module: ModuleInfo, name: str, bad: Dict[str, Tuple[str, int]]
) -> None:
    """Project dataclasses whose field default (or default=) is a lambda."""
    for node in module.tree.body:
        if not isinstance(node, ast.ClassDef):
            continue
        is_dataclass = False
        for decorator in node.decorator_list:
            target = decorator.func if isinstance(decorator, ast.Call) else decorator
            dotted = _dotted_text(target)
            if dotted is not None and dotted.split(".")[-1] == "dataclass":
                is_dataclass = True
        if not is_dataclass:
            continue
        for item in node.body:
            if not isinstance(item, ast.AnnAssign) or item.value is None:
                continue
            if not isinstance(item.target, ast.Name):
                continue
            default = item.value
            lambda_default = isinstance(default, ast.Lambda)
            if isinstance(default, ast.Call):
                dotted = _dotted_text(default.func)
                if dotted is not None and dotted.split(".")[-1] == "field":
                    for keyword in default.keywords:
                        if keyword.arg == "default" and isinstance(
                            keyword.value, ast.Lambda
                        ):
                            lambda_default = True
            if lambda_default:
                bad[f"{name}:{node.name}"] = (item.target.id, item.lineno)


def _params_in(expr: ast.expr, params: Sequence[str]) -> Set[str]:
    names: Set[str] = set()
    wanted = set(params)
    for sub in ast.walk(expr):
        if isinstance(sub, ast.Name) and sub.id in wanted:
            names.add(sub.id)
    return names


def _collect_function_facts(
    module: ModuleInfo,
    name: str,
    graph: ProjectGraph,
    module_facts: _ModuleFacts,
    out: Dict[str, _FunctionFacts],
) -> None:
    """Per-function boundary facts and resolved call records."""

    def walk_function(
        node: ast.AST,
        qualname: str,
        class_name: Optional[str],
        local_defs: Dict[str, str],
    ) -> None:
        assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        qname = f"{name}:{qualname}"
        graph_node = graph.functions.get(qname)
        params: Tuple[str, ...] = graph_node.params if graph_node is not None else ()
        facts = _FunctionFacts(qname=qname, module_path=module.path, params=params)
        out[qname] = facts

        nested: Dict[str, str] = dict(local_defs)
        for child in node.body:
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                nested[child.name] = f"{name}:{qualname}.{child.name}"

        own_statements = [
            child
            for child in node.body
            if not isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        for stmt in own_statements:
            for sub in ast.walk(stmt):
                if isinstance(sub, ast.Call):
                    _record_one_call(
                        module, name, graph, facts, module_facts, sub,
                        class_name, nested,
                    )
        for child in node.body:
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                walk_function(child, f"{qualname}.{child.name}", class_name, nested)

    for node in module.tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            walk_function(node, node.name, None, {})
        elif isinstance(node, ast.ClassDef):
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    walk_function(item, f"{node.name}.{item.name}", node.name, {})


def _record_one_call(
    module: ModuleInfo,
    name: str,
    graph: ProjectGraph,
    facts: _FunctionFacts,
    module_facts: _ModuleFacts,
    call: ast.Call,
    class_name: Optional[str],
    local_defs: Dict[str, str],
) -> None:
    dotted = _dotted_text(call.func)
    payload = list(call.args) + [kw.value for kw in call.keywords]

    # Direct boundary: mark which of this function's params cross it.
    kind: Optional[str] = None
    if dotted is not None and dotted in BOUNDARY_CALLS:
        kind = BOUNDARY_CALLS[dotted]
    elif (
        isinstance(call.func, ast.Attribute)
        and call.func.attr in _POOL_METHODS
        and isinstance(call.func.value, ast.Name)
        and call.func.value.id in module_facts.pool_names
    ):
        kind = "pool"
    elif dotted is not None and dotted.split(".")[-1] in _POOL_TYPES:
        for keyword in call.keywords:
            if keyword.arg == "initargs":
                for param in _params_in(keyword.value, facts.params):
                    facts.direct.add((param, "pool"))
    if kind is not None:
        for arg in payload:
            for param in _params_in(arg, facts.params):
                facts.direct.add((param, kind))
        return

    # Project call: record the argument bindings for the summary fixpoint.
    callee = graph.resolve_expression(name, call.func, class_name, local_defs)
    if callee is None or callee not in graph.functions:
        return
    callee_node = graph.functions[callee]
    offset = 0
    if callee_node.params and callee_node.params[0] in ("self", "cls"):
        if isinstance(call.func, ast.Attribute) or callee.endswith(".__init__"):
            offset = 1
    bindings: List[Tuple[str, ast.expr]] = []
    caller_params: List[Set[str]] = []
    for position, arg in enumerate(call.args):
        index = position + offset
        if index < len(callee_node.params):
            bindings.append((callee_node.params[index], arg))
            caller_params.append(_params_in(arg, facts.params))
    for keyword in call.keywords:
        if keyword.arg is not None and keyword.arg in callee_node.params:
            bindings.append((keyword.arg, keyword.value))
            caller_params.append(_params_in(keyword.value, facts.params))
    if bindings:
        facts.calls.append(
            _CallRecord(
                callee=callee, node=call, bindings=bindings, caller_params=caller_params
            )
        )
