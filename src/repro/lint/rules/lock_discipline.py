"""Rule ``lock-discipline``: not-thread-safe objects only under their lock.

The multi-threaded ``service/`` layer shares objects that are deliberately
*not* thread-safe — the :class:`~repro.engine.EvaluationCache` and the
:class:`~repro.api.AdvisorSession` that wraps it — and serializes access with
the registry's per-entry lock.  That convention is invisible to Python, so
this rule makes it lexical: in service modules (path contains ``/service/``
or marked ``# lint: service-module``), a call on an instance of a class
annotated ``# lint: not-thread-safe`` must sit inside a ``with <...>.lock:``
block.

What counts as such a call is a receiver-name heuristic — static analysis
cannot type-infer, so the class annotation names its conventional receiver
identifiers (``instances=session,cache``) and the rule flags
``<...>.session.method(...)`` / ``session.method(...)`` only when ``method``
is actually defined by an annotated class.  Modules marked
``# lint: single-threaded`` are exempt (no concurrent callers by
construction).  Deliberate out-of-``with`` patterns — e.g. closing an evicted
session whose lock was acquired non-blocking — carry a
``# lint: disable=lock-discipline -- reason`` suppression documenting why.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Tuple

from repro.lint.framework import Finding, ModuleInfo, ProjectIndex, Rule, register


def _is_service_module(module: ModuleInfo) -> bool:
    if "service-module" in module.markers:
        return True
    return "/service/" in module.path


def _receiver_name(func: ast.expr) -> Optional[str]:
    """Trailing receiver identifier of ``<recv>.method`` (None when opaque)."""
    if not isinstance(func, ast.Attribute):
        return None
    value = func.value
    if isinstance(value, ast.Name):
        return value.id
    if isinstance(value, ast.Attribute):
        return value.attr
    return None


def _is_lock_expr(expr: ast.expr) -> bool:
    """True for ``with`` context expressions naming a lock.

    Accepts ``<...>.lock``, ``<...>._lock``, and bare names ending in
    ``lock`` — the project convention for entry/registry locks.
    """
    if isinstance(expr, ast.Attribute):
        return expr.attr in {"lock", "_lock"} or expr.attr.endswith("_lock")
    if isinstance(expr, ast.Name):
        return expr.id.endswith("lock")
    if isinstance(expr, ast.Call):
        # with lock.acquire_timeout(...) style helpers.
        return _is_lock_expr(expr.func) if not isinstance(expr.func, ast.Name) else False
    return False


@register
class LockDisciplineRule(Rule):
    name = "lock-discipline"
    description = (
        "in service modules, calls on not-thread-safe instances must sit "
        "inside the per-entry lock's 'with' scope"
    )

    def check(self, module: ModuleInfo, project: ProjectIndex) -> Iterator[Finding]:
        if not _is_service_module(module) or "single-threaded" in module.markers:
            return
        if not project.thread_unsafe:
            return
        guarded_methods = project.guarded_methods
        hints = project.instance_hints
        # Line spans covered by a `with <lock>:` block.
        spans: List[Tuple[int, int]] = []
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.With, ast.AsyncWith)):
                if any(_is_lock_expr(item.context_expr) for item in node.items):
                    spans.append((node.lineno, node.end_lineno or node.lineno))

        def covered(line: int) -> bool:
            return any(start <= line <= end for start, end in spans)

        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            method = func.attr
            receiver = _receiver_name(func)
            if method not in guarded_methods or receiver not in hints:
                continue
            if covered(node.lineno):
                continue
            owners = sorted(
                info.name
                for info in project.thread_unsafe.values()
                if method in info.methods and receiver in info.instance_hints
            )
            if not owners:
                continue
            yield module.finding(
                self.name,
                node,
                f"{receiver}.{method}() touches a not-thread-safe "
                f"{'/'.join(owners)} outside a 'with <entry>.lock:' block; "
                f"hold the per-entry lock (or suppress with a reason if the "
                f"lock is provably held here)",
            )
