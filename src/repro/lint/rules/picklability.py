"""Rule ``pool-boundary-picklability``: only picklable values cross the pool.

The sweep fans chunks out over a ``ProcessPoolExecutor``; everything handed
to ``submit()`` / ``map()`` (and the pool's ``initargs=``) is pickled into
the worker.  Lambdas, functions nested inside another function, open file
handles, and module-level mutable state either fail to pickle outright or —
worse — pickle a *copy* the parent never sees mutated.  The engine's
convention is strict: chunk payloads are small frozen value objects and the
worker entry points are module-level functions.

This rule tracks names bound to ``ProcessPoolExecutor(...)`` (assignment or
``with ... as pool``) and flags, at each ``pool.submit``/``pool.map`` call
and in each pool construction's ``initargs=``:

* ``lambda`` expressions anywhere in the arguments,
* references to functions defined *inside* another function (closures),
* ``open(...)`` calls inline in the arguments (an open handle),
* names bound at module level to mutable literals (``list``/``dict``/``set``)
  — workers receive a copy, so mutation is a silent divergence.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Optional, Set

from repro.lint.framework import Finding, ModuleInfo, ProjectIndex, Rule, register

_POOL_TYPES = {"ProcessPoolExecutor", "Pool"}
_SUBMIT_METHODS = {"submit", "map", "apply_async", "imap", "imap_unordered"}


def _call_type_name(node: ast.Call) -> Optional[str]:
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


class _Collector(ast.NodeVisitor):
    """Pool-bound names, nested function names, module-level mutable names."""

    def __init__(self) -> None:
        self.pool_names: Set[str] = set()
        self.nested_functions: Set[str] = set()
        self.module_mutables: Dict[str, int] = {}
        self._function_depth = 0

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        if self._function_depth > 0:
            self.nested_functions.add(node.name)
        self._function_depth += 1
        self.generic_visit(node)
        self._function_depth -= 1

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    def visit_Assign(self, node: ast.Assign) -> None:
        value = node.value
        if isinstance(value, ast.Call) and _call_type_name(value) in _POOL_TYPES:
            for target in node.targets:
                if isinstance(target, ast.Name):
                    self.pool_names.add(target.id)
        if self._function_depth == 0 and isinstance(
            value, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)
        ):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    self.module_mutables[target.id] = node.lineno
        self.generic_visit(node)

    def visit_With(self, node: ast.With) -> None:
        for item in node.items:
            expr = item.context_expr
            if (
                isinstance(expr, ast.Call)
                and _call_type_name(expr) in _POOL_TYPES
                and isinstance(item.optional_vars, ast.Name)
            ):
                self.pool_names.add(item.optional_vars.id)
        self.generic_visit(node)

    visit_AsyncWith = visit_With  # type: ignore[assignment]


@register
class PoolBoundaryPicklabilityRule(Rule):
    name = "pool-boundary-picklability"
    description = (
        "arguments crossing the process-pool boundary must be picklable "
        "values: no lambdas, closures, open handles, or shared mutable "
        "module state"
    )

    def check(self, module: ModuleInfo, project: ProjectIndex) -> Iterator[Finding]:
        collector = _Collector()
        collector.visit(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            payload = None
            context = None
            if _call_type_name(node) in _POOL_TYPES:
                for keyword in node.keywords:
                    if keyword.arg == "initargs":
                        payload = [keyword.value]
                        context = "initargs"
            elif (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in _SUBMIT_METHODS
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id in collector.pool_names
            ):
                payload = list(node.args) + [kw.value for kw in node.keywords]
                context = f"{node.func.value.id}.{node.func.attr}()"
            if not payload:
                continue
            for arg in payload:
                yield from self._check_payload(module, collector, arg, context)

    def _check_payload(
        self,
        module: ModuleInfo,
        collector: _Collector,
        arg: ast.expr,
        context: Optional[str],
    ) -> Iterator[Finding]:
        for sub in ast.walk(arg):
            if isinstance(sub, ast.Lambda):
                yield module.finding(
                    self.name,
                    sub,
                    f"lambda crosses the pool boundary in {context}: lambdas "
                    f"do not pickle; use a module-level function",
                )
            elif isinstance(sub, ast.Call) and isinstance(sub.func, ast.Name):
                if sub.func.id == "open":
                    yield module.finding(
                        self.name,
                        sub,
                        f"open() handle crosses the pool boundary in "
                        f"{context}: pass the path and open in the worker",
                    )
            elif isinstance(sub, ast.Name):
                if sub.id in collector.nested_functions:
                    yield module.finding(
                        self.name,
                        sub,
                        f"nested function {sub.id!r} crosses the pool "
                        f"boundary in {context}: closures do not pickle; "
                        f"hoist it to module level",
                    )
                elif sub.id in collector.module_mutables:
                    yield module.finding(
                        self.name,
                        sub,
                        f"module-level mutable {sub.id!r} (defined at line "
                        f"{collector.module_mutables[sub.id]}) crosses the "
                        f"pool boundary in {context}: workers receive a "
                        f"copy, so mutation silently diverges; pass an "
                        f"immutable snapshot",
                    )
