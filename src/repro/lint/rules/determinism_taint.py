"""Rule ``determinism-taint``: no entropy upstream of parity-critical output.

The advisor's headline invariant is bit-identical fingerprints across
serial/pool/vectorize/warm modes.  PR 8's ``numeric-determinism`` rule guards
the *arithmetic* inside parity-critical modules, but it is lexical: a
``time.time()`` three calls upstream of a fingerprint — in a helper the cost
model happens to call — is invisible to it.  This rule closes that gap with
the whole-program call graph:

* **sources** are calls that produce nondeterministic values: ``time.*``
  (except ``time.sleep``, which returns nothing), ``random.*`` /
  ``np.random.*``, ``os.urandom``, ``id()``, unordered directory listings
  (``os.listdir`` / ``os.scandir`` / ``glob.glob`` / ``glob.iglob`` not
  directly wrapped in ``sorted(...)``), and ``dict.popitem()``;
* **sinks** are the parity-critical modules' fingerprint/metric outputs:
  every function defined in a module matched by the parity heuristics
  (``costmodel/``, ``allocation/``, ``core/ranking.py``,
  ``engine/signature.py``, or a ``# lint: parity-critical`` marker);
* the rule computes the set of functions **reachable** from the sinks over
  the call graph (call edges plus function references passed as arguments
  and ``functools.partial``), and reports every source call inside a
  reachable function.

Each finding carries the full sink-to-source call chain; ``warlock lint
--explain FINGERPRINT`` prints it.  Per-function facts ("contains a source",
"calls f") are the summaries; the reachability pass propagates them over the
graph, so a source is flagged no matter how many helper hops separate it
from the fingerprint.

Conservatism cuts the usual way: unresolved callees contribute no edges, so
a source behind a truly dynamic dispatch is missed (no false positive, a
possible false negative) — the runtime parity matrix in ``tests/test_parity``
remains the backstop.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.lint.framework import (
    Finding,
    ModuleInfo,
    ProjectIndex,
    Rule,
    register,
)
from repro.lint.graphs import ProjectGraph

#: Path fragments/suffixes that make a module parity-critical (superset of
#: numeric-determinism's scope: the fingerprint module is a sink too).
PARITY_PATHS = ("/costmodel/", "/allocation/")
PARITY_SUFFIXES = ("core/ranking.py", "engine/signature.py")

#: Dotted source calls that are nondeterministic wherever they appear.
ENTROPY_CALLS = frozenset(["os.urandom", "id"])

#: Directory-listing calls whose order is filesystem-dependent unless the
#: result is immediately sorted.
LISTING_CALLS = frozenset(["os.listdir", "os.scandir", "glob.glob", "glob.iglob"])

#: ``time.*`` members that return values (``time.sleep`` returns None and is
#: not a taint source; everything else on the module is).
_TIME_EXEMPT = frozenset(["sleep"])


def is_parity_module(module: ModuleInfo) -> bool:
    """True when ``module`` is in the parity-critical sink set."""
    if "parity-critical" in module.markers:
        return True
    path = module.path
    return any(part in path for part in PARITY_PATHS) or path.endswith(PARITY_SUFFIXES)


def source_description(dotted: str) -> Optional[str]:
    """Why ``dotted`` is a taint source, or None when it is not one."""
    if dotted in ENTROPY_CALLS:
        if dotted == "id":
            return "id() is an address, different in every process"
        return f"{dotted}() is entropy"
    if dotted in LISTING_CALLS:
        return f"{dotted}() order is filesystem-dependent; wrap it in sorted(...)"
    parts = dotted.split(".")
    if parts[0] == "time" and len(parts) == 2 and parts[1] not in _TIME_EXEMPT:
        return f"{dotted}() is wall/monotonic clock"
    if parts[0] == "random" and len(parts) == 2:
        return f"{dotted}() is pseudo-random state"
    if len(parts) >= 3 and parts[-3:-1] == ["np", "random"] or (
        len(parts) == 3 and parts[0] in {"np", "numpy"} and parts[1] == "random"
    ):
        return f"{dotted}() is pseudo-random state"
    if parts[-1] == "popitem":
        return f"{dotted}() removes an arbitrary dict entry"
    return None


class _SourceSite:
    """One source call found inside a function body."""

    def __init__(self, node: ast.Call, dotted: str, reason: str) -> None:
        self.node = node
        self.dotted = dotted
        self.reason = reason


def _dotted_text(expr: ast.expr) -> Optional[str]:
    parts: List[str] = []
    node = expr
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _source_sites(body: List[ast.stmt]) -> Iterator[_SourceSite]:
    """Source calls in ``body``, excluding listings wrapped in sorted(...)."""
    sorted_wrapped: Set[int] = set()
    calls: List[Tuple[ast.Call, str]] = []
    for stmt in body:
        for node in ast.walk(stmt):
            if not isinstance(node, ast.Call):
                continue
            dotted = _dotted_text(node.func)
            if dotted is None:
                continue
            if dotted == "sorted" and node.args and isinstance(node.args[0], ast.Call):
                sorted_wrapped.add(id(node.args[0]))
            calls.append((node, dotted))
    for node, dotted in calls:
        reason = source_description(dotted)
        if reason is None:
            continue
        if dotted in LISTING_CALLS and id(node) in sorted_wrapped:
            continue
        yield _SourceSite(node, dotted, reason)


@register
class DeterminismTaintRule(Rule):
    name = "determinism-taint"
    description = (
        "entropy sources (time, random, id, unsorted listings) must not be "
        "reachable from parity-critical fingerprint/metric code"
    )

    def __init__(self) -> None:
        #: module path -> parity-critical (filled by collect).
        self._parity_paths: Set[str] = set()
        #: qname -> (parent qname on the sink-to-source walk, call line).
        self._parents: Optional[Dict[str, Tuple[Optional[str], int]]] = None

    def collect(self, module: ModuleInfo, project: ProjectIndex) -> None:
        if is_parity_module(module):
            self._parity_paths.add(module.path)

    def _reachable(self, graph: ProjectGraph) -> Dict[str, Tuple[Optional[str], int]]:
        """BFS parents for every function reachable from a parity sink."""
        if self._parents is not None:
            return self._parents
        parents: Dict[str, Tuple[Optional[str], int]] = {}
        frontier: List[str] = []
        for qname in sorted(graph.functions):
            node = graph.functions[qname]
            if node.path in self._parity_paths:
                parents[qname] = (None, node.line)
                frontier.append(qname)
        while frontier:
            current = frontier.pop(0)
            for site in graph.callees(current):
                callee = site.callee
                if callee is None or callee in parents:
                    continue
                if callee not in graph.functions:
                    continue
                parents[callee] = (current, site.line)
                frontier.append(callee)
        self._parents = parents
        return parents

    def _chain(
        self, graph: ProjectGraph, qname: str, site: _SourceSite
    ) -> Tuple[str, ...]:
        """Sink-to-source call chain: parity root first, the source call last."""
        assert self._parents is not None
        # Walk child -> parent up to the root, then render top-down.
        ancestry: List[Tuple[str, int]] = []  # (qname, line it is called from)
        cursor: Optional[str] = qname
        while cursor is not None:
            parent, line = self._parents[cursor]
            ancestry.append((cursor, line))
            cursor = parent
        ancestry.reverse()
        links: List[str] = []
        root_qname, _ = ancestry[0]
        root = graph.functions[root_qname]
        links.append(f"{root_qname} ({root.path}:{root.line}) [parity-critical]")
        for (parent_qname, _), (child_qname, call_line) in zip(ancestry, ancestry[1:]):
            parent_node = graph.functions[parent_qname]
            child_node = graph.functions[child_qname]
            links.append(
                f"-> {child_qname} ({child_node.path}:{child_node.line}), "
                f"called from {parent_node.path}:{call_line}"
            )
        sink = graph.functions[qname]
        links.append(f"-> {site.dotted}() at {sink.path}:{site.node.lineno}")
        return tuple(links)

    def check(self, module: ModuleInfo, project: ProjectIndex) -> Iterator[Finding]:
        graph = project.graph
        if graph is None:
            return
        name = graph.module_of_path.get(module.path)
        if name is None:
            return
        parents = self._reachable(graph)
        # Walk this module's function bodies with their qualified names, so
        # each source site lands in the right graph node.
        for func in graph.functions_in_module(name):
            if func.qname not in parents:
                continue
            body = _function_body(module, func.qname.split(":", 1)[1])
            if body is None:
                continue
            for site in _source_sites(body):
                root = _root_of(parents, func.qname)
                root_node = graph.functions[root]
                finding = module.finding(
                    self.name,
                    site.node,
                    f"{site.dotted}() is reachable from parity-critical "
                    f"{root} ({root_node.path}): {site.reason}; "
                    f"nondeterminism upstream of a fingerprint breaks the "
                    f"serial/pool/warm parity contract",
                )
                yield Finding(
                    rule=finding.rule,
                    path=finding.path,
                    line=finding.line,
                    col=finding.col,
                    message=finding.message,
                    snippet=finding.snippet,
                    chain=self._chain(graph, func.qname, site),
                )


def _root_of(parents: Dict[str, Tuple[Optional[str], int]], qname: str) -> str:
    cursor = qname
    while True:
        parent, _ = parents[cursor]
        if parent is None:
            return cursor
        cursor = parent


def _function_body(module: ModuleInfo, qualname: str) -> Optional[List[ast.stmt]]:
    """The body of the function at dotted ``qualname``, nested defs excluded.

    Statements inside nested function definitions belong to the nested
    node's own body; the returned list keeps only this function's directly
    owned statements.
    """
    parts = qualname.split(".")
    body: List[ast.stmt] = list(module.tree.body)
    target: Optional[ast.stmt] = None
    for part in parts:
        target = None
        for stmt in body:
            if (
                isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef))
                and stmt.name == part
            ):
                target = stmt
                break
        if target is None:
            return None
        body = list(target.body)
    if not isinstance(target, (ast.FunctionDef, ast.AsyncFunctionDef)):
        return None
    return [
        stmt
        for stmt in body
        if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
    ]
