"""Rule ``layering``: module-level imports must point down the layer map.

The repo's package architecture is a strict layering — foundation value
objects at the bottom (``errors``/``skew``/``storage``), the cost model and
allocation kernels above them, the evaluation ``engine`` above those, the
``api`` session layer above the engine, and the ``service``/``cli`` front
ends on top, with ``repro.lint`` importable by nothing it analyzes.  Nothing
in Python enforces that: one convenient ``from repro.service import ...``
inside the engine and the layers silently invert.  This rule checks every
*module-level* import edge of the project import graph against a declared
layer map:

* an import whose target sits on a **higher** layer than the importer is an
  upward import — a finding at the offending ``import`` line;
* any **cycle** among module-level imports is a finding (one per cycle,
  anchored at the lexicographically first participant), whatever the layers
  say — cycles make import order load-bearing.

Lazy imports (inside a function body, or under ``TYPE_CHECKING``) are the
repo's sanctioned escape hatch for upward *calls* — the engine invoking an
``api`` progress callback, the CLI loading ``lint`` on demand — and are
deliberately exempt: they do not execute at import time.

The layer map lives in a ``[lint.layers]`` block of the nearest ``setup.cfg``
found walking up from each scanned file (so fixture projects carry their
own maps, and the coming fabric package slots in with one new line).  Keys
are dotted module prefixes, values are integers (lower = more foundational);
a module's layer is its **longest matching prefix**.  Modules matching no
prefix are outside the map and exempt from layer checks (never from cycle
checks).
"""

from __future__ import annotations

import configparser
import os
from typing import Dict, Iterator, List, Optional, Tuple

from repro.lint.framework import (
    Finding,
    LintError,
    ModuleInfo,
    ProjectIndex,
    Rule,
    register,
)
from repro.lint.graphs import ImportEdge, ProjectGraph

CONFIG_FILENAME = "setup.cfg"
CONFIG_SECTION = "lint.layers"


def load_layer_map(start: str) -> Dict[str, int]:
    """The ``[lint.layers]`` map from the nearest ``setup.cfg`` above ``start``.

    Returns ``{}`` when no config with the section exists on the path to the
    filesystem root.
    """
    directory = os.path.abspath(start if os.path.isdir(start) else os.path.dirname(start))
    while True:
        candidate = os.path.join(directory, CONFIG_FILENAME)
        if os.path.isfile(candidate):
            layers = _parse_layer_config(candidate)
            if layers is not None:
                return layers
        parent = os.path.dirname(directory)
        if parent == directory:
            return {}
        directory = parent


def _parse_layer_config(path: str) -> Optional[Dict[str, int]]:
    """``{prefix: layer}`` from ``path``; None when the section is absent."""
    parser = configparser.ConfigParser()
    parser.optionxform = str  # type: ignore[method-assign, assignment]
    try:
        parser.read(path, encoding="utf-8")
    except configparser.Error as error:
        raise LintError(f"cannot parse {path}: {error}") from error
    if not parser.has_section(CONFIG_SECTION):
        return None
    layers: Dict[str, int] = {}
    for prefix, value in parser.items(CONFIG_SECTION):
        try:
            layers[prefix] = int(value)
        except ValueError as error:
            raise LintError(
                f"{path}: [lint.layers] {prefix} = {value!r} is not an integer"
            ) from error
    return layers


def layer_of(module: str, layers: Dict[str, int]) -> Optional[int]:
    """Layer of ``module`` by longest matching dotted prefix (None: unmapped)."""
    best: Optional[int] = None
    best_length = -1
    for prefix, layer in layers.items():
        if module == prefix or module.startswith(prefix + "."):
            if len(prefix) > best_length:
                best = layer
                best_length = len(prefix)
    return best


def _strongly_connected(edges: Dict[str, List[str]]) -> List[List[str]]:
    """Tarjan SCCs (iterative) over the module-level import adjacency."""
    index: Dict[str, int] = {}
    lowlink: Dict[str, int] = {}
    on_stack: Dict[str, bool] = {}
    stack: List[str] = []
    result: List[List[str]] = []
    counter = [0]

    for root in sorted(edges):
        if root in index:
            continue
        work: List[Tuple[str, int]] = [(root, 0)]
        while work:
            node, child_index = work[-1]
            if child_index == 0:
                index[node] = lowlink[node] = counter[0]
                counter[0] += 1
                stack.append(node)
                on_stack[node] = True
            children = edges.get(node, [])
            advanced = False
            for position in range(child_index, len(children)):
                child = children[position]
                if child not in index:
                    work[-1] = (node, position + 1)
                    work.append((child, 0))
                    advanced = True
                    break
                if on_stack.get(child):
                    lowlink[node] = min(lowlink[node], index[child])
            if advanced:
                continue
            work.pop()
            if lowlink[node] == index[node]:
                component: List[str] = []
                while True:
                    member = stack.pop()
                    on_stack[member] = False
                    component.append(member)
                    if member == node:
                        break
                if len(component) > 1:
                    result.append(sorted(component))
            if work:
                parent, _ = work[-1]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
    return result


@register
class LayeringRule(Rule):
    name = "layering"
    description = (
        "module-level imports must not point to a higher layer of the "
        "declared [lint.layers] map, and must form no cycles"
    )

    def __init__(self) -> None:
        self._layer_cache: Dict[str, Dict[str, int]] = {}
        self._cycles: Optional[List[List[str]]] = None

    def _layers_for(self, module: ModuleInfo) -> Dict[str, int]:
        directory = os.path.dirname(os.path.abspath(module.path))
        if directory not in self._layer_cache:
            self._layer_cache[directory] = load_layer_map(module.path)
        return self._layer_cache[directory]

    def _cycle_findings(
        self, module: ModuleInfo, name: str, graph: ProjectGraph
    ) -> Iterator[Finding]:
        if self._cycles is None:
            adjacency: Dict[str, List[str]] = {mod: [] for mod in graph.modules}
            for edge in graph.imports:
                if not edge.lazy and edge.dst in graph.modules:
                    adjacency[edge.src].append(edge.dst)
            for targets in adjacency.values():
                targets.sort()
            self._cycles = _strongly_connected(adjacency)
        for component in self._cycles:
            # One finding per cycle, anchored on the first participant's
            # first edge into the cycle.
            if component[0] != name:
                continue
            members = set(component)
            anchor = next(
                (
                    edge
                    for edge in sorted(
                        graph.module_level_imports(name), key=lambda e: e.line
                    )
                    if edge.dst in members
                ),
                None,
            )
            line = anchor.line if anchor is not None else 1
            yield Finding(
                rule=self.name,
                path=module.path,
                line=line,
                col=0,
                message=(
                    f"import cycle among modules: {' -> '.join(component)} -> "
                    f"{component[0]}; module-level cycles make import order "
                    f"load-bearing — break one edge or make it lazy"
                ),
                snippet=module.snippet(line),
            )

    def check(self, module: ModuleInfo, project: ProjectIndex) -> Iterator[Finding]:
        graph = project.graph
        if graph is None:
            return
        name = graph.module_of_path.get(module.path)
        if name is None:
            return
        layers = self._layers_for(module)
        if layers:
            source_layer = layer_of(name, layers)
            for edge in graph.module_level_imports(name):
                target_layer = layer_of(edge.dst, layers)
                if source_layer is None or target_layer is None:
                    continue
                if target_layer > source_layer:
                    yield Finding(
                        rule=self.name,
                        path=module.path,
                        line=edge.line,
                        col=0,
                        message=(
                            f"upward import: {name} (layer {source_layer}) "
                            f"imports {edge.dst} (layer {target_layer}) at "
                            f"module level; higher layers may only be "
                            f"reached through lazy (function-scope) imports"
                        ),
                        snippet=module.snippet(edge.line),
                    )
        yield from self._cycle_findings(module, name, graph)
