"""Rule ``wire-contract``: result types serialize; progress never divides by 0.

Two wire contracts the HTTP service (and any future fleet protocol) leans on:

* Every public result type in ``api/results.py`` — or any module marked
  ``# lint: wire-types`` — must define ``to_dict()``.  The service
  serializes responses by calling it; a result class without one raises at
  request time, long after the type checked out locally.
* :class:`~repro.api.ProgressEvent` must never be constructed with
  ``num_chunks=0``.  The chunk-progress contract is ``1 <= chunk <=
  num_chunks``; a literal zero (the bug class fixed in PRs 6-7: empty sweeps
  emitting a 0/0 frame that crashed percentage rendering downstream) is
  always wrong — empty work emits a single 1/1 completion frame instead.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.lint.framework import Finding, ModuleInfo, ProjectIndex, Rule, register

WIRE_MODULE_SUFFIX = "api/results.py"

#: Index of ``num_chunks`` among ProgressEvent's positional fields
#: (phase, completed, total, chunk, num_chunks, ...).
_NUM_CHUNKS_POSITION = 4


def _is_wire_module(module: ModuleInfo) -> bool:
    return "wire-types" in module.markers or module.path.endswith(WIRE_MODULE_SUFFIX)


def _call_name(node: ast.Call) -> Optional[str]:
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _is_zero(expr: ast.expr) -> bool:
    return isinstance(expr, ast.Constant) and expr.value == 0 and expr.value is not False


@register
class WireContractRule(Rule):
    name = "wire-contract"
    description = (
        "wire result types must define to_dict(); ProgressEvent must never "
        "be built with num_chunks=0"
    )

    def check(self, module: ModuleInfo, project: ProjectIndex) -> Iterator[Finding]:
        if _is_wire_module(module):
            yield from self._check_wire_types(module)
        yield from self._check_progress_events(module)

    def _check_wire_types(self, module: ModuleInfo) -> Iterator[Finding]:
        for node in module.tree.body:
            if not isinstance(node, ast.ClassDef) or node.name.startswith("_"):
                continue
            methods = {
                item.name
                for item in node.body
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
            }
            if "to_dict" not in methods:
                yield module.finding(
                    self.name,
                    node,
                    f"wire type {node.name} does not define to_dict(): the "
                    f"service serializes every result through it",
                )

    def _check_progress_events(self, module: ModuleInfo) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = _call_name(node)
            if name == "ProgressEvent":
                zero = None
                for keyword in node.keywords:
                    if keyword.arg == "num_chunks" and _is_zero(keyword.value):
                        zero = keyword.value
                if (
                    zero is None
                    and len(node.args) > _NUM_CHUNKS_POSITION
                    and _is_zero(node.args[_NUM_CHUNKS_POSITION])
                ):
                    zero = node.args[_NUM_CHUNKS_POSITION]
                if zero is not None:
                    yield module.finding(
                        self.name,
                        zero,
                        "ProgressEvent with num_chunks=0: the chunk contract "
                        "is 1 <= chunk <= num_chunks; emit a single 1/1 "
                        "completion frame for empty work instead",
                    )
            elif name == "replace":
                for keyword in node.keywords:
                    if keyword.arg == "num_chunks" and _is_zero(keyword.value):
                        yield module.finding(
                            self.name,
                            keyword.value,
                            "replace(..., num_chunks=0): the chunk contract "
                            "is 1 <= chunk <= num_chunks",
                        )
