"""The ``warlock lint`` command driver (shared by the CLI and ``-m``)."""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
from typing import List, Optional, Sequence, Set, TextIO

from repro.lint import baseline as baseline_mod
from repro.lint.framework import (
    RULES,
    Finding,
    LintError,
    ModuleInfo,
    collect_files,
    run_lint,
)
from repro.lint.reporters import render_json, render_text

__all__ = ["add_lint_arguments", "main", "run_from_args"]

DEFAULT_PATHS = ("src/repro",)


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the lint flags to ``parser`` (used by the CLI subcommand)."""
    parser.add_argument(
        "paths",
        nargs="*",
        default=list(DEFAULT_PATHS),
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--format",
        choices=["text", "json"],
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--rule",
        action="append",
        dest="rules",
        metavar="NAME",
        help="run only this rule (repeatable; default: all rules)",
    )
    parser.add_argument(
        "--baseline",
        default=baseline_mod.DEFAULT_BASELINE,
        help=f"baseline file (default: {baseline_mod.DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="record current findings as the new baseline and exit 0",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list the registered rules and exit",
    )
    parser.add_argument(
        "--graph",
        choices=["dot", "json"],
        default=None,
        metavar="FORMAT",
        help="print the whole-program import/call graph (dot or json) and exit",
    )
    parser.add_argument(
        "--explain",
        default=None,
        metavar="FINGERPRINT",
        help="print the full source-to-sink call chain of one finding and exit",
    )
    parser.add_argument(
        "--changed",
        action="store_true",
        help="report only findings in files with uncommitted git changes "
        "(the graph is still built project-wide)",
    )
    parser.add_argument(
        "--since",
        default=None,
        metavar="REV",
        help="report only findings in files changed since the given git "
        "revision (the graph is still built project-wide)",
    )


def _git_output(arguments: List[str]) -> str:
    try:
        completed = subprocess.run(
            ["git"] + arguments,
            capture_output=True,
            text=True,
            check=True,
        )
    except FileNotFoundError as error:
        raise LintError("git is not available for --changed/--since") from error
    except subprocess.CalledProcessError as error:
        detail = error.stderr.strip() or error.stdout.strip()
        raise LintError(f"git {' '.join(arguments)} failed: {detail}") from error
    return completed.stdout


def changed_files(since: Optional[str]) -> Set[str]:
    """Absolute paths of files changed in git (vs ``since``, or uncommitted)."""
    root = _git_output(["rev-parse", "--show-toplevel"]).strip()
    names: Set[str] = set()
    if since is not None:
        listings = [_git_output(["diff", "--name-only", since, "--"])]
    else:
        listings = [
            _git_output(["diff", "--name-only", "HEAD", "--"]),
            _git_output(["ls-files", "--others", "--exclude-standard"]),
        ]
    for listing in listings:
        for line in listing.splitlines():
            name = line.strip()
            if name:
                names.add(os.path.abspath(os.path.join(root, name)))
    return names


def _scope_findings(findings: List[Finding], changed: Set[str]) -> List[Finding]:
    return [f for f in findings if os.path.abspath(f.path) in changed]


def _print_graph(paths: Sequence[str], fmt: str, out: TextIO) -> int:
    from repro.lint.graphs import build_project_graph

    modules = []
    for file in collect_files(paths):
        with open(file, "r", encoding="utf-8") as handle:
            modules.append(ModuleInfo(file, handle.read()))
    graph = build_project_graph(modules)
    if fmt == "dot":
        print(graph.render_dot(), file=out)
    else:
        print(json.dumps(graph.render_json(), indent=2, sort_keys=True), file=out)
    return 0


def _explain(args: argparse.Namespace, fingerprint: str, out: TextIO) -> int:
    result = run_lint(args.paths, args.rules)
    matches = [f for f in result.findings if f.fingerprint == fingerprint]
    if not matches:
        raise LintError(
            f"no finding with fingerprint {fingerprint!r} "
            f"({len(result.findings)} findings in this run)"
        )
    for finding in matches:
        print(finding.describe(), file=out)
        if finding.chain:
            for link in finding.chain:
                print(f"  {link}", file=out)
        else:
            print("  (no call chain recorded for this rule)", file=out)
    return 0


def run_from_args(args: argparse.Namespace, stream: Optional[TextIO] = None) -> int:
    """Execute a parsed lint invocation; returns the process exit code."""
    out: TextIO = stream if stream is not None else sys.stdout
    # Importing the rules package populates the registry before --list-rules.
    from repro.lint import rules as _rules  # noqa: F401

    if args.list_rules:
        for name in sorted(RULES):
            print(f"{name}: {RULES[name].description}", file=out)
        return 0
    if args.graph is not None:
        return _print_graph(args.paths, args.graph, out)
    if args.explain is not None:
        return _explain(args, args.explain, out)

    result = run_lint(args.paths, args.rules)
    if args.write_baseline:
        baseline_mod.write_baseline(args.baseline, result.findings)
        print(
            f"wrote {len(result.findings)} fingerprints to {args.baseline}",
            file=out,
        )
        return 0

    findings = result.findings
    if args.changed or args.since is not None:
        findings = _scope_findings(findings, changed_files(args.since))
    allowed = baseline_mod.load_baseline(args.baseline)
    new, baselined = baseline_mod.split_findings(findings, allowed)
    if args.format == "json":
        print(render_json(result, new, baselined), file=out)
    else:
        print(render_text(result, new, baselined), file=out)
    return 1 if new else 0


def main(argv: Optional[Sequence[str]] = None, stream: Optional[TextIO] = None) -> int:
    """Standalone entry point (``python -m repro.lint``)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="Static analysis for the advisor's load-bearing contracts.",
    )
    add_lint_arguments(parser)
    args = parser.parse_args(list(argv) if argv is not None else None)
    try:
        return run_from_args(args, stream=stream)
    except LintError as error:
        print(f"lint: error: {error}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # ``--graph dot | head`` closes stdout early; die quietly like a
        # well-behaved filter instead of tracebacking.
        try:
            sys.stdout.close()
        except OSError:
            pass
        return 141  # 128 + SIGPIPE, the shell convention
