"""The ``warlock lint`` command driver (shared by the CLI and ``-m``)."""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro.lint import baseline as baseline_mod
from repro.lint.framework import RULES, LintError, run_lint
from repro.lint.reporters import render_json, render_text

__all__ = ["add_lint_arguments", "main", "run_from_args"]

DEFAULT_PATHS = ("src/repro",)


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the lint flags to ``parser`` (used by the CLI subcommand)."""
    parser.add_argument(
        "paths",
        nargs="*",
        default=list(DEFAULT_PATHS),
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--format",
        choices=["text", "json"],
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--rule",
        action="append",
        dest="rules",
        metavar="NAME",
        help="run only this rule (repeatable; default: all rules)",
    )
    parser.add_argument(
        "--baseline",
        default=baseline_mod.DEFAULT_BASELINE,
        help=f"baseline file (default: {baseline_mod.DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="record current findings as the new baseline and exit 0",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list the registered rules and exit",
    )


def run_from_args(args: argparse.Namespace, stream=None) -> int:
    """Execute a parsed lint invocation; returns the process exit code."""
    out = stream if stream is not None else sys.stdout
    # Importing the rules package populates the registry before --list-rules.
    from repro.lint import rules as _rules  # noqa: F401

    if args.list_rules:
        for name in sorted(RULES):
            print(f"{name}: {RULES[name].description}", file=out)
        return 0

    result = run_lint(args.paths, args.rules)
    if args.write_baseline:
        baseline_mod.write_baseline(args.baseline, result.findings)
        print(
            f"wrote {len(result.findings)} fingerprints to {args.baseline}",
            file=out,
        )
        return 0

    allowed = baseline_mod.load_baseline(args.baseline)
    new, baselined = baseline_mod.split_findings(result.findings, allowed)
    if args.format == "json":
        print(render_json(result, new, baselined), file=out)
    else:
        print(render_text(result, new, baselined), file=out)
    return 1 if new else 0


def main(argv: Optional[Sequence[str]] = None, stream=None) -> int:
    """Standalone entry point (``python -m repro.lint``)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="Static analysis for the advisor's load-bearing contracts.",
    )
    add_lint_arguments(parser)
    args = parser.parse_args(list(argv) if argv is not None else None)
    try:
        return run_from_args(args, stream=stream)
    except LintError as error:
        print(f"lint: error: {error}", file=sys.stderr)
        return 2
