"""Concrete query instances.

A query *class* describes which dimensions a query restricts and at which
level; a query *instance* fixes the actual restriction values (e.g. ``month =
'1999-03'`` instead of "some month").  Instances matter because, under data
skew, the amount of data behind different values differs widely — the
analytical model reasons about expectations, the simulator replays concrete
instances.

Value selection honours the hierarchy containment used by the fragmentation
layouts: the ranked bottom-level values of a dimension are split into
contiguous, (near-)equally sized blocks per coarser level, so value ``v`` of a
coarse level always contains the same block of fine values that
:func:`repro.fragmentation.layout.dimension_row_shares` aggregates.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.bitmap import BitmapScheme
from repro.errors import SimulationError
from repro.fragmentation import FragmentationLayout, dimension_row_shares
from repro.workload import QueryClass
from repro.costmodel.access import (
    DEFAULT_POSITIONING_PAGE_EQUIVALENT,
    SEQUENTIAL_DENSITY_THRESHOLD,
)
from repro.costmodel.formulas import cardenas_pages

__all__ = ["QueryInstance", "instantiate_query"]


@dataclass(frozen=True)
class QueryInstance:
    """One concrete query with its physical access plan on a layout."""

    query_name: str
    #: Flat indices of the accessed fragments.
    fragment_indices: np.ndarray
    #: Fact-table pages read from each accessed fragment.
    fact_pages: np.ndarray
    #: Bitmap pages read from each accessed fragment.
    bitmap_pages: np.ndarray
    #: True when fragments are scanned sequentially (prefetch applies).
    sequential: bool

    @property
    def fragments_accessed(self) -> int:
        """Number of fragments the instance touches."""
        return int(self.fragment_indices.size)

    @property
    def total_fact_pages(self) -> float:
        """Total fact pages read."""
        return float(self.fact_pages.sum())

    @property
    def total_bitmap_pages(self) -> float:
        """Total bitmap pages read."""
        return float(self.bitmap_pages.sum())

    @property
    def total_pages(self) -> float:
        """Total pages read (fact plus bitmap)."""
        return self.total_fact_pages + self.total_bitmap_pages


def _block_boundaries(fine_cardinality: int, coarse_cardinality: int) -> np.ndarray:
    """Boundaries splitting ``fine_cardinality`` ranked values into coarse blocks."""
    boundaries = np.linspace(0, fine_cardinality, coarse_cardinality + 1)
    return np.round(boundaries).astype(int)


def _children_of(coarse_value: int, fine_cardinality: int, coarse_cardinality: int) -> np.ndarray:
    """Fine-level value indices contained in one coarse-level value."""
    boundaries = _block_boundaries(fine_cardinality, coarse_cardinality)
    return np.arange(boundaries[coarse_value], boundaries[coarse_value + 1])

def _parent_of(fine_value: int, fine_cardinality: int, coarse_cardinality: int) -> int:
    """Coarse-level ancestor of one fine-level value."""
    boundaries = _block_boundaries(fine_cardinality, coarse_cardinality)
    parent = int(np.searchsorted(boundaries, fine_value, side="right") - 1)
    return min(max(parent, 0), coarse_cardinality - 1)


def _sample_values(
    layout: FragmentationLayout,
    dimension_name: str,
    level_name: str,
    value_count: int,
    rng: np.random.Generator,
    weighted: bool,
) -> np.ndarray:
    """Sample ``value_count`` distinct values of ``dimension.level``.

    With ``weighted=True`` values are drawn proportionally to the amount of
    fact data behind them (frequent values are queried more often), which is
    the realistic behaviour under skew; otherwise uniformly.
    """
    dimension = layout.schema.dimension(dimension_name)
    cardinality = dimension.level(level_name).cardinality
    if value_count > cardinality:
        raise SimulationError(
            f"cannot sample {value_count} values from {dimension_name}.{level_name} "
            f"with only {cardinality} values"
        )
    if weighted and dimension.skew.is_skewed:
        probabilities = dimension_row_shares(dimension, level_name)
        return rng.choice(cardinality, size=value_count, replace=False, p=probabilities)
    return rng.choice(cardinality, size=value_count, replace=False)


def instantiate_query(
    layout: FragmentationLayout,
    query: QueryClass,
    bitmap_scheme: BitmapScheme,
    rng: Optional[np.random.Generator] = None,
    weighted_values: bool = True,
) -> QueryInstance:
    """Draw a concrete instance of ``query`` and derive its physical access plan.

    Parameters
    ----------
    layout:
        Materialized fragmentation the instance runs against.
    query:
        The query class to instantiate.
    bitmap_scheme:
        Bitmap indexes available for residual filtering.
    rng:
        Numpy random generator (a fresh default generator when omitted).
    weighted_values:
        Draw restriction values proportionally to the data behind them (True,
        realistic under skew) or uniformly (False).
    """
    generator = rng if rng is not None else np.random.default_rng()
    schema = layout.schema
    query.validate(schema)

    # --- per-axis accessed values and residual restrictions -----------------------
    axis_values: List[np.ndarray] = []
    # (dimension, level, value_count, residual_fraction) — residual_fraction is
    # the share of rows inside the accessed fragments still qualifying for the
    # restriction (the fragmentation already confined the rest).
    residual: List[Tuple[str, str, int, float]] = []
    for axis_index, attribute in enumerate(layout.spec.attributes):
        dimension = schema.dimension(attribute.dimension)
        axis_cardinality = layout.axis_cardinalities[axis_index]
        restriction = query.restriction_on(attribute.dimension)
        if restriction is None:
            axis_values.append(np.arange(axis_cardinality))
            continue
        level_cardinality = dimension.level(restriction.level).cardinality
        chosen = _sample_values(
            layout,
            attribute.dimension,
            restriction.level,
            restriction.value_count,
            generator,
            weighted_values,
        )
        if dimension.is_coarser_or_equal(restriction.level, attribute.level):
            # Coarse restriction: the accessed axis values are the union of the
            # children blocks of the chosen coarse values.
            blocks = [
                _children_of(int(value), axis_cardinality, level_cardinality)
                for value in chosen
            ]
            values = np.unique(np.concatenate(blocks)) if blocks else np.array([], int)
            axis_values.append(values)
        else:
            # Fine restriction: accessed axis values are the ancestors of the
            # chosen fine values; residual filtering inside those fragments.
            parents = np.unique(
                np.array(
                    [
                        _parent_of(int(value), level_cardinality, axis_cardinality)
                        for value in chosen
                    ],
                    dtype=int,
                )
            )
            axis_values.append(parents)
            selected_fraction = restriction.value_count / level_cardinality
            accessed_fraction = parents.size / axis_cardinality
            residual_fraction = min(1.0, selected_fraction / accessed_fraction)
            residual.append(
                (
                    attribute.dimension,
                    restriction.level,
                    restriction.value_count,
                    residual_fraction,
                )
            )

    for restriction in query.restrictions:
        if not layout.spec.uses_dimension(restriction.dimension):
            residual.append(
                (
                    restriction.dimension,
                    restriction.level,
                    restriction.value_count,
                    restriction.selectivity(schema),
                )
            )

    # --- flat fragment indices ------------------------------------------------------
    if layout.spec.is_fragmented:
        grids = np.meshgrid(*axis_values, indexing="ij")
        flat = np.zeros(grids[0].shape, dtype=np.int64)
        for grid, cardinality in zip(grids, layout.axis_cardinalities):
            flat = flat * cardinality + grid
        fragment_indices = flat.reshape(-1)
    else:
        fragment_indices = np.array([0], dtype=np.int64)

    fragment_rows = layout.fragment_rows[fragment_indices]
    fragment_pages = layout.fragment_fact_pages[fragment_indices].astype(np.float64)

    # --- residual filtering: selectivity and candidate bitmap plan --------------------
    residual_selectivity = 1.0
    forced_scan = False
    bits_per_row_read = 0.0
    for dimension_name, level_name, value_count, residual_fraction in residual:
        residual_selectivity *= min(1.0, residual_fraction)
        index = bitmap_scheme.index_for(dimension_name, level_name)
        if index is None:
            forced_scan = True
            continue
        bits_per_row_read += index.bits_read_per_row(value_count)

    scan_pages = np.maximum(fragment_pages, 1.0)

    if not residual or forced_scan or bits_per_row_read == 0:
        # Only the scan plan exists (no residual predicates, or one of them has
        # no index so everything must be scanned anyway).
        return QueryInstance(
            query_name=query.name,
            fragment_indices=fragment_indices,
            fact_pages=scan_pages,
            bitmap_pages=np.zeros_like(fragment_rows),
            sequential=True,
        )

    # Bitmap plan: read the relevant bitmap fragments, then only qualifying pages.
    bitmap_bytes = fragment_rows * bits_per_row_read / 8.0
    candidate_bitmap_pages = np.maximum(
        np.ceil(bitmap_bytes / layout.page_size_bytes), 1.0
    )
    qualifying = fragment_rows * residual_selectivity
    touched = np.array(
        [
            cardenas_pages(rows, pages, rows_selected)
            for rows, pages, rows_selected in zip(
                fragment_rows, fragment_pages, qualifying
            )
        ]
    )
    touched = np.minimum(np.maximum(touched, 0.0), fragment_pages)
    density = float(touched.sum() / max(fragment_pages.sum(), 1.0))
    bitmap_sequential = density >= SEQUENTIAL_DENSITY_THRESHOLD

    # Access path selection mirroring the analytical model.  When the qualifying
    # pages are dense, the bitmap plan degenerates to the scan plus extra bitmap
    # I/O and can never win; when they are sparse, random single-page reads pay
    # one positioning each and the plan wins only if the saved transfer volume
    # outweighs that overhead.
    pos_eq = DEFAULT_POSITIONING_PAGE_EQUIVALENT
    num_fragments = float(fragment_indices.size)
    if not bitmap_sequential:
        scan_cost = float(scan_pages.sum()) + num_fragments * pos_eq
        bitmap_cost = (
            float(touched.sum()) * (1.0 + pos_eq)
            + float(candidate_bitmap_pages.sum())
            + num_fragments * pos_eq
        )
        if bitmap_cost < scan_cost:
            return QueryInstance(
                query_name=query.name,
                fragment_indices=fragment_indices,
                fact_pages=touched,
                bitmap_pages=candidate_bitmap_pages,
                sequential=False,
            )

    return QueryInstance(
        query_name=query.name,
        fragment_indices=fragment_indices,
        fact_pages=scan_pages,
        bitmap_pages=np.zeros_like(fragment_rows),
        sequential=True,
    )
