"""Disk I/O replay simulator.

The original authors validated their analytical model against a testbed; this
reproduction substitutes a Monte-Carlo replay simulator: concrete query
instances (with concrete restriction values, skew-aware) are generated from the
query classes, their fragment accesses are mapped onto the disk allocation, and
per-disk service times are accumulated request by request.  The simulator is
used to cross-validate the analytical model (experiment E9) and to expose the
variance data skew introduces, which the analytical expectation hides.
"""

from repro.simulation.instance import QueryInstance, instantiate_query
from repro.simulation.simulator import (
    BatchSimulationResult,
    DiskSimulator,
    SimulatedQueryResult,
    WorkloadSimulationResult,
)

__all__ = [
    "QueryInstance",
    "instantiate_query",
    "DiskSimulator",
    "SimulatedQueryResult",
    "WorkloadSimulationResult",
    "BatchSimulationResult",
]
