"""Disk replay simulation.

The simulator maps a query instance's fragment accesses onto the disks of an
allocation, turns them into disk requests (prefetch-aware, mirroring the
request construction of the analytical model) and accumulates per-disk service
times.  Three entry points exist:

* :meth:`DiskSimulator.run_instance` — replay one concrete query,
* :meth:`DiskSimulator.run_workload` — Monte-Carlo replay of a query mix
  (samples classes by weight, instances per class), reporting per-class and
  aggregate statistics,
* :meth:`DiskSimulator.run_batch` — replay a set of queries submitted
  concurrently, processing each disk's request queue in FIFO order (a simple
  event-driven multi-user experiment).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.allocation import Allocation
from repro.bitmap import BitmapScheme
from repro.errors import SimulationError
from repro.fragmentation import FragmentationLayout
from repro.storage import PrefetchSetting, SystemParameters
from repro.workload import QueryMix
from repro.simulation.instance import QueryInstance, instantiate_query

__all__ = [
    "SimulatedQueryResult",
    "WorkloadSimulationResult",
    "BatchSimulationResult",
    "DiskSimulator",
]


@dataclass(frozen=True)
class SimulatedQueryResult:
    """Outcome of replaying a single query instance."""

    query_name: str
    response_time_ms: float
    busy_time_ms: float
    io_requests: float
    pages_transferred: float
    disks_used: int
    per_disk_busy_ms: np.ndarray

    @property
    def parallelism(self) -> float:
        """Achieved I/O parallelism (busy time over response time)."""
        if self.response_time_ms == 0:
            return 1.0
        return self.busy_time_ms / self.response_time_ms


@dataclass(frozen=True)
class WorkloadSimulationResult:
    """Aggregated outcome of a Monte-Carlo workload replay."""

    per_class_response_ms: Dict[str, float]
    per_class_busy_ms: Dict[str, float]
    per_class_samples: Dict[str, int]
    weighted_response_ms: float
    weighted_busy_ms: float
    response_std_ms: float

    def describe(self) -> str:
        """Human-readable per-class summary."""
        lines = ["Simulated workload (per query class):"]
        for name in sorted(self.per_class_response_ms):
            lines.append(
                f"  {name}: response {self.per_class_response_ms[name]:,.1f} ms, "
                f"busy {self.per_class_busy_ms[name]:,.1f} ms "
                f"({self.per_class_samples[name]} samples)"
            )
        lines.append(
            f"  weighted: response {self.weighted_response_ms:,.1f} ms, busy "
            f"{self.weighted_busy_ms:,.1f} ms"
        )
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, object]:
        """Stable plain-dict form (JSON-ready) for serving replay results."""
        return {
            "per_class": {
                name: {
                    "response_ms": self.per_class_response_ms[name],
                    "busy_ms": self.per_class_busy_ms[name],
                    "samples": self.per_class_samples[name],
                }
                for name in sorted(self.per_class_response_ms)
            },
            "weighted_response_ms": self.weighted_response_ms,
            "weighted_busy_ms": self.weighted_busy_ms,
            "response_std_ms": self.response_std_ms,
        }


@dataclass(frozen=True)
class BatchSimulationResult:
    """Outcome of replaying a batch of concurrently submitted queries."""

    makespan_ms: float
    per_query_completion_ms: Dict[str, float]
    per_disk_busy_ms: np.ndarray
    total_requests: float

    @property
    def average_completion_ms(self) -> float:
        """Mean completion time over the batch."""
        if not self.per_query_completion_ms:
            return 0.0
        return float(np.mean(list(self.per_query_completion_ms.values())))

    @property
    def disk_utilisation(self) -> float:
        """Mean disk busy time divided by the makespan."""
        if self.makespan_ms == 0:
            return 0.0
        return float(self.per_disk_busy_ms.mean() / self.makespan_ms)


class DiskSimulator:
    """Replay simulator bound to a system configuration."""

    def __init__(self, system: SystemParameters) -> None:
        if not isinstance(system, SystemParameters):
            raise SimulationError(
                f"system must be SystemParameters, got {type(system).__name__}"
            )
        self.system = system

    # -- request construction --------------------------------------------------------

    def _fragment_requests(
        self,
        instance: QueryInstance,
        prefetch: PrefetchSetting,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Per-fragment request counts and transferred pages (fact + bitmap)."""
        if instance.sequential:
            fact_requests = np.ceil(instance.fact_pages / prefetch.fact_pages)
            fact_transferred = fact_requests * prefetch.fact_pages
            fact_transferred = np.maximum(fact_transferred, instance.fact_pages)
        else:
            fact_requests = np.ceil(instance.fact_pages)
            fact_transferred = instance.fact_pages
        bitmap_requests = np.where(
            instance.bitmap_pages > 0,
            np.ceil(instance.bitmap_pages / prefetch.bitmap_pages),
            0.0,
        )
        bitmap_transferred = np.maximum(
            bitmap_requests * prefetch.bitmap_pages, instance.bitmap_pages
        )
        bitmap_transferred = np.where(instance.bitmap_pages > 0, bitmap_transferred, 0.0)
        return fact_requests + bitmap_requests, fact_transferred + bitmap_transferred

    def _per_disk_times(
        self,
        instance: QueryInstance,
        allocation: Allocation,
        prefetch: PrefetchSetting,
    ) -> Tuple[np.ndarray, float, float]:
        """Per-disk busy time plus total requests and pages for one instance."""
        if allocation.layout.fragment_count != instance.fragment_indices.max(initial=0) + 1 and (
            instance.fragment_indices.size
            and instance.fragment_indices.max() >= allocation.layout.fragment_count
        ):
            raise SimulationError(
                "query instance references fragments outside the allocation's layout"
            )
        requests, transferred = self._fragment_requests(instance, prefetch)
        disk = self.system.disk
        page_time = disk.page_transfer_time_ms(self.system.page_size_bytes)
        per_fragment_time = (
            requests * disk.positioning_time_ms + transferred * page_time
        )
        per_disk = np.zeros(self.system.num_disks, dtype=np.float64)
        disks_of_fragments = allocation.disk_of_fragment[instance.fragment_indices]
        np.add.at(per_disk, disks_of_fragments, per_fragment_time)
        return per_disk, float(requests.sum()), float(transferred.sum())

    # -- single query ---------------------------------------------------------------------

    def run_instance(
        self,
        instance: QueryInstance,
        allocation: Allocation,
        prefetch: PrefetchSetting,
    ) -> SimulatedQueryResult:
        """Replay one query instance against an allocation."""
        per_disk, total_requests, total_pages = self._per_disk_times(
            instance, allocation, prefetch
        )
        disks_used = int(np.count_nonzero(per_disk))
        busy = float(per_disk.sum())
        coordination = self.system.effective_coordination_overhead_ms * max(1, disks_used)
        response = float(per_disk.max(initial=0.0)) + coordination
        return SimulatedQueryResult(
            query_name=instance.query_name,
            response_time_ms=response,
            busy_time_ms=busy,
            io_requests=total_requests,
            pages_transferred=total_pages,
            disks_used=max(1, disks_used),
            per_disk_busy_ms=per_disk,
        )

    # -- workload Monte-Carlo ----------------------------------------------------------------

    def run_workload(
        self,
        layout: FragmentationLayout,
        workload: QueryMix,
        bitmap_scheme: BitmapScheme,
        allocation: Allocation,
        prefetch: PrefetchSetting,
        queries_per_class: int = 10,
        seed: Optional[int] = None,
        weighted_values: bool = True,
    ) -> WorkloadSimulationResult:
        """Monte-Carlo replay: ``queries_per_class`` instances of every class."""
        if queries_per_class <= 0:
            raise SimulationError(
                f"queries_per_class must be positive, got {queries_per_class}"
            )
        rng = np.random.default_rng(seed)
        per_class_response: Dict[str, float] = {}
        per_class_busy: Dict[str, float] = {}
        per_class_samples: Dict[str, int] = {}
        all_responses: List[float] = []
        weighted_response = 0.0
        weighted_busy = 0.0
        for query_class, share in workload.weighted_items():
            responses = []
            busies = []
            for _ in range(queries_per_class):
                instance = instantiate_query(
                    layout,
                    query_class,
                    bitmap_scheme,
                    rng=rng,
                    weighted_values=weighted_values,
                )
                result = self.run_instance(instance, allocation, prefetch)
                responses.append(result.response_time_ms)
                busies.append(result.busy_time_ms)
            mean_response = float(np.mean(responses))
            mean_busy = float(np.mean(busies))
            per_class_response[query_class.name] = mean_response
            per_class_busy[query_class.name] = mean_busy
            per_class_samples[query_class.name] = queries_per_class
            weighted_response += share * mean_response
            weighted_busy += share * mean_busy
            all_responses.extend(responses)
        return WorkloadSimulationResult(
            per_class_response_ms=per_class_response,
            per_class_busy_ms=per_class_busy,
            per_class_samples=per_class_samples,
            weighted_response_ms=weighted_response,
            weighted_busy_ms=weighted_busy,
            response_std_ms=float(np.std(all_responses)) if all_responses else 0.0,
        )

    # -- concurrent batch ------------------------------------------------------------------------

    def run_batch(
        self,
        instances: Sequence[QueryInstance],
        allocation: Allocation,
        prefetch: PrefetchSetting,
    ) -> BatchSimulationResult:
        """Replay a batch of queries submitted at the same time.

        Each disk processes the requests assigned to it in submission order
        (FIFO); a query completes when its last request completes.  This is the
        multi-user scenario in which total I/O work — not single-query
        parallelism — limits performance, the motivation for WARLOCK's
        I/O-cost-first ranking.
        """
        if not instances:
            raise SimulationError("run_batch needs at least one query instance")
        disk_clock = np.zeros(self.system.num_disks, dtype=np.float64)
        per_query_completion: Dict[str, float] = {}
        total_requests = 0.0
        for batch_index, instance in enumerate(instances):
            per_disk, requests, _pages = self._per_disk_times(
                instance, allocation, prefetch
            )
            total_requests += requests
            disk_clock += per_disk
            completion = float(disk_clock[per_disk > 0].max()) if np.any(per_disk > 0) else float(
                disk_clock.max(initial=0.0)
            )
            name = f"{instance.query_name}#{batch_index}"
            per_query_completion[name] = completion
        makespan = float(disk_clock.max(initial=0.0))
        return BatchSimulationResult(
            makespan_ms=makespan,
            per_query_completion_ms=per_query_completion,
            per_disk_busy_ms=disk_clock,
            total_requests=total_requests,
        )
