"""Columnar workload compilation: the class axis as numpy vectors.

The batched cost path evaluates one fragmentation candidate against *all*
query classes of the mix at once, as numpy vectors over the class axis,
instead of the ~40 scalar passes the per-class estimation performs.  For that
it needs the workload in columnar form: per restricted dimension, one
class-length column per restriction property (value counts, level depths,
level cardinalities, selectivities, bitmap availability).

:class:`ClassMatrix` is that compilation.  It depends only on the schema, the
query mix's *structure* (restrictions, not weights — weights travel alongside
as workload shares) and the bitmap scheme, so one matrix serves every
candidate of a sweep and is shipped once per worker inside the engine
context.  Everything is derived with the exact same scalar arithmetic the
per-class path uses (e.g. class selectivities multiply restriction
selectivities in restriction order), keeping the batched path bit-identical.

The bitmap scheme is duck-typed (``index_for(dimension, level)`` returning an
object with ``bits_read_per_row(value_count)`` or ``None``) so this module
does not import :mod:`repro.bitmap`, which itself imports the workload
package.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.errors import WorkloadError
from repro.schema import StarSchema
from repro.workload.mix import QueryMix

__all__ = ["ClassMatrix"]

#: ``level_depth`` / ``slot_dimension`` entry marking "no restriction".
NO_RESTRICTION = -1


@dataclass(frozen=True)
class ClassMatrix:
    """Columnar view of a query mix against a schema and a bitmap scheme.

    Rows of the 2-D arrays are dimensions (``dimension_names`` order), columns
    are query classes (mix order).  Entries of unrestricted (dimension, class)
    pairs are zero/``NO_RESTRICTION`` and masked off by ``restricted``.
    """

    #: Query class names, in mix order (the class axis).
    query_names: Tuple[str, ...]
    #: Every dimension restricted by at least one class (sorted by name).
    dimension_names: Tuple[str, ...]
    #: Normalized workload share per class (mix order), as floats.
    shares: Tuple[float, ...]
    #: Per-class overall selectivity, computed by the scalar code path.
    selectivities: Tuple[float, ...]
    #: (dimensions x classes) bool: class restricts dimension.
    restricted: np.ndarray
    #: (dimensions x classes) float64: values selected by the restriction.
    value_counts: np.ndarray
    #: (dimensions x classes) int64: hierarchy depth of the restriction level
    #: (0 = coarsest), ``NO_RESTRICTION`` where unrestricted.
    level_depths: np.ndarray
    #: (dimensions x classes) float64: cardinality of the restriction level.
    level_cardinalities: np.ndarray
    #: (dimensions x classes) float64: restriction selectivity
    #: (``value_count / level_cardinality``).
    restriction_selectivities: np.ndarray
    #: Per dimension, per class: name of the restricted level ("" where
    #: unrestricted).  Tuple-of-tuples because numpy string arrays buy nothing
    #: here — the names are only read when materializing bitmap attributes.
    level_names: Tuple[Tuple[str, ...], ...]
    #: (dimensions x classes) bool: a bitmap index exists on the restricted
    #: attribute.
    has_bitmap: np.ndarray
    #: (dimensions x classes) float64: bits read per fact row to evaluate the
    #: restriction off its bitmap index (0 where no index exists).
    bitmap_bits_read: np.ndarray
    #: (classes x max_restrictions) int64: dimension row index of each class's
    #: restrictions in *restriction order*, ``NO_RESTRICTION``-padded.  This
    #: preserves the per-class residual evaluation order of the scalar path.
    slot_dimensions: np.ndarray
    #: Weight-independent content fingerprint (cache key component).
    signature: str

    @property
    def num_classes(self) -> int:
        """Number of query classes (length of the class axis)."""
        return len(self.query_names)

    @property
    def num_dimensions(self) -> int:
        """Number of restricted dimensions (rows of the columnar arrays)."""
        return len(self.dimension_names)

    def dimension_row(self, dimension: str) -> int:
        """Row index of ``dimension`` in the columnar arrays."""
        try:
            return self.dimension_names.index(dimension)
        except ValueError:
            raise WorkloadError(
                f"dimension {dimension!r} is not restricted by any query class"
            ) from None

    @classmethod
    def compile(
        cls,
        schema: StarSchema,
        workload: QueryMix,
        bitmap_scheme,
        fact_table: Optional[str] = None,
    ) -> "ClassMatrix":
        """Compile ``workload`` into columnar form.

        Parameters
        ----------
        schema:
            Star schema the workload was validated against.
        workload:
            The query mix; classes become the columns, in mix order.
        bitmap_scheme:
            Bitmap indexes available for residual filtering (duck-typed:
            ``index_for(dimension, level)``).
        fact_table:
            Unused for the columns themselves (restrictions are per
            dimension), accepted for symmetry with the engine context.
        """
        items = workload.weighted_items()
        query_names = tuple(query.name for query, _ in items)
        shares = tuple(float(share) for _, share in items)
        # Scalar code path for the per-class selectivity: identical product
        # order, identical floats.
        selectivities = tuple(query.selectivity(schema) for query, _ in items)

        dimension_names = tuple(
            sorted({r.dimension for query, _ in items for r in query.restrictions})
        )
        dim_row = {name: row for row, name in enumerate(dimension_names)}
        num_classes = len(query_names)
        num_dims = len(dimension_names)
        max_slots = max(
            (len(query.restrictions) for query, _ in items), default=0
        )

        restricted = np.zeros((num_dims, num_classes), dtype=bool)
        value_counts = np.zeros((num_dims, num_classes), dtype=np.float64)
        level_depths = np.full((num_dims, num_classes), NO_RESTRICTION, dtype=np.int64)
        level_cardinalities = np.zeros((num_dims, num_classes), dtype=np.float64)
        restriction_selectivities = np.zeros((num_dims, num_classes), dtype=np.float64)
        has_bitmap = np.zeros((num_dims, num_classes), dtype=bool)
        bitmap_bits_read = np.zeros((num_dims, num_classes), dtype=np.float64)
        level_name_rows = [["" for _ in range(num_classes)] for _ in range(num_dims)]
        slot_dimensions = np.full(
            (num_classes, max_slots), NO_RESTRICTION, dtype=np.int64
        )

        signature_parts = []
        for column, (query, _) in enumerate(items):
            signature_parts.append(query.name)
            signature_parts.append(repr(query.restrictions))
            for slot, restriction in enumerate(query.restrictions):
                row = dim_row[restriction.dimension]
                slot_dimensions[column, slot] = row
                dimension = schema.dimension(restriction.dimension)
                restricted[row, column] = True
                value_counts[row, column] = float(restriction.value_count)
                level_name_rows[row][column] = restriction.level
                level_depths[row, column] = dimension.level_index(restriction.level)
                level_cardinalities[row, column] = float(
                    dimension.level(restriction.level).cardinality
                )
                # Scalar code path (DimensionRestriction.selectivity): exact.
                restriction_selectivities[row, column] = restriction.selectivity(
                    schema
                )
                index = bitmap_scheme.index_for(
                    restriction.dimension, restriction.level
                )
                if index is not None:
                    has_bitmap[row, column] = True
                    bitmap_bits_read[row, column] = float(
                        index.bits_read_per_row(restriction.value_count)
                    )

        # Weight-independent fingerprint: queries' structure plus the bitmap
        # scheme (reweighted mixes reuse cached structure batches, exactly as
        # the scalar structure cache keys on weight-independent signatures).
        from repro.engine.signature import object_signature, stable_digest

        signature = stable_digest(
            "ClassMatrix",
            object_signature(schema),
            object_signature(bitmap_scheme),
            *signature_parts,
        )

        return cls(
            query_names=query_names,
            dimension_names=dimension_names,
            shares=shares,
            selectivities=selectivities,
            restricted=restricted,
            value_counts=value_counts,
            level_depths=level_depths,
            level_cardinalities=level_cardinalities,
            restriction_selectivities=restriction_selectivities,
            level_names=tuple(tuple(row) for row in level_name_rows),
            has_bitmap=has_bitmap,
            bitmap_bits_read=bitmap_bits_read,
            slot_dimensions=slot_dimensions,
            signature=signature,
        )

    def describe(self) -> str:
        """One-line summary used by logs and tests."""
        return (
            f"class matrix: {self.num_classes} classes x "
            f"{self.num_dimensions} restricted dimensions"
        )
