"""Weighted query mixes.

The prediction layer evaluates fragmentation candidates against a
*representative set of queries*: the query mix.  The mix normalizes the class
weights to workload shares and offers the aggregation helpers the cost model
and the advisor need (weighted sums, per-class iteration, dimension usage
statistics).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Sequence, Tuple

from repro.errors import WorkloadError
from repro.schema import StarSchema
from repro.workload.query import QueryClass

__all__ = ["QueryMix"]


@dataclass(frozen=True)
class QueryMix:
    """A normalized, weighted collection of query classes."""

    classes: Tuple[QueryClass, ...]

    def __init__(self, classes: Sequence[QueryClass]) -> None:
        classes = tuple(classes)
        if not classes:
            raise WorkloadError("a query mix needs at least one query class")
        names = [qc.name for qc in classes]
        if len(set(names)) != len(names):
            raise WorkloadError(f"duplicate query class names in mix: {names}")
        object.__setattr__(self, "classes", classes)

    # -- basic accessors ------------------------------------------------------

    def __iter__(self) -> Iterator[QueryClass]:
        return iter(self.classes)

    def __len__(self) -> int:
        return len(self.classes)

    def query_class(self, name: str) -> QueryClass:
        """Return the class called ``name``."""
        for query_class in self.classes:
            if query_class.name == name:
                return query_class
        raise WorkloadError(
            f"query mix has no class {name!r}; known classes: "
            f"{', '.join(qc.name for qc in self.classes)}"
        )

    @property
    def total_weight(self) -> float:
        """Sum of the raw class weights."""
        return sum(qc.weight for qc in self.classes)

    def share(self, query_class: QueryClass) -> float:
        """Normalized workload share of ``query_class`` (shares sum to 1)."""
        return query_class.weight / self.total_weight

    def shares(self) -> Dict[str, float]:
        """Mapping from class name to normalized workload share."""
        return {qc.name: self.share(qc) for qc in self.classes}

    # -- aggregation helpers ----------------------------------------------------

    def weighted_sum(self, metric: Callable[[QueryClass], float]) -> float:
        """Workload-share-weighted sum of ``metric`` over the classes."""
        return sum(self.share(qc) * metric(qc) for qc in self.classes)

    def weighted_items(self) -> List[Tuple[QueryClass, float]]:
        """List of ``(query_class, share)`` pairs."""
        return [(qc, self.share(qc)) for qc in self.classes]

    def dimension_access_shares(self) -> Dict[str, float]:
        """Workload share that restricts each dimension.

        This is the statistic the fragmentation-candidate enumeration uses to
        prioritize dimensions frequently referenced by the workload.
        """
        shares: Dict[str, float] = {}
        for query_class, share in self.weighted_items():
            for dimension in query_class.accessed_dimensions:
                shares[dimension] = shares.get(dimension, 0.0) + share
        return shares

    def level_access_shares(self) -> Dict[Tuple[str, str], float]:
        """Workload share restricting each ``(dimension, level)`` pair."""
        shares: Dict[Tuple[str, str], float] = {}
        for query_class, share in self.weighted_items():
            for restriction in query_class.restrictions:
                key = (restriction.dimension, restriction.level)
                shares[key] = shares.get(key, 0.0) + share
        return shares

    # -- validation & transformation ------------------------------------------

    def validate(self, schema: StarSchema) -> None:
        """Validate every class against ``schema``."""
        for query_class in self.classes:
            query_class.validate(schema)

    def reweighted(self, weights: Dict[str, float]) -> "QueryMix":
        """A copy of the mix with new weights (by class name).

        Classes absent from ``weights`` keep their current weight.  This is the
        hook for the interactive fine-tuning the paper describes ("query load
        specifics can be interactively adapted").
        """
        new_classes = []
        for query_class in self.classes:
            weight = weights.get(query_class.name, query_class.weight)
            new_classes.append(
                QueryClass(
                    name=query_class.name,
                    restrictions=query_class.restrictions,
                    weight=weight,
                    fact_table=query_class.fact_table,
                )
            )
        return QueryMix(new_classes)

    def without(self, *names: str) -> "QueryMix":
        """A copy of the mix with the named classes removed."""
        missing = [n for n in names if n not in {qc.name for qc in self.classes}]
        if missing:
            raise WorkloadError(f"cannot remove unknown query classes: {missing}")
        remaining = [qc for qc in self.classes if qc.name not in set(names)]
        if not remaining:
            raise WorkloadError("removing these classes would empty the query mix")
        return QueryMix(remaining)

    def describe(self) -> str:
        """Multi-line human readable summary (one line per class with its share)."""
        lines = ["Query mix:"]
        for query_class, share in self.weighted_items():
            lines.append(f"  {share:6.1%}  {query_class.describe()}")
        return "\n".join(lines)
