"""Star-query workload model (WARLOCK input layer, §3.1).

Similar to APB-1, the workload is described as a set of weighted query classes.
Each class is characterized by the subset of dimensions it accesses (and at
which hierarchy level it restricts them) and its relative share of the
workload.
"""

from repro.workload.query import DimensionRestriction, QueryClass
from repro.workload.mix import QueryMix
from repro.workload.matrix import ClassMatrix
from repro.workload.generator import (
    random_query_class,
    random_query_mix,
    drill_down_series,
)

__all__ = [
    "ClassMatrix",
    "DimensionRestriction",
    "QueryClass",
    "QueryMix",
    "random_query_class",
    "random_query_mix",
    "drill_down_series",
]
