"""Synthetic workload generators.

The demo lets attendants "enter their own data warehouse schema and query mix".
These generators produce plausible star-query workloads for arbitrary schemas,
which the examples, tests and benchmark harnesses use when no hand-written mix
is available.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.errors import WorkloadError
from repro.schema import StarSchema
from repro.workload.mix import QueryMix
from repro.workload.query import DimensionRestriction, QueryClass

__all__ = ["random_query_class", "random_query_mix", "drill_down_series"]


def _rng(seed: Optional[int]) -> np.random.Generator:
    return np.random.default_rng(seed)


def random_query_class(
    schema: StarSchema,
    name: str,
    rng: Optional[np.random.Generator] = None,
    min_dimensions: int = 1,
    max_dimensions: Optional[int] = None,
    weight: float = 1.0,
) -> QueryClass:
    """Generate one random star query class for ``schema``.

    The class restricts a random subset of the primary fact table's dimensions,
    each at a uniformly chosen hierarchy level, with a point restriction.

    Parameters
    ----------
    schema:
        Target schema.
    name:
        Name of the generated class.
    rng:
        Numpy random generator; a fresh default generator is used when omitted.
    min_dimensions / max_dimensions:
        Bounds on how many dimensions the class restricts.  ``max_dimensions``
        defaults to the number of dimensions of the primary fact table.
    weight:
        Weight of the generated class.
    """
    generator = rng if rng is not None else _rng(None)
    fact = schema.fact_table()
    dims = list(fact.dimension_names)
    if max_dimensions is None:
        max_dimensions = len(dims)
    max_dimensions = min(max_dimensions, len(dims))
    if min_dimensions < 1 or min_dimensions > max_dimensions:
        raise WorkloadError(
            f"invalid dimension bounds [{min_dimensions}, {max_dimensions}] for "
            f"{len(dims)} dimensions"
        )
    count = int(generator.integers(min_dimensions, max_dimensions + 1))
    chosen = generator.choice(len(dims), size=count, replace=False)
    restrictions = []
    for index in sorted(chosen):
        dimension = schema.dimension(dims[index])
        level = dimension.levels[int(generator.integers(0, len(dimension.levels)))]
        restrictions.append(
            DimensionRestriction(dimension=dimension.name, level=level.name)
        )
    return QueryClass(name=name, restrictions=restrictions, weight=weight)


def random_query_mix(
    schema: StarSchema,
    num_classes: int = 6,
    seed: Optional[int] = None,
    min_dimensions: int = 1,
    max_dimensions: Optional[int] = None,
) -> QueryMix:
    """Generate a random weighted query mix of ``num_classes`` classes.

    Weights are drawn from a Dirichlet-like scheme (exponential draws) so some
    classes dominate the workload, as is typical for reporting workloads.
    """
    if num_classes <= 0:
        raise WorkloadError(f"num_classes must be positive, got {num_classes}")
    generator = _rng(seed)
    raw_weights = generator.exponential(scale=1.0, size=num_classes) + 0.05
    classes: List[QueryClass] = []
    for index in range(num_classes):
        classes.append(
            random_query_class(
                schema,
                name=f"Q{index + 1}",
                rng=generator,
                min_dimensions=min_dimensions,
                max_dimensions=max_dimensions,
                weight=float(raw_weights[index]),
            )
        )
    return QueryMix(classes)


def drill_down_series(
    schema: StarSchema,
    dimension: str,
    weight: float = 1.0,
    other_restrictions: Sequence[DimensionRestriction] = (),
    name_prefix: Optional[str] = None,
) -> List[QueryClass]:
    """A drill-down series: one query class per hierarchy level of ``dimension``.

    Drill-down navigation (year -> quarter -> month ...) is the canonical OLAP
    access pattern; a series of classes that restrict the same dimension at
    successively finer levels exercises exactly the hierarchical-containment
    behaviour MDHF exploits.

    Parameters
    ----------
    schema:
        Target schema.
    dimension:
        Dimension to drill down.
    weight:
        Weight of each generated class.
    other_restrictions:
        Restrictions shared by every class in the series (e.g. a fixed product
        group).
    name_prefix:
        Prefix for class names; defaults to the dimension name.
    """
    dim = schema.dimension(dimension)
    prefix = name_prefix if name_prefix is not None else dimension
    series = []
    for level in dim.levels:
        restrictions = list(other_restrictions)
        restrictions.append(DimensionRestriction(dimension=dimension, level=level.name))
        series.append(
            QueryClass(
                name=f"{prefix}-by-{level.name}",
                restrictions=restrictions,
                weight=weight,
            )
        )
    return series
