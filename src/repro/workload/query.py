"""Star query classes and dimension restrictions.

A *star query* joins the fact table with a subset of the dimensions, restricts
each accessed dimension at some hierarchy level (e.g. ``month = 'Jan-99'`` or
``division IN (...)``) and aggregates measure attributes.  WARLOCK abstracts
individual queries into *query classes*: all queries restricting the same
dimensions at the same levels belong to one class, and the class carries a
weight describing its share of the workload.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro.errors import WorkloadError
from repro.schema import StarSchema

__all__ = ["DimensionRestriction", "QueryClass"]


@dataclass(frozen=True)
class DimensionRestriction:
    """A restriction of one dimension at one hierarchy level.

    Parameters
    ----------
    dimension:
        Name of the restricted dimension.
    level:
        Name of the hierarchy level the predicate refers to.
    value_count:
        Number of distinct values of that level selected by the predicate.
        ``1`` (the default) models the common point restriction
        (``month = ?``); larger values model IN-lists / small ranges.
    """

    dimension: str
    level: str
    value_count: int = 1

    def __post_init__(self) -> None:
        if not self.dimension or not str(self.dimension).strip():
            raise WorkloadError("restriction dimension name must be non-empty")
        if not self.level or not str(self.level).strip():
            raise WorkloadError(
                f"restriction on dimension {self.dimension!r} needs a level name"
            )
        if not isinstance(self.value_count, int) or isinstance(self.value_count, bool):
            raise WorkloadError(
                f"value_count must be an int, got {type(self.value_count).__name__}"
            )
        if self.value_count <= 0:
            raise WorkloadError(
                f"value_count must be positive, got {self.value_count} "
                f"(dimension {self.dimension!r})"
            )

    def selectivity(self, schema: StarSchema) -> float:
        """Fraction of the dimension's value space selected by this restriction."""
        cardinality = schema.level_cardinality(self.dimension, self.level)
        if self.value_count > cardinality:
            raise WorkloadError(
                f"restriction on {self.dimension}.{self.level} selects "
                f"{self.value_count} values but the level only has {cardinality}"
            )
        return self.value_count / cardinality

    def describe(self) -> str:
        """Short human-readable form, e.g. ``time.month (1 value)``."""
        plural = "value" if self.value_count == 1 else "values"
        return f"{self.dimension}.{self.level} ({self.value_count} {plural})"


@dataclass(frozen=True)
class QueryClass:
    """A weighted class of star queries.

    Parameters
    ----------
    name:
        Identifier used in reports.
    restrictions:
        One :class:`DimensionRestriction` per accessed dimension (at most one
        per dimension, matching the star-query shape).
    weight:
        Relative share of the workload (any positive number; the
        :class:`~repro.workload.mix.QueryMix` normalizes weights).
    fact_table:
        Optional name of the fact table the class targets; ``None`` means the
        schema's first (primary) fact table.
    """

    name: str
    restrictions: Tuple[DimensionRestriction, ...]
    weight: float = 1.0
    fact_table: Optional[str] = None

    def __init__(
        self,
        name: str,
        restrictions: Sequence[DimensionRestriction],
        weight: float = 1.0,
        fact_table: Optional[str] = None,
    ) -> None:
        if not name or not str(name).strip():
            raise WorkloadError("query class name must be non-empty")
        restrictions = tuple(restrictions)
        dims = [r.dimension for r in restrictions]
        if len(set(dims)) != len(dims):
            raise WorkloadError(
                f"query class {name!r}: at most one restriction per dimension "
                f"(got {dims})"
            )
        if weight <= 0:
            raise WorkloadError(
                f"query class {name!r}: weight must be positive, got {weight}"
            )
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "restrictions", restrictions)
        object.__setattr__(self, "weight", float(weight))
        object.__setattr__(self, "fact_table", fact_table)

    # -- accessors ------------------------------------------------------------

    @property
    def accessed_dimensions(self) -> Tuple[str, ...]:
        """Names of the dimensions the class restricts."""
        return tuple(r.dimension for r in self.restrictions)

    def restricts(self, dimension: str) -> bool:
        """True when the class restricts ``dimension``."""
        return any(r.dimension == dimension for r in self.restrictions)

    def restriction_on(self, dimension: str) -> Optional[DimensionRestriction]:
        """The restriction on ``dimension``, or ``None`` when unrestricted."""
        for restriction in self.restrictions:
            if restriction.dimension == dimension:
                return restriction
        return None

    def restriction_map(self) -> Dict[str, DimensionRestriction]:
        """Mapping from dimension name to restriction."""
        return {r.dimension: r for r in self.restrictions}

    def selectivity(self, schema: StarSchema) -> float:
        """Fraction of fact-table rows qualifying for a query of this class.

        Under the standard star-schema independence assumption the overall
        selectivity is the product of the per-dimension selectivities.
        """
        result = 1.0
        for restriction in self.restrictions:
            result *= restriction.selectivity(schema)
        return result

    def validate(self, schema: StarSchema) -> None:
        """Check that every restriction references an existing dimension/level.

        Raises
        ------
        WorkloadError
            When a restriction references an unknown dimension or level, when
            the fact table does not reference a restricted dimension, or when a
            restriction selects more values than the level has.
        """
        fact = schema.fact_table(self.fact_table)
        for restriction in self.restrictions:
            if not schema.has_dimension(restriction.dimension):
                raise WorkloadError(
                    f"query class {self.name!r} restricts unknown dimension "
                    f"{restriction.dimension!r}"
                )
            dimension = schema.dimension(restriction.dimension)
            if not dimension.has_level(restriction.level):
                raise WorkloadError(
                    f"query class {self.name!r} restricts unknown level "
                    f"{restriction.dimension}.{restriction.level}"
                )
            if restriction.dimension not in fact.dimension_names:
                raise WorkloadError(
                    f"query class {self.name!r} restricts dimension "
                    f"{restriction.dimension!r} which fact table {fact.name!r} "
                    f"does not reference"
                )
            # Raises when value_count exceeds the level cardinality.
            restriction.selectivity(schema)

    def describe(self) -> str:
        """Human-readable single-line summary used in reports."""
        if not self.restrictions:
            return f"{self.name}: full fact table scan (no restrictions)"
        parts = ", ".join(r.describe() for r in self.restrictions)
        return f"{self.name}: {parts}"
