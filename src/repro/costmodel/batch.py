"""Batched class-axis cost estimation: one candidate, all query classes at once.

The scalar path (:mod:`repro.costmodel.access` / :mod:`repro.costmodel.model`)
evaluates one (candidate, query class) pair per call; the advisor's sweep
therefore pays ~``num_classes`` Python passes per candidate.  This module
computes the same quantities as numpy vectors over the *class axis*: a
:class:`~repro.workload.ClassMatrix` supplies the workload in columnar form,
:func:`compute_access_structure_batch` derives every class's
prefetch-independent access structure in one shot, and
:func:`estimate_access_batch` / :func:`evaluate_workload_batch` apply the
prefetch setting and the I/O cost model vectorized.

**Bit-parity contract.** The batched path is the *same model*, not an
approximation: every vector expression performs the identical IEEE-754 double
operations in the identical order as its scalar counterpart (down to routing
``pow`` through CPython floats, see
:func:`repro.costmodel.formulas._elementwise_pow`, and accumulating ragged
per-index sums with ``np.add.at`` in scalar iteration order).  The scalar path
stays as the reference implementation; ``tests/test_vector_parity.py`` sweeps
random layouts, bitmap schemes and prefetch settings and asserts
field-by-field equality of :class:`~repro.costmodel.QueryAccessProfile` and
:class:`~repro.costmodel.QueryCost` between the two.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import List, Tuple

import numpy as np

from repro.errors import CostModelError
from repro.fragmentation import FragmentationLayout
from repro.storage import PrefetchSetting, SystemParameters
from repro.workload.matrix import ClassMatrix
from repro.costmodel.access import (
    SEQUENTIAL_DENSITY_THRESHOLD,
    AccessStructure,
    QueryAccessProfile,
)
from repro.costmodel.formulas import cardenas_pages, expected_distinct_ancestors
from repro.costmodel.model import (
    QueryCost,
    WorkloadEvaluation,
    _positioning_page_equivalent,
    prefetch_setting_from_runs,
)

__all__ = [
    "AccessStructureBatch",
    "AccessProfileBatch",
    "compute_access_structure_batch",
    "estimate_access_batch",
    "resolve_prefetch_setting_batch",
    "evaluate_workload_batch",
]


def _materialize(cls, state: dict):
    """Construct a frozen dataclass instance directly from its field dict.

    The batched path materializes ``num_candidates × num_classes`` frozen
    profile/cost records per sweep; the generated ``__init__`` of a frozen
    dataclass pays one ``object.__setattr__`` per field, which dominates the
    materialization.  Neither :class:`QueryAccessProfile` nor
    :class:`QueryCost` has a ``__post_init__``, so seeding the instance
    ``__dict__`` is equivalent — equality, repr and pickling all read the
    same storage.
    """
    instance = object.__new__(cls)
    instance.__dict__.update(state)
    return instance


@dataclass(frozen=True)
class _ResidualGroup:
    """One residual-restriction source, compressed to the classes it affects.

    The scalar path evaluates a class's residual restrictions in a fixed
    order: fragmentation-axis residuals in spec order, then restrictions on
    non-fragmentation dimensions in the class's restriction order.  Groups are
    built in exactly that order, so iterating groups replays the scalar
    per-class residual order for every class simultaneously.
    """

    #: Class indices this group restricts (ascending).
    columns: np.ndarray
    #: Residual fraction per affected class.
    fractions: np.ndarray
    #: Bitmap-index availability per affected class.
    has_bitmap: np.ndarray
    #: Bits read per fact row off the index, per affected class.
    bits_read: np.ndarray
    #: Restricted (dimension, level) per affected class.
    attributes: Tuple[Tuple[str, str], ...]


@dataclass(frozen=True)
class AccessStructureBatch:
    """Prefetch-independent access structures of *all* classes on one layout.

    The columnar twin of :class:`~repro.costmodel.AccessStructure`: one numpy
    entry per query class (mix order), plus a flat representation of the
    ragged per-class bitmap-index extents (``index_class`` / ``index_pages``
    rows, in per-class residual order).  :meth:`structure` materializes the
    scalar dataclass for any class — bit-identical to
    :func:`~repro.costmodel.compute_access_structure`.
    """

    query_names: Tuple[str, ...]
    fragments_total: int
    fragments_accessed: np.ndarray
    rows_in_accessed_fragments: np.ndarray
    qualifying_rows: np.ndarray
    rows_per_fragment: np.ndarray
    fact_pages_per_fragment: np.ndarray
    forced_full_scan: np.ndarray
    has_residuals: np.ndarray
    bitmap_touched_per_fragment: np.ndarray
    bitmap_density: np.ndarray
    #: Class index of every usable residual bitmap index (flat, per-class
    #: residual order).
    index_class: np.ndarray
    #: Bitmap pages per fragment of that index.
    index_pages: np.ndarray
    #: (dimension, level) of that index.
    index_attributes: Tuple[Tuple[str, str], ...]
    #: Per-class sum of ``index_pages`` (scalar accumulation order).
    bitmap_pages_per_fragment: np.ndarray
    #: Per-class number of usable residual indexes.
    bitmap_index_counts: np.ndarray

    @property
    def num_classes(self) -> int:
        """Number of query classes in the batch."""
        return len(self.query_names)

    @cached_property
    def bitmap_plan_available(self) -> np.ndarray:
        """Per-class: residual filtering can run entirely off bitmap indexes."""
        return (
            self.has_residuals
            & ~self.forced_full_scan
            & (self.bitmap_index_counts > 0)
        )

    @cached_property
    def _index_rows_by_class(self) -> Tuple[Tuple[int, ...], ...]:
        rows: List[List[int]] = [[] for _ in range(self.num_classes)]
        for position, class_index in enumerate(self.index_class.tolist()):
            rows[class_index].append(position)
        return tuple(tuple(entry) for entry in rows)

    def index_pages_for(self, class_index: int) -> Tuple[float, ...]:
        """``bitmap_pages_per_index`` of one class (scalar-path order)."""
        pages = self.index_pages
        return tuple(float(pages[row]) for row in self._index_rows_by_class[class_index])

    def attributes_for(self, class_index: int) -> Tuple[Tuple[str, str], ...]:
        """``bitmap_attributes_available`` of one class (scalar-path order)."""
        return tuple(
            self.index_attributes[row]
            for row in self._index_rows_by_class[class_index]
        )

    def structure(self, class_index: int) -> AccessStructure:
        """Materialize the scalar :class:`AccessStructure` of one class."""
        return AccessStructure(
            query_name=self.query_names[class_index],
            fragments_accessed=float(self.fragments_accessed[class_index]),
            fragments_total=self.fragments_total,
            rows_in_accessed_fragments=float(
                self.rows_in_accessed_fragments[class_index]
            ),
            qualifying_rows=float(self.qualifying_rows[class_index]),
            rows_per_fragment=float(self.rows_per_fragment[class_index]),
            fact_pages_per_fragment=float(self.fact_pages_per_fragment[class_index]),
            bitmap_pages_per_index=self.index_pages_for(class_index),
            bitmap_attributes_available=self.attributes_for(class_index),
            forced_full_scan=bool(self.forced_full_scan[class_index]),
            has_residuals=bool(self.has_residuals[class_index]),
            bitmap_touched_per_fragment=float(
                self.bitmap_touched_per_fragment[class_index]
            ),
            bitmap_density=float(self.bitmap_density[class_index]),
        )

    def structures(self) -> Tuple[AccessStructure, ...]:
        """All per-class access structures, in mix order."""
        return tuple(self.structure(i) for i in range(self.num_classes))


@dataclass(frozen=True)
class AccessProfileBatch:
    """Access profiles of all classes on one layout under one prefetch setting.

    The columnar twin of :class:`~repro.costmodel.QueryAccessProfile`;
    :meth:`profile` materializes the scalar dataclass for any class —
    bit-identical to :func:`~repro.costmodel.estimate_access`.
    """

    structures: AccessStructureBatch
    fact_pages_accessed: np.ndarray
    bitmap_pages_accessed: np.ndarray
    fact_io_requests: np.ndarray
    bitmap_io_requests: np.ndarray
    fact_pages_transferred: np.ndarray
    sequential_fact_access: np.ndarray
    use_bitmap_plan: np.ndarray

    @property
    def num_classes(self) -> int:
        """Number of query classes in the batch."""
        return self.structures.num_classes

    def profile(self, class_index: int) -> QueryAccessProfile:
        """Materialize the scalar :class:`QueryAccessProfile` of one class."""
        structures = self.structures
        bitmap_pages = float(self.bitmap_pages_accessed[class_index])
        attributes = (
            structures.attributes_for(class_index)
            if self.use_bitmap_plan[class_index]
            else ()
        )
        return QueryAccessProfile(
            query_name=structures.query_names[class_index],
            fragments_accessed=float(structures.fragments_accessed[class_index]),
            fragments_total=structures.fragments_total,
            rows_in_accessed_fragments=float(
                structures.rows_in_accessed_fragments[class_index]
            ),
            qualifying_rows=float(structures.qualifying_rows[class_index]),
            fact_pages_per_fragment=float(
                structures.fact_pages_per_fragment[class_index]
            ),
            fact_pages_accessed=float(self.fact_pages_accessed[class_index]),
            bitmap_pages_accessed=bitmap_pages,
            fact_io_requests=float(self.fact_io_requests[class_index]),
            bitmap_io_requests=float(self.bitmap_io_requests[class_index]),
            fact_pages_transferred=float(self.fact_pages_transferred[class_index]),
            bitmap_pages_transferred=bitmap_pages,
            sequential_fact_access=bool(self.sequential_fact_access[class_index]),
            forced_full_scan=bool(structures.forced_full_scan[class_index]),
            bitmap_attributes_used=attributes,
        )

    def profiles(self) -> Tuple[QueryAccessProfile, ...]:
        """All per-class profiles, in mix order."""
        return tuple(self.profile(i) for i in range(self.num_classes))


def _axis_groups(
    layout: FragmentationLayout,
    matrix: ClassMatrix,
) -> Tuple[np.ndarray, np.ndarray, List[_ResidualGroup]]:
    """Vectorized fragment confinement along every fragmentation axis.

    Returns ``(fragments_accessed, fragment_row_fraction, residual_groups)``
    where the residual groups cover the fragmentation-axis residuals in spec
    order (the scalar `_axis_access` loop, all classes at once).
    """
    num_classes = matrix.num_classes
    fragments_accessed = np.ones(num_classes, dtype=np.float64)
    fragment_row_fraction = np.ones(num_classes, dtype=np.float64)
    groups: List[_ResidualGroup] = []

    for axis_index in range(layout.spec.dimensionality):
        attribute = layout.spec.attributes[axis_index]
        frag_cardinality = layout.axis_cardinalities[axis_index]
        frag_cardinality_f = float(frag_cardinality)
        if attribute.dimension not in matrix.dimension_names:
            # No class restricts this dimension: every class touches every
            # fragment value, contributing a factor of exactly 1.0 to the row
            # fraction — identical to the scalar unrestricted branch.
            fragments_accessed = fragments_accessed * frag_cardinality_f
            fragment_row_fraction = fragment_row_fraction * (
                frag_cardinality_f / frag_cardinality
            )
            continue

        row = matrix.dimension_row(attribute.dimension)
        restricted = matrix.restricted[row]
        value_count = matrix.value_counts[row]
        query_cardinality = matrix.level_cardinalities[row]
        depth = matrix.level_depths[row]
        attribute_depth = layout.schema.dimension(attribute.dimension).level_index(
            attribute.level
        )

        accessed = np.full(num_classes, frag_cardinality_f, dtype=np.float64)

        # Restriction at or above the fragmentation level: whole fragments.
        coarse = restricted & (depth <= attribute_depth)
        if coarse.any():
            with np.errstate(divide="ignore", invalid="ignore"):
                fanout = frag_cardinality / query_cardinality
                coarse_accessed = np.minimum(
                    frag_cardinality_f, np.maximum(1.0, value_count * fanout)
                )
            accessed = np.where(coarse, coarse_accessed, accessed)

        # Restriction below the fragmentation level: residual filtering.
        fine = restricted & (depth > attribute_depth)
        fine_columns = np.nonzero(fine)[0]
        if fine_columns.size:
            fine_accessed = expected_distinct_ancestors(
                selected_values=value_count[fine_columns],
                fine_cardinality=query_cardinality[fine_columns],
                coarse_cardinality=frag_cardinality_f,
            )
            fine_accessed = np.minimum(
                frag_cardinality_f, np.maximum(1.0, fine_accessed)
            )
            accessed[fine_columns] = fine_accessed
            selected_fraction = value_count[fine_columns] / query_cardinality[fine_columns]
            accessed_fraction = fine_accessed / frag_cardinality
            residual = np.minimum(1.0, selected_fraction / accessed_fraction)
            level_names = matrix.level_names[row]
            groups.append(
                _ResidualGroup(
                    columns=fine_columns,
                    fractions=residual,
                    has_bitmap=matrix.has_bitmap[row][fine_columns],
                    bits_read=matrix.bitmap_bits_read[row][fine_columns],
                    attributes=tuple(
                        (attribute.dimension, level_names[column])
                        for column in fine_columns.tolist()
                    ),
                )
            )

        fragments_accessed = fragments_accessed * accessed
        fragment_row_fraction = fragment_row_fraction * (accessed / frag_cardinality)

    return fragments_accessed, fragment_row_fraction, groups


def _slot_groups(
    layout: FragmentationLayout, matrix: ClassMatrix
) -> List[_ResidualGroup]:
    """Residual restrictions on non-fragmentation dimensions, slot by slot.

    Iterating restriction slots in order replays, for every class at once, the
    scalar loop ``for restriction in query.restrictions`` that appends
    non-fragmentation residuals in restriction order.
    """
    # O(1) membership lookup: row index -> "is a fragmentation dimension".
    # The trailing slot absorbs the NO_RESTRICTION (-1) padding entries, which
    # the validity mask filters out anyway.
    row_in_spec = np.zeros(matrix.num_dimensions + 1, dtype=bool)
    for dimension in layout.spec.dimensions:
        if dimension in matrix.dimension_names:
            row_in_spec[matrix.dimension_names.index(dimension)] = True
    groups: List[_ResidualGroup] = []
    for slot in range(matrix.slot_dimensions.shape[1]):
        dimension_rows = matrix.slot_dimensions[:, slot]
        mask = (dimension_rows >= 0) & ~row_in_spec[dimension_rows]
        columns = np.nonzero(mask)[0]
        if not columns.size:
            continue
        rows = dimension_rows[columns]
        groups.append(
            _ResidualGroup(
                columns=columns,
                fractions=matrix.restriction_selectivities[rows, columns],
                has_bitmap=matrix.has_bitmap[rows, columns],
                bits_read=matrix.bitmap_bits_read[rows, columns],
                attributes=tuple(
                    (
                        matrix.dimension_names[row],
                        matrix.level_names[row][column],
                    )
                    for row, column in zip(rows.tolist(), columns.tolist())
                ),
            )
        )
    return groups


def compute_access_structure_batch(
    layout: FragmentationLayout, matrix: ClassMatrix
) -> AccessStructureBatch:
    """Derive every class's prefetch-independent access structure at once.

    The vectorized twin of
    :func:`~repro.costmodel.compute_access_structure`: same model, same
    operation order, one numpy pass over the class axis instead of
    ``num_classes`` scalar calls.  The workload is assumed validated (the
    advisor and the engine validate it once at construction).
    """
    num_classes = matrix.num_classes
    page_size = layout.page_size_bytes
    rows_per_page = layout.rows_per_page
    row_count = layout.fact.row_count

    fragments_accessed, fragment_row_fraction, groups = _axis_groups(layout, matrix)
    groups.extend(_slot_groups(layout, matrix))

    rows_in_accessed = row_count * fragment_row_fraction
    qualifying_rows = row_count * np.asarray(matrix.selectivities, dtype=np.float64)
    qualifying_rows = np.minimum(qualifying_rows, rows_in_accessed)

    non_positive = fragments_accessed <= 0
    if non_positive.any():
        failing = int(np.nonzero(non_positive)[0][0])
        raise CostModelError(
            f"query {matrix.query_names[failing]!r} accesses no fragments on "
            f"{layout.spec.label}"
        )

    rows_per_fragment = rows_in_accessed / fragments_accessed
    with np.errstate(invalid="ignore"):
        fact_pages_per_fragment = np.where(
            rows_per_fragment > 0,
            np.maximum(1.0, np.ceil(rows_per_fragment / rows_per_page)),
            0.0,
        )

    # --- residual filtering: bitmap extents and selectivity, group order ---------
    residual_selectivity = np.ones(num_classes, dtype=np.float64)
    forced_full_scan = np.zeros(num_classes, dtype=bool)
    has_residuals = np.zeros(num_classes, dtype=bool)
    index_class_parts: List[np.ndarray] = []
    index_pages_parts: List[np.ndarray] = []
    index_attributes: List[Tuple[str, str]] = []
    for group in groups:
        columns = group.columns
        has_residuals[columns] = True
        residual_selectivity[columns] *= np.minimum(1.0, group.fractions)
        no_index = ~group.has_bitmap
        forced_full_scan[columns[no_index]] = True
        indexed = np.nonzero(group.has_bitmap)[0]
        if not indexed.size:
            continue
        indexed_columns = columns[indexed]
        pages = np.where(
            rows_per_fragment[indexed_columns] > 0,
            np.maximum(
                1.0,
                np.ceil(
                    group.bits_read[indexed]
                    * rows_per_fragment[indexed_columns]
                    / 8.0
                    / page_size
                ),
            ),
            0.0,
        )
        index_class_parts.append(indexed_columns)
        index_pages_parts.append(pages)
        index_attributes.extend(group.attributes[i] for i in indexed.tolist())

    if index_class_parts:
        # Flat residual-index rows.  Sorting by class (stable) turns the
        # group-major order into class-major order while preserving each
        # class's residual order — the order the scalar path accumulates in.
        index_class = np.concatenate(index_class_parts)
        index_pages = np.concatenate(index_pages_parts)
        order = np.argsort(index_class, kind="stable")
        index_class = index_class[order]
        index_pages = index_pages[order]
        index_attributes = [index_attributes[i] for i in order.tolist()]
    else:
        index_class = np.empty(0, dtype=np.int64)
        index_pages = np.empty(0, dtype=np.float64)

    bitmap_pages_per_fragment = np.zeros(num_classes, dtype=np.float64)
    np.add.at(bitmap_pages_per_fragment, index_class, index_pages)
    bitmap_index_counts = np.bincount(
        index_class, minlength=num_classes
    ).astype(np.int64)

    # --- fact pages a bitmap-driven plan would touch (Cardenas) ------------------
    qualifying_per_fragment = rows_per_fragment * residual_selectivity
    touched_per_fragment = cardenas_pages(
        total_rows=rows_per_fragment,
        total_pages=fact_pages_per_fragment,
        selected_rows=qualifying_per_fragment,
    )
    touched_per_fragment = np.minimum(
        fact_pages_per_fragment, np.maximum(0.0, touched_per_fragment)
    )
    with np.errstate(invalid="ignore"):
        density = np.where(
            fact_pages_per_fragment > 0,
            touched_per_fragment / fact_pages_per_fragment,
            0.0,
        )

    return AccessStructureBatch(
        query_names=matrix.query_names,
        fragments_total=layout.fragment_count,
        fragments_accessed=fragments_accessed,
        rows_in_accessed_fragments=rows_in_accessed,
        qualifying_rows=qualifying_rows,
        rows_per_fragment=rows_per_fragment,
        fact_pages_per_fragment=fact_pages_per_fragment,
        forced_full_scan=forced_full_scan,
        has_residuals=has_residuals,
        bitmap_touched_per_fragment=touched_per_fragment,
        bitmap_density=density,
        index_class=index_class,
        index_pages=index_pages,
        index_attributes=tuple(index_attributes),
        bitmap_pages_per_fragment=bitmap_pages_per_fragment,
        bitmap_index_counts=bitmap_index_counts,
    )


def estimate_access_batch(
    structures: AccessStructureBatch,
    prefetch: PrefetchSetting,
    positioning_page_equivalent: float,
) -> AccessProfileBatch:
    """Apply a prefetch setting to a structure batch, all classes at once.

    The vectorized twin of :func:`~repro.costmodel.estimate_access`: the same
    scan-vs-bitmap access path selection, evaluated as masked vector
    arithmetic over the class axis.
    """
    fragments_accessed = structures.fragments_accessed
    fact_pages_per_fragment = structures.fact_pages_per_fragment

    # --- bitmap request counts under the configured granule ----------------------
    index_requests = np.where(
        structures.index_pages > 0,
        np.ceil(structures.index_pages / prefetch.bitmap_pages),
        0.0,
    )
    bitmap_requests_per_fragment = np.zeros(structures.num_classes, dtype=np.float64)
    np.add.at(bitmap_requests_per_fragment, structures.index_class, index_requests)
    bitmap_pages_per_fragment = structures.bitmap_pages_per_fragment

    # --- plan A: sequential scan of the accessed fragments ------------------------
    scan_requests_per_fragment = np.where(
        fact_pages_per_fragment > 0,
        np.ceil(fact_pages_per_fragment / prefetch.fact_pages),
        0.0,
    )
    scan_cost_per_fragment = (
        scan_requests_per_fragment * positioning_page_equivalent
        + fact_pages_per_fragment
    )

    # --- plan B: bitmap-driven access ---------------------------------------------
    touched_per_fragment = structures.bitmap_touched_per_fragment
    bitmap_sequential = structures.bitmap_density >= SEQUENTIAL_DENSITY_THRESHOLD
    bitmap_fact_requests = np.where(
        bitmap_sequential, scan_requests_per_fragment, touched_per_fragment
    )
    # Sequential bitmap plans read the whole fragment; random ones touch (and
    # transfer) exactly the Cardenas pages — touched == transferred either way.
    bitmap_fact_transferred = np.where(
        bitmap_sequential, fact_pages_per_fragment, touched_per_fragment
    )
    bitmap_plan_cost = (
        bitmap_fact_requests * positioning_page_equivalent
        + bitmap_fact_transferred
        + bitmap_requests_per_fragment * positioning_page_equivalent
        + bitmap_pages_per_fragment
    )
    use_bitmap_plan = structures.bitmap_plan_available & (
        bitmap_plan_cost < scan_cost_per_fragment
    )

    sequential = np.where(use_bitmap_plan, bitmap_sequential, True)
    pages_touched_per_fragment = np.where(
        use_bitmap_plan, bitmap_fact_transferred, fact_pages_per_fragment
    )
    requests_per_fragment = np.where(
        use_bitmap_plan, bitmap_fact_requests, scan_requests_per_fragment
    )
    transferred_per_fragment = np.where(
        use_bitmap_plan, bitmap_fact_transferred, fact_pages_per_fragment
    )
    bitmap_pages = np.where(
        use_bitmap_plan, fragments_accessed * bitmap_pages_per_fragment, 0.0
    )
    bitmap_requests = np.where(
        use_bitmap_plan, fragments_accessed * bitmap_requests_per_fragment, 0.0
    )

    return AccessProfileBatch(
        structures=structures,
        fact_pages_accessed=fragments_accessed * pages_touched_per_fragment,
        bitmap_pages_accessed=bitmap_pages,
        fact_io_requests=fragments_accessed * requests_per_fragment,
        bitmap_io_requests=bitmap_requests,
        fact_pages_transferred=fragments_accessed * transferred_per_fragment,
        sequential_fact_access=sequential,
        use_bitmap_plan=use_bitmap_plan,
    )


def resolve_prefetch_setting_batch(
    structures: AccessStructureBatch,
    matrix: ClassMatrix,
    system: SystemParameters,
) -> PrefetchSetting:
    """Resolve the prefetch granules from a structure batch.

    The vectorized twin of :func:`~repro.costmodel.resolve_prefetch_setting`:
    a unit-granule estimation pass derives each class's typical run lengths,
    then the shared granule selection picks the optimum.
    """
    unit_profiles = estimate_access_batch(
        structures,
        PrefetchSetting.fixed(1, 1),
        _positioning_page_equivalent(system),
    )
    fact_runs = structures.fact_pages_per_fragment
    with np.errstate(divide="ignore", invalid="ignore"):
        bitmap_runs = np.where(
            structures.fragments_accessed > 0,
            unit_profiles.bitmap_pages_accessed / structures.fragments_accessed,
            0.0,
        )
    return prefetch_setting_from_runs(
        tuple(fact_runs.tolist()),
        tuple(bitmap_runs.tolist()),
        matrix.shares,
        system,
    )


def evaluate_workload_batch(
    layout: FragmentationLayout,
    structures: AccessStructureBatch,
    matrix: ClassMatrix,
    system: SystemParameters,
    prefetch: PrefetchSetting,
) -> WorkloadEvaluation:
    """Evaluate one candidate against the whole mix, vectorized.

    The vectorized twin of :meth:`repro.costmodel.IOCostModel.evaluate` (with
    a resolved prefetch setting): access profiles, I/O cost, response time and
    disk counts are computed as class-axis vectors, then materialized into the
    same per-class :class:`~repro.costmodel.QueryCost` records.
    """
    profiles = estimate_access_batch(
        structures, prefetch, _positioning_page_equivalent(system)
    )

    # --- I/O cost (IOCostModel.io_cost_ms, vectorized) ----------------------------
    disk = system.disk
    page_time = disk.page_transfer_time_ms(system.page_size_bytes)
    fact_transfer = np.where(
        profiles.sequential_fact_access,
        np.maximum(
            profiles.fact_io_requests * prefetch.fact_pages,
            profiles.fact_pages_transferred,
        ),
        profiles.fact_pages_transferred,
    )
    bitmap_transfer = np.where(
        profiles.bitmap_io_requests > 0,
        np.maximum(
            profiles.bitmap_io_requests * prefetch.bitmap_pages,
            profiles.bitmap_pages_accessed,
        ),
        profiles.bitmap_pages_accessed,
    )
    total_requests = profiles.fact_io_requests + profiles.bitmap_io_requests
    io_cost = disk.positioning_time_ms * total_requests + page_time * (
        fact_transfer + bitmap_transfer
    )

    # --- disks used and response time (vectorized) --------------------------------
    disks_used = np.minimum(
        float(system.num_disks),
        np.ceil(np.maximum(1.0, profiles.structures.fragments_accessed)),
    ).astype(np.int64)
    disks_f = disks_used.astype(np.float64)
    parallel = disks_used > 1
    imbalance = np.where(
        parallel, 1.0 + layout.fragment_size_cv / np.sqrt(disks_f), 1.0
    )
    response = (
        io_cost / disks_f * imbalance
        + system.effective_coordination_overhead_ms * disks_f
    )

    # Materialize the per-class records in bulk: one ``tolist`` per column
    # yields exact Python scalars, and the records are seeded directly (see
    # :func:`_materialize`).
    structures = profiles.structures
    fragments_total = structures.fragments_total
    columns = list(
        zip(
            matrix.query_names,
            structures.fragments_accessed.tolist(),
            structures.rows_in_accessed_fragments.tolist(),
            structures.qualifying_rows.tolist(),
            structures.fact_pages_per_fragment.tolist(),
            profiles.fact_pages_accessed.tolist(),
            profiles.bitmap_pages_accessed.tolist(),
            profiles.fact_io_requests.tolist(),
            profiles.bitmap_io_requests.tolist(),
            profiles.fact_pages_transferred.tolist(),
            profiles.sequential_fact_access.tolist(),
            structures.forced_full_scan.tolist(),
            profiles.use_bitmap_plan.tolist(),
            matrix.shares,
            io_cost.tolist(),
            response.tolist(),
            disks_used.tolist(),
        )
    )
    per_class = []
    for i, (
        query_name,
        fragments_accessed,
        rows_in_accessed,
        qualifying,
        fact_pages_per_fragment,
        fact_pages_accessed,
        bitmap_pages,
        fact_requests,
        bitmap_requests,
        fact_transferred,
        sequential,
        forced,
        use_bitmap_plan,
        share,
        io_value,
        response_value,
        disks_value,
    ) in enumerate(columns):
        profile = _materialize(
            QueryAccessProfile,
            {
                "query_name": query_name,
                "fragments_accessed": fragments_accessed,
                "fragments_total": fragments_total,
                "rows_in_accessed_fragments": rows_in_accessed,
                "qualifying_rows": qualifying,
                "fact_pages_per_fragment": fact_pages_per_fragment,
                "fact_pages_accessed": fact_pages_accessed,
                "bitmap_pages_accessed": bitmap_pages,
                "fact_io_requests": fact_requests,
                "bitmap_io_requests": bitmap_requests,
                "fact_pages_transferred": fact_transferred,
                "bitmap_pages_transferred": bitmap_pages,
                "sequential_fact_access": sequential,
                "forced_full_scan": forced,
                "bitmap_attributes_used": (
                    structures.attributes_for(i) if use_bitmap_plan else ()
                ),
            },
        )
        per_class.append(
            _materialize(
                QueryCost,
                {
                    "query_name": query_name,
                    "weight": share,
                    "profile": profile,
                    "io_cost_ms": io_value,
                    "response_time_ms": response_value,
                    "disks_used": disks_value,
                },
            )
        )
    return WorkloadEvaluation(
        layout=layout, prefetch=prefetch, per_class=tuple(per_class)
    )
