"""Batched cost estimation over the class axis and the candidate axis.

The scalar path (:mod:`repro.costmodel.access` / :mod:`repro.costmodel.model`)
evaluates one (candidate, query class) pair per call; the advisor's sweep
therefore pays ~``num_classes`` Python passes per candidate.  This module
removes those passes in two stages:

* **Class axis** — a :class:`~repro.workload.ClassMatrix` supplies the
  workload in columnar form, :func:`compute_access_structure_batch` derives
  every class's prefetch-independent access structure in one shot, and
  :func:`estimate_access_batch` / :func:`evaluate_workload_batch` apply the
  prefetch setting and the I/O cost model vectorized over all classes of one
  candidate.

* **Candidate axis** — a whole chunk of layouts sharing one *axis structure*
  (:attr:`~repro.fragmentation.FragmentationSpec.axis_structure` — the
  ordered fragmentation dimensions, within which all per-class control flow
  is uniform) stacks into (candidate × class) planes:
  :func:`compute_access_structure_batch_candidates` derives every stacked
  candidate's structures in one pass, and — because prefetch resolution and
  the cost model are purely elementwise per candidate —
  :func:`resolve_prefetch_settings_batch_candidates` /
  :func:`evaluate_workload_batch_candidates` then run over arbitrary
  concatenations of such stacks (:meth:`AccessStructureBatch2D.concat`), so
  the executor fuses a whole sweep chunk into one kernel pass.  This is what
  makes narrow mixes pay off: the class-axis win shrinks to ~1.05x at 8
  classes, while the candidate-axis batch clears 2x there (E11 part 5).

Evaluations come out **columnar** (:class:`~repro.costmodel.EvaluationColumns`
inside :class:`~repro.costmodel.WorkloadEvaluation`): per-class records are
lazy views, so the sweep materializes no per-class Python objects at all.

**Bit-parity contract.** The batched paths are the *same model*, not an
approximation: every vector expression performs the identical IEEE-754 double
operations in the identical order as its scalar counterpart (down to routing
``pow`` through CPython floats, see
:func:`repro.costmodel.formulas._elementwise_pow`, and accumulating ragged
per-index sums with ``np.add.at`` in scalar iteration order; stacked flat
rows stay candidate-major so each candidate's slice replays the class-axis
order).  The scalar path stays as the reference implementation;
``tests/test_vector_parity.py`` sweeps random layouts, bitmap schemes and
prefetch settings and asserts field-by-field equality of
:class:`~repro.costmodel.QueryAccessProfile` and
:class:`~repro.costmodel.QueryCost` across all three paths, per class and per
stacked candidate slice.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import CostModelError
from repro.fragmentation import FragmentationLayout
from repro.storage import PrefetchSetting, SystemParameters
from repro.workload.matrix import ClassMatrix
from repro.costmodel.access import (
    SEQUENTIAL_DENSITY_THRESHOLD,
    AccessStructure,
    QueryAccessProfile,
)
from repro.costmodel.formulas import cardenas_pages, expected_distinct_ancestors
from repro.costmodel.model import (
    NUM_METRIC_FIELDS,
    EvaluationColumns,
    WorkloadEvaluation,
    _positioning_page_equivalent,
    prefetch_setting_from_runs,
)

__all__ = [
    "AccessStructureBatch",
    "AccessStructureBatch2D",
    "AccessProfileBatch",
    "AccessProfileBatch2D",
    "compute_access_structure_batch",
    "compute_access_structure_batch_candidates",
    "estimate_access_batch",
    "estimate_access_batch_candidates",
    "resolve_prefetch_setting_batch",
    "resolve_prefetch_settings_batch_candidates",
    "evaluate_workload_batch",
    "evaluate_workload_batch_candidates",
]


@dataclass(frozen=True)
class _ResidualGroup:
    """One residual-restriction source, compressed to the classes it affects.

    The scalar path evaluates a class's residual restrictions in a fixed
    order: fragmentation-axis residuals in spec order, then restrictions on
    non-fragmentation dimensions in the class's restriction order.  Groups are
    built in exactly that order, so iterating groups replays the scalar
    per-class residual order for every class simultaneously.
    """

    #: Class indices this group restricts (ascending).
    columns: np.ndarray
    #: Residual fraction per affected class.
    fractions: np.ndarray
    #: Bitmap-index availability per affected class.
    has_bitmap: np.ndarray
    #: Bits read per fact row off the index, per affected class.
    bits_read: np.ndarray
    #: Restricted (dimension, level) per affected class.
    attributes: Tuple[Tuple[str, str], ...]


@dataclass(frozen=True)
class AccessStructureBatch:
    """Prefetch-independent access structures of *all* classes on one layout.

    The columnar twin of :class:`~repro.costmodel.AccessStructure`: one numpy
    entry per query class (mix order), plus a flat representation of the
    ragged per-class bitmap-index extents (``index_class`` / ``index_pages``
    rows, in per-class residual order).  :meth:`structure` materializes the
    scalar dataclass for any class — bit-identical to
    :func:`~repro.costmodel.compute_access_structure`.
    """

    query_names: Tuple[str, ...]
    fragments_total: int
    fragments_accessed: np.ndarray
    rows_in_accessed_fragments: np.ndarray
    qualifying_rows: np.ndarray
    rows_per_fragment: np.ndarray
    fact_pages_per_fragment: np.ndarray
    forced_full_scan: np.ndarray
    has_residuals: np.ndarray
    bitmap_touched_per_fragment: np.ndarray
    bitmap_density: np.ndarray
    #: Class index of every usable residual bitmap index (flat, per-class
    #: residual order).
    index_class: np.ndarray
    #: Bitmap pages per fragment of that index.
    index_pages: np.ndarray
    #: (dimension, level) of that index.
    index_attributes: Tuple[Tuple[str, str], ...]
    #: Per-class sum of ``index_pages`` (scalar accumulation order).
    bitmap_pages_per_fragment: np.ndarray
    #: Per-class number of usable residual indexes.
    bitmap_index_counts: np.ndarray

    @property
    def num_classes(self) -> int:
        """Number of query classes in the batch."""
        return len(self.query_names)

    @cached_property
    def bitmap_plan_available(self) -> np.ndarray:
        """Per-class: residual filtering can run entirely off bitmap indexes."""
        return (
            self.has_residuals
            & ~self.forced_full_scan
            & (self.bitmap_index_counts > 0)
        )

    @cached_property
    def _index_rows_by_class(self) -> Tuple[Tuple[int, ...], ...]:
        rows: List[List[int]] = [[] for _ in range(self.num_classes)]
        for position, class_index in enumerate(self.index_class.tolist()):
            rows[class_index].append(position)
        return tuple(tuple(entry) for entry in rows)

    def index_pages_for(self, class_index: int) -> Tuple[float, ...]:
        """``bitmap_pages_per_index`` of one class (scalar-path order)."""
        pages = self.index_pages
        return tuple(float(pages[row]) for row in self._index_rows_by_class[class_index])

    def attributes_for(self, class_index: int) -> Tuple[Tuple[str, str], ...]:
        """``bitmap_attributes_available`` of one class (scalar-path order)."""
        return tuple(
            self.index_attributes[row]
            for row in self._index_rows_by_class[class_index]
        )

    def structure(self, class_index: int) -> AccessStructure:
        """Materialize the scalar :class:`AccessStructure` of one class."""
        return AccessStructure(
            query_name=self.query_names[class_index],
            fragments_accessed=float(self.fragments_accessed[class_index]),
            fragments_total=self.fragments_total,
            rows_in_accessed_fragments=float(
                self.rows_in_accessed_fragments[class_index]
            ),
            qualifying_rows=float(self.qualifying_rows[class_index]),
            rows_per_fragment=float(self.rows_per_fragment[class_index]),
            fact_pages_per_fragment=float(self.fact_pages_per_fragment[class_index]),
            bitmap_pages_per_index=self.index_pages_for(class_index),
            bitmap_attributes_available=self.attributes_for(class_index),
            forced_full_scan=bool(self.forced_full_scan[class_index]),
            has_residuals=bool(self.has_residuals[class_index]),
            bitmap_touched_per_fragment=float(
                self.bitmap_touched_per_fragment[class_index]
            ),
            bitmap_density=float(self.bitmap_density[class_index]),
        )

    def structures(self) -> Tuple[AccessStructure, ...]:
        """All per-class access structures, in mix order."""
        return tuple(self.structure(i) for i in range(self.num_classes))


@dataclass(frozen=True)
class AccessProfileBatch:
    """Access profiles of all classes on one layout under one prefetch setting.

    The columnar twin of :class:`~repro.costmodel.QueryAccessProfile`;
    :meth:`profile` materializes the scalar dataclass for any class —
    bit-identical to :func:`~repro.costmodel.estimate_access`.
    """

    structures: AccessStructureBatch
    fact_pages_accessed: np.ndarray
    bitmap_pages_accessed: np.ndarray
    fact_io_requests: np.ndarray
    bitmap_io_requests: np.ndarray
    fact_pages_transferred: np.ndarray
    sequential_fact_access: np.ndarray
    use_bitmap_plan: np.ndarray

    @property
    def num_classes(self) -> int:
        """Number of query classes in the batch."""
        return self.structures.num_classes

    def profile(self, class_index: int) -> QueryAccessProfile:
        """Materialize the scalar :class:`QueryAccessProfile` of one class."""
        structures = self.structures
        bitmap_pages = float(self.bitmap_pages_accessed[class_index])
        attributes = (
            structures.attributes_for(class_index)
            if self.use_bitmap_plan[class_index]
            else ()
        )
        return QueryAccessProfile(
            query_name=structures.query_names[class_index],
            fragments_accessed=float(structures.fragments_accessed[class_index]),
            fragments_total=structures.fragments_total,
            rows_in_accessed_fragments=float(
                structures.rows_in_accessed_fragments[class_index]
            ),
            qualifying_rows=float(structures.qualifying_rows[class_index]),
            fact_pages_per_fragment=float(
                structures.fact_pages_per_fragment[class_index]
            ),
            fact_pages_accessed=float(self.fact_pages_accessed[class_index]),
            bitmap_pages_accessed=bitmap_pages,
            fact_io_requests=float(self.fact_io_requests[class_index]),
            bitmap_io_requests=float(self.bitmap_io_requests[class_index]),
            fact_pages_transferred=float(self.fact_pages_transferred[class_index]),
            bitmap_pages_transferred=bitmap_pages,
            sequential_fact_access=bool(self.sequential_fact_access[class_index]),
            forced_full_scan=bool(structures.forced_full_scan[class_index]),
            bitmap_attributes_used=attributes,
        )

    def profiles(self) -> Tuple[QueryAccessProfile, ...]:
        """All per-class profiles, in mix order."""
        return tuple(self.profile(i) for i in range(self.num_classes))


def _axis_groups(
    layout: FragmentationLayout,
    matrix: ClassMatrix,
) -> Tuple[np.ndarray, np.ndarray, List[_ResidualGroup]]:
    """Vectorized fragment confinement along every fragmentation axis.

    Returns ``(fragments_accessed, fragment_row_fraction, residual_groups)``
    where the residual groups cover the fragmentation-axis residuals in spec
    order (the scalar `_axis_access` loop, all classes at once).
    """
    num_classes = matrix.num_classes
    fragments_accessed = np.ones(num_classes, dtype=np.float64)
    fragment_row_fraction = np.ones(num_classes, dtype=np.float64)
    groups: List[_ResidualGroup] = []

    for axis_index in range(layout.spec.dimensionality):
        attribute = layout.spec.attributes[axis_index]
        frag_cardinality = layout.axis_cardinalities[axis_index]
        frag_cardinality_f = float(frag_cardinality)
        if attribute.dimension not in matrix.dimension_names:
            # No class restricts this dimension: every class touches every
            # fragment value, contributing a factor of exactly 1.0 to the row
            # fraction — identical to the scalar unrestricted branch.
            fragments_accessed = fragments_accessed * frag_cardinality_f
            fragment_row_fraction = fragment_row_fraction * (
                frag_cardinality_f / frag_cardinality
            )
            continue

        row = matrix.dimension_row(attribute.dimension)
        restricted = matrix.restricted[row]
        value_count = matrix.value_counts[row]
        query_cardinality = matrix.level_cardinalities[row]
        depth = matrix.level_depths[row]
        attribute_depth = layout.schema.dimension(attribute.dimension).level_index(
            attribute.level
        )

        accessed = np.full(num_classes, frag_cardinality_f, dtype=np.float64)

        # Restriction at or above the fragmentation level: whole fragments.
        coarse = restricted & (depth <= attribute_depth)
        if coarse.any():
            with np.errstate(divide="ignore", invalid="ignore"):
                fanout = frag_cardinality / query_cardinality
                coarse_accessed = np.minimum(
                    frag_cardinality_f, np.maximum(1.0, value_count * fanout)
                )
            accessed = np.where(coarse, coarse_accessed, accessed)

        # Restriction below the fragmentation level: residual filtering.
        fine = restricted & (depth > attribute_depth)
        fine_columns = np.nonzero(fine)[0]
        if fine_columns.size:
            fine_accessed = expected_distinct_ancestors(
                selected_values=value_count[fine_columns],
                fine_cardinality=query_cardinality[fine_columns],
                coarse_cardinality=frag_cardinality_f,
            )
            fine_accessed = np.minimum(
                frag_cardinality_f, np.maximum(1.0, fine_accessed)
            )
            accessed[fine_columns] = fine_accessed
            selected_fraction = value_count[fine_columns] / query_cardinality[fine_columns]
            accessed_fraction = fine_accessed / frag_cardinality
            residual = np.minimum(1.0, selected_fraction / accessed_fraction)
            level_names = matrix.level_names[row]
            groups.append(
                _ResidualGroup(
                    columns=fine_columns,
                    fractions=residual,
                    has_bitmap=matrix.has_bitmap[row][fine_columns],
                    bits_read=matrix.bitmap_bits_read[row][fine_columns],
                    attributes=tuple(
                        (attribute.dimension, level_names[column])
                        for column in fine_columns.tolist()
                    ),
                )
            )

        fragments_accessed = fragments_accessed * accessed
        fragment_row_fraction = fragment_row_fraction * (accessed / frag_cardinality)

    return fragments_accessed, fragment_row_fraction, groups


def _slot_groups(
    layout: FragmentationLayout, matrix: ClassMatrix
) -> List[_ResidualGroup]:
    """Residual restrictions on non-fragmentation dimensions, slot by slot.

    Iterating restriction slots in order replays, for every class at once, the
    scalar loop ``for restriction in query.restrictions`` that appends
    non-fragmentation residuals in restriction order.
    """
    # O(1) membership lookup: row index -> "is a fragmentation dimension".
    # The trailing slot absorbs the NO_RESTRICTION (-1) padding entries, which
    # the validity mask filters out anyway.
    row_in_spec = np.zeros(matrix.num_dimensions + 1, dtype=bool)
    for dimension in layout.spec.dimensions:
        if dimension in matrix.dimension_names:
            row_in_spec[matrix.dimension_names.index(dimension)] = True
    groups: List[_ResidualGroup] = []
    for slot in range(matrix.slot_dimensions.shape[1]):
        dimension_rows = matrix.slot_dimensions[:, slot]
        mask = (dimension_rows >= 0) & ~row_in_spec[dimension_rows]
        columns = np.nonzero(mask)[0]
        if not columns.size:
            continue
        rows = dimension_rows[columns]
        groups.append(
            _ResidualGroup(
                columns=columns,
                fractions=matrix.restriction_selectivities[rows, columns],
                has_bitmap=matrix.has_bitmap[rows, columns],
                bits_read=matrix.bitmap_bits_read[rows, columns],
                attributes=tuple(
                    (
                        matrix.dimension_names[row],
                        matrix.level_names[row][column],
                    )
                    for row, column in zip(rows.tolist(), columns.tolist())
                ),
            )
        )
    return groups


def compute_access_structure_batch(
    layout: FragmentationLayout, matrix: ClassMatrix
) -> AccessStructureBatch:
    """Derive every class's prefetch-independent access structure at once.

    The vectorized twin of
    :func:`~repro.costmodel.compute_access_structure`: same model, same
    operation order, one numpy pass over the class axis instead of
    ``num_classes`` scalar calls.  The workload is assumed validated (the
    advisor and the engine validate it once at construction).
    """
    num_classes = matrix.num_classes
    page_size = layout.page_size_bytes
    rows_per_page = layout.rows_per_page
    row_count = layout.fact.row_count

    fragments_accessed, fragment_row_fraction, groups = _axis_groups(layout, matrix)
    groups.extend(_slot_groups(layout, matrix))

    rows_in_accessed = row_count * fragment_row_fraction
    qualifying_rows = row_count * np.asarray(matrix.selectivities, dtype=np.float64)
    qualifying_rows = np.minimum(qualifying_rows, rows_in_accessed)

    non_positive = fragments_accessed <= 0
    if non_positive.any():
        failing = int(np.nonzero(non_positive)[0][0])
        raise CostModelError(
            f"query {matrix.query_names[failing]!r} accesses no fragments on "
            f"{layout.spec.label}"
        )

    rows_per_fragment = rows_in_accessed / fragments_accessed
    with np.errstate(invalid="ignore"):
        fact_pages_per_fragment = np.where(
            rows_per_fragment > 0,
            np.maximum(1.0, np.ceil(rows_per_fragment / rows_per_page)),
            0.0,
        )

    # --- residual filtering: bitmap extents and selectivity, group order ---------
    residual_selectivity = np.ones(num_classes, dtype=np.float64)
    forced_full_scan = np.zeros(num_classes, dtype=bool)
    has_residuals = np.zeros(num_classes, dtype=bool)
    index_class_parts: List[np.ndarray] = []
    index_pages_parts: List[np.ndarray] = []
    index_attributes: List[Tuple[str, str]] = []
    for group in groups:
        columns = group.columns
        has_residuals[columns] = True
        residual_selectivity[columns] *= np.minimum(1.0, group.fractions)
        no_index = ~group.has_bitmap
        forced_full_scan[columns[no_index]] = True
        indexed = np.nonzero(group.has_bitmap)[0]
        if not indexed.size:
            continue
        indexed_columns = columns[indexed]
        pages = np.where(
            rows_per_fragment[indexed_columns] > 0,
            np.maximum(
                1.0,
                np.ceil(
                    group.bits_read[indexed]
                    * rows_per_fragment[indexed_columns]
                    / 8.0
                    / page_size
                ),
            ),
            0.0,
        )
        index_class_parts.append(indexed_columns)
        index_pages_parts.append(pages)
        index_attributes.extend(group.attributes[i] for i in indexed.tolist())

    if index_class_parts:
        # Flat residual-index rows.  Sorting by class (stable) turns the
        # group-major order into class-major order while preserving each
        # class's residual order — the order the scalar path accumulates in.
        index_class = np.concatenate(index_class_parts)
        index_pages = np.concatenate(index_pages_parts)
        order = np.argsort(index_class, kind="stable")
        index_class = index_class[order]
        index_pages = index_pages[order]
        index_attributes = [index_attributes[i] for i in order.tolist()]
    else:
        index_class = np.empty(0, dtype=np.int64)
        index_pages = np.empty(0, dtype=np.float64)

    bitmap_pages_per_fragment = np.zeros(num_classes, dtype=np.float64)
    np.add.at(bitmap_pages_per_fragment, index_class, index_pages)
    bitmap_index_counts = np.bincount(
        index_class, minlength=num_classes
    ).astype(np.int64)

    # --- fact pages a bitmap-driven plan would touch (Cardenas) ------------------
    qualifying_per_fragment = rows_per_fragment * residual_selectivity
    touched_per_fragment = cardenas_pages(
        total_rows=rows_per_fragment,
        total_pages=fact_pages_per_fragment,
        selected_rows=qualifying_per_fragment,
    )
    touched_per_fragment = np.minimum(
        fact_pages_per_fragment, np.maximum(0.0, touched_per_fragment)
    )
    with np.errstate(invalid="ignore"):
        density = np.where(
            fact_pages_per_fragment > 0,
            touched_per_fragment / fact_pages_per_fragment,
            0.0,
        )

    return AccessStructureBatch(
        query_names=matrix.query_names,
        fragments_total=layout.fragment_count,
        fragments_accessed=fragments_accessed,
        rows_in_accessed_fragments=rows_in_accessed,
        qualifying_rows=qualifying_rows,
        rows_per_fragment=rows_per_fragment,
        fact_pages_per_fragment=fact_pages_per_fragment,
        forced_full_scan=forced_full_scan,
        has_residuals=has_residuals,
        bitmap_touched_per_fragment=touched_per_fragment,
        bitmap_density=density,
        index_class=index_class,
        index_pages=index_pages,
        index_attributes=tuple(index_attributes),
        bitmap_pages_per_fragment=bitmap_pages_per_fragment,
        bitmap_index_counts=bitmap_index_counts,
    )


def estimate_access_batch(
    structures: AccessStructureBatch,
    prefetch: PrefetchSetting,
    positioning_page_equivalent: float,
) -> AccessProfileBatch:
    """Apply a prefetch setting to a structure batch, all classes at once.

    The vectorized twin of :func:`~repro.costmodel.estimate_access`: the same
    scan-vs-bitmap access path selection, evaluated as masked vector
    arithmetic over the class axis.
    """
    fragments_accessed = structures.fragments_accessed
    fact_pages_per_fragment = structures.fact_pages_per_fragment

    # --- bitmap request counts under the configured granule ----------------------
    index_requests = np.where(
        structures.index_pages > 0,
        np.ceil(structures.index_pages / prefetch.bitmap_pages),
        0.0,
    )
    bitmap_requests_per_fragment = np.zeros(structures.num_classes, dtype=np.float64)
    np.add.at(bitmap_requests_per_fragment, structures.index_class, index_requests)
    bitmap_pages_per_fragment = structures.bitmap_pages_per_fragment

    # --- plan A: sequential scan of the accessed fragments ------------------------
    scan_requests_per_fragment = np.where(
        fact_pages_per_fragment > 0,
        np.ceil(fact_pages_per_fragment / prefetch.fact_pages),
        0.0,
    )
    scan_cost_per_fragment = (
        scan_requests_per_fragment * positioning_page_equivalent
        + fact_pages_per_fragment
    )

    # --- plan B: bitmap-driven access ---------------------------------------------
    touched_per_fragment = structures.bitmap_touched_per_fragment
    bitmap_sequential = structures.bitmap_density >= SEQUENTIAL_DENSITY_THRESHOLD
    bitmap_fact_requests = np.where(
        bitmap_sequential, scan_requests_per_fragment, touched_per_fragment
    )
    # Sequential bitmap plans read the whole fragment; random ones touch (and
    # transfer) exactly the Cardenas pages — touched == transferred either way.
    bitmap_fact_transferred = np.where(
        bitmap_sequential, fact_pages_per_fragment, touched_per_fragment
    )
    bitmap_plan_cost = (
        bitmap_fact_requests * positioning_page_equivalent
        + bitmap_fact_transferred
        + bitmap_requests_per_fragment * positioning_page_equivalent
        + bitmap_pages_per_fragment
    )
    use_bitmap_plan = structures.bitmap_plan_available & (
        bitmap_plan_cost < scan_cost_per_fragment
    )

    sequential = np.where(use_bitmap_plan, bitmap_sequential, True)
    pages_touched_per_fragment = np.where(
        use_bitmap_plan, bitmap_fact_transferred, fact_pages_per_fragment
    )
    requests_per_fragment = np.where(
        use_bitmap_plan, bitmap_fact_requests, scan_requests_per_fragment
    )
    transferred_per_fragment = np.where(
        use_bitmap_plan, bitmap_fact_transferred, fact_pages_per_fragment
    )
    bitmap_pages = np.where(
        use_bitmap_plan, fragments_accessed * bitmap_pages_per_fragment, 0.0
    )
    bitmap_requests = np.where(
        use_bitmap_plan, fragments_accessed * bitmap_requests_per_fragment, 0.0
    )

    return AccessProfileBatch(
        structures=structures,
        fact_pages_accessed=fragments_accessed * pages_touched_per_fragment,
        bitmap_pages_accessed=bitmap_pages,
        fact_io_requests=fragments_accessed * requests_per_fragment,
        bitmap_io_requests=bitmap_requests,
        fact_pages_transferred=fragments_accessed * transferred_per_fragment,
        sequential_fact_access=sequential,
        use_bitmap_plan=use_bitmap_plan,
    )


def resolve_prefetch_setting_batch(
    structures: AccessStructureBatch,
    matrix: ClassMatrix,
    system: SystemParameters,
) -> PrefetchSetting:
    """Resolve the prefetch granules from a structure batch.

    The vectorized twin of :func:`~repro.costmodel.resolve_prefetch_setting`:
    a unit-granule estimation pass derives each class's typical run lengths,
    then the shared granule selection picks the optimum.
    """
    unit_profiles = estimate_access_batch(
        structures,
        PrefetchSetting.fixed(1, 1),
        _positioning_page_equivalent(system),
    )
    fact_runs = structures.fact_pages_per_fragment
    with np.errstate(divide="ignore", invalid="ignore"):
        bitmap_runs = np.where(
            structures.fragments_accessed > 0,
            unit_profiles.bitmap_pages_accessed / structures.fragments_accessed,
            0.0,
        )
    return prefetch_setting_from_runs(
        tuple(fact_runs.tolist()),
        tuple(bitmap_runs.tolist()),
        matrix.shares,
        system,
    )


def evaluate_workload_batch(
    layout: FragmentationLayout,
    structures: AccessStructureBatch,
    matrix: ClassMatrix,
    system: SystemParameters,
    prefetch: PrefetchSetting,
) -> WorkloadEvaluation:
    """Evaluate one candidate against the whole mix, vectorized.

    The vectorized twin of :meth:`repro.costmodel.IOCostModel.evaluate` (with
    a resolved prefetch setting): access profiles, I/O cost, response time and
    disk counts are computed as class-axis vectors, then materialized into the
    same per-class :class:`~repro.costmodel.QueryCost` records.
    """
    profiles = estimate_access_batch(
        structures, prefetch, _positioning_page_equivalent(system)
    )

    # --- I/O cost (IOCostModel.io_cost_ms, vectorized) ----------------------------
    disk = system.disk
    page_time = disk.page_transfer_time_ms(system.page_size_bytes)
    fact_transfer = np.where(
        profiles.sequential_fact_access,
        np.maximum(
            profiles.fact_io_requests * prefetch.fact_pages,
            profiles.fact_pages_transferred,
        ),
        profiles.fact_pages_transferred,
    )
    bitmap_transfer = np.where(
        profiles.bitmap_io_requests > 0,
        np.maximum(
            profiles.bitmap_io_requests * prefetch.bitmap_pages,
            profiles.bitmap_pages_accessed,
        ),
        profiles.bitmap_pages_accessed,
    )
    total_requests = profiles.fact_io_requests + profiles.bitmap_io_requests
    io_cost = disk.positioning_time_ms * total_requests + page_time * (
        fact_transfer + bitmap_transfer
    )

    # --- disks used and response time (vectorized) --------------------------------
    disks_used = np.minimum(
        float(system.num_disks),
        np.ceil(np.maximum(1.0, profiles.structures.fragments_accessed)),
    ).astype(np.int64)
    disks_f = disks_used.astype(np.float64)
    parallel = disks_used > 1
    imbalance = np.where(
        parallel, 1.0 + layout.fragment_size_cv / np.sqrt(disks_f), 1.0
    )
    response = (
        io_cost / disks_f * imbalance
        + system.effective_coordination_overhead_ms * disks_f
    )

    # Assemble the columnar evaluation: the metric block is exactly the
    # already-computed vectors, so no per-class Python objects are built here
    # — records materialize lazily from :class:`EvaluationColumns` on demand.
    structures = profiles.structures
    metrics = np.empty((structures.num_classes, NUM_METRIC_FIELDS), dtype=np.float64)
    metrics[:, 0] = structures.fragments_accessed
    metrics[:, 1] = structures.rows_in_accessed_fragments
    metrics[:, 2] = structures.qualifying_rows
    metrics[:, 3] = structures.fact_pages_per_fragment
    metrics[:, 4] = profiles.fact_pages_accessed
    metrics[:, 5] = profiles.bitmap_pages_accessed
    metrics[:, 6] = profiles.fact_io_requests
    metrics[:, 7] = profiles.bitmap_io_requests
    metrics[:, 8] = profiles.fact_pages_transferred
    metrics[:, 9] = profiles.bitmap_pages_accessed  # transferred == accessed
    metrics[:, -2] = io_cost
    metrics[:, -1] = response
    attributes_used = [()] * structures.num_classes
    for i in np.nonzero(profiles.use_bitmap_plan)[0].tolist():
        attributes_used[i] = structures.attributes_for(i)
    columns = EvaluationColumns(
        query_names=matrix.query_names,
        weights=matrix.shares,
        fragments_total=structures.fragments_total,
        metrics=metrics,
        disks_used=disks_used,
        sequential=profiles.sequential_fact_access,
        forced=structures.forced_full_scan,
        attributes_used=tuple(attributes_used),
    )
    return WorkloadEvaluation(layout=layout, prefetch=prefetch, columns=columns)


# ---------------------------------------------------------------------------
# Candidate-axis batching: a whole chunk of layouts as (candidate × class)
# ---------------------------------------------------------------------------
#
# The class-axis kernels above still run one Python pass per candidate; for
# small class counts the per-candidate numpy dispatch overhead eats most of
# the vector win.  The kernels below stack every layout of a chunk that shares
# one *axis structure* (the ordered tuple of fragmentation dimensions — see
# :attr:`repro.fragmentation.FragmentationSpec.axis_structure`) and evaluate
# the whole stack as 2-D (candidate × class) arrays.  Within one axis
# structure all per-class control flow (restricted dimensions, coarse/fine
# masks, slot residuals) is expressible as masked vector arithmetic, so every
# operation is the same elementwise IEEE-754 double operation the class-axis
# (and therefore the scalar) path performs — slicing a candidate out of the
# stack is bit-identical to evaluating it alone, which the parity suite
# asserts.


@dataclass(frozen=True)
class _ResidualGroup2D:
    """One residual-restriction source over the (candidate × class) grid.

    ``candidates is None`` marks a slot group (non-fragmentation dimension):
    the restriction applies identically to *every* stacked candidate, and the
    flat per-class data broadcasts over the candidate axis.  Axis groups carry
    explicit flat ``(candidate, class)`` coordinates because the coarse/fine
    split depends on each candidate's fragmentation level.
    """

    #: Flat candidate coordinates (axis groups) or ``None`` (slot groups).
    candidates: Optional[np.ndarray]
    #: Class coordinates (flat for axis groups, unique columns for slots).
    columns: np.ndarray
    fractions: np.ndarray
    has_bitmap: np.ndarray
    bits_read: np.ndarray
    attributes: Tuple[Tuple[str, str], ...]


@dataclass(frozen=True)
class AccessStructureBatch2D:
    """Access structures of all classes on a *stack* of same-axis layouts.

    The candidate-axis twin of :class:`AccessStructureBatch`: every per-class
    vector grows a leading candidate axis, and the flat residual-index rows
    gain a candidate coordinate (sorted candidate-major, then class, then
    per-class residual order).  :meth:`candidate` slices one layout's
    class-axis batch back out — bit-identical to
    :func:`compute_access_structure_batch` on that layout alone.
    """

    query_names: Tuple[str, ...]
    #: (candidates,) int64 — fragments of each stacked layout.
    fragments_total: np.ndarray
    #: (candidates × classes) float64 / bool metric planes.
    fragments_accessed: np.ndarray
    rows_in_accessed_fragments: np.ndarray
    qualifying_rows: np.ndarray
    rows_per_fragment: np.ndarray
    fact_pages_per_fragment: np.ndarray
    forced_full_scan: np.ndarray
    has_residuals: np.ndarray
    bitmap_touched_per_fragment: np.ndarray
    bitmap_density: np.ndarray
    #: Flat residual-index rows (candidate-major, class-sorted, stable).
    index_candidate: np.ndarray
    index_class: np.ndarray
    index_pages: np.ndarray
    index_attributes: Tuple[Tuple[str, str], ...]
    bitmap_pages_per_fragment: np.ndarray
    bitmap_index_counts: np.ndarray

    @property
    def num_candidates(self) -> int:
        """Number of stacked candidates."""
        return len(self.fragments_total)

    @property
    def num_classes(self) -> int:
        """Number of query classes in the batch."""
        return len(self.query_names)

    @cached_property
    def bitmap_plan_available(self) -> np.ndarray:
        """Per (candidate, class): residual filtering can run off bitmaps."""
        return (
            self.has_residuals
            & ~self.forced_full_scan
            & (self.bitmap_index_counts > 0)
        )

    @cached_property
    def _flat_keys(self) -> np.ndarray:
        """Combined (candidate, class) sort keys of the flat index rows."""
        return self.index_candidate * self.num_classes + self.index_class

    def _index_slice(self, candidate: int) -> slice:
        lo, hi = np.searchsorted(self.index_candidate, [candidate, candidate + 1])
        return slice(int(lo), int(hi))

    def attributes_for(self, candidate: int, class_index: int) -> Tuple[Tuple[str, str], ...]:
        """``bitmap_attributes_available`` of one (candidate, class) pair."""
        key = candidate * self.num_classes + class_index
        lo, hi = np.searchsorted(self._flat_keys, [key, key + 1])
        return tuple(self.index_attributes[int(lo):int(hi)])

    def candidate(self, k: int) -> AccessStructureBatch:
        """Slice one stacked layout back into its class-axis batch."""
        rows = self._index_slice(k)
        return AccessStructureBatch(
            query_names=self.query_names,
            fragments_total=int(self.fragments_total[k]),
            fragments_accessed=self.fragments_accessed[k].copy(),
            rows_in_accessed_fragments=self.rows_in_accessed_fragments[k].copy(),
            qualifying_rows=self.qualifying_rows[k].copy(),
            rows_per_fragment=self.rows_per_fragment[k].copy(),
            fact_pages_per_fragment=self.fact_pages_per_fragment[k].copy(),
            forced_full_scan=self.forced_full_scan[k].copy(),
            has_residuals=self.has_residuals[k].copy(),
            bitmap_touched_per_fragment=self.bitmap_touched_per_fragment[k].copy(),
            bitmap_density=self.bitmap_density[k].copy(),
            index_class=self.index_class[rows].copy(),
            index_pages=self.index_pages[rows].copy(),
            index_attributes=self.index_attributes[rows],
            bitmap_pages_per_fragment=self.bitmap_pages_per_fragment[k].copy(),
            bitmap_index_counts=self.bitmap_index_counts[k].copy(),
        )

    @classmethod
    def concat(
        cls, batches: Sequence["AccessStructureBatch2D"]
    ) -> "AccessStructureBatch2D":
        """Concatenate candidate-axis batches along the candidate axis.

        Everything downstream of structure derivation (prefetch resolution,
        the cost model) is elementwise per candidate, so batches of
        *different* axis structures concatenate freely — this is how the
        executor fuses a whole chunk's groups into one kernel pass.  The flat
        index rows stay candidate-major because each input batch's candidate
        numbers are offset by the candidates before it.
        """
        if not batches:
            raise CostModelError("cannot concatenate an empty batch list")
        if len(batches) == 1:
            return batches[0]
        index_candidate_parts = []
        offset = 0
        for batch in batches:
            index_candidate_parts.append(batch.index_candidate + offset)
            offset += batch.num_candidates
        index_attributes: List[Tuple[str, str]] = []
        for batch in batches:
            index_attributes.extend(batch.index_attributes)
        return cls(
            query_names=batches[0].query_names,
            fragments_total=np.concatenate([b.fragments_total for b in batches]),
            fragments_accessed=np.concatenate(
                [b.fragments_accessed for b in batches]
            ),
            rows_in_accessed_fragments=np.concatenate(
                [b.rows_in_accessed_fragments for b in batches]
            ),
            qualifying_rows=np.concatenate([b.qualifying_rows for b in batches]),
            rows_per_fragment=np.concatenate([b.rows_per_fragment for b in batches]),
            fact_pages_per_fragment=np.concatenate(
                [b.fact_pages_per_fragment for b in batches]
            ),
            forced_full_scan=np.concatenate([b.forced_full_scan for b in batches]),
            has_residuals=np.concatenate([b.has_residuals for b in batches]),
            bitmap_touched_per_fragment=np.concatenate(
                [b.bitmap_touched_per_fragment for b in batches]
            ),
            bitmap_density=np.concatenate([b.bitmap_density for b in batches]),
            index_candidate=np.concatenate(index_candidate_parts),
            index_class=np.concatenate([b.index_class for b in batches]),
            index_pages=np.concatenate([b.index_pages for b in batches]),
            index_attributes=tuple(index_attributes),
            bitmap_pages_per_fragment=np.concatenate(
                [b.bitmap_pages_per_fragment for b in batches]
            ),
            bitmap_index_counts=np.concatenate(
                [b.bitmap_index_counts for b in batches]
            ),
        )

    @classmethod
    def stack(cls, batches: Sequence[AccessStructureBatch]) -> "AccessStructureBatch2D":
        """Stack per-layout class-axis batches into one candidate-axis batch.

        The inverse of :meth:`candidate`, used to mix cache-warm structures
        with freshly computed ones before the shared downstream kernels; the
        per-layout flat index rows are already class-sorted, so concatenating
        them candidate-major preserves the sorted flat order the 2-D kernels
        rely on.
        """
        if not batches:
            raise CostModelError("cannot stack an empty structure-batch list")
        index_candidate_parts = []
        index_attributes: List[Tuple[str, str]] = []
        for k, batch in enumerate(batches):
            index_candidate_parts.append(
                np.full(len(batch.index_class), k, dtype=np.int64)
            )
            index_attributes.extend(batch.index_attributes)
        return cls(
            query_names=batches[0].query_names,
            fragments_total=np.array(
                [batch.fragments_total for batch in batches], dtype=np.int64
            ),
            fragments_accessed=np.stack([b.fragments_accessed for b in batches]),
            rows_in_accessed_fragments=np.stack(
                [b.rows_in_accessed_fragments for b in batches]
            ),
            qualifying_rows=np.stack([b.qualifying_rows for b in batches]),
            rows_per_fragment=np.stack([b.rows_per_fragment for b in batches]),
            fact_pages_per_fragment=np.stack(
                [b.fact_pages_per_fragment for b in batches]
            ),
            forced_full_scan=np.stack([b.forced_full_scan for b in batches]),
            has_residuals=np.stack([b.has_residuals for b in batches]),
            bitmap_touched_per_fragment=np.stack(
                [b.bitmap_touched_per_fragment for b in batches]
            ),
            bitmap_density=np.stack([b.bitmap_density for b in batches]),
            index_candidate=(
                np.concatenate(index_candidate_parts)
                if index_candidate_parts
                else np.empty(0, dtype=np.int64)
            ),
            index_class=np.concatenate([b.index_class for b in batches]),
            index_pages=np.concatenate([b.index_pages for b in batches]),
            index_attributes=tuple(index_attributes),
            bitmap_pages_per_fragment=np.stack(
                [b.bitmap_pages_per_fragment for b in batches]
            ),
            bitmap_index_counts=np.stack([b.bitmap_index_counts for b in batches]),
        )


def _require_shared_axis_structure(layouts: Sequence[FragmentationLayout]) -> None:
    if not layouts:
        raise CostModelError("candidate-axis batching needs at least one layout")
    structure = layouts[0].spec.axis_structure
    for layout in layouts[1:]:
        if layout.spec.axis_structure != structure:
            raise CostModelError(
                f"candidate-axis batching requires one axis structure per "
                f"stack: {layout.spec.label} does not match {structure!r}"
            )


def _axis_groups_candidates(
    layouts: Sequence[FragmentationLayout],
    matrix: ClassMatrix,
) -> Tuple[np.ndarray, np.ndarray, List[_ResidualGroup2D]]:
    """Fragment confinement along every axis, for the whole layout stack.

    The candidate-axis twin of :func:`_axis_groups`: per-candidate attribute
    levels become per-candidate columns, the coarse/fine split becomes a 2-D
    mask, and every arithmetic step stays the elementwise operation of the
    class-axis path.
    """
    num_candidates = len(layouts)
    num_classes = matrix.num_classes
    spec0 = layouts[0].spec
    schema = layouts[0].schema
    fragments_accessed = np.ones((num_candidates, num_classes), dtype=np.float64)
    fragment_row_fraction = np.ones((num_candidates, num_classes), dtype=np.float64)
    groups: List[_ResidualGroup2D] = []

    for axis_index in range(spec0.dimensionality):
        dimension_name = spec0.attributes[axis_index].dimension
        # Per-candidate axis cardinalities as an exact float64 column (the
        # integer cardinalities are far below 2**53, so the conversion — and
        # therefore every division against them — matches the scalar path).
        cards = np.array(
            [float(layout.axis_cardinalities[axis_index]) for layout in layouts],
            dtype=np.float64,
        )[:, None]
        if dimension_name not in matrix.dimension_names:
            # No class restricts this dimension (identical for the whole
            # stack, since the axis structure is shared): factor of exactly
            # 1.0 on the row fraction, as in the unrestricted scalar branch.
            fragments_accessed = fragments_accessed * cards
            fragment_row_fraction = fragment_row_fraction * (cards / cards)
            continue

        row = matrix.dimension_row(dimension_name)
        restricted = matrix.restricted[row]
        value_count = matrix.value_counts[row]
        query_cardinality = matrix.level_cardinalities[row]
        depth = matrix.level_depths[row]
        dimension = schema.dimension(dimension_name)
        attribute_depths = np.array(
            [
                dimension.level_index(layout.spec.attributes[axis_index].level)
                for layout in layouts
            ],
            dtype=np.int64,
        )[:, None]

        accessed = np.broadcast_to(cards, (num_candidates, num_classes)).copy()

        # Restriction at or above the fragmentation level: whole fragments.
        coarse = restricted[None, :] & (depth[None, :] <= attribute_depths)
        if coarse.any():
            with np.errstate(divide="ignore", invalid="ignore"):
                fanout = cards / query_cardinality[None, :]
                coarse_accessed = np.minimum(
                    cards, np.maximum(1.0, value_count[None, :] * fanout)
                )
            accessed = np.where(coarse, coarse_accessed, accessed)

        # Restriction below the fragmentation level: residual filtering.
        fine = restricted[None, :] & (depth[None, :] > attribute_depths)
        cand_idx, class_idx = np.nonzero(fine)
        if cand_idx.size:
            cards_flat = cards[:, 0][cand_idx]
            fine_accessed = expected_distinct_ancestors(
                selected_values=value_count[class_idx],
                fine_cardinality=query_cardinality[class_idx],
                coarse_cardinality=cards_flat,
            )
            fine_accessed = np.minimum(cards_flat, np.maximum(1.0, fine_accessed))
            accessed[cand_idx, class_idx] = fine_accessed
            selected_fraction = value_count[class_idx] / query_cardinality[class_idx]
            accessed_fraction = fine_accessed / cards_flat
            residual = np.minimum(1.0, selected_fraction / accessed_fraction)
            level_names = matrix.level_names[row]
            groups.append(
                _ResidualGroup2D(
                    candidates=cand_idx,
                    columns=class_idx,
                    fractions=residual,
                    has_bitmap=matrix.has_bitmap[row][class_idx],
                    bits_read=matrix.bitmap_bits_read[row][class_idx],
                    attributes=tuple(
                        (dimension_name, level_names[column])
                        for column in class_idx.tolist()
                    ),
                )
            )

        fragments_accessed = fragments_accessed * accessed
        fragment_row_fraction = fragment_row_fraction * (accessed / cards)

    return fragments_accessed, fragment_row_fraction, groups


def _slot_groups_candidates(
    spec_dimensions: Tuple[str, ...], matrix: ClassMatrix
) -> List[_ResidualGroup2D]:
    """Residual restrictions on non-fragmentation dimensions, slot by slot.

    Identical for every candidate of the stack (slot membership depends only
    on the shared axis structure), so the groups broadcast over the candidate
    axis (``candidates=None``).
    """
    row_in_spec = np.zeros(matrix.num_dimensions + 1, dtype=bool)
    for dimension in spec_dimensions:
        if dimension in matrix.dimension_names:
            row_in_spec[matrix.dimension_names.index(dimension)] = True
    groups: List[_ResidualGroup2D] = []
    for slot in range(matrix.slot_dimensions.shape[1]):
        dimension_rows = matrix.slot_dimensions[:, slot]
        mask = (dimension_rows >= 0) & ~row_in_spec[dimension_rows]
        columns = np.nonzero(mask)[0]
        if not columns.size:
            continue
        rows = dimension_rows[columns]
        groups.append(
            _ResidualGroup2D(
                candidates=None,
                columns=columns,
                fractions=matrix.restriction_selectivities[rows, columns],
                has_bitmap=matrix.has_bitmap[rows, columns],
                bits_read=matrix.bitmap_bits_read[rows, columns],
                attributes=tuple(
                    (
                        matrix.dimension_names[row],
                        matrix.level_names[row][column],
                    )
                    for row, column in zip(rows.tolist(), columns.tolist())
                ),
            )
        )
    return groups


def compute_access_structure_batch_candidates(
    layouts: Sequence[FragmentationLayout], matrix: ClassMatrix
) -> AccessStructureBatch2D:
    """Derive the access structures of a whole layout stack in one pass.

    The candidate-axis twin of :func:`compute_access_structure_batch`: every
    layout must share one axis structure (ordered fragmentation dimensions);
    all per-class quantities are computed as (candidate × class) planes with
    the identical elementwise operations, so :meth:`AccessStructureBatch2D.candidate`
    slices out batches bit-identical to the per-layout computation.
    """
    _require_shared_axis_structure(layouts)
    num_candidates = len(layouts)
    num_classes = matrix.num_classes
    page_size = layouts[0].page_size_bytes
    rows_per_page = layouts[0].rows_per_page
    row_count = layouts[0].fact.row_count

    fragments_accessed, fragment_row_fraction, groups = _axis_groups_candidates(
        layouts, matrix
    )
    groups.extend(_slot_groups_candidates(layouts[0].spec.dimensions, matrix))

    rows_in_accessed = row_count * fragment_row_fraction
    qualifying_rows = row_count * np.asarray(matrix.selectivities, dtype=np.float64)[None, :]
    qualifying_rows = np.minimum(qualifying_rows, rows_in_accessed)

    non_positive = fragments_accessed <= 0
    if non_positive.any():
        failing_candidate, failing_class = (
            int(coords[0]) for coords in np.nonzero(non_positive)
        )
        raise CostModelError(
            f"query {matrix.query_names[failing_class]!r} accesses no fragments "
            f"on {layouts[failing_candidate].spec.label}"
        )

    rows_per_fragment = rows_in_accessed / fragments_accessed
    with np.errstate(invalid="ignore"):
        fact_pages_per_fragment = np.where(
            rows_per_fragment > 0,
            np.maximum(1.0, np.ceil(rows_per_fragment / rows_per_page)),
            0.0,
        )

    # --- residual filtering: bitmap extents and selectivity, group order ---------
    residual_selectivity = np.ones((num_candidates, num_classes), dtype=np.float64)
    forced_full_scan = np.zeros((num_candidates, num_classes), dtype=bool)
    has_residuals = np.zeros((num_candidates, num_classes), dtype=bool)
    index_cand_parts: List[np.ndarray] = []
    index_class_parts: List[np.ndarray] = []
    index_pages_parts: List[np.ndarray] = []
    index_attributes: List[Tuple[str, str]] = []
    for group in groups:
        if group.candidates is None:
            # Slot group: one per-class row broadcast over every candidate.
            columns = group.columns
            has_residuals[:, columns] = True
            residual_selectivity[:, columns] *= np.minimum(1.0, group.fractions)[
                None, :
            ]
            no_index = ~group.has_bitmap
            forced_full_scan[:, columns[no_index]] = True
            indexed = np.nonzero(group.has_bitmap)[0]
            if not indexed.size:
                continue
            indexed_columns = columns[indexed]
            block = rows_per_fragment[:, indexed_columns]
            pages = np.where(
                block > 0,
                np.maximum(
                    1.0,
                    np.ceil(group.bits_read[indexed][None, :] * block / 8.0 / page_size),
                ),
                0.0,
            )
            index_cand_parts.append(
                np.repeat(np.arange(num_candidates, dtype=np.int64), indexed.size)
            )
            index_class_parts.append(np.tile(indexed_columns, num_candidates))
            index_pages_parts.append(pages.reshape(-1))
            group_attributes = [group.attributes[i] for i in indexed.tolist()]
            index_attributes.extend(group_attributes * num_candidates)
        else:
            # Axis group: explicit flat (candidate, class) coordinates.
            cand, cols = group.candidates, group.columns
            has_residuals[cand, cols] = True
            residual_selectivity[cand, cols] *= np.minimum(1.0, group.fractions)
            no_index = ~group.has_bitmap
            forced_full_scan[cand[no_index], cols[no_index]] = True
            indexed = np.nonzero(group.has_bitmap)[0]
            if not indexed.size:
                continue
            flat_rows = rows_per_fragment[cand[indexed], cols[indexed]]
            pages = np.where(
                flat_rows > 0,
                np.maximum(
                    1.0,
                    np.ceil(group.bits_read[indexed] * flat_rows / 8.0 / page_size),
                ),
                0.0,
            )
            index_cand_parts.append(cand[indexed])
            index_class_parts.append(cols[indexed])
            index_pages_parts.append(pages)
            index_attributes.extend(group.attributes[i] for i in indexed.tolist())

    if index_cand_parts:
        # Sort the flat rows candidate-major, class within, stably — exactly
        # the class-axis sort applied per candidate, so each slice replays the
        # scalar accumulation order.
        index_candidate = np.concatenate(index_cand_parts)
        index_class = np.concatenate(index_class_parts)
        index_pages = np.concatenate(index_pages_parts)
        order = np.argsort(
            index_candidate * num_classes + index_class, kind="stable"
        )
        index_candidate = index_candidate[order]
        index_class = index_class[order]
        index_pages = index_pages[order]
        index_attributes = [index_attributes[i] for i in order.tolist()]
    else:
        index_candidate = np.empty(0, dtype=np.int64)
        index_class = np.empty(0, dtype=np.int64)
        index_pages = np.empty(0, dtype=np.float64)

    bitmap_pages_per_fragment = np.zeros(
        (num_candidates, num_classes), dtype=np.float64
    )
    np.add.at(bitmap_pages_per_fragment, (index_candidate, index_class), index_pages)
    bitmap_index_counts = np.bincount(
        index_candidate * num_classes + index_class,
        minlength=num_candidates * num_classes,
    ).reshape(num_candidates, num_classes).astype(np.int64)

    # --- fact pages a bitmap-driven plan would touch (Cardenas) ------------------
    qualifying_per_fragment = rows_per_fragment * residual_selectivity
    touched_per_fragment = cardenas_pages(
        total_rows=rows_per_fragment,
        total_pages=fact_pages_per_fragment,
        selected_rows=qualifying_per_fragment,
    )
    touched_per_fragment = np.minimum(
        fact_pages_per_fragment, np.maximum(0.0, touched_per_fragment)
    )
    with np.errstate(invalid="ignore"):
        density = np.where(
            fact_pages_per_fragment > 0,
            touched_per_fragment / fact_pages_per_fragment,
            0.0,
        )

    return AccessStructureBatch2D(
        query_names=matrix.query_names,
        fragments_total=np.array(
            [layout.fragment_count for layout in layouts], dtype=np.int64
        ),
        fragments_accessed=fragments_accessed,
        rows_in_accessed_fragments=rows_in_accessed,
        qualifying_rows=qualifying_rows,
        rows_per_fragment=rows_per_fragment,
        fact_pages_per_fragment=fact_pages_per_fragment,
        forced_full_scan=forced_full_scan,
        has_residuals=has_residuals,
        bitmap_touched_per_fragment=touched_per_fragment,
        bitmap_density=density,
        index_candidate=index_candidate,
        index_class=index_class,
        index_pages=index_pages,
        index_attributes=tuple(index_attributes),
        bitmap_pages_per_fragment=bitmap_pages_per_fragment,
        bitmap_index_counts=bitmap_index_counts,
    )


@dataclass(frozen=True)
class AccessProfileBatch2D:
    """Access profiles of a layout stack under per-candidate prefetch settings.

    The candidate-axis twin of :class:`AccessProfileBatch`; every plane is
    (candidate × class).  :meth:`candidate` materializes one layout's
    class-axis profile batch for the parity harness.
    """

    structures: AccessStructureBatch2D
    fact_pages_accessed: np.ndarray
    bitmap_pages_accessed: np.ndarray
    fact_io_requests: np.ndarray
    bitmap_io_requests: np.ndarray
    fact_pages_transferred: np.ndarray
    sequential_fact_access: np.ndarray
    use_bitmap_plan: np.ndarray

    def candidate(self, k: int) -> AccessProfileBatch:
        """Slice one stacked layout back into its class-axis profile batch."""
        return AccessProfileBatch(
            structures=self.structures.candidate(k),
            fact_pages_accessed=self.fact_pages_accessed[k].copy(),
            bitmap_pages_accessed=self.bitmap_pages_accessed[k].copy(),
            fact_io_requests=self.fact_io_requests[k].copy(),
            bitmap_io_requests=self.bitmap_io_requests[k].copy(),
            fact_pages_transferred=self.fact_pages_transferred[k].copy(),
            sequential_fact_access=self.sequential_fact_access[k].copy(),
            use_bitmap_plan=self.use_bitmap_plan[k].copy(),
        )


def estimate_access_batch_candidates(
    structures: AccessStructureBatch2D,
    fact_granules: np.ndarray,
    bitmap_granules: np.ndarray,
    positioning_page_equivalent: float,
) -> AccessProfileBatch2D:
    """Apply per-candidate prefetch granules to a structure stack at once.

    The candidate-axis twin of :func:`estimate_access_batch`: ``fact_granules``
    and ``bitmap_granules`` are (candidates,) float64 vectors holding each
    candidate's (integer-valued) granules — integer-to-double conversion is
    exact, so the per-element divisions match the class-axis path bitwise.
    """
    fragments_accessed = structures.fragments_accessed
    fact_pages_per_fragment = structures.fact_pages_per_fragment
    num_candidates, num_classes = fragments_accessed.shape

    # --- bitmap request counts under the configured granules ---------------------
    granules_flat = bitmap_granules[structures.index_candidate]
    index_requests = np.where(
        structures.index_pages > 0,
        np.ceil(structures.index_pages / granules_flat),
        0.0,
    )
    bitmap_requests_per_fragment = np.zeros(
        (num_candidates, num_classes), dtype=np.float64
    )
    np.add.at(
        bitmap_requests_per_fragment,
        (structures.index_candidate, structures.index_class),
        index_requests,
    )
    bitmap_pages_per_fragment = structures.bitmap_pages_per_fragment

    # --- plan A: sequential scan of the accessed fragments ------------------------
    fact_granule_col = fact_granules[:, None]
    scan_requests_per_fragment = np.where(
        fact_pages_per_fragment > 0,
        np.ceil(fact_pages_per_fragment / fact_granule_col),
        0.0,
    )
    scan_cost_per_fragment = (
        scan_requests_per_fragment * positioning_page_equivalent
        + fact_pages_per_fragment
    )

    # --- plan B: bitmap-driven access ---------------------------------------------
    touched_per_fragment = structures.bitmap_touched_per_fragment
    bitmap_sequential = structures.bitmap_density >= SEQUENTIAL_DENSITY_THRESHOLD
    bitmap_fact_requests = np.where(
        bitmap_sequential, scan_requests_per_fragment, touched_per_fragment
    )
    bitmap_fact_transferred = np.where(
        bitmap_sequential, fact_pages_per_fragment, touched_per_fragment
    )
    bitmap_plan_cost = (
        bitmap_fact_requests * positioning_page_equivalent
        + bitmap_fact_transferred
        + bitmap_requests_per_fragment * positioning_page_equivalent
        + bitmap_pages_per_fragment
    )
    use_bitmap_plan = structures.bitmap_plan_available & (
        bitmap_plan_cost < scan_cost_per_fragment
    )

    sequential = np.where(use_bitmap_plan, bitmap_sequential, True)
    pages_touched_per_fragment = np.where(
        use_bitmap_plan, bitmap_fact_transferred, fact_pages_per_fragment
    )
    requests_per_fragment = np.where(
        use_bitmap_plan, bitmap_fact_requests, scan_requests_per_fragment
    )
    transferred_per_fragment = np.where(
        use_bitmap_plan, bitmap_fact_transferred, fact_pages_per_fragment
    )
    bitmap_pages = np.where(
        use_bitmap_plan, fragments_accessed * bitmap_pages_per_fragment, 0.0
    )
    bitmap_requests = np.where(
        use_bitmap_plan, fragments_accessed * bitmap_requests_per_fragment, 0.0
    )

    return AccessProfileBatch2D(
        structures=structures,
        fact_pages_accessed=fragments_accessed * pages_touched_per_fragment,
        bitmap_pages_accessed=bitmap_pages,
        fact_io_requests=fragments_accessed * requests_per_fragment,
        bitmap_io_requests=bitmap_requests,
        fact_pages_transferred=fragments_accessed * transferred_per_fragment,
        sequential_fact_access=sequential,
        use_bitmap_plan=use_bitmap_plan,
    )


def resolve_prefetch_settings_batch_candidates(
    structures: AccessStructureBatch2D,
    matrix: ClassMatrix,
    system: SystemParameters,
) -> Tuple[PrefetchSetting, ...]:
    """Resolve each stacked candidate's prefetch granules in one vector pass.

    The unit-granule estimation runs once over the whole stack; the (cheap)
    granule selection then runs per candidate on exactly the run-length floats
    the class-axis path derives, so the returned settings are identical to
    per-layout :func:`resolve_prefetch_setting_batch` calls.
    """
    num_candidates = structures.num_candidates
    unit = np.ones(num_candidates, dtype=np.float64)
    unit_profiles = estimate_access_batch_candidates(
        structures, unit, unit, _positioning_page_equivalent(system)
    )
    fact_runs = structures.fact_pages_per_fragment
    with np.errstate(divide="ignore", invalid="ignore"):
        bitmap_runs = np.where(
            structures.fragments_accessed > 0,
            unit_profiles.bitmap_pages_accessed / structures.fragments_accessed,
            0.0,
        )
    # Granule selection, batched over the candidate axis.  Fixed granules
    # pass through; "auto" granules are optimized for the whole stack with
    # one (candidate × class × granule) cost tensor — bit-identical to the
    # per-candidate scalar selection (see optimal_prefetch_pages_batch).
    from repro.storage.prefetch import PrefetchPolicy, optimal_prefetch_pages_batch

    if system.fact_prefetch_is_auto:
        fact_pages = optimal_prefetch_pages_batch(
            fact_runs, system.disk, system.page_size_bytes, matrix.shares
        )
        fact_policy = PrefetchPolicy.AUTO
    else:
        fact_pages = [int(system.prefetch_pages_fact)] * num_candidates
        fact_policy = PrefetchPolicy.FIXED
    if system.bitmap_prefetch_is_auto:
        bitmap_pages = optimal_prefetch_pages_batch(
            bitmap_runs, system.disk, system.page_size_bytes
        )
        bitmap_policy = PrefetchPolicy.AUTO
    else:
        bitmap_pages = [int(system.prefetch_pages_bitmap)] * num_candidates
        bitmap_policy = PrefetchPolicy.FIXED
    return tuple(
        PrefetchSetting(
            fact_pages=fact_pages[k],
            bitmap_pages=bitmap_pages[k],
            fact_policy=fact_policy,
            bitmap_policy=bitmap_policy,
        )
        for k in range(num_candidates)
    )


def evaluate_workload_batch_candidates(
    layouts: Sequence[FragmentationLayout],
    structures: AccessStructureBatch2D,
    matrix: ClassMatrix,
    system: SystemParameters,
    prefetches: Sequence[PrefetchSetting],
) -> List[WorkloadEvaluation]:
    """Evaluate a whole layout stack against the mix, candidate-axis batched.

    The candidate-axis twin of :func:`evaluate_workload_batch`: access
    profiles, I/O cost, response time and disk counts are computed as
    (candidate × class) planes, then each candidate's columnar
    :class:`~repro.costmodel.EvaluationColumns` is sliced out of the shared
    metric cube — bit-identical to evaluating the layouts one by one.
    """
    num_candidates = structures.num_candidates
    num_classes = structures.num_classes
    fact_granules = np.array(
        [setting.fact_pages for setting in prefetches], dtype=np.float64
    )
    bitmap_granules = np.array(
        [setting.bitmap_pages for setting in prefetches], dtype=np.float64
    )
    profiles = estimate_access_batch_candidates(
        structures, fact_granules, bitmap_granules,
        _positioning_page_equivalent(system),
    )

    # --- I/O cost (IOCostModel.io_cost_ms, candidate-axis) ------------------------
    disk = system.disk
    page_time = disk.page_transfer_time_ms(system.page_size_bytes)
    fact_transfer = np.where(
        profiles.sequential_fact_access,
        np.maximum(
            profiles.fact_io_requests * fact_granules[:, None],
            profiles.fact_pages_transferred,
        ),
        profiles.fact_pages_transferred,
    )
    bitmap_transfer = np.where(
        profiles.bitmap_io_requests > 0,
        np.maximum(
            profiles.bitmap_io_requests * bitmap_granules[:, None],
            profiles.bitmap_pages_accessed,
        ),
        profiles.bitmap_pages_accessed,
    )
    total_requests = profiles.fact_io_requests + profiles.bitmap_io_requests
    io_cost = disk.positioning_time_ms * total_requests + page_time * (
        fact_transfer + bitmap_transfer
    )

    # --- disks used and response time (candidate-axis) ----------------------------
    disks_used = np.minimum(
        float(system.num_disks),
        np.ceil(np.maximum(1.0, structures.fragments_accessed)),
    ).astype(np.int64)
    disks_f = disks_used.astype(np.float64)
    parallel = disks_used > 1
    size_cvs = np.array(
        [layout.fragment_size_cv for layout in layouts], dtype=np.float64
    )[:, None]
    imbalance = np.where(parallel, 1.0 + size_cvs / np.sqrt(disks_f), 1.0)
    response = (
        io_cost / disks_f * imbalance
        + system.effective_coordination_overhead_ms * disks_f
    )

    # --- slice the shared metric cube into per-candidate columnar evaluations ----
    cube = np.empty((num_candidates, num_classes, NUM_METRIC_FIELDS), dtype=np.float64)
    cube[..., 0] = structures.fragments_accessed
    cube[..., 1] = structures.rows_in_accessed_fragments
    cube[..., 2] = structures.qualifying_rows
    cube[..., 3] = structures.fact_pages_per_fragment
    cube[..., 4] = profiles.fact_pages_accessed
    cube[..., 5] = profiles.bitmap_pages_accessed
    cube[..., 6] = profiles.fact_io_requests
    cube[..., 7] = profiles.bitmap_io_requests
    cube[..., 8] = profiles.fact_pages_transferred
    cube[..., 9] = profiles.bitmap_pages_accessed  # transferred == accessed
    cube[..., -2] = io_cost
    cube[..., -1] = response

    evaluations: List[WorkloadEvaluation] = []
    for k in range(num_candidates):
        attributes_used = [()] * num_classes
        for c in np.nonzero(profiles.use_bitmap_plan[k])[0].tolist():
            attributes_used[c] = structures.attributes_for(k, c)
        columns = EvaluationColumns(
            query_names=matrix.query_names,
            weights=matrix.shares,
            fragments_total=int(structures.fragments_total[k]),
            metrics=cube[k].copy(),
            disks_used=disks_used[k].copy(),
            sequential=profiles.sequential_fact_access[k].copy(),
            forced=structures.forced_full_scan[k].copy(),
            attributes_used=tuple(attributes_used),
        )
        evaluations.append(
            WorkloadEvaluation(
                layout=layouts[k], prefetch=prefetches[k], columns=columns
            )
        )
    return evaluations
