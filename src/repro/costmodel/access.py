"""Per-query access estimation.

Given a fragmentation layout, a bitmap scheme and a query class, this module
derives the *access profile* of the query: how many fragments it touches, how
many fact-table and bitmap pages it reads, how many rows qualify, and how many
disk requests the reads translate into under the configured prefetch granules.

The estimation follows the MDHF access semantics of the paper (and [5]):

* A restriction on a *fragmentation dimension* at a level **coarser than or
  equal to** the fragmentation attribute selects whole fragments — the query
  only touches the fragments whose attribute value descends from the selected
  values, and no further filtering is needed along that dimension.
* A restriction on a fragmentation dimension at a **finer** level touches the
  fragments owning the selected values' ancestors, and the residual filtering
  within those fragments is done via a bitmap index (if available) or a scan.
* A restriction on a **non-fragmentation** dimension never reduces the set of
  fragments; it is evaluated inside every accessed fragment via bitmap or scan.

The estimation is split into two phases so the evaluation engine can memoize
the expensive part:

1. :func:`compute_access_structure` derives the **prefetch-independent**
   access structure — fragments touched, pages per fragment, bitmap extents,
   residual selectivity, the Cardenas page estimate.  It depends only on
   (layout, query, bitmap scheme) and is therefore cacheable across the many
   prefetch settings and system variants a tuning session explores.
2. :func:`estimate_access` applies a concrete prefetch setting and positioning
   ratio to the structure: request counts, transfer volumes and the
   scan-vs-bitmap access path selection (cheap arithmetic).

Skew note: accessed-row expectations assume query constants drawn uniformly
from the attribute's value domain, so the *expected* volume matches the uniform
case; the variance skew introduces is exposed by the event-driven simulator
(:mod:`repro.simulation`), not by this analytical expectation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.bitmap import BitmapScheme
from repro.errors import CostModelError
from repro.fragmentation import FragmentationLayout
from repro.storage import PrefetchSetting
from repro.workload import QueryClass
from repro.costmodel.formulas import cardenas_pages, expected_distinct_ancestors

__all__ = [
    "AccessStructure",
    "QueryAccessProfile",
    "compute_access_structure",
    "estimate_access",
]

#: When a query touches at least this fraction of a fragment's pages the model
#: assumes the fragment is read sequentially (prefetched scan) instead of page
#: by page at random.
SEQUENTIAL_DENSITY_THRESHOLD = 0.5

#: Default cost of one disk positioning expressed in page-transfer units, used
#: by the scan-vs-bitmap access path choice when the caller does not supply the
#: true ratio (9 ms positioning / ~0.32 ms per 8 KB page at 25 MB/s ≈ 28).
DEFAULT_POSITIONING_PAGE_EQUIVALENT = 28.0


@dataclass(frozen=True)
class QueryAccessProfile:
    """Predicted physical access behaviour of one query class on one layout."""

    query_name: str
    #: Expected number of fragments the query touches.
    fragments_accessed: float
    #: Total number of fragments of the layout.
    fragments_total: int
    #: Expected rows stored in the accessed fragments.
    rows_in_accessed_fragments: float
    #: Expected rows that actually qualify for the query.
    qualifying_rows: float
    #: Expected fact-table pages per accessed fragment.
    fact_pages_per_fragment: float
    #: Expected fact-table pages read by the query (touched pages).
    fact_pages_accessed: float
    #: Expected bitmap pages read by the query.
    bitmap_pages_accessed: float
    #: Expected number of fact-table disk requests (prefetch-aware).
    fact_io_requests: float
    #: Expected number of bitmap disk requests (prefetch-aware).
    bitmap_io_requests: float
    #: Pages physically transferred for fact-table access (includes prefetch over-read).
    fact_pages_transferred: float
    #: Pages physically transferred for bitmap access.
    bitmap_pages_transferred: float
    #: True when the accessed fragments are scanned sequentially.
    sequential_fact_access: bool
    #: True when at least one residual restriction had no bitmap index and forced a scan.
    forced_full_scan: bool
    #: (dimension, level) attributes whose bitmaps were used for residual filtering.
    bitmap_attributes_used: Tuple[Tuple[str, str], ...] = field(default=())

    @property
    def total_pages_accessed(self) -> float:
        """Fact plus bitmap pages read."""
        return self.fact_pages_accessed + self.bitmap_pages_accessed

    @property
    def total_io_requests(self) -> float:
        """Fact plus bitmap disk requests."""
        return self.fact_io_requests + self.bitmap_io_requests

    @property
    def total_pages_transferred(self) -> float:
        """Fact plus bitmap pages physically transferred."""
        return self.fact_pages_transferred + self.bitmap_pages_transferred

    @property
    def fragment_hit_ratio(self) -> float:
        """Fraction of all fragments the query touches (1.0 = no confinement)."""
        if self.fragments_total == 0:
            return 0.0
        return self.fragments_accessed / self.fragments_total


@dataclass(frozen=True)
class AccessStructure:
    """Prefetch-independent access behaviour of one query class on one layout.

    Everything here depends only on (layout, query, bitmap scheme): which
    fragments are touched, how large they are, which bitmap extents residual
    filtering would read and how many fact pages a bitmap-driven plan would
    touch.  Request counts, transfer volumes and the plan selection depend on
    the prefetch granules and are applied by :func:`estimate_access`.
    """

    query_name: str
    fragments_accessed: float
    fragments_total: int
    rows_in_accessed_fragments: float
    qualifying_rows: float
    rows_per_fragment: float
    fact_pages_per_fragment: float
    #: Bitmap pages per fragment, one entry per usable residual index.
    bitmap_pages_per_index: Tuple[float, ...]
    #: (dimension, level) of the usable residual bitmap indexes.
    bitmap_attributes_available: Tuple[Tuple[str, str], ...]
    forced_full_scan: bool
    #: Whether any residual restriction exists (precondition for a bitmap plan).
    has_residuals: bool
    #: Expected fact pages per fragment a bitmap-driven plan touches (Cardenas).
    bitmap_touched_per_fragment: float
    #: ``bitmap_touched_per_fragment / fact_pages_per_fragment``.
    bitmap_density: float

    @property
    def bitmap_pages_per_fragment(self) -> float:
        """Total bitmap pages read per fragment over all usable indexes."""
        return sum(self.bitmap_pages_per_index)

    @property
    def bitmap_plan_available(self) -> bool:
        """True when residual filtering can run entirely off bitmap indexes."""
        return (
            self.has_residuals
            and not self.forced_full_scan
            and bool(self.bitmap_attributes_available)
        )


def _axis_access(
    layout: FragmentationLayout,
    query: QueryClass,
    axis_index: int,
) -> Tuple[float, Optional[Tuple[str, str, int, float]]]:
    """Access behaviour along one fragmentation axis.

    Returns
    -------
    (accessed_values, residual_attribute)
        ``accessed_values``: expected fragment values touched along the axis.
        ``residual_attribute``: ``(dimension, level, value_count,
        residual_fraction)`` when residual filtering inside the touched
        fragments is required, else ``None``.  ``residual_fraction`` is the
        fraction of rows *inside the touched fragments* that still qualify
        w.r.t. this dimension (the fragmentation already confined the rest).
    """
    attribute = layout.spec.attributes[axis_index]
    dimension = layout.schema.dimension(attribute.dimension)
    frag_cardinality = layout.axis_cardinalities[axis_index]
    restriction = query.restriction_on(attribute.dimension)
    if restriction is None:
        return float(frag_cardinality), None

    query_cardinality = dimension.level(restriction.level).cardinality
    value_count = restriction.value_count

    if dimension.is_coarser_or_equal(restriction.level, attribute.level):
        # Restriction at or above the fragmentation level: whole fragments.
        fanout = frag_cardinality / query_cardinality
        accessed = min(float(frag_cardinality), max(1.0, value_count * fanout))
        return accessed, None

    # Restriction below the fragmentation level: the selected fine values map to
    # (at most value_count) fragment values; residual filtering keeps only the
    # matching rows inside those fragments.
    accessed = expected_distinct_ancestors(
        selected_values=value_count,
        fine_cardinality=query_cardinality,
        coarse_cardinality=frag_cardinality,
    )
    accessed = min(float(frag_cardinality), max(1.0, accessed))
    selected_fraction = value_count / query_cardinality
    accessed_fraction = accessed / frag_cardinality
    residual = min(1.0, selected_fraction / accessed_fraction)
    return accessed, (restriction.dimension, restriction.level, value_count, residual)


def compute_access_structure(
    layout: FragmentationLayout,
    query: QueryClass,
    bitmap_scheme: BitmapScheme,
    validate: bool = True,
) -> AccessStructure:
    """Derive the prefetch-independent access structure of ``query`` on ``layout``.

    Parameters
    ----------
    layout, query, bitmap_scheme:
        Materialized fragmentation, query class and available bitmap indexes.
    validate:
        Re-validate the query against the schema.  Callers that already
        validated the whole workload (the advisor does, once, at construction)
        pass ``False`` to skip the redundant per-call validation.
    """
    schema = layout.schema
    if validate:
        query.validate(schema)

    page_size = layout.page_size_bytes
    rows_per_page = layout.rows_per_page

    # --- which fragments are touched -----------------------------------------
    fragments_accessed = 1.0
    fragment_row_fraction = 1.0  # fraction of all rows stored in touched fragments
    # Residual restrictions evaluated inside the touched fragments, as
    # (dimension, level, value_count, residual_fraction) tuples.
    residual_attributes = []
    for axis_index in range(layout.spec.dimensionality):
        accessed, residual_attr = _axis_access(layout, query, axis_index)
        cardinality = layout.axis_cardinalities[axis_index]
        fragments_accessed *= accessed
        fragment_row_fraction *= accessed / cardinality
        if residual_attr is not None:
            residual_attributes.append(residual_attr)

    # Restrictions on non-fragmentation dimensions are always residual; the
    # fragmentation provides no confinement, so their residual fraction is the
    # plain selectivity of the restriction.
    for restriction in query.restrictions:
        if not layout.spec.uses_dimension(restriction.dimension):
            residual_attributes.append(
                (
                    restriction.dimension,
                    restriction.level,
                    restriction.value_count,
                    restriction.selectivity(schema),
                )
            )

    rows_in_accessed = layout.fact.row_count * fragment_row_fraction
    qualifying_rows = layout.fact.row_count * query.selectivity(schema)
    # Numerical guard: qualifying rows can never exceed the rows available in
    # the accessed fragments.
    qualifying_rows = min(qualifying_rows, rows_in_accessed)

    if fragments_accessed <= 0:
        raise CostModelError(
            f"query {query.name!r} accesses no fragments on {layout.spec.label}"
        )

    rows_per_fragment = rows_in_accessed / fragments_accessed
    fact_pages_per_fragment = max(
        1.0, math.ceil(rows_per_fragment / rows_per_page)
    ) if rows_per_fragment > 0 else 0.0

    # --- residual filtering: bitmap extents and selectivity --------------------------
    bitmap_pages_per_index = []
    bitmap_attributes_available = []
    forced_full_scan = False
    residual_selectivity = 1.0
    for dimension_name, level_name, value_count, residual_fraction in residual_attributes:
        residual_selectivity *= min(1.0, residual_fraction)
        index = bitmap_scheme.index_for(dimension_name, level_name)
        if index is None:
            forced_full_scan = True
            continue
        bitmap_attributes_available.append((dimension_name, level_name))
        per_fragment_pages = max(
            1.0,
            math.ceil(
                index.read_bytes(rows_per_fragment, value_count) / page_size
            ),
        ) if rows_per_fragment > 0 else 0.0
        bitmap_pages_per_index.append(per_fragment_pages)

    # --- fact pages a bitmap-driven plan would touch (Cardenas) ----------------------
    qualifying_per_fragment = rows_per_fragment * residual_selectivity
    touched_per_fragment = cardenas_pages(
        total_rows=rows_per_fragment,
        total_pages=fact_pages_per_fragment,
        selected_rows=qualifying_per_fragment,
    )
    touched_per_fragment = min(
        fact_pages_per_fragment, max(0.0, touched_per_fragment)
    )
    density = (
        touched_per_fragment / fact_pages_per_fragment
        if fact_pages_per_fragment > 0
        else 0.0
    )

    return AccessStructure(
        query_name=query.name,
        fragments_accessed=fragments_accessed,
        fragments_total=layout.fragment_count,
        rows_in_accessed_fragments=rows_in_accessed,
        qualifying_rows=qualifying_rows,
        rows_per_fragment=rows_per_fragment,
        fact_pages_per_fragment=float(fact_pages_per_fragment),
        bitmap_pages_per_index=tuple(bitmap_pages_per_index),
        bitmap_attributes_available=tuple(bitmap_attributes_available),
        forced_full_scan=forced_full_scan,
        has_residuals=bool(residual_attributes),
        bitmap_touched_per_fragment=touched_per_fragment,
        bitmap_density=density,
    )


def estimate_access(
    layout: FragmentationLayout,
    query: QueryClass,
    bitmap_scheme: BitmapScheme,
    prefetch: PrefetchSetting,
    positioning_page_equivalent: float = DEFAULT_POSITIONING_PAGE_EQUIVALENT,
    structure: Optional[AccessStructure] = None,
    validate: bool = True,
) -> QueryAccessProfile:
    """Estimate the access profile of ``query`` on ``layout``.

    Residual restrictions can be evaluated either by reading the relevant
    bitmap join indexes and then fetching only the qualifying fact pages, or by
    simply scanning the accessed fragments; the estimator performs this access
    path selection and keeps the cheaper plan, mirroring what a query optimizer
    would do (bitmaps exist to *avoid costly* scans, not to replace cheap ones).

    Parameters
    ----------
    layout:
        Materialized fragmentation.
    query:
        The query class to estimate.
    bitmap_scheme:
        Bitmap indexes available for residual filtering.
    prefetch:
        Prefetch granules (pages) for fact-table and bitmap reads.
    positioning_page_equivalent:
        Cost of one disk positioning expressed in page-transfer units; used by
        the scan-vs-bitmap plan choice.  The cost model passes the true ratio
        derived from the disk parameters; the default corresponds to a typical
        9 ms positioning over a 0.3 ms 8 KB-page transfer.
    structure:
        Pre-computed (possibly cached) prefetch-independent access structure.
        Derived on the fly when omitted.
    validate:
        Forwarded to :func:`compute_access_structure` when ``structure`` is
        omitted.
    """
    if structure is None:
        structure = compute_access_structure(
            layout, query, bitmap_scheme, validate=validate
        )

    fragments_accessed = structure.fragments_accessed
    fact_pages_per_fragment = structure.fact_pages_per_fragment
    forced_full_scan = structure.forced_full_scan

    # --- bitmap request counts under the configured granule ----------------------
    bitmap_pages_per_fragment = 0.0
    bitmap_requests_per_fragment = 0.0
    for per_fragment_pages in structure.bitmap_pages_per_index:
        per_fragment_requests = (
            math.ceil(per_fragment_pages / prefetch.bitmap_pages)
            if per_fragment_pages > 0
            else 0.0
        )
        bitmap_pages_per_fragment += per_fragment_pages
        bitmap_requests_per_fragment += per_fragment_requests

    # --- plan A: sequential scan of the accessed fragments ---------------------------
    scan_requests_per_fragment = (
        math.ceil(fact_pages_per_fragment / prefetch.fact_pages)
        if fact_pages_per_fragment > 0
        else 0.0
    )
    scan_cost_per_fragment = (
        scan_requests_per_fragment * positioning_page_equivalent
        + fact_pages_per_fragment
    )

    # --- plan B: bitmap-driven access (only if every residual predicate is indexed) --
    use_bitmap_plan = False
    if structure.bitmap_plan_available:
        touched_per_fragment = structure.bitmap_touched_per_fragment
        bitmap_sequential = structure.bitmap_density >= SEQUENTIAL_DENSITY_THRESHOLD
        if bitmap_sequential:
            bitmap_fact_requests = scan_requests_per_fragment
            bitmap_fact_transferred = fact_pages_per_fragment
            bitmap_fact_touched = fact_pages_per_fragment
        else:
            # Random access: one request per touched page, no useful prefetching.
            bitmap_fact_requests = touched_per_fragment
            bitmap_fact_transferred = touched_per_fragment
            bitmap_fact_touched = touched_per_fragment
        bitmap_plan_cost = (
            bitmap_fact_requests * positioning_page_equivalent
            + bitmap_fact_transferred
            + bitmap_requests_per_fragment * positioning_page_equivalent
            + bitmap_pages_per_fragment
        )
        use_bitmap_plan = bitmap_plan_cost < scan_cost_per_fragment

    if use_bitmap_plan:
        sequential = bitmap_sequential
        pages_touched_per_fragment = bitmap_fact_touched
        requests_per_fragment = bitmap_fact_requests
        transferred_per_fragment = bitmap_fact_transferred
        bitmap_pages = fragments_accessed * bitmap_pages_per_fragment
        bitmap_requests = fragments_accessed * bitmap_requests_per_fragment
        bitmap_attributes_used = tuple(structure.bitmap_attributes_available)
    else:
        # Scan plan: fragmentation confinement plus a sequential read of every
        # accessed fragment; no bitmap I/O is spent.
        sequential = True
        pages_touched_per_fragment = fact_pages_per_fragment
        requests_per_fragment = scan_requests_per_fragment
        transferred_per_fragment = fact_pages_per_fragment
        bitmap_pages = 0.0
        bitmap_requests = 0.0
        bitmap_attributes_used = ()

    fact_pages_accessed = fragments_accessed * pages_touched_per_fragment
    fact_io_requests = fragments_accessed * requests_per_fragment
    fact_pages_transferred = fragments_accessed * transferred_per_fragment

    return QueryAccessProfile(
        query_name=structure.query_name,
        fragments_accessed=fragments_accessed,
        fragments_total=structure.fragments_total,
        rows_in_accessed_fragments=structure.rows_in_accessed_fragments,
        qualifying_rows=structure.qualifying_rows,
        fact_pages_per_fragment=float(fact_pages_per_fragment),
        fact_pages_accessed=fact_pages_accessed,
        bitmap_pages_accessed=bitmap_pages,
        fact_io_requests=fact_io_requests,
        bitmap_io_requests=bitmap_requests,
        fact_pages_transferred=fact_pages_transferred,
        bitmap_pages_transferred=bitmap_pages,
        sequential_fact_access=sequential,
        forced_full_scan=forced_full_scan,
        bitmap_attributes_used=tuple(bitmap_attributes_used),
    )
