"""The analytical I/O cost and response-time model.

The model turns an access profile (pages / requests) into the two metrics the
advisor ranks by:

* **I/O cost** (``io_cost_ms``) — the total disk busy time the query induces:
  every request pays the positioning overhead, every transferred page pays the
  transfer time.  This is the throughput-oriented metric (total I/O work is
  what limits multi-user throughput).

* **I/O response time** (``response_time_ms``) — the elapsed time of the query
  when its I/O is spread over the disks holding the accessed fragments and
  executed in parallel, plus a small per-subquery coordination overhead.  This
  is the single-query-latency metric.

Declustering a query's hits over many fragments/disks enables parallelism and
lowers the response time but increases total I/O (more positioning overhead,
more pages touched); clustering does the opposite.  The model reproduces this
fundamental trade-off, which is the core of the paper's prediction layer.

Cache protocol: the model optionally consults an *evaluation cache* (see
:class:`repro.engine.EvaluationCache`).  The cache is duck-typed — any object
with an ``access_structure(layout, query, bitmap_scheme, compute)`` method
works — so the cost model stays import-free of the engine subsystem.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import cached_property
from typing import Dict, Optional, Tuple

import numpy as np

from repro.bitmap import BitmapScheme
from repro.errors import CostModelError
from repro.fragmentation import FragmentationLayout
from repro.storage import (
    PrefetchPolicy,
    PrefetchSetting,
    SystemParameters,
    optimal_prefetch_pages,
)
from repro.workload import QueryClass, QueryMix
from repro.costmodel.access import (
    AccessStructure,
    QueryAccessProfile,
    compute_access_structure,
    estimate_access,
)

__all__ = [
    "PROFILE_FLOAT_FIELDS",
    "EvaluationColumns",
    "QueryCost",
    "WorkloadEvaluation",
    "IOCostModel",
    "prefetch_setting_from_runs",
    "resolve_prefetch_setting",
]

#: Float columns of the evaluation metric block, in
#: :class:`~repro.costmodel.QueryAccessProfile` field order; the last two
#: metric slots hold the per-class I/O cost and response time of the
#: :class:`QueryCost` record.  This layout is shared by the columnar
#: evaluations, the worker→parent result batches and the persistent store.
PROFILE_FLOAT_FIELDS = (
    "fragments_accessed",
    "rows_in_accessed_fragments",
    "qualifying_rows",
    "fact_pages_per_fragment",
    "fact_pages_accessed",
    "bitmap_pages_accessed",
    "fact_io_requests",
    "bitmap_io_requests",
    "fact_pages_transferred",
    "bitmap_pages_transferred",
)

#: Total metric slots per class: the profile floats plus io cost and response.
NUM_METRIC_FIELDS = len(PROFILE_FLOAT_FIELDS) + 2


def _materialize(cls, state: dict):
    """Construct a frozen dataclass instance directly from its field dict.

    The columnar evaluations materialize per-class frozen profile/cost records
    lazily; the generated ``__init__`` of a frozen dataclass pays one
    ``object.__setattr__`` per field, which dominates the materialization.
    Neither :class:`QueryAccessProfile` nor :class:`QueryCost` has a
    ``__post_init__``, so seeding the instance ``__dict__`` is equivalent —
    equality, repr and pickling all read the same storage.
    """
    instance = object.__new__(cls)
    instance.__dict__.update(state)
    return instance


@dataclass(frozen=True)
class QueryCost:
    """Cost metrics of one query class on one fragmentation candidate."""

    query_name: str
    weight: float
    profile: QueryAccessProfile
    io_cost_ms: float
    response_time_ms: float
    disks_used: int

    @property
    def weighted_io_cost_ms(self) -> float:
        """I/O cost weighted by the class's workload share."""
        return self.weight * self.io_cost_ms

    @property
    def weighted_response_time_ms(self) -> float:
        """Response time weighted by the class's workload share."""
        return self.weight * self.response_time_ms


@dataclass(frozen=True)
class EvaluationColumns:
    """Columnar per-class state of one candidate evaluation.

    One float64 metric block (classes × :data:`NUM_METRIC_FIELDS`, in
    :data:`PROFILE_FLOAT_FIELDS` order plus I/O cost and response time) plus
    the small per-class discrete columns.  :meth:`records` materializes the
    scalar :class:`QueryCost` records — bit-identical to the eager per-class
    construction, because every value travels as the same IEEE-754 double it
    was computed as.  Keeping evaluations columnar removes the last
    O(classes) Python objects per candidate from the sweep's hot loop and
    shrinks the candidate cache's footprint (the columns are what gets
    pickled and persisted, not the record graph).
    """

    #: Query class names, in mix order.
    query_names: Tuple[str, ...]
    #: Workload share per class.
    weights: Tuple[float, ...]
    #: Total fragments of the candidate's layout.
    fragments_total: int
    #: (classes × NUM_METRIC_FIELDS) float64 metric block.
    metrics: np.ndarray
    #: (classes,) int64.
    disks_used: np.ndarray
    #: (classes,) bool flags.
    sequential: np.ndarray
    forced: np.ndarray
    #: Per class: bitmap attributes used by the chosen plan.
    attributes_used: Tuple[Tuple[Tuple[str, str], ...], ...]

    @property
    def num_classes(self) -> int:
        """Number of query classes."""
        return len(self.query_names)

    def records(self) -> Tuple[QueryCost, ...]:
        """Materialize the per-class :class:`QueryCost` records (mix order)."""
        rows = self.metrics.tolist()
        sequential = self.sequential.tolist()
        forced = self.forced.tolist()
        disks = self.disks_used.tolist()
        fragments_total = self.fragments_total
        per_class = []
        for i, query_name in enumerate(self.query_names):
            row = rows[i]
            state = {
                "query_name": query_name,
                "fragments_total": fragments_total,
                "sequential_fact_access": sequential[i],
                "forced_full_scan": forced[i],
                "bitmap_attributes_used": self.attributes_used[i],
            }
            for f, field in enumerate(PROFILE_FLOAT_FIELDS):
                state[field] = row[f]
            profile = _materialize(QueryAccessProfile, state)
            per_class.append(
                _materialize(
                    QueryCost,
                    {
                        "query_name": query_name,
                        "weight": self.weights[i],
                        "profile": profile,
                        "io_cost_ms": row[-2],
                        "response_time_ms": row[-1],
                        "disks_used": disks[i],
                    },
                )
            )
        return tuple(per_class)

    @classmethod
    def from_records(cls, per_class, fragments_total: int) -> "EvaluationColumns":
        """Columnarize eager per-class records (the scalar path's output)."""
        num_classes = len(per_class)
        metrics = np.empty((num_classes, NUM_METRIC_FIELDS), dtype=np.float64)
        disks_used = np.empty(num_classes, dtype=np.int64)
        sequential = np.empty(num_classes, dtype=bool)
        forced = np.empty(num_classes, dtype=bool)
        attributes_used = []
        for c, cost in enumerate(per_class):
            profile = cost.profile
            for f, field in enumerate(PROFILE_FLOAT_FIELDS):
                metrics[c, f] = getattr(profile, field)
            metrics[c, -2] = cost.io_cost_ms
            metrics[c, -1] = cost.response_time_ms
            disks_used[c] = cost.disks_used
            sequential[c] = profile.sequential_fact_access
            forced[c] = profile.forced_full_scan
            attributes_used.append(profile.bitmap_attributes_used)
        return cls(
            query_names=tuple(cost.query_name for cost in per_class),
            weights=tuple(cost.weight for cost in per_class),
            fragments_total=fragments_total,
            metrics=metrics,
            disks_used=disks_used,
            sequential=sequential,
            forced=forced,
            attributes_used=tuple(attributes_used),
        )


class WorkloadEvaluation:
    """Aggregated evaluation of a fragmentation candidate over the whole mix.

    Backed either by eager per-class :class:`QueryCost` records (the scalar
    reference path) or by one columnar :class:`EvaluationColumns` block (the
    vectorized paths); ``per_class`` is a lazy view in the columnar case, so
    the sweep's hot loop never materializes the record graph.  The two
    headline totals are cached: the ranking probes them repeatedly for every
    candidate of a sweep (sort keys, leading-X% cut, report rendering), and
    the evaluation never changes after construction.
    """

    def __init__(
        self,
        layout: FragmentationLayout,
        prefetch: PrefetchSetting,
        per_class: Optional[Tuple[QueryCost, ...]] = None,
        columns: Optional[EvaluationColumns] = None,
    ) -> None:
        if (per_class is None) == (columns is None):
            raise CostModelError(
                "WorkloadEvaluation needs exactly one of per_class= or columns="
            )
        self.layout = layout
        self.prefetch = prefetch
        self.columns = columns
        self._per_class = tuple(per_class) if per_class is not None else None

    @property
    def per_class(self) -> Tuple[QueryCost, ...]:
        """Per-class cost records (materialized lazily from the columns)."""
        if self._per_class is None:
            self._per_class = self.columns.records()
        return self._per_class

    # -- pickling ---------------------------------------------------------------
    #
    # Columnar evaluations pickle their columns, never the materialized record
    # graph — that is what keeps candidate cache entries and pool transfers
    # small.  Cached totals are dropped (recomputed deterministically).

    def __getstate__(self):
        state = {"layout": self.layout, "prefetch": self.prefetch}
        if self.columns is not None:
            state["columns"] = self.columns
        else:
            state["per_class"] = self._per_class
        return state

    def __setstate__(self, state) -> None:
        self.__init__(
            state["layout"],
            state["prefetch"],
            per_class=state.get("per_class"),
            columns=state.get("columns"),
        )

    def __eq__(self, other) -> bool:
        if not isinstance(other, WorkloadEvaluation):
            return NotImplemented
        return (
            self.layout == other.layout
            and self.prefetch == other.prefetch
            and self.per_class == other.per_class
        )

    def __hash__(self) -> int:
        # Value hash matching __eq__, as the frozen-dataclass form had
        # (materializes the records once; hashing evaluations is rare).
        return hash((self.layout, self.prefetch, self.per_class))

    def __repr__(self) -> str:  # pragma: no cover - diagnostic only
        backing = "columnar" if self.columns is not None else "records"
        return (
            f"WorkloadEvaluation({self.layout.spec.label!r}, "
            f"classes={len(self.per_class)}, {backing})"
        )

    # -- totals -----------------------------------------------------------------
    #
    # Computed from the columns when available: same Python floats, same
    # left-to-right accumulation order as summing over the records — the
    # parity suite asserts the equality — without materializing the records.

    @cached_property
    def total_io_cost_ms(self) -> float:
        """Workload-weighted I/O cost (the advisor's primary metric)."""
        if self.columns is not None and self._per_class is None:
            values = self.columns.metrics[:, -2].tolist()
            return sum(w * v for w, v in zip(self.columns.weights, values))
        return sum(cost.weighted_io_cost_ms for cost in self.per_class)

    @cached_property
    def total_response_time_ms(self) -> float:
        """Workload-weighted response time (the advisor's secondary metric)."""
        if self.columns is not None and self._per_class is None:
            values = self.columns.metrics[:, -1].tolist()
            return sum(w * v for w, v in zip(self.columns.weights, values))
        return sum(cost.weighted_response_time_ms for cost in self.per_class)

    @property
    def total_pages_accessed(self) -> float:
        """Workload-weighted pages read per query."""
        return sum(
            cost.weight * cost.profile.total_pages_accessed for cost in self.per_class
        )

    @property
    def total_io_requests(self) -> float:
        """Workload-weighted disk requests per query."""
        return sum(
            cost.weight * cost.profile.total_io_requests for cost in self.per_class
        )

    def cost_for(self, query_name: str) -> QueryCost:
        """Per-class cost record by query name."""
        for cost in self.per_class:
            if cost.query_name == query_name:
                return cost
        raise CostModelError(f"no cost record for query class {query_name!r}")

    def as_dict(self) -> Dict[str, Dict[str, float]]:
        """Plain-dict summary (used by reports and the CLI JSON output)."""
        return {
            cost.query_name: {
                "weight": cost.weight,
                "io_cost_ms": cost.io_cost_ms,
                "response_time_ms": cost.response_time_ms,
                "fragments_accessed": cost.profile.fragments_accessed,
                "fact_pages_accessed": cost.profile.fact_pages_accessed,
                "bitmap_pages_accessed": cost.profile.bitmap_pages_accessed,
                "io_requests": cost.profile.total_io_requests,
                "disks_used": cost.disks_used,
            }
            for cost in self.per_class
        }


def _positioning_page_equivalent(system: SystemParameters) -> float:
    """Positioning overhead of the configured disk in page-transfer units."""
    page_time = system.disk.page_transfer_time_ms(system.page_size_bytes)
    if page_time <= 0:
        return 0.0
    return system.disk.positioning_time_ms / page_time


def _structure_for(
    layout: FragmentationLayout,
    query: QueryClass,
    bitmap_scheme: BitmapScheme,
    cache=None,
    validate: bool = True,
) -> AccessStructure:
    """Prefetch-independent access structure, via the cache when one is given."""
    if cache is None:
        return compute_access_structure(layout, query, bitmap_scheme, validate=validate)
    return cache.access_structure(
        layout,
        query,
        bitmap_scheme,
        lambda: compute_access_structure(layout, query, bitmap_scheme, validate=validate),
    )


def _typical_run_lengths(
    layout: FragmentationLayout,
    workload: QueryMix,
    bitmap_scheme: BitmapScheme,
    positioning_page_equivalent: float,
    cache=None,
    validate_queries: bool = True,
) -> Tuple[Tuple[float, ...], Tuple[float, ...], Tuple[float, ...]]:
    """Typical consecutive-page run lengths for fact and bitmap reads per class.

    Used by the prefetch optimizer: the relevant run length for fact access is
    the fragment size (sequential fragment scans dominate), for bitmap access
    the per-fragment bitmap extent of the indexes the class actually reads.
    """
    unit_prefetch = PrefetchSetting.fixed(1, 1)
    fact_runs = []
    bitmap_runs = []
    weights = []
    for query_class, share in workload.weighted_items():
        structure = _structure_for(
            layout, query_class, bitmap_scheme, cache=cache, validate=validate_queries
        )
        profile = estimate_access(
            layout,
            query_class,
            bitmap_scheme,
            unit_prefetch,
            positioning_page_equivalent=positioning_page_equivalent,
            structure=structure,
        )
        fact_runs.append(profile.fact_pages_per_fragment)
        if profile.fragments_accessed > 0:
            bitmap_runs.append(
                profile.bitmap_pages_accessed / profile.fragments_accessed
            )
        else:
            bitmap_runs.append(0.0)
        weights.append(share)
    return tuple(fact_runs), tuple(bitmap_runs), tuple(weights)


def prefetch_setting_from_runs(
    fact_runs: Tuple[float, ...],
    bitmap_runs: Tuple[float, ...],
    weights: Tuple[float, ...],
    system: SystemParameters,
) -> PrefetchSetting:
    """Select the prefetch granules from per-class typical run lengths.

    The granule-selection half of :func:`resolve_prefetch_setting`, shared by
    the scalar and the batched cost paths (both derive the run lengths with a
    unit-granule estimation pass and then call this).
    """
    if system.fact_prefetch_is_auto:
        fact_pages = optimal_prefetch_pages(
            fact_runs, system.disk, system.page_size_bytes, weights
        )
        fact_policy = PrefetchPolicy.AUTO
    else:
        fact_pages = int(system.prefetch_pages_fact)
        fact_policy = PrefetchPolicy.FIXED

    positive_bitmap_runs = [run for run in bitmap_runs if run > 0]
    if system.bitmap_prefetch_is_auto:
        if positive_bitmap_runs:
            bitmap_pages = optimal_prefetch_pages(
                positive_bitmap_runs, system.disk, system.page_size_bytes
            )
        else:
            bitmap_pages = 1
        bitmap_policy = PrefetchPolicy.AUTO
    else:
        bitmap_pages = int(system.prefetch_pages_bitmap)
        bitmap_policy = PrefetchPolicy.FIXED

    return PrefetchSetting(
        fact_pages=fact_pages,
        bitmap_pages=bitmap_pages,
        fact_policy=fact_policy,
        bitmap_policy=bitmap_policy,
    )


def resolve_prefetch_setting(
    layout: FragmentationLayout,
    workload: QueryMix,
    bitmap_scheme: BitmapScheme,
    system: SystemParameters,
    cache=None,
    validate_queries: bool = True,
) -> PrefetchSetting:
    """Resolve the prefetch granules for one fragmentation candidate.

    Fixed granules from :class:`SystemParameters` are passed through; ``"auto"``
    granules are optimized per object class from the typical run lengths the
    workload induces on this candidate — fragment sizes of fact tables and
    bitmaps strongly differ, hence the per-class optimization the paper
    highlights.  ``cache`` optionally memoizes the underlying access structures
    (see :class:`repro.engine.EvaluationCache`); ``validate_queries=False``
    skips the per-query schema validation for callers that already validated
    the whole workload.
    """
    fact_runs, bitmap_runs, weights = _typical_run_lengths(
        layout,
        workload,
        bitmap_scheme,
        _positioning_page_equivalent(system),
        cache=cache,
        validate_queries=validate_queries,
    )
    return prefetch_setting_from_runs(fact_runs, bitmap_runs, weights, system)


class IOCostModel:
    """Analytical I/O model bound to a set of system parameters.

    Parameters
    ----------
    system:
        DBS & disk parameters used for timing.
    cache:
        Optional evaluation cache memoizing access structures and per-class
        cost records across repeated evaluations (what-if studies, warm
        advisor runs).  Duck-typed; see the module docstring.
    validate_queries:
        Re-validate each query against the schema on every estimation
        (default).  The advisor and the evaluation engine validate the whole
        workload once up front and construct their model with ``False``.
    """

    def __init__(
        self,
        system: SystemParameters,
        cache=None,
        validate_queries: bool = True,
    ) -> None:
        if not isinstance(system, SystemParameters):
            raise CostModelError(
                f"system must be SystemParameters, got {type(system).__name__}"
            )
        self.system = system
        self.cache = cache
        self.validate_queries = validate_queries

    # -- per-query metrics ---------------------------------------------------------

    def io_cost_ms(self, profile: QueryAccessProfile, prefetch: PrefetchSetting) -> float:
        """Total disk busy time (milliseconds) the query induces."""
        disk = self.system.disk
        page_time = disk.page_transfer_time_ms(self.system.page_size_bytes)
        fact_transfer = profile.fact_pages_transferred
        bitmap_transfer = profile.bitmap_pages_transferred
        if profile.sequential_fact_access:
            # Sequential requests transfer whole prefetch granules; the trailing
            # request of every fragment over-reads on average half a granule,
            # which the request count already reflects via the ceiling.
            fact_transfer = profile.fact_io_requests * prefetch.fact_pages
            fact_transfer = max(fact_transfer, profile.fact_pages_transferred)
        if profile.bitmap_io_requests > 0:
            bitmap_transfer = profile.bitmap_io_requests * prefetch.bitmap_pages
            bitmap_transfer = max(bitmap_transfer, profile.bitmap_pages_transferred)
        positioning = disk.positioning_time_ms * profile.total_io_requests
        transfer = page_time * (fact_transfer + bitmap_transfer)
        return positioning + transfer

    def disks_used(self, profile: QueryAccessProfile) -> int:
        """Number of disks over which the query's I/O is spread.

        Fragments are declustered over the disks (round-robin or greedy), so a
        query touching ``F`` fragments can use at most ``min(F, num_disks)``
        disks; a query confined to a single fragment uses one disk.
        """
        fragments = max(1.0, profile.fragments_accessed)
        return int(min(self.system.num_disks, math.ceil(fragments)))

    def response_time_ms(
        self,
        profile: QueryAccessProfile,
        prefetch: PrefetchSetting,
        layout: Optional[FragmentationLayout] = None,
    ) -> float:
        """Parallel I/O response time (milliseconds) of the query.

        The busy time is spread over the disks used; an imbalance factor
        derived from the fragment-size skew of the layout inflates the critical
        disk's share, and each parallel subquery pays a coordination overhead.
        """
        busy = self.io_cost_ms(profile, prefetch)
        disks = self.disks_used(profile)
        imbalance = 1.0
        if layout is not None and disks > 1:
            # A large size CV means the most loaded disk carries more than the
            # average share.  The heuristic inflation keeps the model simple
            # while preserving the ordering; the simulator provides exact values.
            imbalance = 1.0 + layout.fragment_size_cv / math.sqrt(disks)
        per_disk = busy / disks * imbalance
        coordination = self.system.effective_coordination_overhead_ms * disks
        return per_disk + coordination

    def query_cost(
        self,
        layout: FragmentationLayout,
        query: QueryClass,
        bitmap_scheme: BitmapScheme,
        prefetch: PrefetchSetting,
        weight: float = 1.0,
    ) -> QueryCost:
        """Full cost record of one query class on one candidate."""
        structure = _structure_for(
            layout,
            query,
            bitmap_scheme,
            cache=self.cache,
            validate=self.validate_queries,
        )
        profile = estimate_access(
            layout,
            query,
            bitmap_scheme,
            prefetch,
            positioning_page_equivalent=_positioning_page_equivalent(self.system),
            structure=structure,
        )
        return QueryCost(
            query_name=query.name,
            weight=weight,
            profile=profile,
            io_cost_ms=self.io_cost_ms(profile, prefetch),
            response_time_ms=self.response_time_ms(profile, prefetch, layout),
            disks_used=self.disks_used(profile),
        )

    # -- workload-level evaluation ----------------------------------------------------

    def evaluate(
        self,
        layout: FragmentationLayout,
        workload: QueryMix,
        bitmap_scheme: BitmapScheme,
        prefetch: Optional[PrefetchSetting] = None,
    ) -> WorkloadEvaluation:
        """Evaluate a fragmentation candidate against the whole query mix."""
        if prefetch is None:
            prefetch = resolve_prefetch_setting(
                layout,
                workload,
                bitmap_scheme,
                self.system,
                cache=self.cache,
                validate_queries=self.validate_queries,
            )
        per_class = tuple(
            self.query_cost(layout, query_class, bitmap_scheme, prefetch, weight=share)
            for query_class, share in workload.weighted_items()
        )
        return WorkloadEvaluation(layout=layout, prefetch=prefetch, per_class=per_class)
